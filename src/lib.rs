//! `gpu-ddt` — facade crate for the HPDC'16 *GPU-Aware Non-contiguous
//! Data Movement In Open MPI* reproduction.
//!
//! The workspace is organized as one crate per subsystem (see DESIGN.md);
//! this crate re-exports them under stable names so examples, integration
//! tests and downstream users can depend on a single entry point:
//!
//! * [`simcore`] — discrete-event simulation kernel (virtual time).
//! * [`memsim`] — simulated host/device memory spaces.
//! * [`gpusim`] — CUDA-like GPU runtime (streams, kernels, memcpy, IPC).
//! * [`datatype`] — the MPI derived-datatype engine (CPU side).
//! * [`devengine`] — the paper's GPU datatype engine (DEV methodology).
//! * [`netsim`] — PCIe/InfiniBand/shared-memory interconnect models.
//! * [`mpirt`] — the Open MPI-like PML/BML/BTL runtime with the paper's
//!   pipelined RDMA and copy-in/out protocols.
//! * [`baseline`] — the MVAPICH2-GDR-style comparator.

pub use baseline;
pub use datatype;
pub use devengine;
pub use gpusim;
pub use memsim;
pub use mpirt;
pub use netsim;
pub use simcore;

/// The handful of names almost every program starts from:
///
/// ```
/// use gpu_ddt::prelude::*;
///
/// let mut sess = Session::builder().two_ranks_two_gpus().build();
/// # let _ = &mut sess;
/// ```
pub mod prelude {
    pub use datatype::DataType;
    pub use gpusim::GpuArch;
    pub use memsim::Ptr;
    pub use mpirt::{irecv, isend, ping_pong, wait_all, PingPongSpec, RecvArgs, SendArgs, Session};
    pub use simcore::{Metrics, SimTime, Tracer};
}
