//! FFT-style reshape on the fly (the paper's §5.2.2): the sender
//! describes its data as a strided vector, the receiver as a
//! contiguous block. The type *signatures* match, so MPI performs the
//! reshape during the transfer — and the contiguous side's conversion
//! stage disappears entirely (the rendezvous handshake lets the sender
//! pack straight into the receiver's buffer over CUDA IPC).
//!
//! ```text
//! cargo run --release --example fft_reshape
//! ```

use gpu_ddt::datatype::Signature;
use gpu_ddt::memsim::MemSpace;
use gpu_ddt::prelude::*;

fn main() {
    let n: u64 = 1024; // n x n doubles
    let vector = DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .unwrap()
        .commit();
    let contiguous = DataType::contiguous(n * n, &DataType::double())
        .unwrap()
        .commit();

    // Legal because the signatures match even though layouts differ.
    let sv = Signature::of(&vector, 1);
    let sc = Signature::of(&contiguous, 1);
    assert!(sv.matches(&sc));
    println!(
        "vector {} and contiguous {} carry the same signature ({} doubles)",
        vector,
        contiguous,
        sv.element_count()
    );

    let mut sess = Session::builder()
        .two_ranks_two_gpus()
        .label("fft-reshape")
        .build();
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let b0 = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu0), vector.extent() as u64)
        .unwrap();
    let b1 = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), contiguous.size())
        .unwrap();

    // Reshape ping-pong: vector out, contiguous back.
    let per_rt = ping_pong(
        &mut sess,
        PingPongSpec {
            ty0: vector.clone(),
            count0: 1,
            buf0: b0,
            ty1: contiguous.clone(),
            count1: 1,
            buf1: b1,
            iters: 5,
        },
    );
    println!(
        "reshape round trip ({} MB each way): {} mean over 5 iterations",
        vector.size() >> 20,
        per_rt
    );

    // Compare against both sides non-contiguous (no fast path).
    let mut sess2 = Session::builder()
        .two_ranks_two_gpus()
        .label("fft-reshape-vv")
        .build();
    let c0 = sess2
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu0), vector.extent() as u64)
        .unwrap();
    let c1 = sess2
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), vector.extent() as u64)
        .unwrap();
    let per_rt_vv = ping_pong(
        &mut sess2,
        PingPongSpec {
            ty0: vector.clone(),
            count0: 1,
            buf0: c0,
            ty1: vector,
            count1: 1,
            buf1: c1,
            iters: 5,
        },
    );
    println!("vector↔vector round trip (both sides pack+unpack):   {per_rt_vv}");
    println!(
        "contiguous fast path saves {:.1}% of the round trip",
        (1.0 - per_rt.as_secs_f64() / per_rt_vv.as_secs_f64()) * 100.0
    );
}
