//! LAMMPS-style particle exchange (the paper's §3 indexed-type
//! motivation): each rank keeps an array of particle records on its
//! GPU plus a list of indices of the particles that crossed into the
//! neighbour's domain; an `indexed_block` datatype gathers exactly
//! those records for the send — no hand-written packing kernel.
//!
//! ```text
//! cargo run --release --example lammps_exchange
//! ```

use gpu_ddt::datatype::DataType;
use gpu_ddt::memsim::MemSpace;
use gpu_ddt::mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use gpu_ddt::mpirt::{MpiConfig, MpiWorld};
use gpu_ddt::simcore::rng::rng;
use gpu_ddt::simcore::Sim;
use rand::seq::SliceRandom;
use rand::Rng;

/// One particle: position (3 doubles) + velocity (3 doubles) + id/type
/// packed into one more double-slot. 56 bytes, like LAMMPS' `x`/`v`
/// exchange payload.
const PARTICLE_DOUBLES: u64 = 7;

fn main() {
    let n_particles: u64 = 100_000;
    let n_leaving: usize = 8_000;

    // Deterministically pick which particles leave the domain.
    let mut r = rng(2016);
    let mut idx: Vec<i64> = (0..n_particles as i64).collect();
    idx.shuffle(&mut r);
    let mut leaving = idx[..n_leaving].to_vec();
    leaving.sort_unstable(); // LAMMPS builds its lists in index order

    let particle = DataType::contiguous(PARTICLE_DOUBLES, &DataType::double()).unwrap();
    let send_ty = DataType::indexed_block(1, &leaving, &particle)
        .unwrap()
        .commit();
    // The receiver appends to the end of its own array: contiguous.
    let recv_ty = DataType::contiguous(n_leaving as u64, &particle)
        .unwrap()
        .commit();
    println!(
        "exchanging {n_leaving} of {n_particles} particles ({} KB) described by {}",
        send_ty.size() / 1024,
        send_ty
    );

    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let gpu0 = sim.world.mpi.ranks[0].gpu;
    let gpu1 = sim.world.mpi.ranks[1].gpu;
    let array_bytes = n_particles * PARTICLE_DOUBLES * 8;
    let sbuf = sim.world.cluster.memory.alloc(MemSpace::Device(gpu0), array_bytes).unwrap();
    let rbuf = sim
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), send_ty.size())
        .unwrap();

    // Fill the particle array with per-particle markers.
    let mut data = vec![0u8; array_bytes as usize];
    let mut rr = rng(7);
    rr.fill(&mut data[..]);
    sim.world.cluster.memory.write(sbuf, &data).unwrap();

    // Two exchanges: the first pays DEV conversion, the second reuses
    // the cached CUDA-DEVs (LAMMPS reuses its lists across many steps).
    for step in 0..2 {
        let t0 = sim.now();
        let s = isend(
            &mut sim,
            SendArgs { from: 0, to: 1, tag: step, ty: send_ty.clone(), count: 1, buf: sbuf },
        );
        let rv = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(step),
                ty: recv_ty.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        wait_all(&mut sim, &[s, rv]);
        println!("step {step}: exchange took {}", sim.now() - t0);
    }

    // Verify the gathered records.
    let got = sim.world.cluster.memory.read_vec(rbuf, send_ty.size()).unwrap();
    let rec = (PARTICLE_DOUBLES * 8) as usize;
    for (k, &i) in leaving.iter().enumerate() {
        let src = i as usize * rec;
        assert_eq!(&got[k * rec..(k + 1) * rec], &data[src..src + rec], "particle {i}");
    }
    println!("OK — all {n_leaving} migrated particles verified");
}
