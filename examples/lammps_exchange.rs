//! LAMMPS-style particle exchange (the paper's §3 indexed-type
//! motivation): each rank keeps an array of particle records on its
//! GPU plus a list of indices of the particles that crossed into the
//! neighbour's domain; an `indexed_block` datatype gathers exactly
//! those records for the send — no hand-written packing kernel.
//!
//! ```text
//! cargo run --release --example lammps_exchange
//! ```

use gpu_ddt::memsim::MemSpace;
use gpu_ddt::prelude::*;
use gpu_ddt::simcore::rng::rng;

/// One particle: position (3 doubles) + velocity (3 doubles) + id/type
/// packed into one more double-slot. 56 bytes, like LAMMPS' `x`/`v`
/// exchange payload.
const PARTICLE_DOUBLES: u64 = 7;

fn main() {
    let n_particles: u64 = 100_000;
    let n_leaving: usize = 8_000;

    // Deterministically pick which particles leave the domain.
    let mut r = rng(2016);
    let mut idx: Vec<i64> = (0..n_particles as i64).collect();
    r.shuffle(&mut idx);
    let mut leaving = idx[..n_leaving].to_vec();
    leaving.sort_unstable(); // LAMMPS builds its lists in index order

    let particle = DataType::contiguous(PARTICLE_DOUBLES, &DataType::double()).unwrap();
    let send_ty = DataType::indexed_block(1, &leaving, &particle)
        .unwrap()
        .commit();
    // The receiver appends to the end of its own array: contiguous.
    let recv_ty = DataType::contiguous(n_leaving as u64, &particle)
        .unwrap()
        .commit();
    println!(
        "exchanging {n_leaving} of {n_particles} particles ({} KB) described by {}",
        send_ty.size() / 1024,
        send_ty
    );

    let mut sess = Session::builder()
        .two_ranks_two_gpus()
        .label("lammps-exchange")
        .build();
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let array_bytes = n_particles * PARTICLE_DOUBLES * 8;
    let sbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu0), array_bytes)
        .unwrap();
    let rbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), send_ty.size())
        .unwrap();

    // Fill the particle array with per-particle markers.
    let mut data = vec![0u8; array_bytes as usize];
    let mut rr = rng(7);
    rr.fill(&mut data[..]);
    sess.world.cluster.memory.write(sbuf, &data).unwrap();

    // Two exchanges: the first pays DEV conversion, the second reuses
    // the cached CUDA-DEVs (LAMMPS reuses its lists across many steps).
    for step in 0..2 {
        let t0 = sess.now();
        let s = isend(&mut sess, SendArgs::new(0, 1, sbuf, &send_ty, 1).tag(step));
        let rv = irecv(&mut sess, RecvArgs::new(1, 0, rbuf, &recv_ty, 1).tag(step));
        wait_all(&mut sess, &[s, rv]).expect("exchange failed");
        println!("step {step}: exchange took {}", sess.now() - t0);
    }

    // Verify the gathered records.
    let got = sess
        .world
        .cluster
        .memory
        .read_vec(rbuf, send_ty.size())
        .unwrap();
    let rec = (PARTICLE_DOUBLES * 8) as usize;
    for (k, &i) in leaving.iter().enumerate() {
        let src = i as usize * rec;
        assert_eq!(
            &got[k * rec..(k + 1) * rec],
            &data[src..src + rec],
            "particle {i}"
        );
    }

    let metrics = sess.finish();
    assert_eq!(metrics.counter("mpi.delivered.bytes"), 2 * send_ty.size());
    println!("OK — all {n_leaving} migrated particles verified");
}
