//! Quickstart: send a non-contiguous GPU-resident datatype between two
//! MPI ranks and verify the bytes.
//!
//! ```text
//! cargo run --release --example quickstart [arch]
//! ```
//!
//! Walks through the whole stack: build a derived datatype (a 256×256
//! sub-matrix of doubles inside a 512-column matrix), commit it, place
//! patterned data in GPU memory, and exchange it between two ranks that
//! share a node — the runtime picks the pipelined CUDA-IPC RDMA
//! protocol and the GPU datatype engine packs/unpacks with kernels.
//!
//! The optional `arch` argument selects the simulated GPU from the
//! backend registry (`k40`, `p100`, `v100`, `a100`); the default is the
//! paper's K40 testbed.

use gpu_ddt::datatype::testutil::{buffer_span, pattern, reference_pack};
use gpu_ddt::memsim::MemSpace;
use gpu_ddt::prelude::*;

fn main() {
    // 1. A derived datatype: 256 columns of 256 doubles, stride 512
    //    (i.e. a sub-matrix of a 512-row column-major matrix).
    let n: u64 = 256;
    let ty = DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .expect("vector type")
        .commit();
    println!("datatype: {ty}");
    println!("  size   = {} bytes (the data)", ty.size());
    println!("  extent = {} bytes (the footprint)", ty.extent());

    // 2. A two-rank job on one node, one GPU per rank, on the selected
    //    GPU architecture (`GpuArch` comes from the prelude — no
    //    subsystem crate is named here).
    let arch = match std::env::args().nth(1) {
        Some(name) => GpuArch::named(&name),
        None => GpuArch::default_arch(),
    };
    println!("arch: {} — {}", arch.name, arch.summary);
    let mut sess = Session::builder()
        .arch(arch)
        .two_ranks_two_gpus()
        .label("quickstart")
        .build();

    // 3. GPU buffers: rank 0's filled with a test pattern.
    let (base, len) = buffer_span(&ty, 1);
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let sbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu0), len as u64)
        .unwrap();
    let rbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), len as u64)
        .unwrap();
    let bytes = pattern(len);
    sess.world.cluster.memory.write(sbuf, &bytes).unwrap();

    // 4. Exchange (nonblocking send/recv + waitall).
    let s = isend(
        &mut sess,
        SendArgs::new(0, 1, sbuf.add(base as u64), &ty, 1).tag(42),
    );
    let r = irecv(
        &mut sess,
        RecvArgs::new(1, 0, rbuf.add(base as u64), &ty, 1).tag(42),
    );
    wait_all(&mut sess, &[s.clone(), r.clone()]).expect("transfer failed");

    // 5. Verify: the received packed stream equals the sent one.
    let got = sess
        .world
        .cluster
        .memory
        .read_vec(rbuf, len as u64)
        .unwrap();
    let sent = reference_pack(&ty, 1, &bytes, base);
    let received = reference_pack(&ty, 1, &got, base);
    assert_eq!(sent, received, "payload corrupted");

    println!(
        "transferred {} bytes of non-contiguous GPU data in {} (virtual time)",
        s.expect_bytes(),
        r.completed_at().unwrap()
    );

    // 6. The session's metrics double as a correctness check: the
    //    delivered-bytes counter is maintained by the very events that
    //    moved the data.
    let metrics = sess.finish();
    assert_eq!(metrics.counter("mpi.delivered.bytes"), ty.size());
    println!(
        "metrics: delivered {} bytes",
        metrics.counter("mpi.delivered.bytes")
    );
    println!("OK — received data verified against the CPU reference engine");
}
