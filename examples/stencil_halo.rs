//! 2-D stencil halo exchange (the SHOC-style workload from the paper's
//! §3 motivation): each rank owns a tile of a larger grid on its GPU;
//! every iteration exchanges four boundaries with its neighbour — two
//! are contiguous rows, two are strided columns described by a vector
//! datatype.
//!
//! ```text
//! cargo run --release --example stencil_halo
//! ```
//!
//! Shows how MPI datatypes remove all manual packing from application
//! code, and how the contiguous/vector halves behave differently on
//! the wire (the contiguous sides take the RDMA fast path; the vector
//! sides run the GPU pack/unpack kernels).

use gpu_ddt::memsim::MemSpace;
use gpu_ddt::prelude::*;

/// Tile geometry: `n` × `n` doubles plus a one-cell halo ring,
/// column-major storage with leading dimension `n + 2`.
struct Tile {
    ld: u64,
    buf: Ptr,
}

impl Tile {
    fn idx(&self, row: u64, col: u64) -> u64 {
        (col * self.ld + row) * 8
    }
}

fn main() {
    let n: u64 = 1024;
    let ld = n + 2;
    let iters = 10u32;

    let mut sess = Session::builder()
        .two_ranks_two_gpus()
        .label("stencil-halo")
        .build();

    // Datatypes for the four boundaries of a column-major tile:
    //   north/south: one grid *row* -> strided, one element per column.
    //   east/west:   one grid *column* -> contiguous run of n doubles.
    let row_ty = DataType::vector(n, 1, ld as i64, &DataType::double())
        .unwrap()
        .commit();
    let col_ty = DataType::contiguous(n, &DataType::double())
        .unwrap()
        .commit();
    println!("row halo type:    {row_ty} ({} bytes)", row_ty.size());
    println!("column halo type: {col_ty} ({} bytes)", col_ty.size());

    // One tile per rank, on its own GPU.
    let bytes = ld * ld * 8;
    let tiles: Vec<Tile> = (0..2)
        .map(|r| {
            let gpu = sess.world.mpi.ranks[r].gpu;
            let buf = sess
                .world
                .cluster
                .memory
                .alloc(MemSpace::Device(gpu), bytes)
                .unwrap();
            Tile { ld, buf }
        })
        .collect();

    // Ranks are east/west neighbours: exchange east column of rank 0
    // with west halo of rank 1 (contiguous), and for demonstration the
    // south row of rank 0 with the north halo row of rank 1 (vector).
    let mut per_iter = Vec::new();
    for it in 0..iters {
        let t0 = sess.now();
        // Contiguous column exchange, then the strided row exchange.
        let mut reqs = vec![isend(
            &mut sess,
            SendArgs::new(0, 1, tiles[0].buf.add(tiles[0].idx(1, n)), &col_ty, 1).tag(1),
        )];
        reqs.push(irecv(
            &mut sess,
            RecvArgs::new(1, 0, tiles[1].buf.add(tiles[1].idx(1, 0)), &col_ty, 1).tag(1),
        ));
        // Strided row exchange, reverse direction.
        reqs.push(isend(
            &mut sess,
            SendArgs::new(1, 0, tiles[1].buf.add(tiles[1].idx(1, 1)), &row_ty, 1).tag(2),
        ));
        reqs.push(irecv(
            &mut sess,
            RecvArgs::new(0, 1, tiles[0].buf.add(tiles[0].idx(n + 1, 1)), &row_ty, 1).tag(2),
        ));
        wait_all(&mut sess, &reqs).expect("halo exchange failed");
        let dt = sess.now() - t0;
        if it > 0 {
            per_iter.push(dt);
        } else {
            println!("iteration 0 (cold: connection + DEV cache): {dt}");
        }
    }
    let mean = SimTime::from_nanos(
        per_iter.iter().map(|t| t.as_nanos()).sum::<u64>() / per_iter.len() as u64,
    );
    println!(
        "steady-state halo exchange: {mean} per iteration ({} warm iterations)",
        per_iter.len()
    );
    println!(
        "  contiguous column: {} KB each way; strided row: {} KB each way",
        col_ty.size() / 1024,
        row_ty.size() / 1024
    );

    let metrics = sess.finish();
    let expect = iters as u64 * (col_ty.size() + row_ty.size());
    assert_eq!(metrics.counter("mpi.delivered.bytes"), expect);
    println!(
        "metrics: {} bytes delivered over {iters} iterations",
        expect
    );
}
