//! ScaLAPACK-style exchange of a lower-triangular matrix — the paper's
//! indexed-datatype workload — demonstrating the CUDA-DEV cache.
//!
//! ```text
//! cargo run --release --example scalapack_triangular
//! ```
//!
//! Dense linear algebra factorizations repeatedly communicate
//! triangular panels. Described as an MPI indexed datatype they can be
//! sent directly from GPU memory; the first transfer pays the CPU-side
//! DEV conversion, later transfers reuse the cached CUDA-DEV list and
//! run noticeably faster — the effect the paper highlights in Fig. 7.

use gpu_ddt::memsim::MemSpace;
use gpu_ddt::prelude::*;

/// Lower-triangular n×n panel of doubles, column-major.
fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

fn main() {
    let n: u64 = 2048;
    let ty = triangular(n);
    println!(
        "triangular panel: {} ({} MB of data in a {} MB footprint)",
        ty,
        ty.size() >> 20,
        (ty.extent() as u64) >> 20
    );

    let mut sess = Session::builder()
        .two_ranks_two_gpus()
        .label("scalapack")
        .build();
    let gpu0 = sess.world.mpi.ranks[0].gpu;
    let gpu1 = sess.world.mpi.ranks[1].gpu;
    let len = ty.extent() as u64;
    let sbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu0), len)
        .unwrap();
    let rbuf = sess
        .world
        .cluster
        .memory
        .alloc(MemSpace::Device(gpu1), len)
        .unwrap();

    let round = |sess: &mut Session, tag: u64| {
        let t0 = sess.now();
        let s = isend(sess, SendArgs::new(0, 1, sbuf, &ty, 1).tag(tag));
        let r = irecv(sess, RecvArgs::new(1, 0, rbuf, &ty, 1).tag(tag));
        wait_all(sess, &[s, r]).expect("transfer failed");
        sess.now() - t0
    };

    let cold = round(&mut sess, 0);
    println!("panel transfer #1 (cold — IPC mapping, RDMA setup, DEV conversion): {cold}");
    let warm1 = round(&mut sess, 1);
    println!("panel transfer #2 (warm — cached CUDA-DEVs, cached connection):     {warm1}");
    let warm2 = round(&mut sess, 2);
    println!("panel transfer #3:                                                  {warm2}");

    let cache = sess.world.mpi.ranks[0].dev_cache.borrow();
    println!(
        "sender DEV cache: {} plan(s), {} KB of descriptors, hit rate {:.0}%",
        cache.len(),
        cache.used_bytes() / 1024,
        cache.hit_rate() * 100.0
    );
    drop(cache);
    assert!(warm1 < cold, "warm transfers must beat the cold one");
    let _ = warm2;

    // The same cache behaviour is visible in the session's counters.
    let metrics = sess.finish();
    println!(
        "metrics: {} DEV cache hits, {} misses, {} bytes delivered",
        metrics.counter("devengine.cache.hit"),
        metrics.counter("devengine.cache.miss"),
        metrics.counter("mpi.delivered.bytes")
    );
}
