//! ScaLAPACK-style exchange of a lower-triangular matrix — the paper's
//! indexed-datatype workload — demonstrating the CUDA-DEV cache.
//!
//! ```text
//! cargo run --release --example scalapack_triangular
//! ```
//!
//! Dense linear algebra factorizations repeatedly communicate
//! triangular panels. Described as an MPI indexed datatype they can be
//! sent directly from GPU memory; the first transfer pays the CPU-side
//! DEV conversion, later transfers reuse the cached CUDA-DEV list and
//! run noticeably faster — the effect the paper highlights in Fig. 7.

use gpu_ddt::datatype::DataType;
use gpu_ddt::memsim::MemSpace;
use gpu_ddt::mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use gpu_ddt::mpirt::{MpiConfig, MpiWorld};
use gpu_ddt::simcore::Sim;

/// Lower-triangular n×n panel of doubles, column-major.
fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

fn main() {
    let n: u64 = 2048;
    let ty = triangular(n);
    println!(
        "triangular panel: {} ({} MB of data in a {} MB footprint)",
        ty,
        ty.size() >> 20,
        (ty.extent() as u64) >> 20
    );

    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    let gpu0 = sim.world.mpi.ranks[0].gpu;
    let gpu1 = sim.world.mpi.ranks[1].gpu;
    let len = ty.extent() as u64;
    let sbuf = sim.world.cluster.memory.alloc(MemSpace::Device(gpu0), len).unwrap();
    let rbuf = sim.world.cluster.memory.alloc(MemSpace::Device(gpu1), len).unwrap();

    let round = |sim: &mut Sim<MpiWorld>, tag: u64| {
        let t0 = sim.now();
        let s = isend(
            sim,
            SendArgs { from: 0, to: 1, tag, ty: ty.clone(), count: 1, buf: sbuf },
        );
        let r = irecv(
            sim,
            RecvArgs { rank: 1, src: Some(0), tag: Some(tag), ty: ty.clone(), count: 1, buf: rbuf },
        );
        wait_all(sim, &[s, r]);
        sim.now() - t0
    };

    let cold = round(&mut sim, 0);
    println!("panel transfer #1 (cold — IPC mapping, RDMA setup, DEV conversion): {cold}");
    let warm1 = round(&mut sim, 1);
    println!("panel transfer #2 (warm — cached CUDA-DEVs, cached connection):     {warm1}");
    let warm2 = round(&mut sim, 2);
    println!("panel transfer #3:                                                  {warm2}");

    let cache = sim.world.mpi.ranks[0].dev_cache.borrow();
    println!(
        "sender DEV cache: {} plan(s), {} KB of descriptors, hit rate {:.0}%",
        cache.len(),
        cache.used_bytes() / 1024,
        cache.hit_rate() * 100.0
    );
    assert!(warm1 < cold, "warm transfers must beat the cold one");
}
