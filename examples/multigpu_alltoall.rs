//! Multi-GPU all-to-all with derived datatypes: the communication
//! pattern of a distributed matrix transpose / parallel FFT across
//! four ranks on two nodes (two GPUs per node).
//!
//! ```text
//! cargo run --release --example multigpu_alltoall
//! ```
//!
//! Every pairwise exchange beneath the collective independently picks
//! its transport — CUDA-IPC RDMA within a node, copy-in/out over
//! InfiniBand across nodes — while the GPU datatype engine handles the
//! non-contiguous blocks on both ends.

use gpu_ddt::memsim::{GpuId, MemSpace};
use gpu_ddt::mpirt::coll::alltoall;
use gpu_ddt::mpirt::RankSpec;
use gpu_ddt::prelude::*;

fn main() {
    let p = 4usize;
    // Each rank sends one 512x512-double tile to every rank, described
    // as a sub-matrix vector inside a 1024-column frame.
    let n: u64 = 512;
    let tile = DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .unwrap()
        .commit();
    let block = tile.extent() as u64;
    println!(
        "alltoall of {p}x{p} tiles, {} MB of data per rank pair message",
        tile.size() >> 20
    );

    let specs = [
        RankSpec {
            gpu: GpuId(0),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(1),
            node: 0,
        },
        RankSpec {
            gpu: GpuId(2),
            node: 1,
        },
        RankSpec {
            gpu: GpuId(3),
            node: 1,
        },
    ];
    let mut sess = Session::builder()
        .rank_specs(&specs, 4)
        .label("alltoall")
        .build();

    let mut send_bufs = Vec::new();
    let mut recv_bufs = Vec::new();
    for r in 0..p {
        let gpu = sess.world.mpi.ranks[r].gpu;
        let s = sess
            .world
            .cluster
            .memory
            .alloc(MemSpace::Device(gpu), block * p as u64)
            .unwrap();
        let d = sess
            .world
            .cluster
            .memory
            .alloc(MemSpace::Device(gpu), block * p as u64)
            .unwrap();
        // Tag each tile with its (sender, dest) pair for verification.
        for i in 0..p {
            let marker = (r * p + i + 1) as u8;
            let bytes = vec![marker; block as usize];
            sess.world
                .cluster
                .memory
                .write(s.add(i as u64 * block), &bytes)
                .unwrap();
        }
        send_bufs.push(s);
        recv_bufs.push(d);
    }

    let t0 = sess.now();
    let req = alltoall(&mut sess, &tile, 1, &send_bufs, &recv_bufs, 0);
    sess.run();
    assert!(req.is_complete());
    let dt = sess.now() - t0;
    println!("alltoall completed in {dt} (virtual time)");

    // Verify: recv_bufs[r] block i holds rank i's tile destined to r —
    // but only the bytes the datatype describes were transferred.
    for (r, rbuf) in recv_bufs.iter().enumerate() {
        for i in 0..p {
            let got = sess
                .world
                .cluster
                .memory
                .read_vec(rbuf.add(i as u64 * block), block)
                .unwrap();
            let expect = (i * p + r + 1) as u8;
            for seg in tile.segments(1) {
                let range = seg.disp as usize..(seg.disp + seg.len as i64) as usize;
                assert!(
                    got[range.clone()].iter().all(|&b| b == expect),
                    "rank {r} tile {i}"
                );
            }
        }
    }
    println!("OK — all {}x{} tiles verified on every rank", p, p);
    let bytes_total = tile.size() * (p * (p - 1)) as u64;
    let metrics = sess.finish();
    assert_eq!(metrics.counter("mpi.delivered.bytes"), bytes_total);
    println!(
        "aggregate payload {} MB, effective {:.2} GB/s across the job",
        bytes_total >> 20,
        bytes_total as f64 / dt.as_secs_f64() / 1e9
    );
}
