//! Ablation: pipeline tuning — fragment size × ring depth.
//!
//! §4.1: "which might represent a reduction by nearly a factor of 2 if
//! the pipeline size is correctly tuned." Sweeps the fragment size at
//! several pipeline depths for the triangular ping-pong; depth 1 is
//! the no-overlap degenerate case, tiny fragments drown in per-launch
//! and per-message overheads, huge fragments stop overlapping.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{ours_rtt, Topo};
use bench::workloads::triangular;
use mpirt::MpiConfig;

fn main() {
    let n = 2048u64;
    let t = triangular(n);
    let fig = Figure {
        id: "ablation-pipeline",
        title: "triangular N=2048 ping-pong RTT vs fragment size, per ring depth (ms, sm2)",
        x_label: "frag_kb",
        series: ["depth1", "depth2", "depth4", "depth8"].map(String::from).to_vec(),
    };
    print_header(&fig);
    for frag_kb in [64u64, 128, 256, 512, 1024, 2048] {
        let mut row = Vec::new();
        for depth in [1usize, 2, 4, 8] {
            let cfg = MpiConfig {
                frag_size: frag_kb << 10,
                pipeline_depth: depth,
                ..Default::default()
            };
            row.push(ms(ours_rtt(Topo::Sm2Gpu, cfg, &t, &t, 3)));
        }
        print_row(frag_kb, &row);
    }
}
