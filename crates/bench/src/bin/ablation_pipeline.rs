//! Ablation: pipeline tuning — fragment size × ring depth.
//!
//! §4.1: "which might represent a reduction by nearly a factor of 2 if
//! the pipeline size is correctly tuned." Sweeps the fragment size at
//! several pipeline depths for the triangular ping-pong; depth 1 is
//! the no-overlap degenerate case, tiny fragments drown in per-launch
//! and per-message overheads, huge fragments stop overlapping.

use bench::harness::ms;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::triangular;
use devengine::{EngineConfig, OptimizerConfig};
use mpirt::MpiConfig;

fn main() {
    let opts = BenchOpts::parse();
    let mut sweep = Sweep::new(
        "ablation-pipeline",
        "triangular N=2048 ping-pong RTT vs fragment size, per ring depth (ms, sm2)",
        "frag_kb",
        &[64, 128, 256, 512, 1024, 2048],
    );
    for depth in [1usize, 2, 4, 8] {
        sweep = sweep.series(&format!("depth{depth}"), move |frag_kb, arch, r| {
            let t = triangular(2048);
            // The sweep studies the static fragment/depth knobs; the
            // auto-tuner would override the swept shape, so the
            // optimizer is pinned off.
            let cfg = MpiConfig {
                frag_size: frag_kb << 10,
                pipeline_depth: depth,
                engine: EngineConfig {
                    optimizer: OptimizerConfig::disabled(),
                    ..EngineConfig::default()
                },
                ..Default::default()
            };
            let (rtt, tr) = ours_rtt(Topo::Sm2Gpu, arch, cfg, &t, &t, 3, r);
            (ms(rtt), tr)
        });
    }
    sweep.run(&opts);
}
