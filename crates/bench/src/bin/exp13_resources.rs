//! Experiment 13 (the evaluation's third benchmark) — minimal GPU
//! resources for optimal communication performance.
//!
//! The pack/unpack kernels are throttled to a given number of thread
//! blocks (SM-equivalents); the ping-pong RTT shows how few SMs the
//! datatype engine needs before PCIe — not the kernels — limits the
//! transfer. The paper's point: a small fraction of the GPU suffices,
//! leaving the rest for the application.

use bench::harness::ms;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{submatrix, triangular};
use datatype::DataType;
use devengine::EngineConfig;
use gpusim::GpuArch;
use mpirt::MpiConfig;
use simcore::Tracer;

fn throttled_rtt(
    ty: &DataType,
    blocks: u64,
    arch: &'static GpuArch,
    record: bool,
) -> (f64, Tracer) {
    let cfg = MpiConfig {
        engine: EngineConfig {
            blocks: Some(blocks as u32),
            ..Default::default()
        },
        ..Default::default()
    };
    let (rtt, tr) = ours_rtt(Topo::Sm2Gpu, arch, cfg, ty, ty, 3, record);
    (ms(rtt), tr)
}

fn main() {
    let opts = BenchOpts::parse();
    Sweep::new(
        "exp13",
        "ping-pong RTT vs thread-block budget (N=2048, sm2) (ms)",
        "blocks",
        &[1, 2, 3, 4, 6, 8, 10, 12, 15],
    )
    .series("T", |blocks, a, r| {
        throttled_rtt(&triangular(2048), blocks, a, r)
    })
    .series("V", |blocks, a, r| {
        throttled_rtt(&submatrix(2048), blocks, a, r)
    })
    .run(&opts);
}
