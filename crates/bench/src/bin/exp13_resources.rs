//! Experiment 13 (the evaluation's third benchmark) — minimal GPU
//! resources for optimal communication performance.
//!
//! The pack/unpack kernels are throttled to a given number of thread
//! blocks (SM-equivalents); the ping-pong RTT shows how few SMs the
//! datatype engine needs before PCIe — not the kernels — limits the
//! transfer. The paper's point: a small fraction of the GPU suffices,
//! leaving the rest for the application.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{ours_rtt, Topo};
use bench::workloads::{submatrix, triangular};
use devengine::EngineConfig;
use mpirt::MpiConfig;

fn main() {
    let fig = Figure {
        id: "exp13",
        title: "ping-pong RTT vs thread-block budget (N=2048, sm2) (ms)",
        x_label: "blocks",
        series: ["T", "V"].map(String::from).to_vec(),
    };
    print_header(&fig);
    let n = 2048u64;
    let t = triangular(n);
    let v = submatrix(n);
    for blocks in [1u32, 2, 3, 4, 6, 8, 10, 12, 15] {
        let cfg = MpiConfig {
            engine: EngineConfig { blocks: Some(blocks), ..Default::default() },
            ..Default::default()
        };
        let row = [
            ms(ours_rtt(Topo::Sm2Gpu, cfg.clone(), &t, &t, 3)),
            ms(ours_rtt(Topo::Sm2Gpu, cfg, &v, &v, 3)),
        ];
        print_row(blocks as u64, &row);
    }
}
