//! chaos_soak — sweep transient-fault rates across the figure
//! workloads and topologies, asserting that every injected schedule
//! still delivers byte-correct data within a bounded slowdown, and
//! that permanent losses demote cleanly: IPC loss renegotiates to
//! copy-in/copy-out, NIC-handler loss demotes NicOffload to GPU-pack,
//! and doorbell loss demotes StreamTriggered to the CPU-driven path
//! (DESIGN.md §15) — all byte-equal.
//!
//! Prints one CSV table (makespan in ms per cell; the `fault_rate_pct`
//! axis is the per-charge-point transient probability in percent) plus
//! `#` comment lines for the permanent-loss scenarios and the verdict.
//! `--arch` (repeatable and/or comma-separated) sweeps the transient
//! table across architectures, adding the arch column exactly like the
//! figure binaries. Exits non-zero on any delivered-bytes mismatch,
//! stalled run, missing demotion, or cell slower than the
//! bounded-slowdown envelope — so CI can run `chaos_soak --smoke` as a
//! gate.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{BenchOpts, Topo};
use bench::workloads::{contiguous_matrix, submatrix, triangular};
use datatype::testutil::{buffer_span, pattern, reference_pack};
use datatype::DataType;
use faultsim::{counters, FaultKind, FaultOp, FaultPlan};
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr};
use mpirt::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
use mpirt::MpiConfig;
use simcore::trace::names;
use simcore::SimTime;

/// A run that exceeds this multiple of its fault-free makespan (plus a
/// fixed grace for backoff delays on short runs) counts as unbounded.
const SLOWDOWN_CAP: f64 = 10.0;
const SLOWDOWN_GRACE: SimTime = SimTime(2_000_000); // 2 ms of backoffs

struct Cell {
    makespan: SimTime,
    m: simcore::Metrics,
}

/// One device-to-device transfer of `ty` on `arch` under `config`
/// (fault plan included); checks the delivered packed stream against
/// the reference pack of the sent pattern. Any mismatch or stall comes
/// back as `Err`.
fn transfer(
    topo: Topo,
    arch: &'static gpusim::GpuArch,
    config: MpiConfig,
    ty: &DataType,
) -> Result<Cell, String> {
    let mut sess = topo.session(arch, config).build();
    let (base, len) = buffer_span(ty, 1);
    let g0 = MemSpace::Device(sess.world.mpi.ranks[0].gpu);
    let g1 = MemSpace::Device(sess.world.mpi.ranks[1].gpu);
    let sbuf = sess.world.mem().alloc(g0, (len.max(1)) as u64).unwrap();
    let rbuf = sess.world.mem().alloc(g1, (len.max(1)) as u64).unwrap();
    let sent = pattern(len);
    sess.world.mem().write(sbuf, &sent).unwrap();
    let s = isend(
        &mut sess,
        SendArgs {
            from: 0,
            to: 1,
            tag: 0,
            ty: ty.clone(),
            count: 1,
            buf: sbuf.add(base as u64),
        },
    );
    let r = irecv(
        &mut sess,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(0),
            ty: ty.clone(),
            count: 1,
            buf: rbuf.add(base as u64),
        },
    );
    wait_all(&mut sess, &[s, r]).map_err(|e| format!("transfer failed: {e}"))?;
    let want = reference_pack(ty, 1, &sent, base);
    let got_buf = sess
        .world
        .mem()
        .read_vec(Ptr { offset: 0, ..rbuf }, len as u64)
        .unwrap();
    let got = reference_pack(ty, 1, &got_buf, base);
    if got != want {
        return Err("delivered bytes mismatch".to_string());
    }
    let makespan = sess.now();
    let m = sess.metrics();
    Ok(Cell { makespan, m })
}

/// Shorthand: wrap a fault plan in an otherwise-default config.
fn faulted(plan: FaultPlan) -> MpiConfig {
    MpiConfig {
        fault_plan: plan,
        ..Default::default()
    }
}

fn main() {
    let opts = BenchOpts::parse();
    let smoke = opts.smoke || opts.rest.iter().any(|a| a == "--smoke");
    let (n, rates): (u64, Vec<u64>) = if smoke {
        (128, vec![0, 5, 20])
    } else {
        (256, vec![0, 1, 5, 20])
    };
    let archs = opts.archs();
    let legacy = archs == [gpusim::GpuArch::default_arch()];
    let topos = [(Topo::Sm2Gpu, "sm2"), (Topo::Ib, "ib")];
    let tys = [
        ("C", contiguous_matrix(n)),
        ("V", submatrix(n)),
        ("T", triangular(n)),
    ];
    let columns: Vec<String> = topos
        .iter()
        .flat_map(|(_, tn)| tys.iter().map(move |(wn, _)| format!("{tn}-{wn}")))
        .collect();
    print_header(&Figure {
        id: "chaos_soak",
        title: "makespan under swept transient-fault rates",
        x_label: "fault_rate_pct",
        arch_column: !legacy,
        series: columns.clone(),
    });

    let mut violations: Vec<String> = Vec::new();
    // Fault-free makespan per (arch, column), filled by the rate-0 row.
    let mut baseline: Vec<SimTime> = Vec::new();
    let mut total_injected = 0u64;
    for &rate in &rates {
        for (ai, &arch) in archs.iter().enumerate() {
            let mut row = Vec::new();
            for (ti, (topo, tname)) in topos.iter().enumerate() {
                for (wi, (wname, ty)) in tys.iter().enumerate() {
                    let col = ai * columns.len() + ti * tys.len() + wi;
                    let plan = if rate == 0 {
                        FaultPlan::empty()
                    } else {
                        let seed =
                            1000 + (ai as u64) * 1000 + (ti as u64) * 100 + (wi as u64) * 10 + rate;
                        FaultPlan::empty().with_seed(seed).with_rule(
                            None,
                            FaultKind::Transient,
                            rate as f64 / 100.0,
                        )
                    };
                    match transfer(*topo, arch, faulted(plan), ty) {
                        Ok(cell) => {
                            total_injected += cell.m.counter(counters::FAULT_INJECTED);
                            if rate == 0 {
                                baseline.push(cell.makespan);
                            } else {
                                let cap = SimTime(
                                    (baseline[col].0 as f64 * SLOWDOWN_CAP) as u64
                                        + SLOWDOWN_GRACE.0,
                                );
                                if cell.makespan > cap {
                                    violations.push(format!(
                                        "{tname}-{wname} @ {rate}% on {}: makespan {} exceeds \
                                         {SLOWDOWN_CAP}x fault-free bound {}",
                                        arch.name, cell.makespan, cap
                                    ));
                                }
                            }
                            row.push(ms(cell.makespan));
                        }
                        Err(e) => {
                            violations
                                .push(format!("{tname}-{wname} @ {rate}% on {}: {e}", arch.name));
                            row.push(f64::NAN);
                        }
                    }
                }
            }
            print_row(rate, (!legacy).then_some(arch.name), &row);
        }
    }
    if total_injected == 0 {
        violations.push("sweep injected no faults at all — soak is vacuous".to_string());
    }

    // Permanent IPC loss: the SmIpc handshake must renegotiate to
    // copy-in/copy-out and still deliver the exact bytes.
    let plan = FaultPlan::empty().with_seed(7).with_rule(
        Some(FaultOp::IpcOpen),
        FaultKind::PermanentLoss,
        1.0,
    );
    let k40 = gpusim::GpuArch::default_arch();
    match transfer(Topo::Sm2Gpu, k40, faulted(plan), &tys[2].1) {
        Ok(cell) if cell.m.counter(counters::FALLBACK_EVENTS) == 0 => {
            violations.push("permanent IPC loss did not renegotiate".to_string());
        }
        Ok(cell) => println!(
            "# permanent-ipc-loss: renegotiated to copy-in/out, makespan {}, {} fallback(s)",
            cell.makespan,
            cell.m.counter(counters::FALLBACK_EVENTS)
        ),
        Err(e) => violations.push(format!("permanent-ipc-loss: {e}")),
    }

    // Offload demotions (DESIGN.md §15): on shapes the tuner provably
    // routes to the new path classes, a healthy run must take the
    // offload (else the loss scenario is vacuous), and a permanent
    // handler/doorbell loss must demote back to the GPU-pack pipeline —
    // byte-equal (transfer() checks delivery) with exactly one sticky
    // demotion and zero offload executions in the metrics.
    let coarse = DataType::vector(64, 4096, 8192, &DataType::double())
        .expect("coarse")
        .commit();
    let medium = DataType::vector(512, 32, 64, &DataType::double())
        .expect("medium")
        .commit();
    let nic_cfg = MpiConfig {
        nic_offload: true,
        ..Default::default()
    };
    let stream_cfg = MpiConfig {
        stream_trigger: true,
        ..Default::default()
    };
    let scenarios: [(
        &str,
        &'static gpusim::GpuArch,
        &DataType,
        MpiConfig,
        FaultOp,
        &str,
        &str,
    ); 2] = [
        (
            "nic-handler-loss",
            gpusim::GpuArch::named("a100"),
            &coarse,
            nic_cfg,
            FaultOp::NicHandler,
            names::OFFLOAD_NIC_PROGRAMS,
            names::OFFLOAD_NIC_DEMOTIONS,
        ),
        (
            "stream-doorbell-loss",
            gpusim::GpuArch::named("p100"),
            &medium,
            stream_cfg,
            FaultOp::StreamDoorbell,
            names::OFFLOAD_STREAM_REPLAYS,
            names::OFFLOAD_STREAM_DEMOTIONS,
        ),
    ];
    for (sname, arch, ty, cfg, op, taken, demoted) in scenarios {
        match transfer(Topo::Ib, arch, cfg.clone(), ty) {
            Ok(cell) if cell.m.counter(taken) == 0 => violations.push(format!(
                "{sname}: healthy run never took the offload path ({taken} == 0)"
            )),
            Ok(cell) => println!(
                "# {sname}: healthy run offloads ({taken} = {})",
                cell.m.counter(taken)
            ),
            Err(e) => violations.push(format!("{sname} (healthy): {e}")),
        }
        let plan =
            FaultPlan::empty()
                .with_seed(7)
                .with_rule(Some(op), FaultKind::PermanentLoss, 1.0);
        let lossy = MpiConfig {
            fault_plan: plan,
            ..cfg
        };
        match transfer(Topo::Ib, arch, lossy, ty) {
            Ok(cell) => {
                if cell.m.counter(demoted) != 1 {
                    violations.push(format!(
                        "{sname}: expected exactly one sticky demotion, got {demoted} = {}",
                        cell.m.counter(demoted)
                    ));
                } else if cell.m.counter(taken) != 0 {
                    violations.push(format!(
                        "{sname}: demoted run still offloaded ({taken} = {})",
                        cell.m.counter(taken)
                    ));
                } else {
                    println!(
                        "# {sname}: demoted to GPU-pack byte-equal, makespan {}",
                        cell.makespan
                    );
                }
            }
            Err(e) => violations.push(format!("{sname} (permanent loss): {e}")),
        }
    }

    println!("# injected {total_injected} fault(s) across the sweep");
    if violations.is_empty() {
        println!("# chaos_soak: OK");
    } else {
        for v in &violations {
            eprintln!("chaos_soak violation: {v}");
        }
        std::process::exit(1);
    }
}
