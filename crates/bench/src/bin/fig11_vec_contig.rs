//! Figure 11 — ping-pong with *different* datatypes on each side:
//! vector on one, contiguous on the other (the FFT / reshape-on-the-fly
//! pattern). The signatures match, so MPI transfers are legal; the
//! contiguous side's conversion stage short-circuits entirely.
//!
//! Ours exploits GPU RDMA + zero-copy; the baseline still packs with
//! cudaMemcpy2D and stages through host.

use bench::harness::ms;
use bench::runner::{baseline_rtt, ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{contiguous_matrix, submatrix};
use mpirt::MpiConfig;

fn main() {
    let opts = BenchOpts::parse();
    for (topo, label, suffix) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)", "sm2"),
        (Topo::Ib, "InfiniBand (ms RTT)", "ib"),
    ] {
        // Sender: sub-matrix vector; receiver: contiguous.
        Sweep::new(
            "fig11",
            label,
            "matrix_size",
            &[512, 1024, 2048, 3072, 4096],
        )
        .series("ours", move |n, arch, r| {
            let (t, tr) = ours_rtt(
                topo,
                arch,
                MpiConfig::default(),
                &submatrix(n),
                &contiguous_matrix(n),
                3,
                r,
            );
            (ms(t), tr)
        })
        .series("baseline", move |n, arch, r| {
            let (t, tr) = baseline_rtt(
                topo,
                arch,
                MpiConfig::default(),
                &submatrix(n),
                &contiguous_matrix(n),
                2,
                r,
            );
            (ms(t), tr)
        })
        .run(&opts.for_panel(suffix));
        println!();
    }
}
