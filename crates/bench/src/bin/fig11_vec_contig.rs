//! Figure 11 — ping-pong with *different* datatypes on each side:
//! vector on one, contiguous on the other (the FFT / reshape-on-the-fly
//! pattern). The signatures match, so MPI transfers are legal; the
//! contiguous side's conversion stage short-circuits entirely.
//!
//! Ours exploits GPU RDMA + zero-copy; the baseline still packs with
//! cudaMemcpy2D and stages through host.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{baseline_rtt, ours_rtt, Topo};
use bench::workloads::{contiguous_matrix, submatrix};
use mpirt::MpiConfig;

fn main() {
    for (topo, label) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)"),
        (Topo::Ib, "InfiniBand (ms RTT)"),
    ] {
        let fig = Figure {
            id: "fig11",
            title: label,
            x_label: "matrix_size",
            series: ["ours", "baseline"].map(String::from).to_vec(),
        };
        print_header(&fig);
        for n in [512u64, 1024, 2048, 3072, 4096] {
            // Sender: sub-matrix vector; receiver: contiguous.
            let v = submatrix(n);
            let c = contiguous_matrix(n);
            let row = [
                ms(ours_rtt(topo, MpiConfig::default(), &v, &c, 3)),
                ms(baseline_rtt(topo, MpiConfig::default(), &v, &c, 2)),
            ];
            print_row(n, &row);
        }
        println!();
    }
}
