//! Ablation: CUDA-DEV work-unit size S.
//!
//! §3.2 sets S to 1–4 KB ("to reduce the branch penalties and increase
//! opportunities for ILP"; the lower bound is 256 B). Smaller units
//! mean more descriptors to prepare and stream; larger units mean
//! coarser warp balancing. Reports uncached pack time of the
//! triangular matrix per S.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::solo_world;
use bench::workloads::{alloc_typed, triangular};
use devengine::{pack_async, EngineConfig};
use gpusim::GpuWorld as _;
use memsim::MemSpace;
use mpirt::MpiConfig;
use simcore::Sim;

fn main() {
    let fig = Figure {
        id: "ablation-unit-size",
        title: "triangular pack time vs CUDA-DEV unit size (ms, uncached, pipelined)",
        x_label: "matrix_size",
        series: ["S=256", "S=512", "S=1K", "S=2K", "S=4K"].map(String::from).to_vec(),
    };
    print_header(&fig);
    for n in [1024u64, 2048, 4096] {
        let t = triangular(n);
        let mut row = Vec::new();
        for s in [256u64, 512, 1024, 2048, 4096] {
            let mut sim = Sim::new(solo_world(MpiConfig::default()));
            let typed = alloc_typed(&mut sim, 0, &t, 1, true, true);
            let gpu = sim.world.mpi.ranks[0].gpu;
            let packed = sim.world.mem().alloc(MemSpace::Device(gpu), t.size()).unwrap();
            let stream = sim.world.mpi.ranks[0].kernel_stream;
            let cfg = EngineConfig { unit_size: s, ..Default::default() };
            let start = sim.now();
            pack_async(&mut sim, 0, stream, &t, 1, typed, packed, cfg, None, |_, _| {});
            let end = sim.run();
            row.push(ms(end - start));
        }
        print_row(n, &row);
    }
}
