//! Ablation: CUDA-DEV work-unit size S.
//!
//! §3.2 sets S to 1–4 KB ("to reduce the branch penalties and increase
//! opportunities for ILP"; the lower bound is 256 B). Smaller units
//! mean more descriptors to prepare and stream; larger units mean
//! coarser warp balancing. Reports uncached pack time of the
//! triangular matrix per S.

use bench::harness::ms;
use bench::runner::{solo_session, BenchOpts, Sweep};
use bench::workloads::{alloc_typed, triangular};
use devengine::{pack_async, EngineConfig, OptimizerConfig};
use gpusim::{GpuArch, GpuWorld as _};
use memsim::MemSpace;
use mpirt::MpiConfig;
use simcore::{SimTime, Tracer};

fn pack_time(n: u64, unit_size: u64, arch: &'static GpuArch, record: bool) -> (SimTime, Tracer) {
    let t = triangular(n);
    let mut sess = solo_session(arch, MpiConfig::default(), record);
    let typed = alloc_typed(&mut sess, 0, &t, 1, true, true);
    let gpu = sess.world.mpi.ranks[0].gpu;
    let packed = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), t.size())
        .unwrap();
    let stream = sess.world.mpi.ranks[0].kernel_stream;
    // This sweep studies the static S knob itself: coalescing would
    // merge descriptors past the S splits and the unit-size tuner would
    // override the swept value, so the optimizer is pinned off.
    let cfg = EngineConfig {
        unit_size,
        optimizer: OptimizerConfig::disabled(),
        ..Default::default()
    };
    let start = sess.now();
    pack_async(
        &mut sess,
        0,
        stream,
        &t,
        1,
        typed,
        packed,
        cfg,
        None,
        |_, _| {},
    );
    let end = sess.run();
    (end - start, sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    let mut sweep = Sweep::new(
        "ablation-unit-size",
        "triangular pack time vs CUDA-DEV unit size (ms, uncached, pipelined)",
        "matrix_size",
        &[1024, 2048, 4096],
    );
    for (name, s) in [
        ("S=256", 256u64),
        ("S=512", 512),
        ("S=1K", 1024),
        ("S=2K", 2048),
        ("S=4K", 4096),
    ] {
        sweep = sweep.series(name, move |n, arch, r| {
            let (t, tr) = pack_time(n, s, arch, r);
            (ms(t), tr)
        });
    }
    sweep.run(&opts);
}
