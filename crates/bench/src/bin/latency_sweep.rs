//! osu_latency-style message-size sweep: round-trip latency from eager
//! sizes through the rendezvous pipeline, for contiguous (C) and
//! vector (V) GPU data on each topology.
//!
//! Shows the protocol switch at the eager limit (64 KB) and the
//! asymptotic bandwidth regimes of Figures 9–10.

use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use datatype::DataType;
use gpusim::GpuArch;
use mpirt::MpiConfig;
use simcore::Tracer;

fn contig(kb: u64) -> DataType {
    let doubles = kb * 1024 / 8;
    DataType::contiguous(doubles, &DataType::double())
        .unwrap()
        .commit()
}

/// A vector with the same payload: blocks of 32 doubles.
fn vector(kb: u64) -> DataType {
    let doubles = kb * 1024 / 8;
    let blocks = doubles / 32;
    DataType::vector(blocks.max(1), 32.min(doubles), 64, &DataType::double())
        .unwrap()
        .commit()
}

fn one_way_us(topo: Topo, ty: &DataType, arch: &'static GpuArch, record: bool) -> (f64, Tracer) {
    let (rtt, trace) = ours_rtt(topo, arch, MpiConfig::default(), ty, ty, 3, record);
    (rtt.as_micros_f64() / 2.0, trace)
}

fn main() {
    let opts = BenchOpts::parse();
    for (topo, label, suffix) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU", "sm2"),
        (Topo::Ib, "InfiniBand", "ib"),
    ] {
        Sweep::new(
            "latency-sweep",
            label,
            "message_kb",
            &[1, 4, 16, 64, 256, 1024, 4096, 16384],
        )
        .series("C_us", move |kb, a, r| one_way_us(topo, &contig(kb), a, r))
        .series("V_us", move |kb, a, r| one_way_us(topo, &vector(kb), a, r))
        .run(&opts.for_panel(suffix));
        println!();
    }
}
