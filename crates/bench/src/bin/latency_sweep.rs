//! osu_latency-style message-size sweep: round-trip latency from eager
//! sizes through the rendezvous pipeline, for contiguous (C) and
//! vector (V) GPU data on each topology.
//!
//! Shows the protocol switch at the eager limit (64 KB) and the
//! asymptotic bandwidth regimes of Figures 9–10.

use bench::harness::{print_header, print_row, Figure};
use bench::runner::{ours_rtt, Topo};
use datatype::DataType;
use mpirt::MpiConfig;

fn main() {
    for (topo, label) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU"),
        (Topo::Ib, "InfiniBand"),
    ] {
        let fig = Figure {
            id: "latency-sweep",
            title: label,
            x_label: "message_kb",
            series: ["C_us", "V_us"].map(String::from).to_vec(),
        };
        print_header(&fig);
        for kb in [1u64, 4, 16, 64, 256, 1024, 4096, 16384] {
            let doubles = kb * 1024 / 8;
            let c = DataType::contiguous(doubles, &DataType::double()).unwrap().commit();
            // A vector with the same payload: blocks of 32 doubles.
            let blocks = doubles / 32;
            let v = DataType::vector(blocks.max(1), 32.min(doubles), 64, &DataType::double())
                .unwrap()
                .commit();
            let tc = ours_rtt(topo, MpiConfig::default(), &c, &c, 3);
            let tv = ours_rtt(topo, MpiConfig::default(), &v, &v, 3);
            print_row(kb, &[tc.as_micros_f64() / 2.0, tv.as_micros_f64() / 2.0]);
        }
        println!();
    }
}
