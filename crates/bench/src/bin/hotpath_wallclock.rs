//! Wall-clock regression harness for the engine's own hot paths.
//!
//! The figure binaries report *simulated* time; this binary times the
//! real Rust code executing representative runs — fig7-style triangular
//! packs, a fig10-style shared-memory ping-pong, the raw event loop and
//! the parallel copy layer — and emits `BENCH_hotpath.json` at the repo
//! root so future changes have a measured trajectory to compare against
//! (ROADMAP: "as fast as the hardware allows", with receipts).
//!
//! Virtual-time results are asserted non-zero but otherwise ignored:
//! this harness exists purely for wall-clock and allocation pressure.
//!
//! Usage:
//!   hotpath_wallclock [--smoke] [--out <path>]
//!
//! `--smoke` shrinks every workload for CI (seconds, not minutes); the
//! JSON keeps the same shape with `"mode": "smoke"` and size-suffixed
//! series names.

use bench::runner::{solo_session, Topo};
use bench::workloads::{alloc_typed, triangular};
use devengine::{pack_async, DevCache, EngineConfig};
use gpusim::GpuWorld as _;
use memsim::MemSpace;
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig, MpiWorld};
use simcore::par::{par_transfer, par_transfer_lanes, scoped::par_transfer_scoped, CopyOp};
use simcore::{scratch, Sim, SimTime};
use std::cell::RefCell;
use std::hint::black_box;
use std::path::PathBuf;
use std::rc::Rc;
use std::time::Instant;

struct Opts {
    smoke: bool,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let default_out = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_hotpath.json"
    ));
    let mut smoke = false;
    let mut out = default_out;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => panic!("unknown argument {other:?} (expected --smoke / --out <path>)"),
        }
    }
    Opts { smoke, out }
}

/// One measured series: a name plus (key, value) fields, all of which
/// the CI smoke check requires to be strictly positive.
struct Series {
    name: String,
    fields: Vec<(&'static str, f64)>,
}

fn ms(t: SimTime) -> f64 {
    t.as_nanos() as f64 / 1e6
}

/// Wall-clock one fig7-style triangular pack (pipelined, cached, D2D).
/// The first call per size warms the structural cache; steady-state
/// repetitions measure the cached + pooled + recycled hot path.
fn pack_wallclock(n: u64, reps: u32, cache: &Rc<RefCell<DevCache>>) -> Series {
    let ty = triangular(n);
    let total = ty.size();
    let mut sess = solo_session(gpusim::GpuArch::default_arch(), MpiConfig::default(), false);
    let typed = alloc_typed(&mut sess, 0, &ty, 1, true, true);
    let gpu = sess.world.mpi.ranks[0].gpu;
    let packed = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), total)
        .unwrap();
    let stream = sess.world.mpi.ranks[0].kernel_stream;

    let once = |sess: &mut mpirt::Session| -> SimTime {
        let sim: &mut Sim<MpiWorld> = sess;
        let start = sim.now();
        pack_async(
            sim,
            0,
            stream,
            &ty,
            1,
            typed,
            packed,
            EngineConfig::default(),
            Some(cache),
            |_, _| {},
        );
        sim.run() - start
    };

    let sim_t = once(&mut sess); // warm: cache miss + page-in
    let wall = Instant::now();
    for _ in 0..reps {
        black_box(once(&mut sess));
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert!(sim_t > SimTime::ZERO);
    Series {
        name: format!("triangular_pack_{n}"),
        fields: vec![
            ("wall_ms", wall_ms),
            ("sim_ms", ms(sim_t)),
            ("bytes", total as f64),
            ("sim_bytes_per_sec", total as f64 / (ms(sim_t) / 1e3)),
            ("wall_bytes_per_sec", total as f64 / (wall_ms / 1e3)),
        ],
    }
}

/// Wall-clock a fig10-style shared-memory GPU↔GPU ping-pong, including
/// world construction (the per-session costs the structural cache and
/// scratch shelf amortize are part of what regression-watch here).
fn pingpong_wallclock(n: u64, iters: u32, reps: u32) -> Series {
    let ty = triangular(n);
    let mut last_rtt = SimTime::ZERO;
    let wall = Instant::now();
    for _ in 0..reps {
        let mut sess = Topo::Sm2Gpu
            .session(gpusim::GpuArch::default_arch(), MpiConfig::default())
            .build();
        let b0 = alloc_typed(&mut sess, 0, &ty, 1, true, true);
        let b1 = alloc_typed(&mut sess, 1, &ty, 1, true, false);
        last_rtt = ping_pong(
            &mut sess,
            PingPongSpec {
                ty0: ty.clone(),
                count0: 1,
                buf0: b0,
                ty1: ty.clone(),
                count1: 1,
                buf1: b1,
                iters,
            },
        );
        black_box(&last_rtt);
    }
    let wall_ms = wall.elapsed().as_secs_f64() * 1e3 / reps as f64;
    assert!(last_rtt > SimTime::ZERO);
    Series {
        name: format!("sm_pingpong_triangular_{n}"),
        fields: vec![
            ("wall_ms", wall_ms),
            ("sim_rtt_ms", ms(last_rtt)),
            ("bytes", ty.size() as f64),
        ],
    }
}

/// Raw DES throughput: a self-sustaining event cascade mixing calendar
/// events (future instants) with same-instant fast-lane events, shaped
/// like the fragment pipeline's callback pattern. Best-of-`reps`: on
/// shared single-vCPU runners individual runs vary ±30%, and the best
/// run is the one that reflects the code rather than the neighbours.
fn events_wallclock(target_events: u64, reps: u32) -> Series {
    fn tick(sim: &mut Sim<u64>, remaining: u64) {
        if remaining == 0 {
            return;
        }
        // Three deferred same-instant callbacks per future event — the
        // ratio process_fragment produces under pipelining.
        for _ in 0..3 {
            sim.schedule_now(|s| s.world += 1);
        }
        sim.schedule_in(SimTime::from_nanos(10), move |s| tick(s, remaining - 1));
    }
    // Kept out-of-line: folding this body into the rep loop demotes the
    // scheduler's inlined fast paths and costs ~30% measured throughput.
    #[inline(never)]
    fn one_run(target_events: u64) -> (u64, f64) {
        let mut sim = Sim::new(0u64);
        let wall = Instant::now();
        tick(&mut sim, target_events / 4);
        sim.run();
        (sim.executed_events(), wall.elapsed().as_secs_f64())
    }
    let mut best: Option<(u64, f64)> = None; // (executed, secs)
    for _ in 0..reps {
        let (executed, secs) = one_run(target_events);
        assert!(executed >= target_events);
        if best.is_none_or(|(_, b)| secs < b) {
            best = Some((executed, secs));
        }
    }
    let (executed, secs) = best.unwrap();
    Series {
        name: "events_per_sec".to_string(),
        fields: vec![
            ("events", executed as f64),
            ("wall_ms", secs * 1e3),
            ("events_per_sec", executed as f64 / secs),
        ],
    }
}

/// Pooled vs scoped-spawn `par_transfer` on the same ≥1 MB gather.
fn transfer_wallclock(mb: usize, reps: u32) -> Vec<Series> {
    let seg = 4096usize;
    let count = (mb << 20) / seg;
    let src: Vec<u8> = (0..seg * count * 2).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; seg * count];
    let ops: Vec<CopyOp> = (0..count)
        .map(|i| CopyOp {
            src_off: i * 2 * seg,
            dst_off: i * seg,
            len: seg,
        })
        .collect();
    let bytes = (seg * count) as f64;
    let mut run = |use_pool: bool| -> f64 {
        let f = if use_pool {
            par_transfer
        } else {
            par_transfer_scoped
        };
        f(&mut dst, &src, &ops); // warm
        let wall = Instant::now();
        for _ in 0..reps {
            f(&mut dst, &src, &ops);
            black_box(dst[0]);
        }
        bytes * reps as f64 / wall.elapsed().as_secs_f64() / 1e9
    };
    let pooled = run(true);
    let scoped = run(false);
    vec![
        Series {
            name: format!("par_transfer_pooled_{mb}mb"),
            fields: vec![("gbps", pooled)],
        },
        Series {
            name: format!("par_transfer_scoped_{mb}mb"),
            fields: vec![("gbps", scoped)],
        },
    ]
}

/// The same gather pinned to each lane count the pool can actually
/// provide (1, 2, 4, … up to its worker count): the honest per-core
/// scaling curve of the pooled path on *this* machine. On a single-core
/// runner this is one series — claiming more would measure
/// oversubscription, not the code.
fn transfer_lanes_wallclock(mb: usize, reps: u32) -> Vec<Series> {
    let seg = 4096usize;
    let count = (mb << 20) / seg;
    let src: Vec<u8> = (0..seg * count * 2).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; seg * count];
    let ops: Vec<CopyOp> = (0..count)
        .map(|i| CopyOp {
            src_off: i * 2 * seg,
            dst_off: i * seg,
            len: seg,
        })
        .collect();
    let bytes = (seg * count) as f64;
    let max_lanes = simcore::par::pool_info().threads;
    let mut series = Vec::new();
    let mut lanes = 1usize;
    while lanes <= max_lanes {
        par_transfer_lanes(&mut dst, &src, &ops, lanes); // warm
        let wall = Instant::now();
        for _ in 0..reps {
            par_transfer_lanes(&mut dst, &src, &ops, lanes);
            black_box(dst[0]);
        }
        let gbps = bytes * reps as f64 / wall.elapsed().as_secs_f64() / 1e9;
        series.push(Series {
            name: format!("par_transfer_pooled_{mb}mb_{lanes}lane"),
            fields: vec![("gbps", gbps), ("lanes", lanes as f64)],
        });
        lanes *= 2;
    }
    series
}

/// Fine-grained gather: 64-byte segments, the regime where the chunked
/// head+tail copy tiers beat a per-segment `memcpy` call (above ~128 B
/// the libc copy wins and `copy_segment` defers to it).
fn fine_transfer_wallclock(mb: usize, reps: u32) -> Series {
    let seg = 64usize;
    let count = (mb << 20) / seg;
    let src: Vec<u8> = (0..seg * count * 2).map(|i| (i % 251) as u8).collect();
    let mut dst = vec![0u8; seg * count];
    let ops: Vec<CopyOp> = (0..count)
        .map(|i| CopyOp {
            src_off: i * 2 * seg,
            dst_off: i * seg,
            len: seg,
        })
        .collect();
    let bytes = (seg * count) as f64;
    par_transfer(&mut dst, &src, &ops); // warm
    let wall = Instant::now();
    for _ in 0..reps {
        par_transfer(&mut dst, &src, &ops);
        black_box(dst[0]);
    }
    let gbps = bytes * reps as f64 / wall.elapsed().as_secs_f64() / 1e9;
    Series {
        name: format!("par_transfer_fine_{mb}mb"),
        fields: vec![("gbps", gbps)],
    }
}

fn json_escape_check(s: &str) -> &str {
    assert!(
        s.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
        "series names are [A-Za-z0-9_] by construction: {s}"
    );
    s
}

fn write_json(opts: &Opts, pool: simcore::par::PoolInfo, series: &[Series]) {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"hotpath-wallclock/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"pool_threads\": {},\n", pool.threads));
    out.push_str(&format!("  \"pool_from_env\": {},\n", pool.from_env));
    out.push_str("  \"series\": {\n");
    for (i, s) in series.iter().enumerate() {
        out.push_str(&format!("    \"{}\": {{", json_escape_check(&s.name)));
        for (j, (k, v)) in s.fields.iter().enumerate() {
            assert!(
                v.is_finite() && *v > 0.0,
                "{}.{k} must be positive, got {v}",
                s.name
            );
            out.push_str(&format!("\"{k}\": {v:.6}"));
            if j + 1 < s.fields.len() {
                out.push_str(", ");
            }
        }
        out.push('}');
        out.push_str(if i + 1 < series.len() { ",\n" } else { "\n" });
    }
    out.push_str("  },\n");
    let st = scratch::stats();
    out.push_str("  \"alloc\": {");
    out.push_str(&format!(
        "\"takes\": {}, \"fresh\": {}, \"recycled\": {}, \"dropped\": {}, \
         \"trimmed\": {}, \"trimmed_units\": {}, \"decayed\": {}, \
         \"retained_units\": {}, \"peak_retained_units\": {}",
        st.takes,
        st.fresh,
        st.recycled,
        st.dropped,
        st.trimmed,
        st.trimmed_units,
        st.decayed,
        st.retained_units,
        st.peak_retained_units
    ));
    out.push_str("}\n}\n");
    std::fs::write(&opts.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", opts.out.display()));
    println!("wrote {}", opts.out.display());
}

fn main() {
    let opts = parse_opts();
    // The pool sizes itself to the machine (one inline lane on a
    // single-core runner — the honest configuration; forcing extra
    // threads there only measures oversubscription). An explicit
    // GPU_DDT_COPY_THREADS still wins.
    let pool = simcore::par::pool_info(); // starts workers, logs sizing
    scratch::reset_stats();

    let (pack_sizes, pack_reps): (&[u64], u32) = if opts.smoke {
        (&[256, 512], 3)
    } else {
        (&[2048, 8192], 3)
    };
    let (pp_n, pp_iters, pp_reps) = if opts.smoke { (128, 1, 2) } else { (512, 2, 3) };
    let target_events: u64 = if opts.smoke { 200_000 } else { 2_000_000 };
    let (transfer_mb, transfer_reps) = if opts.smoke { (1, 40) } else { (4, 200) };

    let mut series: Vec<Series> = Vec::new();

    // Fig7-style packs share one structural cache across sessions — the
    // second size misses once, repetitions all hit.
    let cache = Rc::new(RefCell::new(DevCache::default()));
    for &n in pack_sizes {
        eprintln!("# triangular pack {n}...");
        series.push(pack_wallclock(n, pack_reps, &cache));
    }
    eprintln!("# sm ping-pong {pp_n}...");
    series.push(pingpong_wallclock(pp_n, pp_iters, pp_reps));
    eprintln!("# event loop...");
    series.push(events_wallclock(target_events, 5));
    eprintln!("# par_transfer pooled vs scoped...");
    series.extend(transfer_wallclock(transfer_mb, transfer_reps));
    eprintln!("# par_transfer per-lane scaling...");
    series.extend(transfer_lanes_wallclock(transfer_mb, transfer_reps));
    eprintln!("# par_transfer fine-grained (64 B segments)...");
    series.push(fine_transfer_wallclock(transfer_mb, transfer_reps));

    // The full-size pack workload is the one that used to balloon the
    // scratch shelf to 9468 idle units; assert the trim policy actually
    // engaged and held the high-water mark at the cap.
    if !opts.smoke {
        let st = scratch::stats();
        assert!(
            st.trimmed_units > 0,
            "high-water trim never engaged (peak {} units)",
            st.peak_retained_units
        );
        assert!(
            st.peak_retained_units <= scratch::SHELF_CAP_UNITS,
            "shelf exceeded its cap: {} > {}",
            st.peak_retained_units,
            scratch::SHELF_CAP_UNITS
        );
    }

    for s in &series {
        let fields: Vec<String> = s
            .fields
            .iter()
            .map(|(k, v)| format!("{k}={v:.3}"))
            .collect();
        println!("{:<32} {}", s.name, fields.join("  "));
    }
    write_json(&opts, pool, &series);
}
