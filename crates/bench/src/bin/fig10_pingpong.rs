//! Figure 10 — ping-pong round-trip time for sub-matrix (V) and
//! triangular (T) datatypes, ours vs the MVAPICH2-style baseline.
//!
//! Three panels selected by argv: `sm1` (shared memory, one GPU),
//! `sm2` (shared memory, two GPUs), `ib` (InfiniBand). No argument
//! runs all three.
//!
//! Expected shape (paper): ours is uniformly faster; the baseline's
//! indexed (T) curve explodes once the matrix grows (per-column
//! `cudaMemcpy2D` launches); intra-GPU (sm1) is ≥2× faster than
//! inter-GPU (sm2) because nothing crosses PCIe.

use bench::harness::ms;
use bench::runner::{baseline_rtt, ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{submatrix, triangular};
use mpirt::MpiConfig;

fn panel(topo: Topo, label: &'static str, opts: &BenchOpts) {
    Sweep::new(
        "fig10",
        label,
        "matrix_size",
        &[512, 1024, 2048, 3072, 4096],
    )
    .series("T-ours", move |n, arch, r| {
        let (t, tr) = ours_rtt(
            topo,
            arch,
            MpiConfig::default(),
            &triangular(n),
            &triangular(n),
            3,
            r,
        );
        (ms(t), tr)
    })
    .series("V-ours", move |n, arch, r| {
        let (t, tr) = ours_rtt(
            topo,
            arch,
            MpiConfig::default(),
            &submatrix(n),
            &submatrix(n),
            3,
            r,
        );
        (ms(t), tr)
    })
    .series("T-baseline", move |n, arch, r| {
        let (t, tr) = baseline_rtt(
            topo,
            arch,
            MpiConfig::default(),
            &triangular(n),
            &triangular(n),
            2,
            r,
        );
        (ms(t), tr)
    })
    .series("V-baseline", move |n, arch, r| {
        let (t, tr) = baseline_rtt(
            topo,
            arch,
            MpiConfig::default(),
            &submatrix(n),
            &submatrix(n),
            2,
            r,
        );
        (ms(t), tr)
    })
    .run(opts);
    println!();
}

fn main() {
    let opts = BenchOpts::parse();
    let panels: Vec<(Topo, &'static str, &'static str)> = match opts.rest.first() {
        Some(s) => {
            let topo = Topo::parse(s).unwrap_or_else(|| {
                eprintln!("usage: fig10_pingpong [sm1|sm2|ib]");
                std::process::exit(2);
            });
            vec![(topo, "selected panel (ms RTT)", "sel")]
        }
        None => vec![
            (Topo::Sm1Gpu, "(a) shared memory, intra-GPU (ms RTT)", "sm1"),
            (Topo::Sm2Gpu, "(b) shared memory, inter-GPU (ms RTT)", "sm2"),
            (Topo::Ib, "(c) InfiniBand (ms RTT)", "ib"),
        ],
    };
    for (topo, label, suffix) in panels {
        panel(topo, label, &opts.for_panel(suffix));
    }
}
