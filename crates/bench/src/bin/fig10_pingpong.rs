//! Figure 10 — ping-pong round-trip time for sub-matrix (V) and
//! triangular (T) datatypes, ours vs the MVAPICH2-style baseline.
//!
//! Three panels selected by argv: `sm1` (shared memory, one GPU),
//! `sm2` (shared memory, two GPUs), `ib` (InfiniBand). No argument
//! runs all three.
//!
//! Expected shape (paper): ours is uniformly faster; the baseline's
//! indexed (T) curve explodes once the matrix grows (per-column
//! `cudaMemcpy2D` launches); intra-GPU (sm1) is ≥2× faster than
//! inter-GPU (sm2) because nothing crosses PCIe.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{baseline_rtt, ours_rtt, Topo};
use bench::workloads::{submatrix, triangular};
use mpirt::MpiConfig;

fn panel(topo: Topo, label: &'static str) {
    let fig = Figure {
        id: "fig10",
        title: label,
        x_label: "matrix_size",
        series: ["T-ours", "V-ours", "T-baseline", "V-baseline"]
            .map(String::from)
            .to_vec(),
    };
    print_header(&fig);
    for n in [512u64, 1024, 2048, 3072, 4096] {
        let t = triangular(n);
        let v = submatrix(n);
        let row = [
            ms(ours_rtt(topo, MpiConfig::default(), &t, &t, 3)),
            ms(ours_rtt(topo, MpiConfig::default(), &v, &v, 3)),
            ms(baseline_rtt(topo, MpiConfig::default(), &t, &t, 2)),
            ms(baseline_rtt(topo, MpiConfig::default(), &v, &v, 2)),
        ];
        print_row(n, &row);
    }
    println!();
}

fn main() {
    let arg = std::env::args().nth(1);
    let panels: Vec<(Topo, &'static str)> = match arg.as_deref() {
        Some(s) => {
            let topo = Topo::parse(s).unwrap_or_else(|| {
                eprintln!("usage: fig10_pingpong [sm1|sm2|ib]");
                std::process::exit(2);
            });
            vec![(topo, "selected panel (ms RTT)")]
        }
        None => vec![
            (Topo::Sm1Gpu, "(a) shared memory, intra-GPU (ms RTT)"),
            (Topo::Sm2Gpu, "(b) shared memory, inter-GPU (ms RTT)"),
            (Topo::Ib, "(c) InfiniBand (ms RTT)"),
        ],
    };
    for (topo, label) in panels {
        panel(topo, label);
    }
}
