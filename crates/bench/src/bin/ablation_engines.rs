//! Ablation: which part of the paper's design buys the speedup?
//!
//! Compares, on the triangular workload:
//!   ours          — pipelined GPU kernels + IPC RDMA / zero-copy (the paper)
//!   ours-depth1   — same kernels but a single-slot fragment ring, so
//!                   pack, transfer and unpack never overlap
//!   jenkins-style — GPU kernels but strictly phase-by-phase through host
//!                   (the MPICH approach of §2.2)
//!   wang-style    — per-vector cudaMemcpy2D through host, no overlap
//!                   (the MVAPICH approach of §2.2)

use baseline::{baseline_ping_pong, jenkins_ping_pong, BaselineSide};
use bench::harness::ms;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{alloc_typed, triangular};
use devengine::EngineConfig;
use gpusim::GpuArch;
use mpirt::MpiConfig;
use simcore::{SimTime, Tracer};

fn jenkins_rtt(topo: Topo, arch: &'static GpuArch, n: u64, record: bool) -> (SimTime, Tracer) {
    let t = triangular(n);
    let mut sess = topo
        .session(arch, MpiConfig::default())
        .record_if(record)
        .build();
    let b0 = alloc_typed(&mut sess, 0, &t, 1, true, true);
    let b1 = alloc_typed(&mut sess, 1, &t, 1, true, false);
    let rtt = jenkins_ping_pong(
        &mut sess,
        BaselineSide {
            rank: 0,
            ty: t.clone(),
            count: 1,
            buf: b0,
        },
        BaselineSide {
            rank: 1,
            ty: t,
            count: 1,
            buf: b1,
        },
        2,
    );
    (rtt, sess.into_trace())
}

fn wang_rtt(topo: Topo, arch: &'static GpuArch, n: u64, record: bool) -> (SimTime, Tracer) {
    let t = triangular(n);
    let mut sess = topo
        .session(arch, MpiConfig::default())
        .record_if(record)
        .build();
    let b0 = alloc_typed(&mut sess, 0, &t, 1, true, true);
    let b1 = alloc_typed(&mut sess, 1, &t, 1, true, false);
    let rtt = baseline_ping_pong(
        &mut sess,
        BaselineSide {
            rank: 0,
            ty: t.clone(),
            count: 1,
            buf: b0,
        },
        BaselineSide {
            rank: 1,
            ty: t,
            count: 1,
            buf: b1,
        },
        2,
    );
    (rtt, sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    let depth1 = MpiConfig {
        pipeline_depth: 1,
        engine: EngineConfig {
            pipeline: false,
            ..Default::default()
        },
        ..Default::default()
    };
    for (topo, label, suffix) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)", "sm2"),
        (Topo::Ib, "InfiniBand (ms RTT)", "ib"),
    ] {
        let depth1 = depth1.clone();
        Sweep::new(
            "ablation-engines",
            label,
            "matrix_size",
            &[512, 1024, 2048, 4096],
        )
        .series("ours", move |n, arch, r| {
            let t = triangular(n);
            let (rtt, tr) = ours_rtt(topo, arch, MpiConfig::default(), &t, &t, 3, r);
            (ms(rtt), tr)
        })
        .series("ours-depth1", move |n, arch, r| {
            let t = triangular(n);
            let (rtt, tr) = ours_rtt(topo, arch, depth1.clone(), &t, &t, 3, r);
            (ms(rtt), tr)
        })
        .series("jenkins-style", move |n, arch, r| {
            let (rtt, tr) = jenkins_rtt(topo, arch, n, r);
            (ms(rtt), tr)
        })
        .series("wang-style", move |n, arch, r| {
            let (rtt, tr) = wang_rtt(topo, arch, n, r);
            (ms(rtt), tr)
        })
        .run(&opts.for_panel(suffix));
        println!();
    }
}
