//! Ablation: which part of the paper's design buys the speedup?
//!
//! Compares, on the triangular workload:
//!   ours          — pipelined GPU kernels + IPC RDMA / zero-copy (the paper)
//!   ours-depth1   — same kernels but a single-slot fragment ring, so
//!                   pack, transfer and unpack never overlap
//!   jenkins-style — GPU kernels but strictly phase-by-phase through host
//!                   (the MPICH approach of §2.2)
//!   wang-style    — per-vector cudaMemcpy2D through host, no overlap
//!                   (the MVAPICH approach of §2.2)

use baseline::{baseline_ping_pong, jenkins_ping_pong, BaselineSide};
use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{ours_rtt, Topo};
use bench::workloads::{alloc_typed, triangular};
use devengine::EngineConfig;
use mpirt::MpiConfig;
use simcore::Sim;

fn main() {
    for (topo, label) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)"),
        (Topo::Ib, "InfiniBand (ms RTT)"),
    ] {
        let fig = Figure {
            id: "ablation-engines",
            title: label,
            x_label: "matrix_size",
            series: ["ours", "ours-depth1", "jenkins-style", "wang-style"]
                .map(String::from)
                .to_vec(),
        };
        print_header(&fig);
        for n in [512u64, 1024, 2048, 4096] {
            let t = triangular(n);
            let depth1 = MpiConfig {
                pipeline_depth: 1,
                engine: EngineConfig { pipeline: false, ..Default::default() },
                ..Default::default()
            };
            let jenkins = {
                let mut sim = Sim::new(topo.build(MpiConfig::default()));
                let b0 = alloc_typed(&mut sim, 0, &t, 1, true, true);
                let b1 = alloc_typed(&mut sim, 1, &t, 1, true, false);
                jenkins_ping_pong(
                    &mut sim,
                    BaselineSide { rank: 0, ty: t.clone(), count: 1, buf: b0 },
                    BaselineSide { rank: 1, ty: t.clone(), count: 1, buf: b1 },
                    2,
                )
            };
            let wang = {
                let mut sim = Sim::new(topo.build(MpiConfig::default()));
                let b0 = alloc_typed(&mut sim, 0, &t, 1, true, true);
                let b1 = alloc_typed(&mut sim, 1, &t, 1, true, false);
                baseline_ping_pong(
                    &mut sim,
                    BaselineSide { rank: 0, ty: t.clone(), count: 1, buf: b0 },
                    BaselineSide { rank: 1, ty: t.clone(), count: 1, buf: b1 },
                    2,
                )
            };
            let row = [
                ms(ours_rtt(topo, MpiConfig::default(), &t, &t, 3)),
                ms(ours_rtt(topo, depth1, &t, &t, 3)),
                ms(jenkins),
                ms(wang),
            ];
            print_row(n, &row);
        }
        println!();
    }
}
