//! Figure 7 — pack + unpack time vs matrix size, for the sub-matrix
//! (V) and lower-triangular (T) workloads.
//!
//! Two panels as in the paper:
//!
//! * **bypass CPU** (`*-d2d`): pack into a contiguous GPU buffer and
//!   unpack back — series show the effect of pipelining the CPU DEV
//!   preparation (≈2× for T) and of caching the CUDA-DEVs;
//! * **through CPU** (`*-d2d2h`, `*-cpy`): plus the round-trip
//!   device↔host movement, either explicit (`d2d2h`) or implicit via
//!   zero-copy (`cpy`), which overlaps the PCIe hop with the kernels
//!   and comes out slightly faster.

use bench::harness::ms;
use bench::runner::{solo_session, BenchOpts, Sweep};
use bench::workloads::{alloc_typed, submatrix, triangular};
use datatype::DataType;
use devengine::{pack_async, unpack_async, DevCache, EngineConfig};
use gpusim::{memcpy, GpuWorld as _};
use memsim::MemSpace;
use mpirt::{MpiConfig, MpiWorld, Session};
use simcore::{Sim, SimTime, Tracer};
use std::cell::RefCell;
use std::rc::Rc;

#[derive(Clone, Copy, PartialEq, Eq)]
enum Via {
    /// Pack/unpack against a device buffer only.
    D2d,
    /// Device buffer + explicit D2H and H2D copies.
    D2d2h,
    /// Zero-copy: the kernels target a mapped host buffer directly.
    ZeroCopy,
}

/// Time pack + (transport) + unpack for one configuration. `cached`
/// pre-runs once so the CUDA-DEV cache is hot.
fn run(
    ty: &DataType,
    arch: &'static gpusim::GpuArch,
    cfg: EngineConfig,
    cached: bool,
    via: Via,
    record: bool,
) -> (SimTime, Tracer) {
    let mut sess: Session = solo_session(arch, MpiConfig::default(), record);
    let typed = alloc_typed(&mut sess, 0, ty, 1, true, true);
    let typed_out = alloc_typed(&mut sess, 0, ty, 1, true, false);
    let total = ty.size();
    let gpu = sess.world.mpi.ranks[0].gpu;
    let gpu_buf = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), total)
        .unwrap();
    let host_buf = sess.world.mem().alloc(MemSpace::Host, total).unwrap();
    let stream = sess.world.mpi.ranks[0].kernel_stream;
    let copy_stream = sess.world.mpi.ranks[0].copy_stream;
    let cache = if cached {
        Some(Rc::new(RefCell::new(DevCache::default())))
    } else {
        None
    };

    let once = |sim: &mut Sim<MpiWorld>| -> SimTime {
        let start = sim.now();
        let packed = match via {
            Via::ZeroCopy => host_buf,
            _ => gpu_buf,
        };
        let cfg2 = cfg.clone();
        let ty2 = ty.clone();
        let cache2 = cache.clone();
        pack_async(
            sim,
            0,
            stream,
            ty,
            1,
            typed,
            packed,
            cfg.clone(),
            cache.as_ref(),
            move |sim, _| {
                let after_transport = move |sim: &mut Sim<MpiWorld>| {
                    unpack_async(
                        sim,
                        0,
                        stream,
                        &ty2,
                        1,
                        typed_out,
                        packed,
                        cfg2,
                        cache2.as_ref(),
                        |_, _| {},
                    );
                };
                match via {
                    Via::D2d2h => {
                        memcpy(sim, copy_stream, gpu_buf, host_buf, total, move |sim, _| {
                            memcpy(sim, copy_stream, host_buf, gpu_buf, total, move |sim, _| {
                                after_transport(sim);
                            });
                        });
                    }
                    _ => after_transport(sim),
                }
            },
        );
        sim.run() - start
    };

    if cached {
        once(&mut sess); // warm the cache
    }
    let t = once(&mut sess);
    (t, sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    let pipe = EngineConfig::default();
    let no_pipe = EngineConfig {
        pipeline: false,
        ..Default::default()
    };

    type Series = (&'static str, fn(u64) -> DataType, EngineConfig, bool, Via);
    let configs: [Series; 8] = [
        ("V-d2d", submatrix, pipe.clone(), false, Via::D2d),
        ("T-d2d", triangular, no_pipe, false, Via::D2d),
        ("T-d2d-pipeline", triangular, pipe.clone(), false, Via::D2d),
        ("T-d2d-cached", triangular, pipe.clone(), true, Via::D2d),
        ("V-d2d2h", submatrix, pipe.clone(), false, Via::D2d2h),
        ("V-cpy", submatrix, pipe.clone(), false, Via::ZeroCopy),
        ("T-d2d2h-cached", triangular, pipe.clone(), true, Via::D2d2h),
        ("T-cpy-cached", triangular, pipe, true, Via::ZeroCopy),
    ];

    let mut sweep = Sweep::new(
        "fig7",
        "pack+unpack time (ms); bypass-CPU and through-CPU panels",
        "matrix_size",
        &[512, 1024, 2048, 3072, 4096],
    );
    for (name, mk, cfg, cached, via) in configs {
        sweep = sweep.series(name, move |n, arch, record| {
            let (t, trace) = run(&mk(n), arch, cfg.clone(), cached, via, record);
            (ms(t), trace)
        });
    }
    sweep.run(&opts);
}
