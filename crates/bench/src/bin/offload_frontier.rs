//! offload_frontier — GPU-pack vs NicOffload vs StreamTriggered round
//! trips across message sizes and architectures (DESIGN.md §15).
//!
//! Each series enables one offload knob and lets the tuner choose: the
//! `gpu-pack` column is the three-class incumbent, `nic-offload` admits
//! the NIC DEV executor, `stream-triggered` admits the stream-op graph.
//! Where a column tracks `gpu-pack` exactly the model declined the
//! offload (the never-worse gate in `ablation_optimizer` holds it to
//! that); where it drops below, the offload crossed the frontier.
//!
//! Two panels split the regimes the analytic model separates: a
//! coarse-strided sweep (32 KiB blocks, DMA-bound — the NIC wins where
//! its DMA engine outruns the wire) and a medium latency-bound sweep
//! (256 B blocks — one doorbell re-arm beats two kernel launches plus
//! the per-fragment active message). Run with `--arch
//! k40,p100,v100,a100` to see the per-arch frontier; `--smoke`
//! restricts each panel to its first size for CI.

use bench::harness::ms;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use datatype::DataType;
use mpirt::MpiConfig;

/// Coarse-strided: `blocks` × 32 KiB blocks with 32 KiB gaps.
fn coarse(blocks: u64) -> DataType {
    DataType::vector(blocks, 4096, 8192, &DataType::double())
        .expect("coarse")
        .commit()
}

/// Latency-bound: `blocks` × 256 B blocks with 256 B gaps.
fn medium(blocks: u64) -> DataType {
    DataType::vector(blocks, 32, 64, &DataType::double())
        .expect("medium")
        .commit()
}

fn variants() -> Vec<(&'static str, MpiConfig)> {
    vec![
        ("gpu-pack", MpiConfig::default()),
        (
            "nic-offload",
            MpiConfig {
                nic_offload: true,
                ..MpiConfig::default()
            },
        ),
        (
            "stream-triggered",
            MpiConfig {
                stream_trigger: true,
                ..MpiConfig::default()
            },
        ),
    ]
}

fn main() {
    let opts = BenchOpts::parse();

    // Panel 1: coarse blocks, message size 512 KiB – 4 MiB. The NIC
    // descriptor-issue cost is negligible at this granularity, so the
    // frontier is purely DMA-rate vs wire-rate per architecture.
    let mut co = Sweep::new(
        "offload-frontier",
        "coarse-strided ping-pong RTT per path class (ms, ib, 32 KiB blocks)",
        "blocks_32k",
        &[16, 32, 64, 128],
    );
    for (name, cfg) in variants() {
        co = co.series(name, move |n, arch, r| {
            let t = coarse(n);
            let (rtt, tr) = ours_rtt(Topo::Ib, arch, cfg.clone(), &t, &t, 2, r);
            (ms(rtt), tr)
        });
    }
    co.run(&opts.for_panel("coarse"));
    println!();

    // Panel 2: medium blocks, message size 128 KiB – 1 MiB. Launch
    // overhead and per-fragment handshakes dominate here; the stream
    // graph amortizes the capture over the replayed iterations.
    let mut me = Sweep::new(
        "offload-frontier",
        "latency-bound ping-pong RTT per path class (ms, ib, 256 B blocks)",
        "blocks_256b",
        &[512, 1024, 2048, 4096],
    );
    for (name, cfg) in variants() {
        me = me.series(name, move |n, arch, r| {
            let t = medium(n);
            let (rtt, tr) = ours_rtt(Topo::Ib, arch, cfg.clone(), &t, &t, 2, r);
            (ms(rtt), tr)
        });
    }
    me.run(&opts.for_panel("medium"));
}
