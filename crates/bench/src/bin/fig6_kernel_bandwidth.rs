//! Figure 6 — GPU memory bandwidth of packing kernels.
//!
//! Packs each workload into a local GPU buffer (warm CUDA-DEV cache, so
//! this isolates the kernels as the paper does) and reports achieved
//! copy bandwidth against the `cudaMemcpy` practical peak.
//!
//! Paper's result: V ≈ 94% of peak, T ≈ 80% (occupancy/misalignment),
//! T-stair recovers to ≈ V, C = `cudaMemcpy` = the ceiling.

use bench::harness::gbps;
use bench::runner::{solo_session, BenchOpts, Sweep};
use bench::workloads::{alloc_typed, contiguous_matrix, stair_triangular, submatrix, triangular};
use datatype::DataType;
use devengine::pack_async;
use gpusim::{memcpy, GpuArch, GpuWorld as _};
use memsim::MemSpace;
use mpirt::MpiConfig;
use simcore::Tracer;

/// Bandwidth of one warm pack of `ty` into a device buffer.
fn pack_bw(ty: &DataType, arch: &'static GpuArch, record: bool) -> (f64, Tracer) {
    let mut sess = solo_session(arch, MpiConfig::default(), record);
    let typed = alloc_typed(&mut sess, 0, ty, 1, true, true);
    let total = ty.size();
    let gpu = sess.world.mpi.ranks[0].gpu;
    let packed = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), total)
        .unwrap();
    let stream = sess.world.mpi.ranks[0].kernel_stream;
    let cache = std::rc::Rc::clone(&sess.world.mpi.ranks[0].dev_cache);
    let cfg = sess.world.mpi.config.engine.clone();

    // Warm-up populates the CUDA-DEV cache.
    pack_async(
        &mut sess,
        0,
        stream,
        ty,
        1,
        typed,
        packed,
        cfg.clone(),
        Some(&cache),
        |_, _| {},
    );
    sess.run();
    let start = sess.now();
    pack_async(
        &mut sess,
        0,
        stream,
        ty,
        1,
        typed,
        packed,
        cfg,
        Some(&cache),
        |_, _| {},
    );
    let end = sess.run();
    (gbps(total, end - start), sess.into_trace())
}

/// `cudaMemcpy` D2D of the same payload — the practical peak.
fn memcpy_bw(bytes: u64, arch: &'static GpuArch, record: bool) -> (f64, Tracer) {
    let mut sess = solo_session(arch, MpiConfig::default(), record);
    let gpu = sess.world.mpi.ranks[0].gpu;
    let a = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), bytes)
        .unwrap();
    let b = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), bytes)
        .unwrap();
    let stream = sess.world.mpi.ranks[0].kernel_stream;
    let start = sess.now();
    memcpy(&mut sess, stream, a, b, bytes, |_, _| {});
    let end = sess.run();
    (gbps(bytes, end - start), sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    Sweep::new(
        "fig6",
        "GPU memory bandwidth of packing kernels (GB/s)",
        "matrix_size",
        &[512, 1024, 2048, 3072, 4096],
    )
    .series("T", |n, a, r| pack_bw(&triangular(n), a, r))
    .series("V", |n, a, r| pack_bw(&submatrix(n), a, r))
    .series("T-stair", |n, a, r| {
        pack_bw(&stair_triangular(n, 128), a, r)
    })
    .series("C-cudaMemcpy", |n, a, r| {
        memcpy_bw(contiguous_matrix(n).size(), a, r)
    })
    .run(&opts);
}
