//! Figure 6 — GPU memory bandwidth of packing kernels.
//!
//! Packs each workload into a local GPU buffer (warm CUDA-DEV cache, so
//! this isolates the kernels as the paper does) and reports achieved
//! copy bandwidth against the `cudaMemcpy` practical peak.
//!
//! Paper's result: V ≈ 94% of peak, T ≈ 80% (occupancy/misalignment),
//! T-stair recovers to ≈ V, C = `cudaMemcpy` = the ceiling.

use bench::harness::{gbps, print_header, print_row, Figure};
use bench::runner::solo_world;
use bench::workloads::{alloc_typed, contiguous_matrix, stair_triangular, submatrix, triangular};
use datatype::DataType;
use devengine::pack_async;
use gpusim::{memcpy, GpuWorld as _};
use memsim::MemSpace;
use mpirt::MpiConfig;
use simcore::{Sim, SimTime};

/// Time one warm pack of `ty` into a device buffer.
fn pack_bw(ty: &DataType) -> f64 {
    let mut sim = Sim::new(solo_world(MpiConfig::default()));
    let typed = alloc_typed(&mut sim, 0, ty, 1, true, true);
    let total = ty.size();
    let gpu = sim.world.mpi.ranks[0].gpu;
    let packed = sim.world.mem().alloc(MemSpace::Device(gpu), total).unwrap();
    let stream = sim.world.mpi.ranks[0].kernel_stream;
    let cache = std::rc::Rc::clone(&sim.world.mpi.ranks[0].dev_cache);
    let cfg = sim.world.mpi.config.engine.clone();

    // Warm-up populates the CUDA-DEV cache.
    pack_async(&mut sim, 0, stream, ty, 1, typed, packed, cfg.clone(), Some(&cache), |_, _| {});
    sim.run();
    let start = sim.now();
    pack_async(&mut sim, 0, stream, ty, 1, typed, packed, cfg, Some(&cache), |_, _| {});
    let end = sim.run();
    gbps(total, end - start)
}

/// `cudaMemcpy` D2D of the same payload — the practical peak.
fn memcpy_bw(bytes: u64) -> f64 {
    let mut sim = Sim::new(solo_world(MpiConfig::default()));
    let gpu = sim.world.mpi.ranks[0].gpu;
    let a = sim.world.mem().alloc(MemSpace::Device(gpu), bytes).unwrap();
    let b = sim.world.mem().alloc(MemSpace::Device(gpu), bytes).unwrap();
    let stream = sim.world.mpi.ranks[0].kernel_stream;
    let start = sim.now();
    memcpy(&mut sim, stream, a, b, bytes, |_, _| {});
    let end = sim.run();
    gbps(bytes, end - start)
}

fn main() {
    let fig = Figure {
        id: "fig6",
        title: "GPU memory bandwidth of packing kernels (GB/s)",
        x_label: "matrix_size",
        series: ["T", "V", "T-stair", "C-cudaMemcpy"].map(String::from).to_vec(),
    };
    print_header(&fig);
    for n in [512u64, 1024, 2048, 3072, 4096] {
        let t = pack_bw(&triangular(n));
        let v = pack_bw(&submatrix(n));
        let stair = pack_bw(&stair_triangular(n, 128));
        let c = memcpy_bw(contiguous_matrix(n).size());
        print_row(n, &[t, v, stair, c]);
        let _ = SimTime::ZERO;
    }
}
