//! Ablation: the commit-time optimizer layer — datatype
//! canonicalization, DEV coalescing, strided-kernel dispatch and the
//! analytic fragment/unit auto-tuner, each toggled independently.
//!
//! `all-off` reproduces the pre-optimizer numbers exactly (it is the
//! same code path the other figure binaries take under
//! `GPU_DDT_OPT=off`); each single-pass series isolates one
//! optimization's contribution; `all-on` is the shipping default.
//!
//! Before printing the CSV the binary asserts the tuner's safety
//! property on the figure workloads: with auto-tuning enabled the
//! simulated round-trip is never worse than the static default — both
//! starting from everything-off and from everything-else-on — across
//! the triangular (fig7/fig10) and transpose (fig12) datatypes on all
//! three topologies. The same property is then asserted for the
//! five-way path-class choice: admitting NicOffload and
//! StreamTriggered as candidates (DESIGN.md §15) must never lose to
//! the three-class incumbent, on any architecture or fragmentation
//! regime.

use bench::harness::ms;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{contiguous_matrix, transpose_type, triangular};
use datatype::DataType;
use devengine::{EngineConfig, OptimizerConfig};
use gpusim::GpuArch;
use mpirt::MpiConfig;

fn cfg(opt: OptimizerConfig) -> MpiConfig {
    MpiConfig {
        engine: EngineConfig {
            optimizer: opt,
            ..EngineConfig::default()
        },
        ..MpiConfig::default()
    }
}

fn variants() -> Vec<(&'static str, OptimizerConfig)> {
    let off = OptimizerConfig::disabled();
    vec![
        ("all-off", off),
        (
            "canon",
            OptimizerConfig {
                canonicalize: true,
                ..off
            },
        ),
        (
            "coalesce",
            OptimizerConfig {
                coalesce: true,
                ..off
            },
        ),
        (
            "vector",
            OptimizerConfig {
                vector_dispatch: true,
                ..off
            },
        ),
        (
            "tune",
            OptimizerConfig {
                autotune: true,
                ..off
            },
        ),
        ("all-on", OptimizerConfig::enabled()),
    ]
}

/// The tuner must never lose to the static fragment/depth/unit
/// defaults, whatever the other toggles: assert it on the figure
/// workloads across every topology.
fn assert_tuner_never_worse() {
    type Mk = fn(u64) -> DataType;
    let workloads: [(&str, Mk, Mk, &[u64]); 2] = [
        ("triangular", triangular, triangular, &[512, 2048]),
        ("transpose", contiguous_matrix, transpose_type, &[256, 512]),
    ];
    let baselines = [
        ("from-all-off", OptimizerConfig::disabled()),
        (
            "from-rest-on",
            OptimizerConfig {
                autotune: false,
                ..OptimizerConfig::enabled()
            },
        ),
    ];
    for topo in [Topo::Sm1Gpu, Topo::Sm2Gpu, Topo::Ib] {
        for (wname, mk0, mk1, sizes) in &workloads {
            for &n in *sizes {
                let (ty0, ty1) = (mk0(n), mk1(n));
                for (bname, base) in baselines {
                    let tuned = OptimizerConfig {
                        autotune: true,
                        ..base
                    };
                    let k40 = GpuArch::default_arch();
                    let (t_off, _) = ours_rtt(topo, k40, cfg(base), &ty0, &ty1, 2, false);
                    let (t_on, _) = ours_rtt(topo, k40, cfg(tuned), &ty0, &ty1, 2, false);
                    assert!(
                        t_on <= t_off,
                        "tuner regressed {wname} N={n} on {topo:?} ({bname}): \
                         tuned {t_on} vs static {t_off}"
                    );
                }
            }
        }
    }
    eprintln!("# tuner-never-worse assertion passed on all figure workloads");
}

/// The five-way path-class gate: with the offload knobs on, the tuner
/// may route a cross-node transfer to the NIC DEV executor or the
/// stream-op graph — but only where the analytic model predicts a win
/// past the selection margin, so the measured round-trip must never be
/// worse than the three-class incumbent. Swept across every registered
/// architecture (NIC DMA rates and doorbell latencies diverge per
/// arch) and the three fragmentation regimes the model separates.
fn assert_offload_never_worse() {
    let coarse = DataType::vector(64, 4096, 8192, &DataType::double())
        .expect("coarse")
        .commit();
    let medium = DataType::vector(512, 32, 64, &DataType::double())
        .expect("medium")
        .commit();
    let fine = DataType::vector(8192, 2, 4, &DataType::double())
        .expect("fine")
        .commit();
    let workloads = [
        ("coarse-2m", &coarse),
        ("medium-128k", &medium),
        ("fine-128k", &fine),
    ];
    let knobs = [
        ("nic", true, false),
        ("stream", false, true),
        ("both", true, true),
    ];
    for arch_name in ["k40", "p100", "v100", "a100"] {
        let arch = GpuArch::named(arch_name);
        for (wname, ty) in &workloads {
            let (t_base, _) = ours_rtt(Topo::Ib, arch, MpiConfig::default(), ty, ty, 2, false);
            for (kname, nic, stream) in knobs {
                let on = MpiConfig {
                    nic_offload: nic,
                    stream_trigger: stream,
                    ..MpiConfig::default()
                };
                let (t_on, _) = ours_rtt(Topo::Ib, arch, on, ty, ty, 2, false);
                assert!(
                    t_on <= t_base,
                    "offload path-class choice regressed {wname} on {arch_name} \
                     (knobs: {kname}): {t_on} vs incumbent {t_base}"
                );
            }
        }
    }
    eprintln!("# offload-never-worse assertion passed (5-way path choice, 4 archs)");
}

fn main() {
    let opts = BenchOpts::parse();
    assert_tuner_never_worse();
    assert_offload_never_worse();

    // Panel 1: triangular ping-pong (the fig7/fig10 datatype) over the
    // full IPC pipeline — canonicalization, coalescing and the
    // fragment tuner all engage here.
    let mut tri = Sweep::new(
        "ablation-optimizer",
        "triangular ping-pong RTT per optimizer pass (ms, sm2)",
        "matrix_size",
        &[512, 1024, 2048, 4096],
    );
    for (name, opt) in variants() {
        tri = tri.series(name, move |n, arch, r| {
            let t = triangular(n);
            let (rtt, tr) = ours_rtt(Topo::Sm2Gpu, arch, cfg(opt), &t, &t, 2, r);
            (ms(rtt), tr)
        });
    }
    tri.run(&opts.for_panel("tri"));
    println!();

    // Panel 2: the same triangular exchange across InfiniBand
    // (copy-in/copy-out) — the multi-hop conversion pipeline is where
    // the fragment tuner finds real wins (fill dominates, smaller
    // fragments overlap the hops).
    let mut ib = Sweep::new(
        "ablation-optimizer",
        "triangular ping-pong RTT per optimizer pass (ms, ib)",
        "matrix_size",
        &[512, 1024, 2048, 4096],
    );
    for (name, opt) in variants() {
        ib = ib.series(name, move |n, arch, r| {
            let t = triangular(n);
            let (rtt, tr) = ours_rtt(Topo::Ib, arch, cfg(opt), &t, &t, 2, r);
            (ms(rtt), tr)
        });
    }
    ib.run(&opts.for_panel("ib"));
    println!();

    // Panel 3: matrix transpose (fig12) — the strided-dispatch pass
    // turns the receiver's 8-byte-shattered DEV into one arithmetic
    // strided-2D kernel.
    let mut tp = Sweep::new(
        "ablation-optimizer",
        "transpose ping-pong RTT per optimizer pass (ms, sm2)",
        "matrix_size",
        &[256, 512, 768, 1024],
    );
    for (name, opt) in variants() {
        tp = tp.series(name, move |n, arch, r| {
            let (rtt, tr) = ours_rtt(
                Topo::Sm2Gpu,
                arch,
                cfg(opt),
                &contiguous_matrix(n),
                &transpose_type(n),
                2,
                r,
            );
            (ms(rtt), tr)
        });
    }
    tp.run(&opts.for_panel("transpose"));
}
