//! Figure 9 — PCIe bandwidth achieved by the full ping-pong for
//! vector (V) and indexed (T) datatypes, vs contiguous (C).
//!
//! Two ranks with separate GPUs on one node: every packed byte crosses
//! PCIe once per direction, so the achieved one-way bandwidth shows how
//! well the pipeline keeps the link busy. The paper reaches ≈90% of
//! the contiguous rate for V and ≈78% for T.

use bench::harness::gbps;
use bench::runner::{ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{contiguous_matrix, submatrix, triangular};
use datatype::DataType;
use gpusim::GpuArch;
use mpirt::MpiConfig;

fn bw(ty: &DataType, arch: &'static GpuArch, record: bool) -> (f64, simcore::Tracer) {
    let (rtt, trace) = ours_rtt(Topo::Sm2Gpu, arch, MpiConfig::default(), ty, ty, 3, record);
    // One direction moves ty.size() bytes in half the RTT.
    let one_way = simcore::SimTime::from_nanos(rtt.as_nanos() / 2);
    (gbps(ty.size(), one_way), trace)
}

fn main() {
    let opts = BenchOpts::parse();
    Sweep::new(
        "fig9",
        "PCIe bandwidth of ping-pong (GB/s, one-way)",
        "matrix_size",
        &[512, 1024, 2048, 3072, 4096],
    )
    .series("V", |n, a, r| bw(&submatrix(n), a, r))
    .series("T", |n, a, r| bw(&triangular(n), a, r))
    .series("C", |n, a, r| bw(&contiguous_matrix(n), a, r))
    .run(&opts);
}
