//! Figure 9 — PCIe bandwidth achieved by the full ping-pong for
//! vector (V) and indexed (T) datatypes, vs contiguous (C).
//!
//! Two ranks with separate GPUs on one node: every packed byte crosses
//! PCIe once per direction, so the achieved one-way bandwidth shows how
//! well the pipeline keeps the link busy. The paper reaches ≈90% of
//! the contiguous rate for V and ≈78% for T.

use bench::harness::{gbps, print_header, print_row, Figure};
use bench::runner::{ours_rtt, Topo};
use bench::workloads::{contiguous_matrix, submatrix, triangular};
use mpirt::MpiConfig;

fn main() {
    let fig = Figure {
        id: "fig9",
        title: "PCIe bandwidth of ping-pong (GB/s, one-way)",
        x_label: "matrix_size",
        series: ["V", "T", "C"].map(String::from).to_vec(),
    };
    print_header(&fig);
    for n in [512u64, 1024, 2048, 3072, 4096] {
        let mut row = Vec::new();
        for ty in [submatrix(n), triangular(n), contiguous_matrix(n)] {
            let rtt = ours_rtt(Topo::Sm2Gpu, MpiConfig::default(), &ty, &ty, 3);
            // One direction moves ty.size() bytes in half the RTT.
            let one_way = simcore::SimTime::from_nanos(rtt.as_nanos() / 2);
            row.push(gbps(ty.size(), one_way));
        }
        print_row(n, &row);
    }
}
