//! Figure 8 — the specialized vector pack kernel vs `cudaMemcpy2D`.
//!
//! Fixed block counts (1 K and 8 K blocks), sweeping the block size
//! including values that are *not* multiples of 64 bytes — where
//! `cudaMemcpy2D` through the DMA engine falls off its bandwidth cliff
//! while the kernel path degrades only mildly.
//!
//! Series (times in ms):
//!   kernel-d2d    — pack kernel into a device buffer
//!   kernel-d2d2h  — + explicit D2H copy of the packed buffer
//!   kernel-d2h    — zero-copy pack straight into host memory (cpy)
//!   mcp2d-d2d     — cudaMemcpy2D device→device
//!   mcp2d-d2d2h   — cudaMemcpy2D d2d + contiguous D2H
//!   mcp2d-d2h     — cudaMemcpy2D device→host directly

use bench::harness::ms;
use bench::runner::{solo_session, BenchOpts, Sweep};
use bench::workloads::{alloc_typed, raw_vector};
use devengine::pack_async;
use gpusim::{memcpy, memcpy_2d, GpuArch, GpuWorld as _};
use memsim::{MemSpace, Ptr};
use mpirt::{MpiConfig, Session};
use simcore::{SimTime, Tracer};

struct Setup {
    sess: Session,
    typed: Ptr,
    gpu_buf: Ptr,
    host_buf: Ptr,
    total: u64,
    blocks: u64,
    block: u64,
    stride: u64,
}

fn setup(blocks: u64, block: u64, arch: &'static GpuArch, record: bool) -> Setup {
    let ty = raw_vector(blocks, block, block); // gap == block size
    let mut sess = solo_session(arch, MpiConfig::default(), record);
    let typed = alloc_typed(&mut sess, 0, &ty, 1, true, true);
    let total = ty.size();
    let gpu = sess.world.mpi.ranks[0].gpu;
    let gpu_buf = sess
        .world
        .mem()
        .alloc(MemSpace::Device(gpu), total)
        .unwrap();
    let host_buf = sess.world.mem().alloc(MemSpace::Host, total).unwrap();
    Setup {
        sess,
        typed,
        gpu_buf,
        host_buf,
        total,
        blocks,
        block,
        stride: 2 * block,
    }
}

fn kernel_time(
    blocks: u64,
    block: u64,
    arch: &'static GpuArch,
    to_host: bool,
    then_d2h: bool,
    record: bool,
) -> (SimTime, Tracer) {
    let ty = raw_vector(blocks, block, block);
    let mut s = setup(blocks, block, arch, record);
    let stream = s.sess.world.mpi.ranks[0].kernel_stream;
    let copy_stream = s.sess.world.mpi.ranks[0].copy_stream;
    let dst = if to_host { s.host_buf } else { s.gpu_buf };
    let (gpu_buf, host_buf, total) = (s.gpu_buf, s.host_buf, s.total);
    let start = s.sess.now();
    let cfg = s.sess.world.mpi.config.engine.clone();
    pack_async(
        &mut s.sess,
        0,
        stream,
        &ty,
        1,
        s.typed,
        dst,
        cfg,
        None,
        move |sim, _| {
            if then_d2h {
                memcpy(sim, copy_stream, gpu_buf, host_buf, total, |_, _| {});
            }
        },
    );
    let t = s.sess.run() - start;
    (t, s.sess.into_trace())
}

fn mcp2d_time(
    blocks: u64,
    block: u64,
    arch: &'static GpuArch,
    to_host: bool,
    then_d2h: bool,
    record: bool,
) -> (SimTime, Tracer) {
    let mut s = setup(blocks, block, arch, record);
    let stream = s.sess.world.mpi.ranks[0].copy_stream;
    let dst = if to_host { s.host_buf } else { s.gpu_buf };
    let (gpu_buf, host_buf, total) = (s.gpu_buf, s.host_buf, s.total);
    let start = s.sess.now();
    memcpy_2d(
        &mut s.sess,
        stream,
        s.typed,
        s.stride,
        dst,
        s.block,
        s.block,
        s.blocks,
        move |sim, _| {
            if then_d2h {
                memcpy(sim, stream, gpu_buf, host_buf, total, |_, _| {});
            }
        },
    );
    let t = s.sess.run() - start;
    (t, s.sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    for blocks in [1024u64, 8192] {
        let (panel, title) = match blocks {
            1024 => ("1k", "vector pack vs cudaMemcpy2D, 1K blocks (ms)"),
            _ => ("8k", "vector pack vs cudaMemcpy2D, 8K blocks (ms)"),
        };
        Sweep::new(
            "fig8",
            title,
            "block_size_bytes",
            &[128, 192, 256, 512, 1000, 1024, 2048, 3000, 4096],
        )
        .series("kernel-d2d", move |b, arch, r| {
            let (t, tr) = kernel_time(blocks, b, arch, false, false, r);
            (ms(t), tr)
        })
        .series("kernel-d2d2h", move |b, arch, r| {
            let (t, tr) = kernel_time(blocks, b, arch, false, true, r);
            (ms(t), tr)
        })
        .series("kernel-d2h-cpy", move |b, arch, r| {
            let (t, tr) = kernel_time(blocks, b, arch, true, false, r);
            (ms(t), tr)
        })
        .series("mcp2d-d2d", move |b, arch, r| {
            let (t, tr) = mcp2d_time(blocks, b, arch, false, false, r);
            (ms(t), tr)
        })
        .series("mcp2d-d2d2h", move |b, arch, r| {
            let (t, tr) = mcp2d_time(blocks, b, arch, false, true, r);
            (ms(t), tr)
        })
        .series("mcp2d-d2h", move |b, arch, r| {
            let (t, tr) = mcp2d_time(blocks, b, arch, true, false, r);
            (ms(t), tr)
        })
        .run(&opts.for_panel(panel));
        println!();
    }
}
