//! Figure 8 — the specialized vector pack kernel vs `cudaMemcpy2D`.
//!
//! Fixed block counts (1 K and 8 K blocks), sweeping the block size
//! including values that are *not* multiples of 64 bytes — where
//! `cudaMemcpy2D` through the DMA engine falls off its bandwidth cliff
//! while the kernel path degrades only mildly.
//!
//! Series (times in ms):
//!   kernel-d2d    — pack kernel into a device buffer
//!   kernel-d2d2h  — + explicit D2H copy of the packed buffer
//!   kernel-d2h    — zero-copy pack straight into host memory (cpy)
//!   mcp2d-d2d     — cudaMemcpy2D device→device
//!   mcp2d-d2d2h   — cudaMemcpy2D d2d + contiguous D2H
//!   mcp2d-d2h     — cudaMemcpy2D device→host directly

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::solo_world;
use bench::workloads::{alloc_typed, raw_vector};
use devengine::pack_async;
use gpusim::{memcpy, memcpy_2d, GpuWorld as _};
use memsim::{MemSpace, Ptr};
use mpirt::MpiConfig;
use simcore::{Sim, SimTime};

struct Setup {
    sim: Sim<mpirt::MpiWorld>,
    typed: Ptr,
    gpu_buf: Ptr,
    host_buf: Ptr,
    total: u64,
    blocks: u64,
    block: u64,
    stride: u64,
}

fn setup(blocks: u64, block: u64) -> Setup {
    let ty = raw_vector(blocks, block, block); // gap == block size
    let mut sim = Sim::new(solo_world(MpiConfig::default()));
    let typed = alloc_typed(&mut sim, 0, &ty, 1, true, true);
    let total = ty.size();
    let gpu = sim.world.mpi.ranks[0].gpu;
    let gpu_buf = sim.world.mem().alloc(MemSpace::Device(gpu), total).unwrap();
    let host_buf = sim.world.mem().alloc(MemSpace::Host, total).unwrap();
    Setup { sim, typed, gpu_buf, host_buf, total, blocks, block, stride: 2 * block }
}

fn kernel_time(blocks: u64, block: u64, to_host: bool, then_d2h: bool) -> SimTime {
    let ty = raw_vector(blocks, block, block);
    let mut s = setup(blocks, block);
    let stream = s.sim.world.mpi.ranks[0].kernel_stream;
    let copy_stream = s.sim.world.mpi.ranks[0].copy_stream;
    let dst = if to_host { s.host_buf } else { s.gpu_buf };
    let (gpu_buf, host_buf, total) = (s.gpu_buf, s.host_buf, s.total);
    let start = s.sim.now();
    let cfg = s.sim.world.mpi.config.engine.clone();
    pack_async(&mut s.sim, 0, stream, &ty, 1, s.typed, dst, cfg, None, move |sim, _| {
        if then_d2h {
            memcpy(sim, copy_stream, gpu_buf, host_buf, total, |_, _| {});
        }
    });
    s.sim.run() - start
}

fn mcp2d_time(blocks: u64, block: u64, to_host: bool, then_d2h: bool) -> SimTime {
    let mut s = setup(blocks, block);
    let stream = s.sim.world.mpi.ranks[0].copy_stream;
    let dst = if to_host { s.host_buf } else { s.gpu_buf };
    let (gpu_buf, host_buf, total) = (s.gpu_buf, s.host_buf, s.total);
    let start = s.sim.now();
    memcpy_2d(
        &mut s.sim, stream, s.typed, s.stride, dst, s.block, s.block, s.blocks,
        move |sim, _| {
            if then_d2h {
                memcpy(sim, stream, gpu_buf, host_buf, total, |_, _| {});
            }
        },
    );
    s.sim.run() - start
}

fn main() {
    let fig_series = [
        "kernel-d2d",
        "kernel-d2d2h",
        "kernel-d2h-cpy",
        "mcp2d-d2d",
        "mcp2d-d2d2h",
        "mcp2d-d2h",
    ];
    for blocks in [1024u64, 8192] {
        let fig = Figure {
            id: "fig8",
            title: match blocks {
                1024 => "vector pack vs cudaMemcpy2D, 1K blocks (ms)",
                _ => "vector pack vs cudaMemcpy2D, 8K blocks (ms)",
            },
            x_label: "block_size_bytes",
            series: fig_series.map(String::from).to_vec(),
        };
        print_header(&fig);
        for block in [128u64, 192, 256, 512, 1000, 1024, 2048, 3000, 4096] {
            let row = [
                ms(kernel_time(blocks, block, false, false)),
                ms(kernel_time(blocks, block, false, true)),
                ms(kernel_time(blocks, block, true, false)),
                ms(mcp2d_time(blocks, block, false, false)),
                ms(mcp2d_time(blocks, block, false, true)),
                ms(mcp2d_time(blocks, block, true, false)),
            ];
            print_row(block, &row);
        }
        println!();
    }
}
