//! Figure 12 — matrix transpose ping-pong: the datatype-engine stress
//! test. The sender ships the matrix contiguously; the receiver's
//! datatype scatters it transposed — N² blocks of a single element
//! (8 bytes) each.
//!
//! Ours handles this with the general DEV kernel (the CUDA-DEV cache
//! matters enormously here); the baseline's vectorization degenerates
//! to one `cudaMemcpy2D` per *row* with an 8-byte width — far off the
//! 64-byte alignment sweet spot.

use bench::harness::ms;
use bench::runner::{baseline_rtt, ours_rtt, BenchOpts, Sweep, Topo};
use bench::workloads::{contiguous_matrix, transpose_type};
use mpirt::MpiConfig;

fn main() {
    let opts = BenchOpts::parse();
    for (topo, label, suffix) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)", "sm2"),
        (Topo::Ib, "InfiniBand (ms RTT)", "ib"),
    ] {
        Sweep::new("fig12", label, "matrix_size", &[256, 384, 512, 768, 1024])
            .series("ours", move |n, arch, r| {
                let (t, tr) = ours_rtt(
                    topo,
                    arch,
                    MpiConfig::default(),
                    &contiguous_matrix(n),
                    &transpose_type(n),
                    2,
                    r,
                );
                (ms(t), tr)
            })
            .series("baseline", move |n, arch, r| {
                let (t, tr) = baseline_rtt(
                    topo,
                    arch,
                    MpiConfig::default(),
                    &contiguous_matrix(n),
                    &transpose_type(n),
                    1,
                    r,
                );
                (ms(t), tr)
            })
            .run(&opts.for_panel(suffix));
        println!();
    }
}
