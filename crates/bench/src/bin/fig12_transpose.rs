//! Figure 12 — matrix transpose ping-pong: the datatype-engine stress
//! test. The sender ships the matrix contiguously; the receiver's
//! datatype scatters it transposed — N² blocks of a single element
//! (8 bytes) each.
//!
//! Ours handles this with the general DEV kernel (the CUDA-DEV cache
//! matters enormously here); the baseline's vectorization degenerates
//! to one `cudaMemcpy2D` per *row* with an 8-byte width — far off the
//! 64-byte alignment sweet spot.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::runner::{baseline_rtt, ours_rtt, Topo};
use bench::workloads::{contiguous_matrix, transpose_type};
use mpirt::MpiConfig;

fn main() {
    for (topo, label) in [
        (Topo::Sm2Gpu, "shared memory, inter-GPU (ms RTT)"),
        (Topo::Ib, "InfiniBand (ms RTT)"),
    ] {
        let fig = Figure {
            id: "fig12",
            title: label,
            x_label: "matrix_size",
            series: ["ours", "baseline"].map(String::from).to_vec(),
        };
        print_header(&fig);
        for n in [256u64, 384, 512, 768, 1024] {
            let c = contiguous_matrix(n);
            let t = transpose_type(n);
            let row = [
                ms(ours_rtt(topo, MpiConfig::default(), &c, &t, 2)),
                ms(baseline_rtt(topo, MpiConfig::default(), &c, &t, 1)),
            ];
            print_row(n, &row);
        }
        println!();
    }
}
