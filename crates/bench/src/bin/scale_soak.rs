//! Scale soak: the sharded message-level engine pushed to the regime
//! the full protocol stack can't reach — a 1024-rank alltoall is over a
//! million point-to-point messages — with the fault plan live, swept
//! across shard counts, and every parallel run checked bit-identical to
//! the 1-shard reference before its timing is allowed into the
//! artifact.
//!
//! Emits `BENCH_scale.json` at the repo root. All numeric values are
//! floored integers so the artifact is diff-stable: wall-clock jitter
//! moves the numbers, not the schema. The >1× speedup expectation is
//! CI's to enforce on a multi-core runner; a single-core box records
//! `cores: 1` and whatever honest (≤1×) ratios timesharing produces.
//!
//! Usage:
//!   scale_soak [--smoke] [--ranks <n>] [--out <path>]
//!
//! `--smoke` shrinks the soak (64 ranks, two shard counts) for CI; the
//! JSON keeps the same shape with `"mode": "smoke"`. `--ranks`
//! overrides the rank count (the ≥1M-message floor is only asserted at
//! the default full-mode size).

use faultsim::{FaultKind, FaultOp, FaultPlan};
use mpirt::scale::{self, ScaleConfig, ScaleOp};
use netsim::Topology;
use simcore::shard::MAX_SHARDS;
use std::path::PathBuf;
use std::time::Instant;

struct Opts {
    smoke: bool,
    ranks: Option<u32>,
    out: PathBuf,
}

fn parse_opts() -> Opts {
    let default_out = PathBuf::from(concat!(
        env!("CARGO_MANIFEST_DIR"),
        "/../../BENCH_scale.json"
    ));
    let mut smoke = false;
    let mut ranks = None;
    let mut out = default_out;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--smoke" => smoke = true,
            "--ranks" => {
                ranks = Some(
                    args.next()
                        .expect("--ranks needs a count")
                        .parse()
                        .expect("--ranks must be an integer"),
                )
            }
            "--out" => out = PathBuf::from(args.next().expect("--out needs a path")),
            other => {
                panic!("unknown argument {other:?} (expected --smoke / --ranks <n> / --out <path>)")
            }
        }
    }
    Opts { smoke, ranks, out }
}

/// The report fields that must not move when the shard count does.
fn fingerprint(r: &scale::ScaleReport) -> (u64, u64, u64, u64, u64) {
    (r.executed, r.end_time.as_nanos(), r.msgs, r.bytes, r.digest)
}

struct Sweep {
    shards: u32,
    executed: u64,
    wall_ms: u64,
    events_per_sec: u64,
}

fn main() {
    let opts = parse_opts();
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get() as u32);

    // One alltoall at n ranks is n·(n−1) data messages; 1024 ranks
    // clears the million-message bar in a single program step.
    let default_ranks: u32 = if opts.smoke { 64 } else { 1024 };
    let ranks = opts.ranks.unwrap_or(default_ranks);
    let bytes: u64 = 1024;
    let mut cfg = ScaleConfig::new(ranks, vec![ScaleOp::Alltoall { bytes }]);
    cfg.topo = Topology::FatTree {
        ranks_per_node: 8,
        radix: 4,
    };
    cfg.fault_plan = FaultPlan::default()
        .with_seed(0x50AC)
        .with_rule(Some(FaultOp::WireCopy), FaultKind::Transient, 0.01)
        .with_rule(
            Some(FaultOp::WireCopy),
            FaultKind::Degrade { factor: 1.25 },
            1.0,
        );
    cfg.seed = 0xD15C0;

    // Sweep shard counts in powers of two: always 1 and 2 (the identity
    // check needs a parallel run even on one core), then up to the
    // machine, the engine cap, and the rank count.
    let max_shards = cores.clamp(2, MAX_SHARDS).min(ranks);
    let mut shard_counts = vec![1u32];
    let mut s = 2;
    while s <= max_shards {
        shard_counts.push(s);
        s *= 2;
    }

    let soak = Instant::now();
    let mut sweeps: Vec<Sweep> = Vec::new();
    let mut reference: Option<(u64, u64, u64, u64, u64)> = None;
    let mut digest = 0u64;
    let mut msgs = 0u64;
    // Best-of-2 per shard count: on shared runners individual runs
    // vary with the neighbours, and the faster one is the one that
    // reflects the code. Both runs are identity-checked.
    const REPS: u32 = 2;
    for &shards in &shard_counts {
        eprintln!("# {ranks}-rank alltoall on {shards} shard(s)...");
        let mut best: Option<(f64, scale::ScaleReport)> = None;
        for _ in 0..REPS {
            let sim = scale::build(&cfg, shards);
            let wall = Instant::now();
            let run = sim.run();
            let secs = wall.elapsed().as_secs_f64();
            let report = scale::finish(&cfg, shards, run);
            let fp = fingerprint(&report);
            match reference {
                None => {
                    reference = Some(fp);
                    digest = report.digest;
                    msgs = report.msgs;
                }
                Some(want) => assert_eq!(
                    fp, want,
                    "{shards}-shard run diverged from the 1-shard reference"
                ),
            }
            if best.as_ref().is_none_or(|(b, _)| secs < *b) {
                best = Some((secs, report));
            }
        }
        let (secs, report) = best.unwrap();
        sweeps.push(Sweep {
            shards,
            executed: report.executed,
            wall_ms: (secs * 1e3) as u64,
            events_per_sec: (report.executed as f64 / secs) as u64,
        });
    }
    let soak_wall_ms = (soak.elapsed().as_secs_f64() * 1e3) as u64;
    let min_msgs: u64 = if ranks < default_ranks {
        1
    } else if opts.smoke {
        1_000
    } else {
        1_000_000
    };
    assert!(
        msgs >= min_msgs,
        "soak must push ≥{min_msgs} messages, got {msgs}"
    );

    let base = sweeps[0].events_per_sec as f64;
    let best = sweeps.iter().map(|s| s.events_per_sec).max().unwrap() as f64;

    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"schema\": \"scale-soak/v1\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if opts.smoke { "smoke" } else { "full" }
    ));
    out.push_str(&format!("  \"cores\": {cores},\n"));
    out.push_str(&format!("  \"ranks\": {ranks},\n"));
    out.push_str(&format!("  \"messages\": {msgs},\n"));
    out.push_str(&format!("  \"digest\": \"{digest:#018x}\",\n"));
    out.push_str("  \"identical_to_one_shard\": true,\n");
    out.push_str(&format!("  \"soak_wall_ms\": {soak_wall_ms},\n"));
    out.push_str(&format!(
        "  \"best_speedup_millis\": {},\n",
        (best / base * 1e3) as u64
    ));
    out.push_str("  \"shards\": {\n");
    for (i, s) in sweeps.iter().enumerate() {
        out.push_str(&format!(
            "    \"{}\": {{\"events\": {}, \"wall_ms\": {}, \"events_per_sec\": {}}}{}\n",
            s.shards,
            s.executed,
            s.wall_ms,
            s.events_per_sec,
            if i + 1 < sweeps.len() { "," } else { "" }
        ));
    }
    out.push_str("  }\n}\n");
    std::fs::write(&opts.out, &out).unwrap_or_else(|e| panic!("write {}: {e}", opts.out.display()));

    for s in &sweeps {
        println!(
            "shards={:<2} events={:<9} wall_ms={:<6} events_per_sec={}",
            s.shards, s.executed, s.wall_ms, s.events_per_sec
        );
    }
    println!("wrote {}", opts.out.display());
}
