//! Experiment 14 (the evaluation's fourth benchmark) — impact of a
//! co-running GPU-intensive application on non-contiguous transfers.
//!
//! The co-runner takes a share of each GPU's DRAM bandwidth away from
//! the pack/unpack kernels; we sweep the share left to communication
//! and report the ping-pong RTT. Because the pipeline is PCIe-bound,
//! moderate contention costs little — communication only collapses
//! when the kernels become slower than the link.

use bench::harness::ms;
use bench::runner::{BenchOpts, Sweep, Topo};
use bench::workloads::{alloc_typed, submatrix, triangular};
use datatype::DataType;
use gpusim::GpuArch;
use memsim::GpuId;
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig};
use simcore::Tracer;

fn rtt_with_share(
    ty: &DataType,
    share: f64,
    arch: &'static GpuArch,
    record: bool,
) -> (f64, Tracer) {
    let mut sess = Topo::Sm2Gpu
        .session(arch, MpiConfig::default())
        .record_if(record)
        .build();
    for g in [GpuId(0), GpuId(1)] {
        sess.world.cluster.gpu_system.gpu_mut(g).bandwidth_share = share;
    }
    let b0 = alloc_typed(&mut sess, 0, ty, 1, true, true);
    let b1 = alloc_typed(&mut sess, 1, ty, 1, true, false);
    let rtt = ping_pong(
        &mut sess,
        PingPongSpec {
            ty0: ty.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty.clone(),
            count1: 1,
            buf1: b1,
            iters: 3,
        },
    );
    (ms(rtt), sess.into_trace())
}

fn main() {
    let opts = BenchOpts::parse();
    Sweep::new(
        "exp14",
        "ping-pong RTT vs bandwidth share left by a co-running app (N=2048, sm2) (ms)",
        "share_pct",
        &[100, 75, 50, 25, 10, 5],
    )
    .series("T", |pct, a, r| {
        rtt_with_share(&triangular(2048), pct as f64 / 100.0, a, r)
    })
    .series("V", |pct, a, r| {
        rtt_with_share(&submatrix(2048), pct as f64 / 100.0, a, r)
    })
    .run(&opts);
}
