//! Experiment 14 (the evaluation's fourth benchmark) — impact of a
//! co-running GPU-intensive application on non-contiguous transfers.
//!
//! The co-runner takes a share of each GPU's DRAM bandwidth away from
//! the pack/unpack kernels; we sweep the share left to communication
//! and report the ping-pong RTT. Because the pipeline is PCIe-bound,
//! moderate contention costs little — communication only collapses
//! when the kernels become slower than the link.

use bench::harness::{ms, print_header, print_row, Figure};
use bench::workloads::{alloc_typed, submatrix, triangular};
use datatype::DataType;
use memsim::GpuId;
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig, MpiWorld};
use simcore::{Sim, SimTime};

fn rtt_with_share(ty: &DataType, share: f64) -> SimTime {
    let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
    for g in [GpuId(0), GpuId(1)] {
        sim.world.cluster.gpu_system.gpu_mut(g).bandwidth_share = share;
    }
    let b0 = alloc_typed(&mut sim, 0, ty, 1, true, true);
    let b1 = alloc_typed(&mut sim, 1, ty, 1, true, false);
    ping_pong(
        &mut sim,
        PingPongSpec {
            ty0: ty.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty.clone(),
            count1: 1,
            buf1: b1,
            iters: 3,
        },
    )
}

fn main() {
    let fig = Figure {
        id: "exp14",
        title: "ping-pong RTT vs bandwidth share left by a co-running app (N=2048, sm2) (ms)",
        x_label: "share_pct",
        series: ["T", "V"].map(String::from).to_vec(),
    };
    print_header(&fig);
    let t = triangular(2048);
    let v = submatrix(2048);
    for pct in [100u64, 75, 50, 25, 10, 5] {
        let share = pct as f64 / 100.0;
        let row = [ms(rtt_with_share(&t, share)), ms(rtt_with_share(&v, share))];
        print_row(pct, &row);
    }
}
