//! Benchmark harness: workload generators and figure reproduction
//! support.
//!
//! One binary per figure/experiment of the paper's §5 (see DESIGN.md's
//! per-experiment index). Each binary prints CSV — the x value followed
//! by one column per series, matching the series the paper plots — so
//! the output can be compared directly against the published figures.

pub mod harness;
pub mod runner;
pub mod workloads;

pub use harness::{print_header, print_row, Figure};
pub use runner::{baseline_rtt, ours_rtt, solo_session, BenchOpts, Sweep, Topo};
pub use workloads::*;
