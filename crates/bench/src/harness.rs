//! CSV output helpers shared by the figure binaries.

use simcore::SimTime;

/// Figure metadata printed as a comment header.
pub struct Figure {
    pub id: &'static str,
    pub title: &'static str,
    pub x_label: &'static str,
    /// Insert an `arch` column after the x column (multi-arch sweeps).
    /// Off for default-arch runs so their CSVs stay byte-identical to
    /// the committed `results/` files.
    pub arch_column: bool,
    pub series: Vec<String>,
}

/// Print the figure header: a `#` comment block plus the CSV column row.
pub fn print_header(fig: &Figure) {
    println!("# {} — {}", fig.id, fig.title);
    print!("{}", fig.x_label);
    if fig.arch_column {
        print!(",arch");
    }
    for s in &fig.series {
        print!(",{s}");
    }
    println!();
}

/// Print one CSV row: x value, the arch name when the sweep carries the
/// arch column, and one f64 per series (NaN prints empty, matching
/// points the paper's figures omit as off-scale).
pub fn print_row(x: u64, arch: Option<&str>, values: &[f64]) {
    print!("{x}");
    if let Some(arch) = arch {
        print!(",{arch}");
    }
    for v in values {
        if v.is_nan() {
            print!(",");
        } else {
            print!(",{v:.4}");
        }
    }
    println!();
}

/// Milliseconds for CSV cells.
pub fn ms(t: SimTime) -> f64 {
    t.as_millis_f64()
}

/// Effective bandwidth in GB/s moving `bytes` in `t`.
pub fn gbps(bytes: u64, t: SimTime) -> f64 {
    bytes as f64 / t.as_secs_f64() / 1e9
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gbps_math() {
        let t = SimTime::from_micros(100);
        // 1 MB in 100 us = 10 GB/s.
        assert!((gbps(1_000_000, t) - 10.0).abs() < 1e-9);
        assert!((ms(SimTime::from_micros(1500)) - 1.5).abs() < 1e-12);
    }
}
