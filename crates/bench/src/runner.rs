//! Shared measurement drivers for the figure binaries.

use crate::workloads::alloc_typed;
use baseline::proto::{baseline_ping_pong, BaselineSide};
use datatype::DataType;
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig, MpiWorld};
use simcore::{Sim, SimTime};

/// Which two-rank topology a ping-pong runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topo {
    /// Shared memory, both ranks on one GPU.
    Sm1Gpu,
    /// Shared memory, one GPU per rank.
    Sm2Gpu,
    /// InfiniBand across nodes.
    Ib,
}

impl Topo {
    pub fn build(self, config: MpiConfig) -> MpiWorld {
        match self {
            Topo::Sm1Gpu => MpiWorld::two_ranks_one_gpu(config),
            Topo::Sm2Gpu => MpiWorld::two_ranks_two_gpus(config),
            Topo::Ib => MpiWorld::two_ranks_ib(config),
        }
    }

    pub fn parse(s: &str) -> Option<Topo> {
        match s {
            "sm1" => Some(Topo::Sm1Gpu),
            "sm2" => Some(Topo::Sm2Gpu),
            "ib" => Some(Topo::Ib),
            _ => None,
        }
    }
}

/// Mean round-trip time of our implementation for GPU-resident data:
/// rank 0 holds `ty0`, rank 1 holds `ty1` (signatures must match).
pub fn ours_rtt(topo: Topo, config: MpiConfig, ty0: &DataType, ty1: &DataType, iters: u32) -> SimTime {
    let mut sim = Sim::new(topo.build(config));
    let b0 = alloc_typed(&mut sim, 0, ty0, 1, true, true);
    let b1 = alloc_typed(&mut sim, 1, ty1, 1, true, false);
    ping_pong(
        &mut sim,
        PingPongSpec {
            ty0: ty0.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty1.clone(),
            count1: 1,
            buf1: b1,
            iters,
        },
    )
}

/// Mean round-trip time of the MVAPICH2-style baseline on the same
/// workload and topology.
pub fn baseline_rtt(
    topo: Topo,
    config: MpiConfig,
    ty0: &DataType,
    ty1: &DataType,
    iters: u32,
) -> SimTime {
    let mut sim = Sim::new(topo.build(config));
    let b0 = alloc_typed(&mut sim, 0, ty0, 1, true, true);
    let b1 = alloc_typed(&mut sim, 1, ty1, 1, true, false);
    baseline_ping_pong(
        &mut sim,
        BaselineSide { rank: 0, ty: ty0.clone(), count: 1, buf: b0 },
        BaselineSide { rank: 1, ty: ty1.clone(), count: 1, buf: b1 },
        iters,
    )
}

/// A single-rank world for the intra-process engine benchmarks
/// (Figures 6–8): one GPU, no channels.
pub fn solo_world(config: MpiConfig) -> MpiWorld {
    MpiWorld::new(
        &[mpirt::RankSpec { gpu: memsim::GpuId(0), node: 0 }],
        1,
        config,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{submatrix, triangular};

    #[test]
    fn topo_parse() {
        assert_eq!(Topo::parse("sm1"), Some(Topo::Sm1Gpu));
        assert_eq!(Topo::parse("sm2"), Some(Topo::Sm2Gpu));
        assert_eq!(Topo::parse("ib"), Some(Topo::Ib));
        assert_eq!(Topo::parse("x"), None);
    }

    #[test]
    fn rtt_drivers_run() {
        let t = triangular(96);
        let v = submatrix(96);
        for topo in [Topo::Sm1Gpu, Topo::Sm2Gpu, Topo::Ib] {
            let ours = ours_rtt(topo, MpiConfig::default(), &t, &t, 2);
            assert!(ours > SimTime::ZERO, "{topo:?}");
            let base = baseline_rtt(topo, MpiConfig::default(), &v, &v, 2);
            assert!(base > SimTime::ZERO, "{topo:?}");
        }
    }

    #[test]
    fn ours_beats_baseline_on_triangular_everywhere() {
        let t = triangular(192);
        for topo in [Topo::Sm1Gpu, Topo::Sm2Gpu, Topo::Ib] {
            let ours = ours_rtt(topo, MpiConfig::default(), &t, &t, 2);
            let base = baseline_rtt(topo, MpiConfig::default(), &t, &t, 2);
            assert!(ours < base, "{topo:?}: ours {ours} vs baseline {base}");
        }
    }
}
