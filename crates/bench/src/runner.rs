//! Shared measurement drivers and the sweep runner for the figure
//! binaries.
//!
//! Every binary declares a [`Sweep`] — an x-axis plus named series,
//! each a closure measuring one configuration — and calls
//! [`Sweep::run`]. The runner prints the CSV the paper's figures are
//! compared against; with `--trace <path>` it re-runs every series at
//! the largest x with recording on, writes one merged Chrome
//! `trace_event` JSON (one process per series) and prints each series'
//! [`Metrics`] summary to stderr.

use crate::harness::{print_header, print_row, Figure};
use crate::workloads::alloc_typed;
use baseline::proto::{baseline_ping_pong, BaselineSide};
use datatype::DataType;
use gpusim::GpuArch;
use memsim::GpuId;
use mpirt::api::PingPongSpec;
use mpirt::{ping_pong, MpiConfig, RankSpec, Session, SessionBuilder};
use simcore::{Metrics, SimTime, Tracer};
use std::path::PathBuf;

/// Command-line options shared by every figure binary.
pub struct BenchOpts {
    /// Write a merged Chrome trace of the largest-x run here.
    pub trace: Option<PathBuf>,
    /// GPU architectures to sweep (`--arch`), resolution order
    /// preserved, duplicates removed. Empty means "registry default".
    pub archs: Vec<&'static GpuArch>,
    /// Restrict the sweep to its smallest x (`--smoke`), for CI runs
    /// that validate output shape rather than figure fidelity.
    pub smoke: bool,
    /// Positional arguments left over (panel selectors etc.).
    pub rest: Vec<String>,
}

impl BenchOpts {
    /// Parse `std::env::args`: `--trace <path>`, `--arch <names>`
    /// (repeatable and/or comma-separated), `--smoke`, plus free
    /// positionals.
    pub fn parse() -> BenchOpts {
        let mut args = std::env::args().skip(1);
        let mut trace = None;
        let mut archs: Vec<&'static GpuArch> = Vec::new();
        let mut smoke = false;
        let mut rest = Vec::new();
        while let Some(a) = args.next() {
            match a.as_str() {
                "--trace" => {
                    let path = args.next().expect("--trace needs a path");
                    trace = Some(PathBuf::from(path));
                }
                "--arch" => {
                    let names = args.next().expect("--arch needs a name (e.g. k40,v100)");
                    for name in names.split(',').filter(|s| !s.trim().is_empty()) {
                        let arch = GpuArch::named(name);
                        if !archs.contains(&arch) {
                            archs.push(arch);
                        }
                    }
                }
                "--smoke" => smoke = true,
                other => rest.push(other.to_string()),
            }
        }
        BenchOpts {
            trace,
            archs,
            smoke,
            rest,
        }
    }

    /// The architectures to run: the `--arch` selection, or the
    /// registry default when none was named.
    pub fn archs(&self) -> Vec<&'static GpuArch> {
        if self.archs.is_empty() {
            vec![GpuArch::default_arch()]
        } else {
            self.archs.clone()
        }
    }

    /// Options for one panel of a multi-panel binary: same flags, with
    /// the trace path (if any) suffixed `name.<panel>.json` so panels
    /// don't overwrite each other.
    pub fn for_panel(&self, panel: &str) -> BenchOpts {
        let trace = self.trace.as_ref().map(|p| {
            let stem = p.file_stem().and_then(|s| s.to_str()).unwrap_or("trace");
            let ext = p.extension().and_then(|s| s.to_str()).unwrap_or("json");
            p.with_file_name(format!("{stem}.{panel}.{ext}"))
        });
        BenchOpts {
            trace,
            archs: self.archs.clone(),
            smoke: self.smoke,
            rest: self.rest.clone(),
        }
    }
}

/// One measured configuration: maps an (x, arch) point to a cell value,
/// and — when the runner asks for a trace (`record` true) — returns the
/// run's tracer alongside. Build sims through [`Session`] (threading the
/// arch into the builder) and return `session.into_trace()` so the
/// tracer always comes back, recorded or not.
pub type Eval = Box<dyn Fn(u64, &'static GpuArch, bool) -> (f64, Tracer)>;

/// A figure: an x-axis sweep over named series.
pub struct Sweep {
    id: &'static str,
    title: &'static str,
    x_label: &'static str,
    xs: Vec<u64>,
    series: Vec<(String, Eval)>,
}

impl Sweep {
    pub fn new(id: &'static str, title: &'static str, x_label: &'static str, xs: &[u64]) -> Sweep {
        Sweep {
            id,
            title,
            x_label,
            xs: xs.to_vec(),
            series: Vec::new(),
        }
    }

    /// Add a named series.
    pub fn series(
        mut self,
        name: &str,
        eval: impl Fn(u64, &'static GpuArch, bool) -> (f64, Tracer) + 'static,
    ) -> Sweep {
        self.series.push((name.to_string(), Box::new(eval)));
        self
    }

    /// Print the CSV, then honor `--trace`.
    ///
    /// Output format is arch-aware: when the resolved selection is
    /// exactly the registry default (no `--arch`, or `--arch k40`), the
    /// CSV is the legacy column set, byte-identical to the committed
    /// `results/` files. Any other selection inserts an `arch` column
    /// after the x column and emits one row per (x, arch).
    pub fn run(self, opts: &BenchOpts) {
        let archs = opts.archs();
        let legacy = archs == [GpuArch::default_arch()];
        let xs: Vec<u64> = if opts.smoke {
            self.xs.iter().copied().take(1).collect()
        } else {
            self.xs.clone()
        };
        let fig = Figure {
            id: self.id,
            title: self.title,
            x_label: self.x_label,
            arch_column: !legacy,
            series: self.series.iter().map(|(n, _)| n.clone()).collect(),
        };
        print_header(&fig);
        for &x in &xs {
            for &arch in &archs {
                let row: Vec<f64> = self
                    .series
                    .iter()
                    .map(|(_, f)| f(x, arch, false).0)
                    .collect();
                print_row(x, (!legacy).then_some(arch.name), &row);
            }
        }
        if let Some(path) = &opts.trace {
            let x = *xs.last().expect("sweep has at least one x");
            let mut events = Vec::new();
            let mut pid = 0u32;
            eprintln!("# {}: tracing {} = {x}", self.id, self.x_label);
            for &arch in &archs {
                for (name, f) in &self.series {
                    let label = if legacy {
                        name.clone()
                    } else {
                        format!("{name}@{}", arch.name)
                    };
                    let (_, trace) = f(x, arch, true);
                    pid += 1;
                    trace.chrome_events(pid, &label, &mut events);
                    eprintln!("## {label}");
                    let mut m = Metrics::from_trace(&trace);
                    m.arch = Some(arch.name);
                    eprint!("{}", m.summary());
                }
            }
            let json = format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"));
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
            eprintln!("# wrote {}", path.display());
        }
    }
}

/// Which two-rank topology a ping-pong runs on.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Topo {
    /// Shared memory, both ranks on one GPU.
    Sm1Gpu,
    /// Shared memory, one GPU per rank.
    Sm2Gpu,
    /// InfiniBand across nodes.
    Ib,
}

impl Topo {
    /// A session builder preset for this topology on one architecture.
    pub fn session(self, arch: &'static GpuArch, config: MpiConfig) -> SessionBuilder {
        let b = Session::builder().arch(arch).config(config);
        match self {
            Topo::Sm1Gpu => b.two_ranks_one_gpu(),
            Topo::Sm2Gpu => b.two_ranks_two_gpus(),
            Topo::Ib => b.two_ranks_ib(),
        }
    }

    pub fn parse(s: &str) -> Option<Topo> {
        match s {
            "sm1" => Some(Topo::Sm1Gpu),
            "sm2" => Some(Topo::Sm2Gpu),
            "ib" => Some(Topo::Ib),
            _ => None,
        }
    }
}

/// A single-rank session for the intra-process engine benchmarks
/// (Figures 6–8): one GPU, no channels.
pub fn solo_session(arch: &'static GpuArch, config: MpiConfig, record: bool) -> Session {
    Session::builder()
        .arch(arch)
        .rank_specs(
            &[RankSpec {
                gpu: GpuId(0),
                node: 0,
            }],
            1,
        )
        .config(config)
        .record_if(record)
        .build()
}

/// Mean round-trip time of our implementation for GPU-resident data:
/// rank 0 holds `ty0`, rank 1 holds `ty1` (signatures must match).
pub fn ours_rtt(
    topo: Topo,
    arch: &'static GpuArch,
    config: MpiConfig,
    ty0: &DataType,
    ty1: &DataType,
    iters: u32,
    record: bool,
) -> (SimTime, Tracer) {
    let mut sess = topo.session(arch, config).record_if(record).build();
    let b0 = alloc_typed(&mut sess, 0, ty0, 1, true, true);
    let b1 = alloc_typed(&mut sess, 1, ty1, 1, true, false);
    let t = ping_pong(
        &mut sess,
        PingPongSpec {
            ty0: ty0.clone(),
            count0: 1,
            buf0: b0,
            ty1: ty1.clone(),
            count1: 1,
            buf1: b1,
            iters,
        },
    );
    (t, sess.into_trace())
}

/// Mean round-trip time of the MVAPICH2-style baseline on the same
/// workload and topology.
pub fn baseline_rtt(
    topo: Topo,
    arch: &'static GpuArch,
    config: MpiConfig,
    ty0: &DataType,
    ty1: &DataType,
    iters: u32,
    record: bool,
) -> (SimTime, Tracer) {
    let mut sess = topo.session(arch, config).record_if(record).build();
    let b0 = alloc_typed(&mut sess, 0, ty0, 1, true, true);
    let b1 = alloc_typed(&mut sess, 1, ty1, 1, true, false);
    let t = baseline_ping_pong(
        &mut sess,
        BaselineSide {
            rank: 0,
            ty: ty0.clone(),
            count: 1,
            buf: b0,
        },
        BaselineSide {
            rank: 1,
            ty: ty1.clone(),
            count: 1,
            buf: b1,
        },
        iters,
    );
    (t, sess.into_trace())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::workloads::{submatrix, triangular};

    #[test]
    fn topo_parse() {
        assert_eq!(Topo::parse("sm1"), Some(Topo::Sm1Gpu));
        assert_eq!(Topo::parse("sm2"), Some(Topo::Sm2Gpu));
        assert_eq!(Topo::parse("ib"), Some(Topo::Ib));
        assert_eq!(Topo::parse("x"), None);
    }

    #[test]
    fn rtt_drivers_run() {
        let t = triangular(96);
        let v = submatrix(96);
        let k40 = GpuArch::default_arch();
        for topo in [Topo::Sm1Gpu, Topo::Sm2Gpu, Topo::Ib] {
            let (ours, _) = ours_rtt(topo, k40, MpiConfig::default(), &t, &t, 2, false);
            assert!(ours > SimTime::ZERO, "{topo:?}");
            let (base, _) = baseline_rtt(topo, k40, MpiConfig::default(), &v, &v, 2, false);
            assert!(base > SimTime::ZERO, "{topo:?}");
        }
    }

    #[test]
    fn ours_beats_baseline_on_triangular_everywhere() {
        let t = triangular(192);
        for arch in GpuArch::registry() {
            for topo in [Topo::Sm1Gpu, Topo::Sm2Gpu, Topo::Ib] {
                let (ours, _) = ours_rtt(topo, arch, MpiConfig::default(), &t, &t, 2, false);
                let (base, _) = baseline_rtt(topo, arch, MpiConfig::default(), &t, &t, 2, false);
                assert!(
                    ours < base,
                    "{topo:?} on {}: ours {ours} vs baseline {base}",
                    arch.name
                );
            }
        }
    }

    #[test]
    fn recorded_rtt_trace_has_protocol_spans() {
        let t = triangular(128);
        let (_, trace) = ours_rtt(
            Topo::Sm2Gpu,
            GpuArch::default_arch(),
            MpiConfig::default(),
            &t,
            &t,
            1,
            true,
        );
        let cats: std::collections::BTreeSet<&str> = trace
            .events()
            .iter()
            .map(|e| match e {
                simcore::trace::TraceEvent::Span { cat, .. }
                | simcore::trace::TraceEvent::Instant { cat, .. } => *cat,
            })
            .collect();
        for want in ["gpusim", "devengine", "mpirt", "netsim"] {
            assert!(cats.contains(want), "missing {want} spans, have {cats:?}");
        }
        let m = Metrics::from_trace(&trace);
        assert!(m.counter("mpi.delivered.bytes") > 0);
    }
}
