//! The paper's workload datatypes and buffer setup helpers.

use datatype::testutil::buffer_span;
use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr};
use mpirt::MpiWorld;
use simcore::rng::position_pattern;
use simcore::Sim;

/// Sub-matrix of `n` columns × `n` doubles inside a matrix with leading
/// dimension `2n` (column-major) — the paper's vector workload **V**.
pub fn submatrix(n: u64) -> DataType {
    DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .expect("submatrix")
        .commit()
}

/// Lower-triangular `n×n` matrix of doubles, column-major: column `c`
/// holds `n-c` elements starting at element `c·n + c` — the paper's
/// indexed workload **T**.
pub fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .expect("triangular")
        .commit()
}

/// Stair-shaped triangular matrix (Figure 5): column lengths rounded up
/// to a multiple of `nb` elements so no CUDA thread idles and block
/// starts stay aligned — the paper's **T-stair**.
pub fn stair_triangular(n: u64, nb: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| ((n - c).div_ceil(nb) * nb).min(n)).collect();
    let disps: Vec<i64> = (0..n as i64)
        .map(|c| {
            let len = lens[c as usize] as i64;
            c * n as i64 + (n as i64 - len)
        })
        .collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .expect("stair")
        .commit()
}

/// Contiguous block of `n·n` doubles — the paper's **C** reference.
pub fn contiguous_matrix(n: u64) -> DataType {
    DataType::contiguous(n * n, &DataType::double())
        .expect("contiguous")
        .commit()
}

/// The receive side of a column-major `n×n` matrix transpose: column
/// `j` of the result gathers row `j` of the source — `n` interleaved
/// vectors of blocklength one (§5.2.3).
pub fn transpose_type(n: u64) -> DataType {
    let row = DataType::vector(n, 1, n as i64, &DataType::double()).expect("row");
    // Rows j = 0..n start 8 bytes apart.
    DataType::hvector(n, 1, 8, &row)
        .expect("transpose")
        .commit()
}

/// A plain vector with explicit block size in bytes (Figure 8 sweeps).
pub fn raw_vector(block_count: u64, block_bytes: u64, gap_bytes: u64) -> DataType {
    DataType::hvector(
        block_count,
        block_bytes,
        (block_bytes + gap_bytes) as i64,
        &DataType::byte(),
    )
    .expect("raw vector")
    .commit()
}

/// Allocate a typed buffer for `count` instances of `ty` on `rank`'s
/// GPU (or host), filled with the position pattern when `fill`.
/// Returns the displacement-0 pointer.
pub fn alloc_typed(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    ty: &DataType,
    count: u64,
    device: bool,
    fill: bool,
) -> Ptr {
    let (base, len) = buffer_span(ty, count);
    let space = if device {
        MemSpace::Device(sim.world.mpi.ranks[rank].gpu)
    } else {
        MemSpace::Host
    };
    let buf = sim
        .world
        .mem()
        .alloc(space, len.max(1) as u64)
        .expect("typed buffer");
    if fill {
        let mut bytes = vec![0u8; len];
        position_pattern(&mut bytes);
        sim.world.mem().write(buf, &bytes).expect("fill");
    }
    buf.add(base as u64)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_sizes() {
        let n = 64u64;
        assert_eq!(submatrix(n).size(), 8 * n * n);
        assert_eq!(triangular(n).size(), 8 * n * (n + 1) / 2);
        assert_eq!(contiguous_matrix(n).size(), 8 * n * n);
        assert_eq!(transpose_type(n).size(), 8 * n * n);
    }

    #[test]
    fn stair_covers_triangle_and_is_aligned() {
        let n = 64u64;
        let nb = 16u64;
        let t = stair_triangular(n, nb);
        // Stair holds at least the triangle and at most triangle + n*nb.
        let tri = triangular(n).size();
        assert!(t.size() >= tri);
        assert!(t.size() <= tri + 8 * n * nb);
        // Every column length is a multiple of nb elements (except the
        // clamp at n).
        for s in t.segments(1) {
            assert!(s.len % (8 * nb) == 0 || s.len == 8 * n);
        }
    }

    #[test]
    fn transpose_signature_matches_contiguous() {
        let n = 32u64;
        let a = datatype::Signature::of(&transpose_type(n), 1);
        let b = datatype::Signature::of(&contiguous_matrix(n), 1);
        assert!(a.matches(&b));
    }

    #[test]
    fn transpose_scatters_rows_to_columns() {
        let n = 4u64;
        let t = transpose_type(n);
        let segs = t.segments(1);
        assert_eq!(segs.len(), (n * n) as usize);
        // First n segments: row 0 = elements 0, n, 2n, ... in bytes.
        for (k, s) in segs.iter().take(n as usize).enumerate() {
            assert_eq!(s.disp, (k as i64) * n as i64 * 8);
            assert_eq!(s.len, 8);
        }
    }

    #[test]
    fn submatrix_is_vector_shaped_but_triangular_is_not() {
        assert!(submatrix(32).vector_shape().is_some());
        assert!(triangular(32).vector_shape().is_none());
    }
}
