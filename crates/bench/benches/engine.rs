//! Wall-clock benchmarks of the engine's host-side hot paths (the
//! simulated-time figures live in `src/bin/fig*`; these measure the
//! real Rust code: datatype traversal, DEV generation, packing
//! throughput and simulator event rate).
//!
//! Plain `std::time::Instant` harness — no external benchmarking
//! crates, so the workspace builds fully offline. Run with
//! `cargo bench -p bench`.

use datatype::convertor::pack_all;
use datatype::testutil::{buffer_span, pattern};
use datatype::DataType;
use devengine::{build_plan, DevCache};
use simcore::par::{par_transfer, scoped::par_transfer_scoped, CopyOp, POOL_THREADS_ENV};
use std::hint::black_box;
use std::time::Instant;

fn triangular(n: u64) -> DataType {
    let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
    let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
    DataType::indexed(&lens, &disps, &DataType::double())
        .unwrap()
        .commit()
}

fn submatrix(n: u64) -> DataType {
    DataType::vector(n, n, 2 * n as i64, &DataType::double())
        .unwrap()
        .commit()
}

/// Time `f` over enough iterations to fill ~200 ms, after a short
/// warm-up, and report ns/iter plus optional GB/s.
fn bench(name: &str, bytes: u64, mut f: impl FnMut()) {
    // Warm-up + calibration round.
    let t0 = Instant::now();
    let mut calib = 0u32;
    while t0.elapsed().as_millis() < 50 {
        f();
        calib += 1;
    }
    let iters = (calib * 4).max(1);
    let t1 = Instant::now();
    for _ in 0..iters {
        f();
    }
    let elapsed = t1.elapsed();
    let per_iter = elapsed.as_nanos() as f64 / iters as f64;
    if bytes > 0 {
        let gbps = bytes as f64 / per_iter;
        println!("{name:<40} {per_iter:>12.0} ns/iter {gbps:>8.2} GB/s");
    } else {
        println!("{name:<40} {per_iter:>12.0} ns/iter");
    }
}

/// CPU cost of turning a datatype into CUDA-DEV work units — the
/// quantity the paper pipelines and caches.
fn bench_dev_generation() {
    for n in [256u64, 1024] {
        let t = triangular(n);
        bench(&format!("dev_generation/triangular/{n}"), t.size(), || {
            black_box(build_plan(&t, 1, 1024).unwrap().units.len());
        });
        let v = submatrix(n);
        bench(&format!("dev_generation/submatrix/{n}"), v.size(), || {
            black_box(build_plan(&v, 1, 1024).unwrap().units.len());
        });
    }
}

/// Stack-convertor pack throughput on host memory.
fn bench_cpu_pack() {
    for n in [256u64, 1024] {
        for (name, ty) in [("triangular", triangular(n)), ("submatrix", submatrix(n))] {
            let (base, len) = buffer_span(&ty, 1);
            let typed = pattern(len);
            bench(&format!("cpu_pack/{name}/{n}"), ty.size(), || {
                black_box(pack_all(&ty, 1, &typed, base).len());
            });
        }
    }
}

/// Raw segment-move throughput (the functional half of a kernel).
fn bench_par_transfer() {
    let seg = 1024usize;
    for count in [1usize << 10, 1 << 13] {
        let src = pattern(seg * count * 2);
        let mut dst = vec![0u8; seg * count];
        let ops: Vec<CopyOp> = (0..count)
            .map(|i| CopyOp {
                src_off: i * 2 * seg,
                dst_off: i * seg,
                len: seg,
            })
            .collect();
        bench(
            &format!("par_transfer/{count}"),
            (seg * count) as u64,
            || {
                par_transfer(&mut dst, &src, &ops);
                black_box(dst[0]);
            },
        );
    }
}

/// Persistent pool vs per-call scoped spawns on the same ≥1 MB
/// transfers — the delta the pool rewrite exists for.
fn bench_pool_vs_scoped() {
    let seg = 4096usize;
    for mb in [1usize, 4] {
        let count = (mb << 20) / seg;
        let src = pattern(seg * count * 2);
        let mut dst = vec![0u8; seg * count];
        let ops: Vec<CopyOp> = (0..count)
            .map(|i| CopyOp {
                src_off: i * 2 * seg,
                dst_off: i * seg,
                len: seg,
            })
            .collect();
        bench(
            &format!("par_transfer_pooled/{mb}MB"),
            (seg * count) as u64,
            || {
                par_transfer(&mut dst, &src, &ops);
                black_box(dst[0]);
            },
        );
        bench(
            &format!("par_transfer_scoped/{mb}MB"),
            (seg * count) as u64,
            || {
                par_transfer_scoped(&mut dst, &src, &ops);
                black_box(dst[0]);
            },
        );
    }
}

/// Structural vs identity cache keying on the re-built-datatype pattern
/// (a fresh Session constructing the same types each epoch): the
/// structural key hits, the identity key rebuilt the full plan.
fn bench_devcache_keying() {
    let n = 1024u64;
    let mut cache = DevCache::default();
    cache.get_or_build(&triangular(n), 1, 1024).unwrap(); // warm
    bench("devcache/structural_hit_rebuilt_type", 0, || {
        let t = triangular(n); // distinct tree, same structure
        let (_, hit) = cache.get_or_build(&t, 1, 1024).unwrap();
        black_box(hit);
    });
    bench("devcache/identity_key_rebuilds_plan", 0, || {
        let t = triangular(n);
        black_box(build_plan(&t, 1, 1024).unwrap().units.len());
    });
}

/// Segment-stream traversal rate for deep nested types.
fn bench_segment_walk() {
    let inner = DataType::vector(8, 2, 3, &DataType::double()).unwrap();
    let mid = DataType::hvector(16, 2, 1024, &inner).unwrap();
    let outer = DataType::contiguous(32, &mid).unwrap().commit();
    bench("segment_walk_nested", 0, || {
        let mut n = 0u64;
        outer.for_each_segment(4, |_, len| n += len);
        black_box(n);
    });
}

/// Discrete-event simulator throughput: a full GPU-to-GPU ping-pong,
/// measuring wall-clock per simulated transfer.
fn bench_sim_throughput() {
    use gpusim::GpuWorld as _;
    use memsim::MemSpace;
    use mpirt::api::PingPongSpec;
    use mpirt::{ping_pong, MpiConfig, MpiWorld};

    let t = triangular(256);
    bench("simulated_pingpong_T256", 0, || {
        let mut sim = simcore::Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let gpu0 = sim.world.mpi.ranks[0].gpu;
        let gpu1 = sim.world.mpi.ranks[1].gpu;
        let len = t.true_ub() as u64;
        let b0 = sim.world.mem().alloc(MemSpace::Device(gpu0), len).unwrap();
        let b1 = sim.world.mem().alloc(MemSpace::Device(gpu1), len).unwrap();
        let rtt = ping_pong(
            &mut sim,
            PingPongSpec {
                ty0: t.clone(),
                count0: 1,
                buf0: b0,
                ty1: t.clone(),
                count1: 1,
                buf1: b1,
                iters: 1,
            },
        );
        black_box(rtt);
    });
}

fn main() {
    // On single-core runners the lazily-started pool would size itself
    // to one inline lane (both pooled and scoped paths become a plain
    // memcpy), so force a small pool before anything starts it — an
    // explicit user choice always wins.
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    if cores < 2 && std::env::var(POOL_THREADS_ENV).is_err() {
        std::env::set_var(POOL_THREADS_ENV, "4");
    }
    println!("# copy pool: {} lanes", simcore::par::pool_info().threads);
    bench_dev_generation();
    bench_cpu_pack();
    bench_par_transfer();
    bench_pool_vs_scoped();
    bench_devcache_keying();
    bench_segment_walk();
    bench_sim_throughput();
}
