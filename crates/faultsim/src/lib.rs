//! Deterministic, seeded fault injection for the simulator stack.
//!
//! Every simulator layer consults a [`FaultSim`] at its *charge points* —
//! the places where it reserves a resource and schedules a completion:
//! `netsim` AM delivery and RDMA register/get/put, `gpusim` kernel
//! launches and copies, IPC handle opens and pinned registration. The
//! engine rolls a [`FaultDecision`] per attempt from a seeded
//! `simcore::rng::SimRng`, so a given `(seed, plan, workload)` triple
//! always injects the same faults at the same virtual times.
//!
//! Three fault shapes are modeled:
//!
//! * **Transient** — the attempt fails but may be retried (a dropped
//!   Active Message, a CUDA launch returning a transient error).
//! * **Permanent loss** — the capability disappears for the rest of the
//!   run (e.g. CUDA IPC becomes unavailable); the op is marked lost and
//!   every later roll on it returns [`FaultDecision::Lost`].
//! * **Degradation** — a time window during which an op's charge
//!   duration is scaled by a factor (a slow link, a throttled copy
//!   engine); queried via [`FaultSim::slowdown`].
//!
//! The disabled engine is free: [`FaultSim::roll`] on an inactive engine
//! returns `Ok` without drawing from the RNG, bumping a counter, or
//! touching the heap, so runs with an empty plan are byte-identical to
//! runs built before this crate existed.

use simcore::rng::SimRng;
use simcore::time::SimTime;

/// The operations a fault plan can target. Doubles as the `a` dimension
/// of the `fault.injected` trace counter.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaultOp {
    /// Active-message delivery on a ctrl link (`netsim::am`).
    AmDeliver,
    /// Memory registration with the NIC (`netsim::rdma::ensure_registered`).
    RdmaRegister,
    /// One-sided get over a data link (`netsim::rdma::rdma_get`).
    RdmaGet,
    /// One-sided put over a data link (`netsim::rdma::rdma_put`).
    RdmaPut,
    /// Pack/unpack transfer-kernel launch (`gpusim::kernel`).
    KernelLaunch,
    /// DMA copy on a copy engine (`gpusim::copy`).
    Memcpy,
    /// CUDA-IPC handle open (`gpusim::system::ipc_open`).
    IpcOpen,
    /// Pinned-host registration performed once per connection
    /// (`mpirt::connection::ib_connection`).
    PinnedRegister,
    /// Staged copy-in/copy-out hop over a data link (`netsim::wire`).
    WireCopy,
    /// DEV-program handler install on the NIC packet processor, done
    /// once per connection (`mpirt::protocol::offload`). Loss demotes
    /// NicOffload → GPU-pack.
    NicHandler,
    /// GPU-stream doorbell ringing a captured stream-op graph
    /// (`gpusim::stream_trigger`). Loss demotes StreamTriggered →
    /// CPU-driven.
    StreamDoorbell,
    /// Host-side pack/unpack pass on a rank's CPU (`mpirt::cpupack`).
    /// The CPU convertor is itself the fallback path, so loss panics.
    CpuPack,
    /// Staged file read/write on an MPI-IO disk channel (`mpirt::io`).
    FileIo,
}

impl FaultOp {
    pub const ALL: [FaultOp; 13] = [
        FaultOp::AmDeliver,
        FaultOp::RdmaRegister,
        FaultOp::RdmaGet,
        FaultOp::RdmaPut,
        FaultOp::KernelLaunch,
        FaultOp::Memcpy,
        FaultOp::IpcOpen,
        FaultOp::PinnedRegister,
        FaultOp::WireCopy,
        FaultOp::NicHandler,
        FaultOp::StreamDoorbell,
        FaultOp::CpuPack,
        FaultOp::FileIo,
    ];

    /// Stable index, used as the counter dimension and the loss-table slot.
    pub fn index(self) -> usize {
        match self {
            FaultOp::AmDeliver => 0,
            FaultOp::RdmaRegister => 1,
            FaultOp::RdmaGet => 2,
            FaultOp::RdmaPut => 3,
            FaultOp::KernelLaunch => 4,
            FaultOp::Memcpy => 5,
            FaultOp::IpcOpen => 6,
            FaultOp::PinnedRegister => 7,
            FaultOp::WireCopy => 8,
            FaultOp::NicHandler => 9,
            FaultOp::StreamDoorbell => 10,
            FaultOp::CpuPack => 11,
            FaultOp::FileIo => 12,
        }
    }

    /// Plan-DSL name (see [`FaultPlan::parse`]).
    pub fn name(self) -> &'static str {
        match self {
            FaultOp::AmDeliver => "am",
            FaultOp::RdmaRegister => "rdma_reg",
            FaultOp::RdmaGet => "rdma_get",
            FaultOp::RdmaPut => "rdma_put",
            FaultOp::KernelLaunch => "kernel",
            FaultOp::Memcpy => "memcpy",
            FaultOp::IpcOpen => "ipc_open",
            FaultOp::PinnedRegister => "pin",
            FaultOp::WireCopy => "wire",
            FaultOp::NicHandler => "nic",
            FaultOp::StreamDoorbell => "doorbell",
            FaultOp::CpuPack => "cpupack",
            FaultOp::FileIo => "file",
        }
    }

    fn from_name(s: &str) -> Option<Option<FaultOp>> {
        if s == "any" {
            return Some(None);
        }
        FaultOp::ALL
            .iter()
            .find(|op| op.name() == s)
            .map(|&op| Some(op))
    }
}

/// What a rule does when it fires.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The attempt fails; the caller may retry.
    Transient,
    /// The capability is permanently lost from the moment the rule fires.
    PermanentLoss,
    /// Charge durations for the op are multiplied by `factor` (≥ 1.0)
    /// while the rule's window is open. Never fails the attempt.
    Degrade { factor: f64 },
}

/// One line of a fault plan.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultRule {
    /// Which op the rule applies to; `None` matches every op.
    pub op: Option<FaultOp>,
    pub kind: FaultKind,
    /// Per-attempt firing probability for `Transient`/`PermanentLoss`
    /// (1.0 = fire on the first matching attempt). Ignored by `Degrade`.
    pub probability: f64,
    /// Half-open virtual-time window `[start, end)` during which the
    /// rule is live. `None` = the whole run.
    pub window: Option<(SimTime, SimTime)>,
    /// Stop firing after this many injections. `None` = unbounded.
    pub max_injections: Option<u64>,
}

impl FaultRule {
    fn live_at(&self, now: SimTime) -> bool {
        match self.window {
            None => true,
            Some((start, end)) => now >= start && now < end,
        }
    }

    fn matches(&self, op: FaultOp) -> bool {
        self.op.is_none() || self.op == Some(op)
    }
}

/// A seeded schedule of faults. Parsed from `GPU_DDT_FAULT_PLAN` /
/// `GPU_DDT_FAULT_SEED` or built programmatically.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultPlan {
    pub seed: u64,
    pub rules: Vec<FaultRule>,
}

/// Error from [`FaultPlan::parse`]; carries the offending rule text.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct PlanParseError(pub String);

impl std::fmt::Display for PlanParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "bad fault rule: {}", self.0)
    }
}

impl std::error::Error for PlanParseError {}

impl FaultPlan {
    /// An empty plan: no rules, engine stays inactive.
    pub fn empty() -> Self {
        Self::default()
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }

    /// Builder: add a rule that always applies (no window, no cap).
    pub fn with_rule(mut self, op: Option<FaultOp>, kind: FaultKind, probability: f64) -> Self {
        self.rules.push(FaultRule {
            op,
            kind,
            probability,
            window: None,
            max_injections: None,
        });
        self
    }

    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Read `GPU_DDT_FAULT_PLAN` (rule DSL) and `GPU_DDT_FAULT_SEED`
    /// from the environment. Unset or empty plan text yields the empty
    /// plan; malformed text panics — a silently ignored chaos plan is
    /// worse than a crash at startup.
    pub fn from_env() -> Self {
        let seed = std::env::var("GPU_DDT_FAULT_SEED")
            .ok()
            .and_then(|v| v.trim().parse::<u64>().ok())
            .unwrap_or(0);
        let plan = match std::env::var("GPU_DDT_FAULT_PLAN") {
            Ok(text) if !text.trim().is_empty() => {
                Self::parse(&text).unwrap_or_else(|e| panic!("GPU_DDT_FAULT_PLAN: {e}"))
            }
            _ => Self::empty(),
        };
        Self { seed, ..plan }
    }

    /// Parse the plan DSL: `;`-separated rules of the form
    ///
    /// ```text
    /// op:kind[:param][@start..end][#max]
    /// ```
    ///
    /// * `op` — `am`, `rdma_reg`, `rdma_get`, `rdma_put`, `kernel`,
    ///   `memcpy`, `ipc_open`, `pin`, `wire`, `nic`, `doorbell`,
    ///   `cpupack`, `file`, or `any`.
    /// * `kind` — `transient`, `lost`, or `degrade`.
    /// * `param` — firing probability for `transient`/`lost` (default
    ///   1.0), slowdown factor for `degrade` (required, ≥ 1.0).
    /// * `@start..end` — virtual-time window; either bound may be
    ///   omitted. Times take a `ns`/`us`/`ms`/`s` suffix.
    /// * `#max` — cap on total injections from this rule.
    ///
    /// Example: `am:transient:0.05;ipc_open:lost@2ms..;rdma_get:degrade:4@1ms..9ms`
    pub fn parse(text: &str) -> Result<Self, PlanParseError> {
        let mut rules = Vec::new();
        for raw in text.split(';') {
            let raw = raw.trim();
            if raw.is_empty() {
                continue;
            }
            rules.push(parse_rule(raw)?);
        }
        Ok(Self { seed: 0, rules })
    }
}

fn parse_time(s: &str) -> Result<SimTime, PlanParseError> {
    let s = s.trim();
    let (digits, mult) = if let Some(d) = s.strip_suffix("ns") {
        (d, 1u64)
    } else if let Some(d) = s.strip_suffix("us") {
        (d, 1_000)
    } else if let Some(d) = s.strip_suffix("ms") {
        (d, 1_000_000)
    } else if let Some(d) = s.strip_suffix('s') {
        (d, 1_000_000_000)
    } else {
        (s, 1) // bare number = nanoseconds
    };
    digits
        .trim()
        .parse::<u64>()
        .map(|n| SimTime::from_nanos(n * mult))
        .map_err(|_| PlanParseError(format!("bad time `{s}`")))
}

fn parse_rule(raw: &str) -> Result<FaultRule, PlanParseError> {
    let err = || PlanParseError(raw.to_string());

    // Split off `#max` and `@window` decorations from the right.
    let (body, max_injections) = match raw.split_once('#') {
        Some((b, m)) => (b, Some(m.trim().parse::<u64>().map_err(|_| err())?)),
        None => (raw, None),
    };
    let (body, window) = match body.split_once('@') {
        Some((b, w)) => {
            let (lo, hi) = w.split_once("..").ok_or_else(err)?;
            let start = if lo.trim().is_empty() {
                SimTime::ZERO
            } else {
                parse_time(lo)?
            };
            let end = if hi.trim().is_empty() {
                SimTime::MAX
            } else {
                parse_time(hi)?
            };
            (b, Some((start, end)))
        }
        None => (body, None),
    };

    let mut parts = body.split(':').map(str::trim);
    let op = FaultOp::from_name(parts.next().ok_or_else(err)?).ok_or_else(err)?;
    let kind_name = parts.next().ok_or_else(err)?;
    let param = parts
        .next()
        .map(|p| p.parse::<f64>().map_err(|_| err()))
        .transpose()?;
    if parts.next().is_some() {
        return Err(err());
    }

    let (kind, probability) = match kind_name {
        "transient" => (FaultKind::Transient, param.unwrap_or(1.0)),
        "lost" => (FaultKind::PermanentLoss, param.unwrap_or(1.0)),
        "degrade" => {
            let factor = param.ok_or_else(err)?;
            if factor < 1.0 {
                return Err(err());
            }
            (FaultKind::Degrade { factor }, 1.0)
        }
        _ => return Err(err()),
    };
    if !(0.0..=1.0).contains(&probability) {
        return Err(err());
    }
    Ok(FaultRule {
        op,
        kind,
        probability,
        window,
        max_injections,
    })
}

/// What the charge point should do with the current attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultDecision {
    /// Proceed normally.
    Ok,
    /// This attempt fails; retrying may succeed.
    Transient,
    /// The capability is gone; retrying the same op cannot succeed.
    Lost,
}

impl FaultDecision {
    pub fn is_fault(self) -> bool {
        self != FaultDecision::Ok
    }
}

struct RuleState {
    rule: FaultRule,
    injected: u64,
}

/// The per-world fault engine. Lives in the simulation world and is
/// consulted by every charge point; see the crate docs for the
/// zero-overhead-when-idle contract.
pub struct FaultSim {
    active: bool,
    rng: SimRng,
    rules: Vec<RuleState>,
    /// Ops whose capability a `PermanentLoss` rule has destroyed.
    lost: [bool; FaultOp::ALL.len()],
    injected_total: u64,
}

impl Default for FaultSim {
    fn default() -> Self {
        Self::disabled()
    }
}

impl FaultSim {
    /// An engine with no plan: every query is a constant-time no-op.
    pub fn disabled() -> Self {
        Self {
            active: false,
            rng: SimRng::new(0),
            rules: Vec::new(),
            lost: [false; FaultOp::ALL.len()],
            injected_total: 0,
        }
    }

    pub fn from_plan(plan: FaultPlan) -> Self {
        let active = !plan.rules.is_empty();
        Self {
            active,
            rng: SimRng::new(plan.seed),
            rules: plan
                .rules
                .into_iter()
                .map(|rule| RuleState { rule, injected: 0 })
                .collect(),
            lost: [false; FaultOp::ALL.len()],
            injected_total: 0,
        }
    }

    /// A per-rank engine for the sharded scale model: same plan, but
    /// rolled from the deterministic stream `(plan.seed, rank)`
    /// ([`SimRng::for_stream`]). Each rank consumes only its own
    /// stream, so a plan injects identically however ranks are
    /// partitioned into shards or interleaved by worker threads —
    /// unlike the single global engine, whose draw order depends on the
    /// global charge-point order.
    pub fn for_rank(plan: &FaultPlan, rank: u32) -> Self {
        let active = !plan.rules.is_empty();
        Self {
            active,
            rng: SimRng::for_stream(plan.seed, rank as u64),
            rules: plan
                .rules
                .iter()
                .map(|rule| RuleState {
                    rule: rule.clone(),
                    injected: 0,
                })
                .collect(),
            lost: [false; FaultOp::ALL.len()],
            injected_total: 0,
        }
    }

    /// Whether any rule exists. Charge points use this to skip fault
    /// bookkeeping (and, in `mpirt`, to avoid arming timeout events
    /// that would otherwise advance virtual time).
    pub fn active(&self) -> bool {
        self.active
    }

    /// Total injections so far (transient + permanent, not degrade).
    pub fn injected_total(&self) -> u64 {
        self.injected_total
    }

    /// Whether the capability behind `op` is still available.
    pub fn available(&self, op: FaultOp) -> bool {
        !self.lost[op.index()]
    }

    /// Roll the plan for one attempt of `op` at virtual time `now`.
    ///
    /// Inactive engines return `Ok` without consuming randomness.
    /// Matching rules are consulted in plan order; the first that fires
    /// wins. A `PermanentLoss` that fires (or fired earlier) marks the
    /// op lost for the rest of the run.
    pub fn roll(&mut self, op: FaultOp, now: SimTime) -> FaultDecision {
        if !self.active {
            return FaultDecision::Ok;
        }
        if self.lost[op.index()] {
            return FaultDecision::Lost;
        }
        for st in &mut self.rules {
            if matches!(st.rule.kind, FaultKind::Degrade { .. }) {
                continue;
            }
            if !st.rule.matches(op) || !st.rule.live_at(now) {
                continue;
            }
            if let Some(max) = st.rule.max_injections {
                if st.injected >= max {
                    continue;
                }
            }
            if !self.rng.chance(st.rule.probability) {
                continue;
            }
            st.injected += 1;
            self.injected_total += 1;
            return match st.rule.kind {
                FaultKind::Transient => FaultDecision::Transient,
                FaultKind::PermanentLoss => {
                    self.lost[op.index()] = true;
                    FaultDecision::Lost
                }
                FaultKind::Degrade { .. } => unreachable!(),
            };
        }
        FaultDecision::Ok
    }

    /// Combined slowdown factor for `op` at `now` (product of all open
    /// degrade windows; 1.0 when none). Deterministic — no RNG draw.
    pub fn slowdown(&self, op: FaultOp, now: SimTime) -> f64 {
        if !self.active {
            return 1.0;
        }
        let mut factor = 1.0;
        for st in &self.rules {
            if let FaultKind::Degrade { factor: f } = st.rule.kind {
                if st.rule.matches(op) && st.rule.live_at(now) {
                    factor *= f;
                }
            }
        }
        factor
    }
}

/// Capped exponential backoff for retry loops: `base`, `2·base`,
/// `4·base`, … clamped to `cap`. Pure bookkeeping; the caller decides
/// what "too many attempts" means.
#[derive(Clone, Copy, Debug)]
pub struct Backoff {
    base: SimTime,
    cap: SimTime,
    attempt: u32,
}

impl Backoff {
    pub fn new(base: SimTime, cap: SimTime) -> Self {
        Self {
            base,
            cap,
            attempt: 0,
        }
    }

    /// Delay for the next retry; doubles per call up to `cap`.
    pub fn next_delay(&mut self) -> SimTime {
        let shift = self.attempt.min(32);
        self.attempt += 1;
        let ns = self
            .base
            .as_nanos()
            .saturating_mul(1u64 << shift)
            .min(self.cap.as_nanos());
        SimTime::from_nanos(ns)
    }

    /// Retries handed out so far.
    pub fn attempts(&self) -> u32 {
        self.attempt
    }
}

/// Trace-counter names shared by every layer that meters faults.
///
/// Re-exported from the workspace-wide registry so the names exist in
/// exactly one place ([`simcore::trace::names`]).
pub mod counters {
    pub use simcore::trace::names::{FALLBACK_EVENTS, FAULT_INJECTED, RETRY_ATTEMPTS};
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    #[test]
    fn disabled_engine_is_inert_and_drawless() {
        let mut f = FaultSim::disabled();
        assert!(!f.active());
        for op in FaultOp::ALL {
            assert_eq!(f.roll(op, t(1)), FaultDecision::Ok);
            assert_eq!(f.slowdown(op, t(1)), 1.0);
            assert!(f.available(op));
        }
        assert_eq!(f.injected_total(), 0);
        // The RNG stream was never consumed: a fresh engine from the
        // same (zero) seed produces the identical next draw.
        assert_eq!(f.rng.next_u64(), SimRng::new(0).next_u64());
    }

    #[test]
    fn empty_plan_engine_is_inactive() {
        let f = FaultSim::from_plan(FaultPlan::empty());
        assert!(!f.active());
    }

    #[test]
    fn same_seed_same_schedule() {
        let plan = FaultPlan::empty().with_seed(42).with_rule(
            Some(FaultOp::AmDeliver),
            FaultKind::Transient,
            0.3,
        );
        let mut a = FaultSim::from_plan(plan.clone());
        let mut b = FaultSim::from_plan(plan);
        let seq_a: Vec<_> = (0..64).map(|i| a.roll(FaultOp::AmDeliver, t(i))).collect();
        let seq_b: Vec<_> = (0..64).map(|i| b.roll(FaultOp::AmDeliver, t(i))).collect();
        assert_eq!(seq_a, seq_b);
        assert!(seq_a.iter().any(|d| d.is_fault()));
        assert!(seq_a.iter().any(|d| !d.is_fault()));
    }

    #[test]
    fn per_rank_engines_are_partition_independent() {
        let plan = FaultPlan::empty().with_seed(42).with_rule(
            Some(FaultOp::AmDeliver),
            FaultKind::Transient,
            0.3,
        );
        // Rank 3's schedule is the same whether its rolls interleave
        // with other ranks' or not — each rank owns its stream.
        let mut solo = FaultSim::for_rank(&plan, 3);
        let solo_seq: Vec<_> = (0..32)
            .map(|i| solo.roll(FaultOp::AmDeliver, t(i)))
            .collect();
        let mut interleaved: Vec<FaultSim> = (0..8).map(|r| FaultSim::for_rank(&plan, r)).collect();
        let mut got = Vec::new();
        for i in 0..32 {
            for r in (0..8).rev() {
                let d = interleaved[r].roll(FaultOp::AmDeliver, t(i as u64));
                if r == 3 {
                    got.push(d);
                }
            }
        }
        assert_eq!(got, solo_seq);
        // And different ranks see different schedules.
        let mut other = FaultSim::for_rank(&plan, 4);
        let other_seq: Vec<_> = (0..32)
            .map(|i| other.roll(FaultOp::AmDeliver, t(i)))
            .collect();
        assert_ne!(other_seq, solo_seq);
    }

    #[test]
    fn permanent_loss_sticks() {
        let plan =
            FaultPlan::empty().with_rule(Some(FaultOp::IpcOpen), FaultKind::PermanentLoss, 1.0);
        let mut f = FaultSim::from_plan(plan);
        assert!(f.available(FaultOp::IpcOpen));
        assert_eq!(f.roll(FaultOp::IpcOpen, t(0)), FaultDecision::Lost);
        assert!(!f.available(FaultOp::IpcOpen));
        assert_eq!(f.roll(FaultOp::IpcOpen, t(5)), FaultDecision::Lost);
        // Other ops are unaffected.
        assert_eq!(f.roll(FaultOp::Memcpy, t(5)), FaultDecision::Ok);
        assert_eq!(f.injected_total(), 1);
    }

    #[test]
    fn windows_and_caps_limit_firing() {
        let mut plan = FaultPlan::empty();
        plan.rules.push(FaultRule {
            op: Some(FaultOp::RdmaGet),
            kind: FaultKind::Transient,
            probability: 1.0,
            window: Some((t(10), t(20))),
            max_injections: Some(2),
        });
        let mut f = FaultSim::from_plan(plan);
        assert_eq!(f.roll(FaultOp::RdmaGet, t(5)), FaultDecision::Ok);
        assert_eq!(f.roll(FaultOp::RdmaGet, t(10)), FaultDecision::Transient);
        assert_eq!(f.roll(FaultOp::RdmaGet, t(11)), FaultDecision::Transient);
        // Cap of 2 reached.
        assert_eq!(f.roll(FaultOp::RdmaGet, t(12)), FaultDecision::Ok);
        // Window closed.
        assert_eq!(f.roll(FaultOp::RdmaGet, t(20)), FaultDecision::Ok);
    }

    #[test]
    fn degrade_scales_inside_window_only() {
        let mut plan = FaultPlan::empty();
        plan.rules.push(FaultRule {
            op: Some(FaultOp::Memcpy),
            kind: FaultKind::Degrade { factor: 3.0 },
            probability: 1.0,
            window: Some((t(1), t(2))),
            max_injections: None,
        });
        plan.rules.push(FaultRule {
            op: None,
            kind: FaultKind::Degrade { factor: 2.0 },
            probability: 1.0,
            window: None,
            max_injections: None,
        });
        let f = FaultSim::from_plan(plan);
        assert_eq!(f.slowdown(FaultOp::Memcpy, t(0)), 2.0);
        assert_eq!(f.slowdown(FaultOp::Memcpy, t(1)), 6.0);
        assert_eq!(f.slowdown(FaultOp::KernelLaunch, t(1)), 2.0);
        // Degrade rules never fail the attempt.
        let mut f = f;
        assert_eq!(f.roll(FaultOp::Memcpy, t(1)), FaultDecision::Ok);
    }

    #[test]
    fn dsl_round_trips() {
        let plan =
            FaultPlan::parse("am:transient:0.05; ipc_open:lost@2ms..; rdma_get:degrade:4@1ms..9ms; any:transient:0.5#3")
                .unwrap();
        assert_eq!(plan.rules.len(), 4);
        assert_eq!(plan.rules[0].op, Some(FaultOp::AmDeliver));
        assert_eq!(plan.rules[0].kind, FaultKind::Transient);
        assert_eq!(plan.rules[0].probability, 0.05);
        assert_eq!(plan.rules[1].kind, FaultKind::PermanentLoss);
        assert_eq!(plan.rules[1].window, Some((t(2), SimTime::MAX)));
        assert_eq!(plan.rules[2].kind, FaultKind::Degrade { factor: 4.0 });
        assert_eq!(plan.rules[2].window, Some((t(1), t(9))));
        assert_eq!(plan.rules[3].op, None);
        assert_eq!(plan.rules[3].max_injections, Some(3));
    }

    #[test]
    fn dsl_rejects_garbage() {
        for bad in [
            "am",
            "am:explode",
            "warp:transient",
            "am:transient:1.5",
            "memcpy:degrade:0.5",
            "memcpy:degrade",
            "am:transient:0.1@5ms",
            "am:transient:0.1#x",
        ] {
            assert!(FaultPlan::parse(bad).is_err(), "accepted: {bad}");
        }
        assert!(FaultPlan::parse("").unwrap().is_empty());
        assert!(FaultPlan::parse(" ; ; ").unwrap().is_empty());
    }

    #[test]
    fn time_suffixes_parse() {
        let p = FaultPlan::parse("am:transient:1@250us..1ms").unwrap();
        assert_eq!(
            p.rules[0].window,
            Some((SimTime::from_micros(250), SimTime::from_millis(1)))
        );
        let p = FaultPlan::parse("am:transient:1@..2s").unwrap();
        assert_eq!(
            p.rules[0].window,
            Some((SimTime::ZERO, SimTime::from_secs_f64(2.0)))
        );
    }

    #[test]
    fn backoff_doubles_and_caps() {
        let mut b = Backoff::new(SimTime::from_micros(10), SimTime::from_micros(100));
        assert_eq!(b.next_delay(), SimTime::from_micros(10));
        assert_eq!(b.next_delay(), SimTime::from_micros(20));
        assert_eq!(b.next_delay(), SimTime::from_micros(40));
        assert_eq!(b.next_delay(), SimTime::from_micros(80));
        assert_eq!(b.next_delay(), SimTime::from_micros(100));
        assert_eq!(b.next_delay(), SimTime::from_micros(100));
        assert_eq!(b.attempts(), 6);
    }
}
