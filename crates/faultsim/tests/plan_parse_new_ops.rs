#[test]
fn cpupack_and_file_parse() {
    for plan in [
        "cpupack:transient:0.5",
        "file:transient:0.5",
        "file:degrade:2",
    ] {
        faultsim::FaultPlan::parse(plan).unwrap_or_else(|e| panic!("{plan}: {e}"));
    }
}
