//! The staged-wire charge point: fragment hops over a data link that
//! are not RDMA verbs (the copy-in/copy-out pipeline's middle stage).
//!
//! This is a wrapper module in the fault-coverage sense: it is the only
//! place outside `rdma`/`am` allowed to reserve data-link time, and it
//! consults the fault engine on every hop. Protocol code must come
//! through here — the `xtask lint` fault-coverage rule bans raw
//! `reserve` calls everywhere else.

use crate::channel::NetError;
use crate::world::NetWorld;
use faultsim::{Backoff, FaultDecision, FaultOp};
use gpusim::fault;
use simcore::{Sim, SimTime};

/// Charge a `bytes`-sized fragment hop on the data link `from -> to`
/// and run `deliver` when it lands.
///
/// Returns the arrival time of the first attempt so the caller can
/// record its own span over `[now, arrive]` (the caller owns the
/// protocol-level trace vocabulary). Errors if no channel connects the
/// pair; nothing is scheduled in that case.
///
/// Fault charge point (`FaultOp::WireCopy`): a transient injection
/// drops the fragment on the wire and it is retransmitted after a
/// capped exponential backoff, so `deliver` still runs exactly once.
/// Degradation windows scale the wire time.
pub fn wire_send<W: NetWorld>(
    sim: &mut Sim<W>,
    from: usize,
    to: usize,
    bytes: u64,
    deliver: impl FnOnce(&mut Sim<W>) + 'static,
) -> Result<SimTime, NetError> {
    sim.world.net().try_channel(from, to)?;
    Ok(wire_attempt(
        sim,
        from,
        to,
        bytes,
        fault::default_backoff(),
        deliver,
    ))
}

fn wire_attempt<W: NetWorld>(
    sim: &mut Sim<W>,
    from: usize,
    to: usize,
    bytes: u64,
    mut backoff: Backoff,
    deliver: impl FnOnce(&mut Sim<W>) + 'static,
) -> SimTime {
    let now = sim.now();
    let factor = sim.world.faults().slowdown(FaultOp::WireCopy, now);
    let wire_bytes = if factor == 1.0 {
        bytes
    } else {
        (bytes as f64 * factor) as u64
    };
    let arrive = {
        // Existence was checked on the first attempt; mid-retransmit the
        // channel is an invariant.
        let ch = sim.world.net().channel_mut(from, to);
        ch.data.reserve(now, wire_bytes)
    };
    let verdict = fault::fault_roll(sim, FaultOp::WireCopy);
    sim.schedule_at(arrive, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::WireCopy, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::WireCopy);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                wire_attempt(sim, from, to, bytes, backoff, deliver);
            });
            return;
        }
        deliver(sim);
    });
    arrive
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::world::ClusterWorld;
    use faultsim::{FaultKind, FaultPlan, FaultSim};
    use std::cell::RefCell;
    use std::rc::Rc;

    fn world() -> Sim<ClusterWorld> {
        let mut w = ClusterWorld::new(2);
        w.net_system.connect(0, 1, ChannelKind::InfiniBand);
        Sim::new(w)
    }

    #[test]
    fn delivers_at_the_reserved_time() {
        let mut sim = world();
        let hit = Rc::new(RefCell::new(None));
        let h = Rc::clone(&hit);
        let arrive = wire_send(&mut sim, 0, 1, 6_000, move |sim| {
            *h.borrow_mut() = Some(sim.now());
        })
        .unwrap();
        sim.run();
        assert_eq!(hit.borrow().expect("delivered"), arrive);
    }

    #[test]
    fn unconnected_pair_is_a_typed_error() {
        let mut sim = world();
        let err = wire_send(&mut sim, 0, 9, 64, |_| {}).unwrap_err();
        assert_eq!(err, NetError::NoChannel { from: 0, to: 9 });
        assert!(!sim.step(), "nothing was scheduled");
    }

    #[test]
    fn transient_loss_retransmits_and_delivers_once() {
        let mut sim = world();
        let mut plan = FaultPlan::empty().with_seed(11).with_rule(
            Some(FaultOp::WireCopy),
            FaultKind::Transient,
            1.0,
        );
        plan.rules[0].max_injections = Some(2);
        sim.world.faults = FaultSim::from_plan(plan);
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        let first = wire_send(&mut sim, 0, 1, 6_000, move |_| *h.borrow_mut() += 1).unwrap();
        let end = sim.run();
        assert_eq!(*hits.borrow(), 1, "delivered exactly once");
        assert!(end > first, "retransmissions took extra wire time");
    }
}
