//! Interconnect simulation: the wires between MPI processes.
//!
//! Two channel kinds cover the paper's evaluation environments:
//!
//! * **Shared memory** (same node) — control messages ride a low-latency
//!   in-node queue; bulk data moves GPU-to-GPU over PCIe via CUDA IPC
//!   (which is `gpusim`'s job, not ours — the BTL calls both).
//! * **InfiniBand FDR** (across nodes) — control and data ride the HCA
//!   links (~6 GB/s, ~1.3 µs); bulk GPU data stages through pinned host
//!   memory, as the paper does for large messages.
//!
//! On top of the links sit **Active Messages** (each message carries the
//! reference of a receiver-side callback, exactly the BTL mechanism in
//! §4.1) and a small **RDMA engine** with one-time registration cost and
//! a registration cache — the cost structure that motivates the paper's
//! single-connection pipelined protocol.

pub mod am;
pub mod channel;
pub mod nic;
pub mod rdma;
pub mod topology;
pub mod wire;
pub mod world;

pub use am::send_am;
pub use channel::{Channel, ChannelKind, Link, NetError, NetSystem};
pub use nic::{compile_program, execute_program, NicCosts, NicProgram};
pub use rdma::{ensure_registered, rdma_get, rdma_put};
pub use topology::Topology;
pub use wire::wire_send;
pub use world::{ClusterWorld, NetWorld};
