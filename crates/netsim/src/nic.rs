//! sPIN-style NIC DEV executor: the packet processor runs the datatype
//! program itself.
//!
//! "Network-Accelerated Non-Contiguous Memory Transfers" (sPIN) shows a
//! NIC packet processor can execute the sender's gather program and the
//! receiver's scatter program in-line with the stream, eliminating both
//! the GPU pack kernel and the intermediate packed buffer. This module
//! models that path: a DEV descriptor program is *compiled* once from
//! the two endpoint datatypes (the same `DevCursor` walk the GPU and
//! CPU engines use), then *executed* per message — the NIC handler
//! issues one gather/scatter descriptor per work unit and streams the
//! payload straight from the sender's typed GPU buffer into the
//! receiver's typed GPU buffer.
//!
//! Timing rides three per-NIC constants from the node topology tables
//! (`nic_desc_issue`, `nic_dma_bw`; `nic_handler_setup` is paid by the
//! connection layer at handler-install time): the handler front-end
//! serializes descriptor issue, then the message streams at the lesser
//! of the NIC's gather-DMA rate and the wire rate — the NIC pipelines
//! gather, wire and scatter per packet, so the legs overlap instead of
//! adding. The wire leg goes through [`crate::wire::wire_send`], which
//! keeps this path under the same fault charge point
//! (`FaultOp::WireCopy`) and retransmission machinery as every other
//! data-link hop.
//!
//! This file is one of the three sanctioned DEV interpreters (with
//! `devengine` and `mpirt`'s CPU convertor) — the `xtask lint` offload
//! rule bans descriptor-walking outside them.

use crate::channel::NetError;
use crate::wire::wire_send;
use crate::world::NetWorld;
use datatype::{DataType, TypeError};
use devengine::DevCursor;
use gpusim::NodeTopology;
use memsim::Ptr;
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::{Bandwidth, Sim, SimTime, Track};

/// Per-NIC packet-processor cost constants, lifted from the node
/// topology tables (the single source of raw arch numbers).
#[derive(Clone, Copy, Debug)]
pub struct NicCosts {
    /// One-time DEV handler install (paid by the connection layer).
    pub handler_setup: SimTime,
    /// Per-descriptor issue cost on the handler cores.
    pub desc_issue: SimTime,
    /// Gather/scatter DMA streaming rate from/into GPU memory.
    pub dma_bw: Bandwidth,
}

impl NicCosts {
    pub fn of(topo: &NodeTopology) -> Self {
        NicCosts {
            handler_setup: topo.nic_handler_setup,
            desc_issue: topo.nic_desc_issue,
            dma_bw: topo.nic_dma_bw,
        }
    }
}

/// A compiled NIC DEV program: the merged gather/scatter descriptor
/// list for one `(send type, recv type)` pair, ready to execute per
/// message. Fields are private — programs exist only through
/// [`compile_program`], mirroring how stream-op graphs exist only
/// through their capture API.
#[derive(Clone, Debug)]
pub struct NicProgram {
    /// Direct sender-typed → receiver-typed moves (packed stream
    /// eliminated): `src_off` relative to the shifted send buffer,
    /// `dst_off` relative to the shifted recv buffer.
    units: Vec<CopyOp>,
    /// Descriptors the handler issues (gather + scatter sides).
    descriptors: u64,
    /// Payload bytes the program moves.
    bytes: u64,
    /// `true_lb` adjustments for the two typed buffers.
    send_shift: i64,
    recv_shift: i64,
}

impl NicProgram {
    pub fn descriptors(&self) -> u64 {
        self.descriptors
    }

    pub fn bytes(&self) -> u64 {
        self.bytes
    }

    /// Handler front-end serialization: descriptor issue for the whole
    /// program.
    pub fn issue_time(&self, costs: &NicCosts) -> SimTime {
        SimTime::from_nanos(costs.desc_issue.as_nanos().saturating_mul(self.descriptors))
    }
}

/// Compile the DEV programs of both endpoints into one NIC descriptor
/// program. Walks each datatype with the shared `DevCursor` machinery
/// and merges the two packed-order unit lists into direct typed→typed
/// moves — the packed intermediate exists only as a merge index, never
/// as memory.
pub fn compile_program(
    send_ty: &DataType,
    send_count: u64,
    recv_ty: &DataType,
    recv_count: u64,
) -> Result<NicProgram, TypeError> {
    let mut s_cur = DevCursor::with_coalesce(send_ty, send_count, u64::MAX, true)?;
    let mut r_cur = DevCursor::with_coalesce(recv_ty, recv_count, u64::MAX, true)?;
    let send_shift = s_cur.base_shift();
    let recv_shift = r_cur.base_shift();
    let bytes = s_cur.total_bytes();
    let mut s_units = Vec::new();
    let mut r_units = Vec::new();
    s_cur.next_units_into(u64::MAX, &mut s_units);
    r_cur.next_units_into(u64::MAX, &mut r_units);
    let descriptors = (s_units.len() + r_units.len()) as u64;

    // Merge the two pack-orientation lists (both ordered by packed
    // offset, both covering [0, bytes)) into direct typed→typed moves.
    let mut units = Vec::new();
    let (mut i, mut j) = (0usize, 0usize);
    let (mut si, mut rj) = (0usize, 0usize);
    while let (Some(s), Some(r)) = (s_units.get(i), r_units.get(j)) {
        let take = (s.len - si).min(r.len - rj);
        units.push(CopyOp {
            src_off: s.src_off + si,
            dst_off: r.src_off + rj,
            len: take,
        });
        si += take;
        rj += take;
        if si == s.len {
            i += 1;
            si = 0;
        }
        if rj == r.len {
            j += 1;
            rj = 0;
        }
    }
    Ok(NicProgram {
        units,
        descriptors,
        bytes,
        send_shift,
        recv_shift,
    })
}

/// Execute a compiled program for one message on the NIC pair
/// `from → to`: charge the handler front-end, stream the payload over
/// the data link at `min(dma_bw, wire_bw)`, then land the bytes and run
/// `done`.
///
/// Functionally this is one direct gather/scatter: the sender's typed
/// GPU buffer maps straight into the receiver's typed GPU buffer with
/// no packed staging and no kernel launches. The wire leg inherits
/// `FaultOp::WireCopy` injection and retransmission from
/// [`wire_send`]; a lost fragment retransmits before `done` runs, so
/// delivery stays exactly-once.
#[allow(clippy::too_many_arguments)]
pub fn execute_program<W: NetWorld>(
    sim: &mut Sim<W>,
    from: usize,
    to: usize,
    send_buf: Ptr,
    recv_buf: Ptr,
    prog: &NicProgram,
    costs: &NicCosts,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) -> Result<(), NetError> {
    let wire_bw = sim.world.net().try_channel(from, to)?.data.bandwidth;
    let issue = prog.issue_time(costs);
    // The NIC pipelines gather-DMA, wire and scatter-DMA per packet;
    // the stream runs at the slowest leg. A DMA engine slower than the
    // wire shows up as extra serialization on the (reserved) data link.
    let bytes = prog.bytes;
    let wire_bytes = if costs.dma_bw.bytes_per_sec() < wire_bw.bytes_per_sec() {
        (bytes as f64 * wire_bw.bytes_per_sec() / costs.dma_bw.bytes_per_sec()) as u64
    } else {
        bytes
    };
    let now = sim.now();
    sim.trace.span_at(
        now,
        now + issue,
        names::CAT_NETSIM,
        names::SPAN_NIC_PROGRAM,
        Track::LinkData {
            from: from as u32,
            to: to as u32,
        },
    );
    let src = send_buf.offset_by(prog.send_shift);
    let dst = recv_buf.offset_by(prog.recv_shift);
    let units = prog.units.clone();
    let (from_u, to_u) = (from as u32, to as u32);
    sim.schedule_in(issue, move |sim| {
        // Existence was checked above; the channel is an invariant here.
        let sent = wire_send(sim, from, to, wire_bytes, move |sim| {
            // The endpoints validated both pointers when the program was
            // installed; a failure here is simulator-state corruption.
            sim.world
                .mem()
                .transfer(src, dst, &units)
                .expect("nic gather/scatter failed");
            sim.trace
                .count(names::OFFLOAD_NIC_PROGRAMS, from_u, to_u, 1);
            sim.trace
                .count(names::OFFLOAD_NIC_BYTES, from_u, to_u, bytes);
            done(sim);
        });
        debug_assert!(sent.is_ok());
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::world::ClusterWorld;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use gpusim::GpuWorld;
    use memsim::MemSpace;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn world() -> Sim<ClusterWorld> {
        let mut w = ClusterWorld::new(2);
        w.net_system.connect(0, 1, ChannelKind::InfiniBand);
        Sim::new(w)
    }

    #[test]
    fn program_moves_bytes_like_pack_then_unpack() {
        let s_ty = datatype::DataType::vector(24, 3, 7, &datatype::DataType::double())
            .unwrap()
            .commit();
        let blocklens: Vec<u64> = [9u64, 3].repeat(12);
        let displs: Vec<i64> = (0..24).map(|i| i * 20).collect();
        let r_ty = datatype::DataType::indexed(&blocklens, &displs, &datatype::DataType::double())
            .unwrap()
            .commit();
        let count = 2u64;
        assert_eq!(s_ty.size() * count, r_ty.size());
        let mut sim = world();
        let (s_base, s_len) = buffer_span(&s_ty, count);
        let (r_base, r_len) = buffer_span(&r_ty, 1);
        let src = sim
            .world
            .memory
            .alloc(MemSpace::Host, s_len as u64)
            .unwrap();
        let dst = sim
            .world
            .memory
            .alloc(MemSpace::Host, r_len as u64)
            .unwrap();
        let bytes = pattern(s_len);
        sim.world.memory.write(src, &bytes).unwrap();

        let prog = compile_program(&s_ty, count, &r_ty, 1).unwrap();
        assert_eq!(prog.bytes(), s_ty.size() * count);
        assert!(prog.descriptors() > 0);
        let costs = NicCosts::of(&sim.world.gpus_ref().topo);
        let hit = Rc::new(RefCell::new(false));
        let h = Rc::clone(&hit);
        execute_program(
            &mut sim,
            0,
            1,
            src.add(s_base as u64),
            dst.add(r_base as u64),
            &prog,
            &costs,
            move |_| *h.borrow_mut() = true,
        )
        .unwrap();
        let end = sim.run();
        assert!(*hit.borrow());
        assert!(end > SimTime::ZERO, "NIC execution charges virtual time");

        // The scatter result equals reference pack → reference unpack.
        let packed = reference_pack(&s_ty, count, &bytes, s_base);
        let got = sim.world.memory.read_vec(dst, r_len as u64).unwrap();
        let mut pos = 0usize;
        for seg in r_ty.segments(1) {
            let off = (r_base + seg.disp) as usize;
            assert_eq!(
                &got[off..off + seg.len as usize],
                &packed[pos..pos + seg.len as usize]
            );
            pos += seg.len as usize;
        }
    }

    #[test]
    fn unconnected_pair_is_a_typed_error() {
        let mut sim = world();
        let ty = datatype::DataType::double().commit();
        let prog = compile_program(&ty, 8, &ty, 8).unwrap();
        let costs = NicCosts::of(&sim.world.gpus_ref().topo);
        let p = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        let err = execute_program(&mut sim, 0, 9, p, p, &prog, &costs, |_| {}).unwrap_err();
        assert_eq!(err, NetError::NoChannel { from: 0, to: 9 });
    }
}
