//! Links and channels between process pairs.

use simcore::{Bandwidth, FifoResource, SimTime};
use std::collections::BTreeMap;
use std::fmt;

/// Typed network errors, surfaced to the protocol layer instead of the
/// historical panics.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NetError {
    /// No channel exists between the two ranks (never connected, or the
    /// pair was disconnected mid-run).
    NoChannel { from: usize, to: usize },
    /// A memory precondition failed (wrong space, missing registration).
    Mem(memsim::MemError),
}

impl fmt::Display for NetError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetError::NoChannel { from, to } => write!(f, "no channel {from} -> {to}"),
            NetError::Mem(e) => write!(f, "memory precondition: {e}"),
        }
    }
}

impl From<memsim::MemError> for NetError {
    fn from(e: memsim::MemError) -> NetError {
        NetError::Mem(e)
    }
}

impl std::error::Error for NetError {}

/// One direction of a physical link: bandwidth, latency and FIFO
/// occupancy on the virtual timeline.
#[derive(Clone, Debug)]
pub struct Link {
    pub bandwidth: Bandwidth,
    pub latency: SimTime,
    pub resource: FifoResource,
}

impl Link {
    pub fn new(bandwidth: Bandwidth, latency: SimTime) -> Link {
        Link {
            bandwidth,
            latency,
            resource: FifoResource::new(),
        }
    }

    /// Serialization time of `bytes` on the wire (excluding latency).
    pub fn wire_time(&self, bytes: u64) -> SimTime {
        self.bandwidth.time_for(bytes)
    }

    /// Reserve the link for a `bytes`-sized message submitted at `now`;
    /// returns the delivery completion time (wire occupancy + one-way
    /// latency).
    pub fn reserve(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let wire = self.wire_time(bytes);
        let (_start, end) = self.resource.reserve(now, wire);
        end + self.latency
    }
}

/// The transport between a pair of ranks.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum ChannelKind {
    /// Same-node: CMA/KNEM-style queues for control, CUDA IPC for data.
    SharedMemory,
    /// FDR InfiniBand between nodes.
    InfiniBand,
}

/// One direction of a rank-pair connection.
#[derive(Clone, Debug)]
pub struct Channel {
    pub kind: ChannelKind,
    /// Control-message link (headers, acks, handshakes).
    pub ctrl: Link,
    /// Bulk-data link (eager payloads, RDMA traffic). Unused for
    /// shared-memory GPU data, which moves over PCIe via `gpusim`.
    pub data: Link,
}

impl Channel {
    pub fn new(kind: ChannelKind) -> Channel {
        match kind {
            ChannelKind::SharedMemory => Channel {
                kind,
                ctrl: Link::new(Bandwidth::from_gbps(8.0), SimTime::from_nanos(400)),
                data: Link::new(Bandwidth::from_gbps(8.0), SimTime::from_nanos(400)),
            },
            ChannelKind::InfiniBand => Channel {
                kind,
                // FDR 4x: ~6.8 GB/s signalling, ~6 GB/s effective.
                ctrl: Link::new(Bandwidth::from_gbps(6.0), SimTime::from_nanos(1300)),
                data: Link::new(Bandwidth::from_gbps(6.0), SimTime::from_nanos(1300)),
            },
        }
    }
}

/// All connections of the simulated job, keyed by ordered rank pair.
#[derive(Default)]
pub struct NetSystem {
    channels: BTreeMap<(usize, usize), Channel>,
    /// One-time RDMA registration cost (HCA page pinning / IPC mapping).
    pub registration_cost: SimTime,
}

impl NetSystem {
    pub fn new() -> NetSystem {
        NetSystem {
            channels: BTreeMap::new(),
            registration_cost: SimTime::from_micros(50),
        }
    }

    /// Create both directions of a connection between `a` and `b`.
    pub fn connect(&mut self, a: usize, b: usize, kind: ChannelKind) {
        assert_ne!(a, b, "a rank cannot connect to itself");
        self.channels.insert((a, b), Channel::new(kind));
        self.channels.insert((b, a), Channel::new(kind));
    }

    /// Fallible lookup; protocol code uses this and converts the error
    /// into its own typed failure instead of crashing the run.
    pub fn try_channel(&self, from: usize, to: usize) -> Result<&Channel, NetError> {
        self.channels
            .get(&(from, to))
            .ok_or(NetError::NoChannel { from, to })
    }

    pub fn try_channel_mut(&mut self, from: usize, to: usize) -> Result<&mut Channel, NetError> {
        self.channels
            .get_mut(&(from, to))
            .ok_or(NetError::NoChannel { from, to })
    }

    /// Infallible lookup for call sites where the channel's existence is
    /// an established invariant (e.g. mid-transfer, after the rendezvous
    /// handshake already crossed it).
    pub fn channel(&self, from: usize, to: usize) -> &Channel {
        self.try_channel(from, to).unwrap_or_else(|e| panic!("{e}"))
    }

    pub fn channel_mut(&mut self, from: usize, to: usize) -> &mut Channel {
        self.try_channel_mut(from, to)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Tear down both directions of a connection (fault-injection /
    /// chaos tooling: models a pair losing connectivity mid-run).
    pub fn disconnect(&mut self, a: usize, b: usize) {
        self.channels.remove(&(a, b));
        self.channels.remove(&(b, a));
    }

    pub fn kind(&self, from: usize, to: usize) -> ChannelKind {
        self.channel(from, to).kind
    }

    pub fn is_connected(&self, from: usize, to: usize) -> bool {
        self.channels.contains_key(&(from, to))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn link_reserve_accumulates() {
        let mut l = Link::new(Bandwidth::from_gbps(10.0), SimTime::from_micros(1));
        let d1 = l.reserve(SimTime::ZERO, 10_000); // 1 us wire + 1 us latency
        assert_eq!(d1.as_nanos(), 2_000);
        // Second message queues behind the first's wire time.
        let d2 = l.reserve(SimTime::ZERO, 10_000);
        assert_eq!(d2.as_nanos(), 3_000);
    }

    #[test]
    fn connect_is_bidirectional() {
        let mut n = NetSystem::new();
        n.connect(0, 1, ChannelKind::InfiniBand);
        assert!(n.is_connected(0, 1));
        assert!(n.is_connected(1, 0));
        assert_eq!(n.kind(0, 1), ChannelKind::InfiniBand);
        assert!(!n.is_connected(0, 2));
    }

    #[test]
    fn sm_is_lower_latency_than_ib() {
        let sm = Channel::new(ChannelKind::SharedMemory);
        let ib = Channel::new(ChannelKind::InfiniBand);
        assert!(sm.ctrl.latency < ib.ctrl.latency);
    }

    #[test]
    #[should_panic(expected = "cannot connect to itself")]
    fn self_connection_rejected() {
        NetSystem::new().connect(3, 3, ChannelKind::SharedMemory);
    }

    #[test]
    #[should_panic(expected = "no channel")]
    fn missing_channel_panics() {
        let n = NetSystem::new();
        let _ = n.channel(0, 1);
    }

    #[test]
    fn missing_channel_is_a_typed_error() {
        let mut n = NetSystem::new();
        assert_eq!(
            n.try_channel(0, 1).err(),
            Some(NetError::NoChannel { from: 0, to: 1 })
        );
        assert_eq!(
            n.try_channel_mut(2, 3).err(),
            Some(NetError::NoChannel { from: 2, to: 3 })
        );
        n.connect(0, 1, ChannelKind::SharedMemory);
        assert!(n.try_channel(0, 1).is_ok());
        assert!(n.try_channel_mut(1, 0).is_ok());
    }

    #[test]
    fn disconnect_removes_both_directions() {
        let mut n = NetSystem::new();
        n.connect(0, 1, ChannelKind::InfiniBand);
        n.disconnect(1, 0);
        assert!(!n.is_connected(0, 1));
        assert!(!n.is_connected(1, 0));
        assert!(n.try_channel(0, 1).is_err());
    }
}
