//! Active Messages.
//!
//! The paper implements its pipelined protocol with BTL-level Active
//! Messages: every message header carries the reference of a callback
//! handler invoked on the receiver when the message arrives, so sender
//! and receiver stay dissociated and synchronize only when the protocol
//! needs it. In the simulation the "callback reference" is a Rust
//! closure delivered with the message.

use crate::channel::NetError;
use crate::world::NetWorld;
use faultsim::{Backoff, FaultDecision, FaultOp};
use gpusim::fault;
use simcore::trace::names;
use simcore::{Sim, Track};

/// Fixed header size of an active message (matches the BTL fragment
/// header: callback reference + fragment index + tag).
pub const AM_HEADER_BYTES: u64 = 64;

/// Send an active message of `payload_bytes` (plus header) from rank
/// `from` to rank `to` on the control link; `deliver` runs on arrival.
///
/// Errors if no channel connects the pair. Fault charge point
/// (`FaultOp::AmDeliver`): a transient injection drops the message on
/// the wire and the transport retransmits it after a capped exponential
/// backoff, so `deliver` still runs exactly once — modeling a reliable
/// transport over a lossy wire. Degradation windows scale the wire time.
pub fn send_am<W: NetWorld>(
    sim: &mut Sim<W>,
    from: usize,
    to: usize,
    payload_bytes: u64,
    deliver: impl FnOnce(&mut Sim<W>) + 'static,
) -> Result<(), NetError> {
    sim.world.net().try_channel(from, to)?;
    send_am_attempt(
        sim,
        from,
        to,
        payload_bytes,
        fault::default_backoff(),
        deliver,
    );
    Ok(())
}

fn send_am_attempt<W: NetWorld>(
    sim: &mut Sim<W>,
    from: usize,
    to: usize,
    payload_bytes: u64,
    mut backoff: Backoff,
    deliver: impl FnOnce(&mut Sim<W>) + 'static,
) {
    let now = sim.now();
    let factor = sim.world.faults().slowdown(FaultOp::AmDeliver, now);
    let bytes = AM_HEADER_BYTES + payload_bytes;
    let wire_bytes = if factor == 1.0 {
        bytes
    } else {
        (bytes as f64 * factor) as u64
    };
    let arrive = {
        // Existence was checked on the first attempt; mid-retransmit the
        // channel is an invariant.
        let ch = sim.world.net().channel_mut(from, to);
        ch.ctrl.reserve(now, wire_bytes)
    };
    let track = Track::LinkCtrl {
        from: from as u32,
        to: to as u32,
    };
    sim.trace
        .span_at(now, arrive, names::CAT_NETSIM, names::SPAN_AM, track);
    let verdict = fault::fault_roll(sim, FaultOp::AmDeliver);
    sim.schedule_at(arrive, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::AmDeliver, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::AmDeliver);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                send_am_attempt(sim, from, to, payload_bytes, backoff, deliver);
            });
            return;
        }
        sim.trace
            .count(names::NETSIM_AM_COUNT, from as u32, to as u32, 1);
        sim.trace.count(
            names::NETSIM_AM_PAYLOAD_BYTES,
            from as u32,
            to as u32,
            payload_bytes,
        );
        deliver(sim);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::world::ClusterWorld;
    use simcore::SimTime;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn world() -> Sim<ClusterWorld> {
        let mut w = ClusterWorld::new(2);
        w.net_system.connect(0, 1, ChannelKind::SharedMemory);
        Sim::new(w)
    }

    #[test]
    fn am_delivers_after_latency() {
        let mut sim = world();
        let hit = Rc::new(RefCell::new(None));
        let h = Rc::clone(&hit);
        send_am(&mut sim, 0, 1, 0, move |sim| {
            *h.borrow_mut() = Some(sim.now());
        })
        .unwrap();
        sim.run();
        let t = hit.borrow().expect("delivered");
        // 64 B over 8 GB/s (8 ns) + 400 ns latency.
        assert_eq!(t, SimTime::from_nanos(408));
    }

    #[test]
    fn messages_on_one_link_serialize() {
        let mut sim = world();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..3u32 {
            let o = Rc::clone(&order);
            send_am(&mut sim, 0, 1, 8_000, move |sim| {
                o.borrow_mut().push((i, sim.now().as_nanos()));
            })
            .unwrap();
        }
        sim.run();
        let o = order.borrow();
        assert_eq!(o.len(), 3);
        assert!(o[0].1 < o[1].1 && o[1].1 < o[2].1);
        assert_eq!(o[0].0, 0);
    }

    #[test]
    fn opposite_directions_do_not_contend() {
        let mut sim = world();
        let times = Rc::new(RefCell::new(Vec::new()));
        for (f, t) in [(0usize, 1usize), (1, 0)] {
            let ts = Rc::clone(&times);
            send_am(&mut sim, f, t, 80_000, move |sim| {
                ts.borrow_mut().push(sim.now());
            })
            .unwrap();
        }
        sim.run();
        let ts = times.borrow();
        // Both should arrive at the same time (separate directions).
        assert_eq!(ts[0], ts[1]);
    }

    #[test]
    fn unconnected_pair_is_a_typed_error() {
        let mut sim = world();
        let err = send_am(&mut sim, 0, 9, 0, |_| {}).unwrap_err();
        assert_eq!(err, NetError::NoChannel { from: 0, to: 9 });
        assert!(!sim.step(), "nothing was scheduled");
    }

    #[test]
    fn transient_loss_retransmits_and_delivers_once() {
        use faultsim::{FaultKind, FaultPlan, FaultSim};
        let mut sim = world();
        // Drop the first two transmissions, then let it through.
        let plan = FaultPlan::empty().with_seed(7).with_rule(
            Some(FaultOp::AmDeliver),
            FaultKind::Transient,
            1.0,
        );
        let mut plan = plan;
        plan.rules[0].max_injections = Some(2);
        sim.world.faults = FaultSim::from_plan(plan);
        let hits = Rc::new(RefCell::new(0u32));
        let h = Rc::clone(&hits);
        send_am(&mut sim, 0, 1, 0, move |_| *h.borrow_mut() += 1).unwrap();
        let end = sim.run();
        assert_eq!(*hits.borrow(), 1, "delivered exactly once");
        // Three wire trips plus two backoff delays.
        assert!(end > SimTime::from_nanos(3 * 408));
    }
}
