//! RDMA engine: one-sided get/put over the data links, with one-time
//! registration and a registration cache.
//!
//! The cost structure here is what shapes the paper's protocol design:
//! registering memory with the HCA (or opening a CUDA IPC handle) costs
//! tens of microseconds, so a pipelined protocol must establish the
//! RDMA connection **once** and recycle fragments — "any benefits
//! obtained from pipelining will be annihilated by the overhead of
//! registering the RDMA fragments" (§4.1).

use crate::world::NetWorld;
use memsim::{MemError, Ptr, Registration};
use simcore::{Sim, Track};

/// Ensure `ptr` is registered for RDMA. On a cache hit `done` runs
/// immediately; on a miss the registration cost is charged on the
/// caller's CPU first (pinning is a blocking syscall).
pub fn ensure_registered<W: NetWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    ptr: Ptr,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    if sim
        .world
        .mem()
        .registry
        .is_registered(ptr, Registration::Rdma)
    {
        done(sim);
        return;
    }
    let cost = sim.world.net().registration_cost;
    let now = sim.now();
    let (start, end) = sim.world.cpu(rank).reserve(now, cost);
    sim.trace.span_at(
        start,
        end,
        "netsim",
        "rdma-register",
        Track::Cpu { rank: rank as u32 },
    );
    sim.schedule_at(end, move |sim| {
        sim.world.mem().registry.register(ptr, Registration::Rdma);
        done(sim);
    });
}

fn check_host(ptr: Ptr) -> Result<(), MemError> {
    if ptr.space.is_device() {
        // The paper stages large GPU messages through host memory (per
        // [14], GPUDirect RDMA only wins below ~30 KB); this simulation
        // models the staged path only.
        return Err(MemError::WrongSpace {
            ptr,
            expected: memsim::MemSpace::Host,
        });
    }
    Ok(())
}

/// One-sided GET: `local` pulls `len` bytes from `remote`'s registered
/// buffer into its own registered buffer. Charges the data link from
/// the remote side toward the local side; bytes move at completion.
#[allow(clippy::too_many_arguments)]
pub fn rdma_get<W: NetWorld>(
    sim: &mut Sim<W>,
    local_rank: usize,
    remote_rank: usize,
    remote_src: Ptr,
    local_dst: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    check_host(remote_src).expect("RDMA source must be (pinned) host memory");
    check_host(local_dst).expect("RDMA destination must be (pinned) host memory");
    sim.world
        .mem()
        .registry
        .require(remote_src, Registration::Rdma)
        .expect("remote RDMA buffer not registered");
    sim.world
        .mem()
        .registry
        .require(local_dst, Registration::Rdma)
        .expect("local RDMA buffer not registered");
    let now = sim.now();
    let arrive = {
        let ch = sim.world.net().channel_mut(remote_rank, local_rank);
        ch.data.reserve(now, len)
    };
    let track = Track::LinkData {
        from: remote_rank as u32,
        to: local_rank as u32,
    };
    sim.trace.span_at(now, arrive, "netsim", "rdma-get", track);
    sim.schedule_at(arrive, move |sim| {
        sim.world
            .mem()
            .copy(remote_src, local_dst, len)
            .expect("rdma_get copy");
        sim.trace.count(
            "netsim.rdma.bytes",
            remote_rank as u32,
            local_rank as u32,
            len,
        );
        done(sim);
    });
}

/// One-sided PUT: push `len` bytes from the local registered buffer to
/// the remote registered buffer.
#[allow(clippy::too_many_arguments)]
pub fn rdma_put<W: NetWorld>(
    sim: &mut Sim<W>,
    local_rank: usize,
    remote_rank: usize,
    local_src: Ptr,
    remote_dst: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    check_host(local_src).expect("RDMA source must be (pinned) host memory");
    check_host(remote_dst).expect("RDMA destination must be (pinned) host memory");
    sim.world
        .mem()
        .registry
        .require(local_src, Registration::Rdma)
        .expect("local RDMA buffer not registered");
    sim.world
        .mem()
        .registry
        .require(remote_dst, Registration::Rdma)
        .expect("remote RDMA buffer not registered");
    let now = sim.now();
    let arrive = {
        let ch = sim.world.net().channel_mut(local_rank, remote_rank);
        ch.data.reserve(now, len)
    };
    let track = Track::LinkData {
        from: local_rank as u32,
        to: remote_rank as u32,
    };
    sim.trace.span_at(now, arrive, "netsim", "rdma-put", track);
    sim.schedule_at(arrive, move |sim| {
        sim.world
            .mem()
            .copy(local_src, remote_dst, len)
            .expect("rdma_put copy");
        sim.trace.count(
            "netsim.rdma.bytes",
            local_rank as u32,
            remote_rank as u32,
            len,
        );
        done(sim);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::world::ClusterWorld;
    use memsim::MemSpace;
    use simcore::SimTime;

    fn world() -> Sim<ClusterWorld> {
        let mut w = ClusterWorld::new(1);
        w.net_system.connect(0, 1, ChannelKind::InfiniBand);
        Sim::new(w)
    }

    #[test]
    fn registration_is_cached() {
        let mut sim = world();
        let buf = sim.world.memory.alloc(MemSpace::Host, 4096).unwrap();
        ensure_registered(&mut sim, 0, buf, |_| {});
        let after_first = sim.run();
        assert_eq!(after_first, SimTime::from_micros(50));
        ensure_registered(&mut sim, 0, buf, |_| {});
        let after_second = sim.run();
        assert_eq!(after_second, after_first, "second registration is free");
    }

    #[test]
    fn get_moves_bytes_at_link_rate() {
        let mut sim = world();
        let len = 6_000_000u64; // 1 ms at 6 GB/s
        let src = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 250) as u8).collect();
        sim.world.memory.write(src, &data).unwrap();
        ensure_registered(&mut sim, 1, src, |_| {});
        ensure_registered(&mut sim, 0, dst, |_| {});
        sim.run();
        let t0 = sim.now();
        rdma_get(&mut sim, 0, 1, src, dst, len, |_| {});
        let end = sim.run();
        assert_eq!(sim.world.memory.read_vec(dst, len).unwrap(), data);
        let wire = (end - t0).as_secs_f64();
        let rate = len as f64 / wire / 1e9;
        assert!((5.5..=6.0).contains(&rate), "IB rate {rate} GB/s");
    }

    #[test]
    fn put_moves_bytes() {
        let mut sim = world();
        let src = sim.world.memory.alloc(MemSpace::Host, 1024).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 1024).unwrap();
        sim.world.memory.write(src, &[7u8; 1024]).unwrap();
        ensure_registered(&mut sim, 0, src, |_| {});
        ensure_registered(&mut sim, 1, dst, |_| {});
        sim.run();
        rdma_put(&mut sim, 0, 1, src, dst, 1024, |_| {});
        sim.run();
        assert_eq!(
            sim.world.memory.read_vec(dst, 1024).unwrap(),
            vec![7u8; 1024]
        );
    }

    #[test]
    #[should_panic(expected = "not registered")]
    fn unregistered_get_panics() {
        let mut sim = world();
        let src = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        rdma_get(&mut sim, 0, 1, src, dst, 64, |_| {});
    }

    #[test]
    #[should_panic(expected = "host memory")]
    fn device_pointers_rejected() {
        let mut sim = world();
        let src = sim
            .world
            .memory
            .alloc(MemSpace::Device(memsim::GpuId(0)), 64)
            .unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        rdma_get(&mut sim, 0, 1, src, dst, 64, |_| {});
    }

    #[test]
    fn registration_dropped_on_free() {
        let mut sim = world();
        let buf = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        ensure_registered(&mut sim, 0, buf, |_| {});
        sim.run();
        sim.world.memory.free(buf).unwrap();
        let buf2 = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        // Fresh allocation must not inherit registration even if ids
        // differ; and the freed pointer's registration is gone.
        assert!(!sim
            .world
            .memory
            .registry
            .is_registered(buf, memsim::Registration::Rdma));
        assert!(!sim
            .world
            .memory
            .registry
            .is_registered(buf2, memsim::Registration::Rdma));
    }
}
