//! RDMA engine: one-sided get/put over the data links, with one-time
//! registration and a registration cache.
//!
//! The cost structure here is what shapes the paper's protocol design:
//! registering memory with the HCA (or opening a CUDA IPC handle) costs
//! tens of microseconds, so a pipelined protocol must establish the
//! RDMA connection **once** and recycle fragments — "any benefits
//! obtained from pipelining will be annihilated by the overhead of
//! registering the RDMA fragments" (§4.1).

use crate::channel::NetError;
use crate::world::NetWorld;
use faultsim::{Backoff, FaultDecision, FaultOp};
use gpusim::fault;
use memsim::{MemError, Ptr, Registration};
use simcore::trace::names;
use simcore::{Sim, Track};

/// Ensure `ptr` is registered for RDMA. On a cache hit `done` runs
/// immediately; on a miss the registration cost is charged on the
/// caller's CPU first (pinning is a blocking syscall).
///
/// Fault charge point (`FaultOp::RdmaRegister`): transient injections
/// re-charge the pinning syscall after a capped backoff.
pub fn ensure_registered<W: NetWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    ptr: Ptr,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    if sim
        .world
        .mem()
        .registry
        .is_registered(ptr, Registration::Rdma)
    {
        done(sim);
        return;
    }
    register_attempt(sim, rank, ptr, fault::default_backoff(), done);
}

fn register_attempt<W: NetWorld>(
    sim: &mut Sim<W>,
    rank: usize,
    ptr: Ptr,
    mut backoff: Backoff,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    let cost = sim.world.net().registration_cost;
    let cost = fault::fault_scaled(sim, FaultOp::RdmaRegister, cost);
    let now = sim.now();
    let (start, end) = sim.world.cpu(rank).reserve(now, cost);
    sim.trace.span_at(
        start,
        end,
        names::CAT_NETSIM,
        names::SPAN_RDMA_REGISTER,
        Track::Cpu { rank: rank as u32 },
    );
    let verdict = fault::fault_roll(sim, FaultOp::RdmaRegister);
    sim.schedule_at(end, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::RdmaRegister, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::RdmaRegister);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                register_attempt(sim, rank, ptr, backoff, done);
            });
            return;
        }
        sim.world.mem().registry.register(ptr, Registration::Rdma);
        done(sim);
    });
}

fn check_host(ptr: Ptr) -> Result<(), MemError> {
    if ptr.space.is_device() {
        // The paper stages large GPU messages through host memory (per
        // [14], GPUDirect RDMA only wins below ~30 KB); this simulation
        // models the staged path only.
        return Err(MemError::WrongSpace {
            ptr,
            expected: memsim::MemSpace::Host,
        });
    }
    Ok(())
}

/// One-sided GET: `local` pulls `len` bytes from `remote`'s registered
/// buffer into its own registered buffer. Charges the data link from
/// the remote side toward the local side; bytes move at completion.
///
/// Errors (typed, nothing scheduled) when a buffer is not pinned host
/// memory, not registered, or the pair has no channel.
///
/// Fault charge point (`FaultOp::RdmaGet`): transient injections
/// re-issue the work request after a capped backoff; degradation windows
/// stretch the wire occupancy.
#[allow(clippy::too_many_arguments)]
pub fn rdma_get<W: NetWorld>(
    sim: &mut Sim<W>,
    local_rank: usize,
    remote_rank: usize,
    remote_src: Ptr,
    local_dst: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) -> Result<(), NetError> {
    check_host(remote_src)?;
    check_host(local_dst)?;
    sim.world
        .mem()
        .registry
        .require(remote_src, Registration::Rdma)?;
    sim.world
        .mem()
        .registry
        .require(local_dst, Registration::Rdma)?;
    sim.world.net().try_channel(remote_rank, local_rank)?;
    one_sided_attempt(
        sim,
        OneSided::Get,
        remote_rank,
        local_rank,
        remote_src,
        local_dst,
        len,
        fault::default_backoff(),
        done,
    );
    Ok(())
}

/// One-sided PUT: push `len` bytes from the local registered buffer to
/// the remote registered buffer. Fault charge point (`FaultOp::RdmaPut`),
/// same precondition and retry/degradation semantics as [`rdma_get`].
#[allow(clippy::too_many_arguments)]
pub fn rdma_put<W: NetWorld>(
    sim: &mut Sim<W>,
    local_rank: usize,
    remote_rank: usize,
    local_src: Ptr,
    remote_dst: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) -> Result<(), NetError> {
    check_host(local_src)?;
    check_host(remote_dst)?;
    sim.world
        .mem()
        .registry
        .require(local_src, Registration::Rdma)?;
    sim.world
        .mem()
        .registry
        .require(remote_dst, Registration::Rdma)?;
    sim.world.net().try_channel(local_rank, remote_rank)?;
    one_sided_attempt(
        sim,
        OneSided::Put,
        local_rank,
        remote_rank,
        local_src,
        remote_dst,
        len,
        fault::default_backoff(),
        done,
    );
    Ok(())
}

#[derive(Clone, Copy)]
enum OneSided {
    Get,
    Put,
}

impl OneSided {
    fn op(self) -> FaultOp {
        match self {
            OneSided::Get => FaultOp::RdmaGet,
            OneSided::Put => FaultOp::RdmaPut,
        }
    }
    fn span_name(self) -> &'static str {
        match self {
            OneSided::Get => names::SPAN_RDMA_GET,
            OneSided::Put => names::SPAN_RDMA_PUT,
        }
    }
}

/// Shared engine for get/put: the wire always runs `from -> to` (the
/// direction the payload moves), `src`/`dst` are already validated.
#[allow(clippy::too_many_arguments)]
fn one_sided_attempt<W: NetWorld>(
    sim: &mut Sim<W>,
    which: OneSided,
    from: usize,
    to: usize,
    src: Ptr,
    dst: Ptr,
    len: u64,
    mut backoff: Backoff,
    done: impl FnOnce(&mut Sim<W>) + 'static,
) {
    let now = sim.now();
    let factor = sim.world.faults().slowdown(which.op(), now);
    let wire_bytes = if factor == 1.0 {
        len
    } else {
        (len as f64 * factor) as u64
    };
    let arrive = {
        let ch = sim.world.net().channel_mut(from, to);
        ch.data.reserve(now, wire_bytes)
    };
    let track = Track::LinkData {
        from: from as u32,
        to: to as u32,
    };
    sim.trace
        .span_at(now, arrive, names::CAT_NETSIM, which.span_name(), track);
    let verdict = fault::fault_roll(sim, which.op());
    sim.schedule_at(arrive, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(which.op(), backoff.attempts());
            }
            fault::count_retry(sim, which.op());
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                one_sided_attempt(sim, which, from, to, src, dst, len, backoff, done);
            });
            return;
        }
        sim.world
            .mem()
            .copy(src, dst, len)
            .expect("one-sided RDMA copy");
        sim.trace
            .count(names::NETSIM_RDMA_BYTES, from as u32, to as u32, len);
        done(sim);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;
    use crate::world::ClusterWorld;
    use memsim::MemSpace;
    use simcore::SimTime;

    fn world() -> Sim<ClusterWorld> {
        let mut w = ClusterWorld::new(1);
        w.net_system.connect(0, 1, ChannelKind::InfiniBand);
        Sim::new(w)
    }

    #[test]
    fn registration_is_cached() {
        let mut sim = world();
        let buf = sim.world.memory.alloc(MemSpace::Host, 4096).unwrap();
        ensure_registered(&mut sim, 0, buf, |_| {});
        let after_first = sim.run();
        assert_eq!(after_first, SimTime::from_micros(50));
        ensure_registered(&mut sim, 0, buf, |_| {});
        let after_second = sim.run();
        assert_eq!(after_second, after_first, "second registration is free");
    }

    #[test]
    fn get_moves_bytes_at_link_rate() {
        let mut sim = world();
        let len = 6_000_000u64; // 1 ms at 6 GB/s
        let src = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 250) as u8).collect();
        sim.world.memory.write(src, &data).unwrap();
        ensure_registered(&mut sim, 1, src, |_| {});
        ensure_registered(&mut sim, 0, dst, |_| {});
        sim.run();
        let t0 = sim.now();
        rdma_get(&mut sim, 0, 1, src, dst, len, |_| {}).unwrap();
        let end = sim.run();
        assert_eq!(sim.world.memory.read_vec(dst, len).unwrap(), data);
        let wire = (end - t0).as_secs_f64();
        let rate = len as f64 / wire / 1e9;
        assert!((5.5..=6.0).contains(&rate), "IB rate {rate} GB/s");
    }

    #[test]
    fn put_moves_bytes() {
        let mut sim = world();
        let src = sim.world.memory.alloc(MemSpace::Host, 1024).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 1024).unwrap();
        sim.world.memory.write(src, &[7u8; 1024]).unwrap();
        ensure_registered(&mut sim, 0, src, |_| {});
        ensure_registered(&mut sim, 1, dst, |_| {});
        sim.run();
        rdma_put(&mut sim, 0, 1, src, dst, 1024, |_| {}).unwrap();
        sim.run();
        assert_eq!(
            sim.world.memory.read_vec(dst, 1024).unwrap(),
            vec![7u8; 1024]
        );
    }

    #[test]
    fn unregistered_get_is_a_typed_error() {
        let mut sim = world();
        let src = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        let err = rdma_get(&mut sim, 0, 1, src, dst, 64, |_| {}).unwrap_err();
        assert_eq!(err, NetError::Mem(MemError::NotRegistered(src)));
        assert!(!sim.step(), "nothing was scheduled");
    }

    #[test]
    fn device_pointers_are_a_typed_error() {
        let mut sim = world();
        let src = sim
            .world
            .memory
            .alloc(MemSpace::Device(memsim::GpuId(0)), 64)
            .unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        let err = rdma_get(&mut sim, 0, 1, src, dst, 64, |_| {}).unwrap_err();
        assert_eq!(
            err,
            NetError::Mem(MemError::WrongSpace {
                ptr: src,
                expected: MemSpace::Host,
            })
        );
        assert!(!sim.step(), "nothing was scheduled");
    }

    #[test]
    fn registration_dropped_on_free() {
        let mut sim = world();
        let buf = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        ensure_registered(&mut sim, 0, buf, |_| {});
        sim.run();
        sim.world.memory.free(buf).unwrap();
        let buf2 = sim.world.memory.alloc(MemSpace::Host, 64).unwrap();
        // Fresh allocation must not inherit registration even if ids
        // differ; and the freed pointer's registration is gone.
        assert!(!sim
            .world
            .memory
            .registry
            .is_registered(buf, memsim::Registration::Rdma));
        assert!(!sim
            .world
            .memory
            .registry
            .is_registered(buf2, memsim::Registration::Rdma));
    }
}
