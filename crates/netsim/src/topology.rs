//! N-rank cluster topologies: the rank→node map and inter-node distance
//! model shared by the full-stack world builders
//! (`mpirt::world::MpiWorld`) and the message-level scale model
//! (`mpirt::scale`).
//!
//! The paper's testbeds were two-node; growing past that needs a story
//! for *which* ranks share a node and how far apart the nodes are.
//! Three classic shapes cover the scale experiments:
//!
//! * **Ring** — nodes in a cycle; hop count is ring distance. The
//!   worst-case diameter makes it the stress shape for neighbor
//!   exchanges.
//! * **Fat tree** — nodes under edge switches of `radix` nodes each,
//!   all edge switches one core layer apart: 1 hop under one switch,
//!   3 hops (edge–core–edge) otherwise. The classic full-bisection HPC
//!   fabric.
//! * **Dragonfly** — nodes in groups of `group_size`; 1 hop within a
//!   group, 3 hops (local–global–local) across groups. The
//!   low-diameter alternative.
//!
//! Latency composes as the base [`ChannelKind`] latency plus
//! [`HOP_NS`] per switch hop past the first; bandwidth stays the
//! channel's. Same-node pairs are [`ChannelKind::SharedMemory`]
//! regardless of topology. The minimum cross-pair latency doubles as
//! the conservative-lookahead horizon for the sharded engine.

use crate::channel::ChannelKind;
use simcore::rate::Bandwidth;
use simcore::time::SimTime;

/// Per-switch-hop latency beyond the channel's base (cut-through
/// switching, a port traversal each).
pub const HOP_NS: u64 = 100;

/// How ranks map to nodes and nodes to a fabric.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Topology {
    /// Nodes in a cycle; inter-node hops = ring distance.
    Ring { ranks_per_node: u32 },
    /// Two-level fat tree: `radix` nodes per edge switch, one core
    /// layer. 1 hop under a shared edge switch, 3 hops across.
    FatTree { ranks_per_node: u32, radix: u32 },
    /// Groups of `group_size` nodes, all-to-all global links: 1 hop in
    /// group, 3 hops across.
    Dragonfly {
        ranks_per_node: u32,
        group_size: u32,
    },
}

impl Topology {
    /// The paper's two-rank, one-node shape scaled up: two ranks per
    /// node on a ring fabric.
    pub fn default_for(ranks: u32) -> Topology {
        let _ = ranks;
        Topology::Ring { ranks_per_node: 2 }
    }

    pub fn ranks_per_node(&self) -> u32 {
        match *self {
            Topology::Ring { ranks_per_node }
            | Topology::FatTree { ranks_per_node, .. }
            | Topology::Dragonfly { ranks_per_node, .. } => ranks_per_node.max(1),
        }
    }

    /// Node housing `rank`.
    pub fn node_of(&self, rank: u32) -> u32 {
        rank / self.ranks_per_node()
    }

    /// Total nodes for a job of `ranks` ranks.
    pub fn nodes(&self, ranks: u32) -> u32 {
        ranks.div_ceil(self.ranks_per_node())
    }

    /// Transport between two ranks: shared memory on one node, IB
    /// across nodes.
    pub fn kind(&self, a: u32, b: u32) -> ChannelKind {
        if self.node_of(a) == self.node_of(b) {
            ChannelKind::SharedMemory
        } else {
            ChannelKind::InfiniBand
        }
    }

    /// Switch hops between two *nodes* of a job with `nodes` total
    /// nodes (0 for the same node).
    pub fn hops(&self, nodes: u32, na: u32, nb: u32) -> u32 {
        if na == nb {
            return 0;
        }
        match *self {
            Topology::Ring { .. } => {
                let d = na.abs_diff(nb);
                d.min(nodes - d)
            }
            Topology::FatTree { radix, .. } => {
                let r = radix.max(2);
                if na / r == nb / r {
                    1
                } else {
                    3
                }
            }
            Topology::Dragonfly { group_size, .. } => {
                let g = group_size.max(2);
                if na / g == nb / g {
                    1
                } else {
                    3
                }
            }
        }
    }

    /// One-way message latency between ranks `a` and `b` for a job of
    /// `ranks` ranks: the channel-kind base plus [`HOP_NS`] per hop
    /// past the first.
    pub fn latency(&self, ranks: u32, a: u32, b: u32) -> SimTime {
        let kind = self.kind(a, b);
        let base = base_latency(kind);
        let hops = self.hops(self.nodes(ranks), self.node_of(a), self.node_of(b));
        SimTime::from_nanos(base.as_nanos() + HOP_NS * hops.saturating_sub(1) as u64)
    }

    /// Link bandwidth between ranks `a` and `b`.
    pub fn bandwidth(&self, a: u32, b: u32) -> Bandwidth {
        match self.kind(a, b) {
            ChannelKind::SharedMemory => Bandwidth::from_gbps(8.0),
            ChannelKind::InfiniBand => Bandwidth::from_gbps(6.0),
        }
    }

    /// Parse a `--topo` style spec: `ring[:rpn]`, `fattree[:rpn[:radix]]`,
    /// `dragonfly[:rpn[:group]]`.
    pub fn parse(spec: &str) -> Result<Topology, String> {
        let mut parts = spec.split(':');
        let name = parts.next().unwrap_or("");
        let num = |p: Option<&str>, default: u32| -> Result<u32, String> {
            match p {
                None | Some("") => Ok(default),
                Some(s) => s.parse::<u32>().map_err(|_| format!("bad number {s:?}")),
            }
        };
        let rpn = num(parts.next(), 2)?;
        match name {
            "ring" => Ok(Topology::Ring {
                ranks_per_node: rpn,
            }),
            "fattree" => Ok(Topology::FatTree {
                ranks_per_node: rpn,
                radix: num(parts.next(), 16)?,
            }),
            "dragonfly" => Ok(Topology::Dragonfly {
                ranks_per_node: rpn,
                group_size: num(parts.next(), 8)?,
            }),
            other => Err(format!(
                "unknown topology {other:?} (want ring|fattree|dragonfly)"
            )),
        }
    }
}

/// Base one-way latency of a channel kind (mirrors
/// [`crate::channel::Channel::new`]).
pub fn base_latency(kind: ChannelKind) -> SimTime {
    match kind {
        ChannelKind::SharedMemory => SimTime::from_nanos(400),
        ChannelKind::InfiniBand => SimTime::from_nanos(1300),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_node_is_shared_memory() {
        let t = Topology::Ring { ranks_per_node: 4 };
        assert_eq!(t.kind(0, 3), ChannelKind::SharedMemory);
        assert_eq!(t.kind(3, 4), ChannelKind::InfiniBand);
        assert_eq!(t.node_of(7), 1);
    }

    #[test]
    fn ring_hops_wrap() {
        let t = Topology::Ring { ranks_per_node: 1 };
        assert_eq!(t.hops(8, 0, 1), 1);
        assert_eq!(t.hops(8, 0, 7), 1, "ring wraps");
        assert_eq!(t.hops(8, 0, 4), 4);
    }

    #[test]
    fn fat_tree_and_dragonfly_hop_tiers() {
        let f = Topology::FatTree {
            ranks_per_node: 1,
            radix: 4,
        };
        assert_eq!(f.hops(16, 0, 3), 1, "same edge switch");
        assert_eq!(f.hops(16, 0, 4), 3, "through the core");
        let d = Topology::Dragonfly {
            ranks_per_node: 1,
            group_size: 4,
        };
        assert_eq!(d.hops(16, 1, 2), 1);
        assert_eq!(d.hops(16, 1, 9), 3);
    }

    #[test]
    fn latency_adds_hops_beyond_the_first() {
        let t = Topology::Ring { ranks_per_node: 1 };
        // Adjacent nodes: plain IB latency; 4 nodes apart: +3 hops.
        assert_eq!(t.latency(8, 0, 1).as_nanos(), 1300);
        assert_eq!(t.latency(8, 0, 4).as_nanos(), 1300 + 3 * HOP_NS);
        // Same node: SM latency, no hops.
        let t2 = Topology::Ring { ranks_per_node: 2 };
        assert_eq!(t2.latency(8, 0, 1).as_nanos(), 400);
    }

    #[test]
    fn parse_round_trips() {
        assert_eq!(
            Topology::parse("ring:4").unwrap(),
            Topology::Ring { ranks_per_node: 4 }
        );
        assert_eq!(
            Topology::parse("fattree:2:8").unwrap(),
            Topology::FatTree {
                ranks_per_node: 2,
                radix: 8
            }
        );
        assert_eq!(
            Topology::parse("dragonfly").unwrap(),
            Topology::Dragonfly {
                ranks_per_node: 2,
                group_size: 8
            }
        );
        assert!(Topology::parse("torus").is_err());
    }
}
