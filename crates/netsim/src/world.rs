//! The world type shared by everything above the hardware: memory +
//! GPUs + network.

use crate::channel::NetSystem;
use faultsim::FaultSim;
use gpusim::{GpuArch, GpuSystem, GpuWorld};
use memsim::Memory;
use simcore::FifoResource;

/// World-access trait for network operations; extends [`GpuWorld`].
pub trait NetWorld: GpuWorld {
    fn net(&mut self) -> &mut NetSystem;
    fn net_ref(&self) -> &NetSystem;
}

/// The standard world for multi-process experiments: one memory system
/// and GPU set (conceptually spanning the job's nodes — each rank is
/// bound to its own GPU and CPU), plus the interconnect.
pub struct ClusterWorld {
    pub memory: Memory,
    pub gpu_system: GpuSystem,
    pub net_system: NetSystem,
    pub cpus: Vec<FifoResource>,
    pub faults: FaultSim,
}

impl ClusterWorld {
    pub fn new(gpu_count: u32) -> ClusterWorld {
        ClusterWorld::for_arch(GpuArch::default_arch(), gpu_count)
    }

    /// A cluster world whose GPUs (and node topology) come from one
    /// registered architecture.
    pub fn for_arch(arch: &'static GpuArch, gpu_count: u32) -> ClusterWorld {
        let mem_bytes = arch.spec().memory_bytes;
        ClusterWorld {
            memory: Memory::new(gpu_count, mem_bytes),
            gpu_system: GpuSystem::for_arch(arch, gpu_count),
            net_system: NetSystem::new(),
            cpus: Vec::new(),
            faults: FaultSim::disabled(),
        }
    }
}

impl GpuWorld for ClusterWorld {
    fn mem(&mut self) -> &mut Memory {
        &mut self.memory
    }
    fn mem_ref(&self) -> &Memory {
        &self.memory
    }
    fn gpus(&mut self) -> &mut GpuSystem {
        &mut self.gpu_system
    }
    fn gpus_ref(&self) -> &GpuSystem {
        &self.gpu_system
    }
    fn cpu(&mut self, rank: usize) -> &mut FifoResource {
        if self.cpus.len() <= rank {
            self.cpus.resize_with(rank + 1, FifoResource::new);
        }
        &mut self.cpus[rank]
    }
    fn faults(&mut self) -> &mut FaultSim {
        &mut self.faults
    }
}

impl NetWorld for ClusterWorld {
    fn net(&mut self) -> &mut NetSystem {
        &mut self.net_system
    }
    fn net_ref(&self) -> &NetSystem {
        &self.net_system
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::channel::ChannelKind;

    #[test]
    fn world_wires_up() {
        let mut w = ClusterWorld::new(2);
        w.net_system.connect(0, 1, ChannelKind::SharedMemory);
        assert_eq!(w.gpu_system.gpu_count(), 2);
        assert!(w.net_system.is_connected(1, 0));
        // CPU resources auto-grow per rank.
        let _ = w.cpu(3);
        assert_eq!(w.cpus.len(), 4);
    }
}
