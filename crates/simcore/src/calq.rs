//! Generic calendar queue: the future-event structure shared by the
//! single-threaded driver ([`crate::event::Sim`]) and the sharded
//! parallel engine ([`crate::shard`]).
//!
//! Entries are ordered by `(at, key)` where `key` is a caller-chosen
//! `u64` tiebreaker: the driver uses a globally monotonic sequence
//! number (insertion order), the shard engine packs `(src_rank << 32) |
//! send_seq` so cross-shard message order is independent of the
//! rank→shard partition. Three structures share the order (DESIGN.md
//! §13):
//!
//! * the **calendar ring** — entries bucketed by virtual-time epoch
//!   (`at >> shift`). A ring of [`RING`] buckets covers one *lap* of
//!   epochs; buckets are unsorted until promoted, so insertion is O(1);
//! * the **sorted active run** — the bucket at the current epoch,
//!   promoted, sorted by `(at, key)` and drained through a cursor;
//! * the **overflow rung** — entries beyond the current lap. When the
//!   ring drains, the rung is re-anchored: the bucket width (`shift`)
//!   adapts to the rung's span so the next lap covers it.

use crate::time::SimTime;

/// Buckets in the calendar ring (one *lap* of epochs). Power of two.
const RING: usize = 1024;
const RING_MASK: u64 = RING as u64 - 1;
/// Initial bucket width: 2^10 = 1024 virtual nanoseconds. Re-anchoring
/// adapts the width to the actual event-time spread.
const INIT_SHIFT: u32 = 10;
/// Widest bucket the re-anchor adaptation may pick (2^40 ns ≈ 18 min of
/// virtual time per bucket): beyond this a lap covers any plausible run.
const MAX_SHIFT: u32 = 40;

#[derive(Clone, Copy, Debug)]
struct CalEntry<P: Copy> {
    at: SimTime,
    key: u64,
    payload: P,
}

impl<P: Copy> CalEntry<P> {
    fn order(&self) -> (SimTime, u64) {
        (self.at, self.key)
    }
}

/// Future events: calendar ring + sorted active run + overflow rung.
/// `P` is a small `Copy` payload (an arena slot index, a mailbox slab
/// index); anything bigger belongs behind an index.
pub struct CalendarQueue<P: Copy> {
    shift: u32,
    /// Epoch owned by `active`. Ring buckets hold epochs strictly
    /// greater, up to (not including) `lap_end`.
    cur_epoch: u64,
    /// First epoch beyond the ring's coverage; entries at or past it
    /// wait in `overflow` until the next re-anchor.
    lap_end: u64,
    ring: Vec<Vec<CalEntry<P>>>,
    /// Entries resting in ring buckets (excludes `active` and overflow).
    ring_len: usize,
    /// One-bit-per-bucket occupancy so the epoch advance skips empty
    /// buckets a word at a time.
    occupied: [u64; RING / 64],
    /// The promoted bucket, sorted ascending by `(at, key)`; positions
    /// before `cursor` have already been popped.
    active: Vec<CalEntry<P>>,
    cursor: usize,
    overflow: Vec<CalEntry<P>>,
    /// Total entries held (active remainder + ring + overflow),
    /// including any the caller considers logically dead.
    len: usize,
}

impl<P: Copy> Default for CalendarQueue<P> {
    fn default() -> Self {
        Self::new()
    }
}

impl<P: Copy> CalendarQueue<P> {
    pub fn new() -> Self {
        CalendarQueue {
            shift: INIT_SHIFT,
            cur_epoch: 0,
            lap_end: RING as u64,
            ring: (0..RING).map(|_| Vec::new()).collect(),
            ring_len: 0,
            occupied: [0; RING / 64],
            active: Vec::new(),
            cursor: 0,
            overflow: Vec::new(),
            len: 0,
        }
    }

    /// Entries held, including any the caller has logically cancelled
    /// but not yet swept.
    pub fn len(&self) -> usize {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    #[inline]
    fn epoch_of(&self, at: SimTime) -> u64 {
        at.as_nanos() >> self.shift
    }

    /// O(1) insert (amortized): same-epoch entries keep the active run
    /// sorted via a bounded binary insert, in-lap entries append to
    /// their (unsorted) bucket, far-future entries join the overflow
    /// rung.
    ///
    /// For exact ordering the caller must never insert an entry that
    /// sorts before one already popped; with monotonically increasing
    /// pop order and `at` >= the last popped time, appending is safe.
    #[inline]
    pub fn insert(&mut self, at: SimTime, key: u64, payload: P) {
        let entry = CalEntry { at, key, payload };
        self.len += 1;
        let epoch = self.epoch_of(at);
        if epoch <= self.cur_epoch {
            // Short-delay insertion lands in the epoch being drained.
            // When the caller's keys are monotonic the new entry sorts
            // last among equal times: appending keeps `active` sorted
            // whenever its tail is not ahead of `at` (the common case
            // for event chains); anything else takes the binary-insert
            // slow path.
            match self.active.last() {
                Some(last) if last.order() > entry.order() => self.insert_slow(entry, epoch),
                _ => {
                    if self.cursor >= self.active.len() {
                        self.active.clear();
                        self.cursor = 0;
                    }
                    self.active.push(entry);
                }
            }
        } else if epoch < self.lap_end {
            let b = (epoch & RING_MASK) as usize;
            self.ring[b].push(entry);
            self.ring_len += 1;
            self.occupied[b / 64] |= 1 << (b % 64);
        } else {
            self.overflow.push(entry);
        }
    }

    #[cold]
    fn insert_slow(&mut self, entry: CalEntry<P>, epoch: u64) {
        if epoch <= self.cur_epoch {
            // The currently draining epoch (or one already passed):
            // keep `active` sorted so the (time, key) order is exact.
            // Times only land here near the cursor, so the shifted tail
            // is short.
            let pos = self.cursor
                + self.active[self.cursor..].partition_point(|e| e.order() < entry.order());
            self.active.insert(pos, entry);
        } else {
            debug_assert!(epoch >= self.lap_end);
            self.overflow.push(entry);
        }
    }

    /// Next pending entry in `(time, key)` order, advancing epochs,
    /// promoting buckets and re-anchoring the overflow rung as needed.
    /// Does not remove anything — safe to use as a peek.
    #[inline]
    pub fn peek(&mut self) -> Option<(SimTime, u64)> {
        if self.cursor < self.active.len() {
            let e = &self.active[self.cursor];
            return Some((e.at, e.key));
        }
        self.peek_slow()
    }

    #[cold]
    fn peek_slow(&mut self) -> Option<(SimTime, u64)> {
        loop {
            if self.cursor < self.active.len() {
                let e = &self.active[self.cursor];
                return Some((e.at, e.key));
            }
            if self.ring_len > 0 {
                let next = self
                    .next_occupied((self.cur_epoch & RING_MASK) as usize)
                    .expect("ring_len > 0 but no occupied bucket");
                // Map the bucket index back to its (unique, in-lap)
                // epoch: the first epoch > cur_epoch with this residue.
                let cur_res = (self.cur_epoch & RING_MASK) as usize;
                let delta = (next + RING - cur_res - 1) % RING + 1;
                self.cur_epoch += delta as u64;
                debug_assert!(self.cur_epoch < self.lap_end);
                self.active.clear();
                self.cursor = 0;
                std::mem::swap(&mut self.active, &mut self.ring[next]);
                self.ring_len -= self.active.len();
                self.occupied[next / 64] &= !(1 << (next % 64));
                if self.active.len() > 1 {
                    self.active.sort_unstable_by_key(|e| e.order());
                }
                continue;
            }
            if !self.overflow.is_empty() {
                self.re_anchor();
                continue;
            }
            return None;
        }
    }

    /// First occupied bucket index strictly after `from`, circularly.
    #[inline]
    fn next_occupied(&self, from: usize) -> Option<usize> {
        let start = (from + 1) % RING;
        let (wi, bi) = (start / 64, start % 64);
        // The word holding `start`, masked to bits >= bi.
        let w = self.occupied[wi] & (!0u64 << bi);
        if w != 0 {
            return Some(wi * 64 + w.trailing_zeros() as usize);
        }
        for step in 1..=self.occupied.len() {
            let i = (wi + step) % self.occupied.len();
            let w = self.occupied[i];
            if w != 0 {
                return Some(i * 64 + w.trailing_zeros() as usize);
            }
        }
        None
    }

    /// Ring and active are empty: restart the calendar at the overflow
    /// rung's earliest entry, adapting the bucket width so the rung's
    /// span fits in one lap (the far-future fallback the ring cannot
    /// cover with fine buckets).
    fn re_anchor(&mut self) {
        debug_assert!(self.cursor >= self.active.len() && self.ring_len == 0);
        let min_at = self.overflow.iter().map(|e| e.at).min().expect("non-empty");
        let max_at = self.overflow.iter().map(|e| e.at).max().expect("non-empty");
        let span = max_at.as_nanos() - min_at.as_nanos();
        let mut shift = INIT_SHIFT;
        while shift < MAX_SHIFT && (span >> shift) >= RING as u64 {
            shift += 1;
        }
        self.shift = shift;
        self.cur_epoch = min_at.as_nanos() >> shift;
        self.lap_end = self.cur_epoch + RING as u64;
        self.active.clear();
        self.cursor = 0;
        for entry in std::mem::take(&mut self.overflow) {
            let epoch = entry.at.as_nanos() >> shift;
            if epoch == self.cur_epoch {
                self.active.push(entry);
            } else if epoch < self.lap_end {
                let b = (epoch & RING_MASK) as usize;
                self.ring[b].push(entry);
                self.ring_len += 1;
                self.occupied[b / 64] |= 1 << (b % 64);
            } else {
                self.overflow.push(entry);
            }
        }
        self.active.sort_unstable_by_key(|e| e.order());
    }

    /// Take the entry `peek` reported. Must be called directly after a
    /// `Some` return from `peek`.
    #[inline]
    pub fn pop_head(&mut self) -> (SimTime, u64, P) {
        debug_assert!(self.cursor < self.active.len());
        let e = self.active[self.cursor];
        self.cursor += 1;
        self.len -= 1;
        if self.cursor == self.active.len() {
            self.active.clear();
            self.cursor = 0;
        }
        (e.at, e.key, e.payload)
    }

    /// Peek-and-pop in one call.
    #[inline]
    pub fn pop(&mut self) -> Option<(SimTime, u64, P)> {
        self.peek()?;
        Some(self.pop_head())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn orders_by_time_then_key() {
        let mut q = CalendarQueue::new();
        for (t, k) in [(30u64, 0u64), (10, 2), (10, 1), (20, 3)] {
            q.insert(SimTime::from_nanos(t), k, k as u32);
        }
        let mut out = Vec::new();
        while let Some((at, key, _)) = q.pop() {
            out.push((at.as_nanos(), key));
        }
        assert_eq!(out, vec![(10, 1), (10, 2), (20, 3), (30, 0)]);
    }

    #[test]
    fn non_monotonic_keys_still_sort_within_instant() {
        // The shard engine's keys are (src_rank, seq): not globally
        // monotonic across inserts. Entries at one instant must still
        // pop in key order regardless of insertion order.
        let mut q = CalendarQueue::new();
        q.insert(SimTime::from_nanos(5), 9, 0u32);
        q.insert(SimTime::from_nanos(5), 3, 1);
        q.insert(SimTime::from_nanos(5), 7, 2);
        let keys: Vec<u64> = std::iter::from_fn(|| q.pop().map(|(_, k, _)| k)).collect();
        assert_eq!(keys, vec![3, 7, 9]);
    }

    #[test]
    fn overflow_re_anchor_round_trip() {
        let mut q = CalendarQueue::new();
        let times = [5_000_000_000u64, 40, 2_000_000, 100_000, 33_000];
        for (i, &t) in times.iter().enumerate() {
            q.insert(SimTime::from_nanos(t), i as u64, ());
        }
        let mut got: Vec<u64> =
            std::iter::from_fn(|| q.pop().map(|(t, _, _)| t.as_nanos())).collect();
        let mut expect = times.to_vec();
        expect.sort_unstable();
        got.sort_unstable(); // already sorted; keep the assert strict anyway
        assert_eq!(got, expect);
        assert!(q.is_empty());
    }

    #[test]
    fn interleaved_insert_pop_keeps_order() {
        let mut q = CalendarQueue::new();
        q.insert(SimTime::from_nanos(10), 0, 0u8);
        let (t, _, _) = q.pop().unwrap();
        assert_eq!(t.as_nanos(), 10);
        // Insert at the popped instant with a later key: must surface
        // before anything later.
        q.insert(SimTime::from_nanos(10), 1, 1);
        q.insert(SimTime::from_nanos(11), 2, 2);
        assert_eq!(q.pop().unwrap().1, 1);
        assert_eq!(q.pop().unwrap().1, 2);
        assert!(q.pop().is_none());
    }
}
