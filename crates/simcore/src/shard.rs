//! Sharded parallel DES engine with conservative lookahead.
//!
//! The single-threaded driver ([`crate::event::Sim`]) owns one calendar
//! queue and one world. This module partitions a *message-level* model
//! across shards — contiguous rank blocks — each with its own
//! [`CalendarQueue`], executed by a persistent worker pool:
//!
//! * **Conservative lookahead** (Chandy–Misra–Bryant): every shard
//!   publishes a monotone clock `clock_i = min(next local event, safe_i)`
//!   where `safe_i = min over j≠i (clock_j + L(j,i))` and `L(j,i)` is the
//!   minimum latency of any message a rank in shard `j` can send to a
//!   rank in shard `i` (netsim channel latencies are the natural
//!   horizons). A shard may process every event strictly below `safe_i`
//!   without a global barrier; positive `L` guarantees progress.
//! * **Deterministic total order per rank**: cross-shard sends travel
//!   through bounded SPSC mailboxes stamped `(time, src rank, per-rank
//!   send seq)`. The calendar orders entries by `(time, (src << 32) |
//!   seq)` — keyed by *rank*, not shard, so the delivery order each rank
//!   observes is a pure function of the model, identical for every
//!   shard count and worker interleaving. An idle shard publishes
//!   `safe_i` rather than ∞, so neighbors can never advance past a send
//!   it might still be induced (transitively) to make.
//! * **Deadlock freedom**: a producer blocked on a full outbox drains
//!   its own inboxes while it waits, so every mailbox always has a live
//!   consumer and no cycle of full mailboxes can wedge.
//! * **Termination**: a coordinator double-reads the global
//!   (sent, delivered) cross-shard counters around an all-idle check;
//!   the counts only match with all shards idle when no event or
//!   message remains anywhere.
//!
//! Models plug in through [`ShardModel`]: per-rank state machines that
//! react to delivered messages and send more via [`ShardCtx`] — the only
//! scheduling surface (the `shard` lint family bans direct `schedule_*`
//! calls in model code). Sends must be strictly in the future; this
//! keeps same-instant delivery order closed under partitioning.

use crate::calq::CalendarQueue;
use crate::time::SimTime;
use crate::trace::Tracer;
use std::mem::MaybeUninit;
use std::ops::Range;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Synchronization shim for the mailbox: real builds use `std` cells
/// and atomics; the nightly loom job (`RUSTFLAGS="--cfg loom"`, with a
/// target-gated loom dependency appended to the manifest at job time —
/// loom never appears in the local manifest, by the no-new-deps policy)
/// swaps in loom's instrumented versions so the model checker explores
/// every interleaving of the SPSC protocol below. Only the mailbox is
/// routed through the shim: the rest of the engine (clocks, idle flags,
/// termination counters) needs real threads and yields, which loom
/// cannot host.
#[cfg(not(loom))]
mod mbsync {
    pub(super) use std::sync::atomic::AtomicUsize;

    /// `loom::cell::UnsafeCell`-shaped wrapper over the std cell, so
    /// the mailbox reads/writes compile identically under both builds.
    #[derive(Debug)]
    pub(super) struct UnsafeCell<T>(std::cell::UnsafeCell<T>);

    impl<T> UnsafeCell<T> {
        pub(super) fn new(v: T) -> Self {
            UnsafeCell(std::cell::UnsafeCell::new(v))
        }

        pub(super) fn with<R>(&self, f: impl FnOnce(*const T) -> R) -> R {
            f(self.0.get())
        }

        pub(super) fn with_mut<R>(&self, f: impl FnOnce(*mut T) -> R) -> R {
            f(self.0.get())
        }
    }
}
#[cfg(loom)]
mod mbsync {
    pub(super) use loom::cell::UnsafeCell;
    pub(super) use loom::sync::atomic::AtomicUsize;
}

/// Hard cap on shards: bounds the mailbox matrix (shards² rings).
pub const MAX_SHARDS: u32 = 32;
/// Slots per SPSC mailbox. Small enough that the full matrix stays a
/// few megabytes; the drain-while-blocked rule makes overflow safe.
const MAILBOX_CAP: usize = 256;

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

/// A message in flight: delivery time, source rank, per-source send
/// sequence, destination rank, payload.
#[derive(Clone, Debug)]
pub struct Envelope<M> {
    pub at: SimTime,
    pub src: u32,
    pub seq: u32,
    pub dst: u32,
    pub msg: M,
}

impl<M> Envelope<M> {
    /// Calendar tiebreak key: (src rank, per-rank seq) — independent of
    /// the rank→shard partition.
    fn key(&self) -> u64 {
        ((self.src as u64) << 32) | self.seq as u64
    }
}

// ---------------------------------------------------------------------
// Bounded SPSC mailbox
// ---------------------------------------------------------------------

/// A bounded single-producer single-consumer ring. Exactly one shard
/// pushes (the sender) and exactly one pops (the owner); the engine
/// upholds that discipline, which is what makes the unsafe cells sound.
struct Mailbox<T> {
    buf: Box<[mbsync::UnsafeCell<MaybeUninit<T>>]>,
    cap: usize,
    /// Next slot to pop (consumer-owned, producer reads).
    head: mbsync::AtomicUsize,
    /// Next slot to fill (producer-owned, consumer reads).
    tail: mbsync::AtomicUsize,
}

// SAFETY: head/tail form the usual SPSC protocol — the producer only
// writes slots in [tail, head+CAP) and publishes with a release store
// of tail; the consumer only reads slots in [head, tail) after an
// acquire load. Each slot is therefore accessed by one thread at a
// time.
unsafe impl<T: Send> Sync for Mailbox<T> {}
unsafe impl<T: Send> Send for Mailbox<T> {}

impl<T> Mailbox<T> {
    fn new() -> Self {
        Mailbox::with_cap(MAILBOX_CAP)
    }

    /// A ring with an explicit capacity. The engine always uses
    /// [`MAILBOX_CAP`]; the loom model uses tiny rings so the full/empty
    /// wraparound states are reachable within the interleaving budget.
    fn with_cap(cap: usize) -> Self {
        Mailbox {
            buf: (0..cap)
                .map(|_| mbsync::UnsafeCell::new(MaybeUninit::uninit()))
                .collect(),
            cap,
            head: mbsync::AtomicUsize::new(0),
            tail: mbsync::AtomicUsize::new(0),
        }
    }

    /// Producer side. Returns the value back on a full ring.
    fn push(&self, v: T) -> Result<(), T> {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Acquire);
        if tail - head == self.cap {
            return Err(v);
        }
        // SAFETY: slot `tail % cap` is outside [head, tail), so the
        // consumer is not reading it; we are the only producer.
        self.buf[tail % self.cap].with_mut(|p| unsafe { (*p).write(v) });
        self.tail.store(tail + 1, Ordering::Release);
        Ok(())
    }

    /// Consumer side.
    fn pop(&self) -> Option<T> {
        let head = self.head.load(Ordering::Relaxed);
        let tail = self.tail.load(Ordering::Acquire);
        if head == tail {
            return None;
        }
        // SAFETY: slot `head % cap` is inside [head, tail): the
        // producer published it with the release store of `tail` and
        // will not touch it again until we advance `head`.
        let v = self.buf[head % self.cap].with(|p| unsafe { (*p).assume_init_read() });
        self.head.store(head + 1, Ordering::Release);
        Some(v)
    }
}

impl<T> Drop for Mailbox<T> {
    fn drop(&mut self) {
        while self.pop().is_some() {}
    }
}

// ---------------------------------------------------------------------
// Partition
// ---------------------------------------------------------------------

/// Contiguous block partition of `ranks` into `shards`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Partition {
    pub ranks: u32,
    pub shards: u32,
}

impl Partition {
    pub fn new(ranks: u32, shards: u32) -> Partition {
        assert!(
            ranks > 0 && shards > 0 && shards <= ranks,
            "need 1 <= shards ({shards}) <= ranks ({ranks})"
        );
        assert!(shards <= MAX_SHARDS, "at most {MAX_SHARDS} shards");
        Partition { ranks, shards }
    }

    /// Ranks per shard, rounded up (the last shard may be short).
    fn block(&self) -> u32 {
        self.ranks.div_ceil(self.shards)
    }

    pub fn shard_of(&self, rank: u32) -> u32 {
        debug_assert!(rank < self.ranks);
        rank / self.block()
    }

    /// The contiguous rank range owned by `shard`.
    pub fn range(&self, shard: u32) -> Range<u32> {
        let b = self.block();
        let lo = shard * b;
        lo..((shard + 1) * b).min(self.ranks)
    }
}

// ---------------------------------------------------------------------
// The model trait and its scheduling surface
// ---------------------------------------------------------------------

/// Per-shard model state: the rank state machines for one contiguous
/// rank block. `Send` because shards execute on pool workers.
///
/// Determinism contract (enforced by the engine where it can):
/// * state must be per-rank — `deliver` for rank r may only read/write
///   r's state (plus shared immutable config);
/// * all randomness must come from per-rank streams
///   ([`crate::rng::SimRng::for_stream`]);
/// * all communication goes through [`ShardCtx::send`], strictly into
///   the future.
pub trait ShardModel: Send {
    type Msg: Send + 'static;

    /// React to a message delivered to `env.dst` (a rank this shard
    /// owns) at `env.at`.
    fn deliver(&mut self, ctx: &mut ShardCtx<'_, Self::Msg>, env: Envelope<Self::Msg>);
}

/// The scheduling surface handed to [`ShardModel::deliver`]: the only
/// way model code sends messages or reaches the trace.
pub struct ShardCtx<'a, M> {
    now: SimTime,
    current: u32,
    base: u32,
    staged: &'a mut Vec<Envelope<M>>,
    seqs: &'a mut [u32],
    /// Per-shard trace recorder; merged deterministically at drain.
    pub trace: &'a mut Tracer,
}

impl<M> ShardCtx<'_, M> {
    /// Virtual time of the message being delivered.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// The rank being delivered to (sends originate here).
    pub fn rank(&self) -> u32 {
        self.current
    }

    /// Send `msg` to rank `dst`, arriving at `at`. Must be strictly in
    /// the future — same-instant sends would make delivery order depend
    /// on the partition. Cross-shard arrivals must additionally respect
    /// the lookahead the engine was built with (checked downstream in
    /// debug builds).
    pub fn send(&mut self, dst: u32, at: SimTime, msg: M) {
        assert!(
            at > self.now,
            "shard model sent into the present/past: {at:?} <= {:?}",
            self.now
        );
        let li = (self.current - self.base) as usize;
        let seq = self.seqs[li];
        self.seqs[li] = seq.checked_add(1).expect("per-rank send seq overflow");
        self.staged.push(Envelope {
            at,
            src: self.current,
            seq,
            dst,
            msg,
        });
    }
}

// ---------------------------------------------------------------------
// Per-shard state
// ---------------------------------------------------------------------

struct ShardState<W: ShardModel> {
    id: u32,
    ranks: Range<u32>,
    model: W,
    cal: CalendarQueue<u32>,
    /// Envelope arena indexed by calendar payload.
    slots: Vec<Option<Envelope<W::Msg>>>,
    free: Vec<u32>,
    /// Next send seq per owned rank (index = rank - ranks.start).
    seqs: Vec<u32>,
    trace: Tracer,
    staged: Vec<Envelope<W::Msg>>,
    executed: u64,
    /// Latest delivery time processed.
    last_at: SimTime,
}

impl<W: ShardModel> ShardState<W> {
    fn store(&mut self, env: Envelope<W::Msg>) {
        let (at, key) = (env.at, env.key());
        let slot = match self.free.pop() {
            Some(s) => {
                self.slots[s as usize] = Some(env);
                s
            }
            None => {
                self.slots.push(Some(env));
                (self.slots.len() - 1) as u32
            }
        };
        self.cal.insert(at, key, slot);
    }

    fn take(&mut self, slot: u32) -> Envelope<W::Msg> {
        self.free.push(slot);
        self.slots[slot as usize]
            .take()
            .expect("live envelope slot")
    }
}

// ---------------------------------------------------------------------
// Shared cross-shard state
// ---------------------------------------------------------------------

struct Shared<M> {
    clocks: Vec<AtomicU64>,
    idle: Vec<AtomicBool>,
    /// Cross-shard envelopes pushed (counted before the push lands).
    sent: AtomicU64,
    /// Cross-shard envelopes drained into a destination calendar
    /// (counted after insertion and after clearing the idle flag).
    delivered: AtomicU64,
    stop: AtomicBool,
    /// boxes[dst][src]: messages from shard `src` to shard `dst`.
    boxes: Vec<Vec<Mailbox<Envelope<M>>>>,
}

// ---------------------------------------------------------------------
// The engine
// ---------------------------------------------------------------------

/// A sharded simulation: `shards` calendar queues over a contiguous
/// rank partition, run in parallel under conservative lookahead.
pub struct ShardedSim<W: ShardModel> {
    part: Partition,
    /// Row-major `shards × shards` lookahead in ns; `lookahead[j*s+i]`
    /// bounds messages from shard j to shard i. Strictly positive off
    /// the diagonal.
    lookahead: Vec<u64>,
    states: Vec<ShardState<W>>,
}

/// Result of a completed sharded run.
pub struct ShardRun<W: ShardModel> {
    pub part: Partition,
    /// Per-shard models, in shard order (rank r's state lives in
    /// `models[part.shard_of(r)]`).
    pub models: Vec<W>,
    /// Deterministically merged trace ([`Tracer::merge_shards`]).
    pub trace: Tracer,
    /// Messages delivered (model `deliver` invocations).
    pub executed: u64,
    /// Latest virtual delivery time across all shards.
    pub end_time: SimTime,
}

impl<W: ShardModel> ShardedSim<W> {
    /// Build an engine over `part` with one model per shard.
    /// `min_latency(a, b)` is the least possible arrival delay of any
    /// message rank `a` sends rank `b`; the per-shard-pair lookahead is
    /// its minimum over the cross pairs, and must be positive.
    pub fn new(
        part: Partition,
        models: Vec<W>,
        min_latency: impl Fn(u32, u32) -> SimTime,
    ) -> ShardedSim<W> {
        assert_eq!(models.len() as u32, part.shards, "one model per shard");
        let s = part.shards as usize;
        let mut lookahead = vec![u64::MAX; s * s];
        for j in 0..part.shards {
            for i in 0..part.shards {
                if i == j {
                    continue;
                }
                let mut min = u64::MAX;
                for a in part.range(j) {
                    for b in part.range(i) {
                        min = min.min(min_latency(a, b).as_nanos());
                    }
                }
                assert!(
                    min > 0,
                    "zero lookahead between shards {j} and {i}: conservative sync cannot progress"
                );
                lookahead[j as usize * s + i as usize] = min;
            }
        }
        let states = models
            .into_iter()
            .enumerate()
            .map(|(id, model)| ShardState {
                id: id as u32,
                ranks: part.range(id as u32),
                model,
                cal: CalendarQueue::new(),
                slots: Vec::new(),
                free: Vec::new(),
                seqs: vec![0; part.range(id as u32).len()],
                trace: Tracer::new(),
                staged: Vec::new(),
                executed: 0,
                last_at: SimTime::ZERO,
            })
            .collect();
        ShardedSim {
            part,
            lookahead,
            states,
        }
    }

    /// Turn span/instant recording on for every shard's tracer.
    pub fn set_recording(&mut self, on: bool) {
        for st in &mut self.states {
            st.trace.set_recording(on);
        }
    }

    /// Seed the run with an initial message before `run` (virtual time
    /// zero onward). Consumes a send seq of `src`, so injection order is
    /// part of the deterministic input.
    pub fn inject(&mut self, src: u32, dst: u32, at: SimTime, msg: W::Msg) {
        let src_shard = self.part.shard_of(src);
        let base = self.states[src_shard as usize].ranks.start;
        let li = (src - base) as usize;
        let seq = self.states[src_shard as usize].seqs[li];
        self.states[src_shard as usize].seqs[li] = seq + 1;
        let env = Envelope {
            at,
            src,
            seq,
            dst,
            msg,
        };
        let dst_shard = self.part.shard_of(dst) as usize;
        self.states[dst_shard].store(env);
    }

    /// Run to global quiescence. With one shard the loop runs inline on
    /// the caller thread; with more, each shard runs on a persistent
    /// pool worker.
    pub fn run(mut self) -> ShardRun<W> {
        let s = self.part.shards as usize;
        let shared = Shared {
            clocks: (0..s).map(|_| AtomicU64::new(0)).collect(),
            idle: (0..s).map(|_| AtomicBool::new(false)).collect(),
            sent: AtomicU64::new(0),
            delivered: AtomicU64::new(0),
            stop: AtomicBool::new(false),
            boxes: (0..s)
                .map(|_| (0..s).map(|_| Mailbox::new()).collect())
                .collect(),
        };
        let part = self.part;
        let lookahead = std::mem::take(&mut self.lookahead);
        let mut states = std::mem::take(&mut self.states);

        if s == 1 {
            run_shard(&mut states[0], &shared, &lookahead, part);
        } else {
            // One persistent worker per shard for the whole run: the
            // conservative loops must all be live simultaneously or the
            // clocks deadlock, hence the global run lock — concurrent
            // ShardedSim runs (e.g. parallel tests) serialize instead
            // of starving each other of workers.
            let _run = run_lock().lock().expect("shard run lock");
            let mut jobs: Vec<Job> = states
                .iter_mut()
                .map(|st| {
                    let f: Box<dyn FnMut() + Send + '_> =
                        Box::new(|| run_shard(st, &shared, &lookahead, part));
                    Job::new(f)
                })
                .collect();
            pool().run(&mut jobs);
        }

        let mut executed = 0;
        let mut end_time = SimTime::ZERO;
        for st in &states {
            executed += st.executed;
            end_time = end_time.max(st.last_at);
            assert!(st.cal.is_empty(), "shard {} drained", st.id);
        }
        let mut models = Vec::with_capacity(s);
        let mut traces = Vec::with_capacity(s);
        for st in states {
            models.push(st.model);
            traces.push(st.trace);
        }
        ShardRun {
            part,
            models,
            trace: Tracer::merge_shards(traces),
            executed,
            end_time,
        }
    }
}

/// One conservative-lookahead shard loop, run to global quiescence.
fn run_shard<W: ShardModel>(
    st: &mut ShardState<W>,
    shared: &Shared<W::Msg>,
    lookahead: &[u64],
    part: Partition,
) {
    let s = part.shards as usize;
    let me = st.id as usize;
    loop {
        drain_inboxes(st, shared, s, me);

        let safe = safe_horizon(shared, lookahead, s, me);

        // Process every event strictly below the horizon.
        let mut progressed = false;
        while let Some((at, _)) = st.cal.peek() {
            if at.as_nanos() >= safe {
                break;
            }
            let (_, _, slot) = st.cal.pop_head();
            let env = st.take(slot);
            debug_assert!(env.at >= st.last_at, "shard time went backwards");
            st.last_at = env.at;
            st.executed += 1;
            progressed = true;
            debug_assert!(st.ranks.contains(&env.dst), "misrouted envelope");
            let mut ctx = ShardCtx {
                now: env.at,
                current: env.dst,
                base: st.ranks.start,
                staged: &mut st.staged,
                seqs: &mut st.seqs,
                trace: &mut st.trace,
            };
            st.model.deliver(&mut ctx, env);
            route_staged(st, shared, lookahead, part, s, me);
        }

        // Publish the clock: nothing below min(next event, horizon) can
        // leave this shard. Monotone because `safe` is (neighbor clocks
        // only rise) and arrivals are never below the horizon they were
        // admitted under.
        let next = st.cal.peek().map_or(u64::MAX, |(at, _)| at.as_nanos());
        let clock = next.min(safe);
        shared.clocks[me].fetch_max(clock, Ordering::AcqRel);

        let empty = st.cal.is_empty();
        shared.idle[me].store(empty, Ordering::SeqCst);

        // Shard 0 coordinates termination: double-read the cross-shard
        // counters around the all-idle check. The counts only agree —
        // twice, with no movement — when every envelope ever pushed has
        // been folded into a (now empty) calendar.
        if me == 0 {
            let s1 = shared.sent.load(Ordering::SeqCst);
            let d1 = shared.delivered.load(Ordering::SeqCst);
            if s1 == d1 && all_idle(shared) {
                let s2 = shared.sent.load(Ordering::SeqCst);
                let d2 = shared.delivered.load(Ordering::SeqCst);
                if s2 == s1 && d2 == d1 && all_idle(shared) {
                    shared.stop.store(true, Ordering::SeqCst);
                }
            }
        }
        if shared.stop.load(Ordering::SeqCst) {
            return;
        }
        if !progressed && s > 1 {
            // Nothing below the horizon yet: let neighbor clocks climb
            // (and oversubscribed workers run) instead of burning the
            // core.
            std::thread::yield_now();
        }
    }
}

/// `min over j≠me (clock_j + L(j, me))`, saturating.
fn safe_horizon<M>(shared: &Shared<M>, lookahead: &[u64], s: usize, me: usize) -> u64 {
    let mut safe = u64::MAX;
    for j in 0..s {
        if j == me {
            continue;
        }
        let cj = shared.clocks[j].load(Ordering::Acquire);
        safe = safe.min(cj.saturating_add(lookahead[j * s + me]));
    }
    safe
}

fn all_idle<M>(shared: &Shared<M>) -> bool {
    shared.idle.iter().all(|f| f.load(Ordering::SeqCst))
}

/// Move every waiting inbox envelope into the local calendar. The idle
/// flag clears *before* the delivered count rises so the terminator can
/// never observe "all delivered, all idle" with an event still hidden
/// in a calendar.
fn drain_inboxes<W: ShardModel>(
    st: &mut ShardState<W>,
    shared: &Shared<W::Msg>,
    s: usize,
    me: usize,
) {
    for j in 0..s {
        if j == me {
            continue;
        }
        while let Some(env) = shared.boxes[me][j].pop() {
            st.store(env);
            shared.idle[me].store(false, Ordering::SeqCst);
            shared.delivered.fetch_add(1, Ordering::SeqCst);
        }
    }
}

/// Route the sends staged by the last `deliver`: local ones straight
/// into the calendar, cross-shard ones through the mailboxes. A full
/// outbox is waited out by draining our own inboxes — every shard does
/// this, so some consumer always makes room and no cycle wedges.
fn route_staged<W: ShardModel>(
    st: &mut ShardState<W>,
    shared: &Shared<W::Msg>,
    lookahead: &[u64],
    part: Partition,
    s: usize,
    me: usize,
) {
    while let Some(env) = st.staged.pop() {
        let dst_shard = part.shard_of(env.dst) as usize;
        if dst_shard == me {
            st.store(env);
            continue;
        }
        debug_assert!(
            env.at.as_nanos() >= st.last_at.as_nanos() + lookahead[me * s + dst_shard],
            "cross-shard send below the lookahead horizon: {:?} < {:?}+{}",
            env.at,
            st.last_at,
            lookahead[me * s + dst_shard]
        );
        shared.sent.fetch_add(1, Ordering::SeqCst);
        let mut pending = env;
        loop {
            match shared.boxes[dst_shard][me].push(pending) {
                Ok(()) => break,
                Err(back) => {
                    pending = back;
                    drain_inboxes(st, shared, s, me);
                    std::thread::yield_now();
                }
            }
        }
    }
}

// ---------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------

/// A borrowed shard loop handed to a pool worker. The closure lives on
/// the submitting thread's stack; the latch keeps that frame alive
/// until every job has finished.
struct Job {
    f: *mut (dyn FnMut() + Send),
}

// SAFETY: the pointee is `FnMut + Send` borrowed from the submitting
// thread, which blocks on the completion latch until the worker is done
// with it — exclusive access transfers to exactly one worker at a time.
unsafe impl Send for Job {}

impl Job {
    fn new(f: Box<dyn FnMut() + Send + '_>) -> Job {
        let raw: *mut (dyn FnMut() + Send + '_) = Box::into_raw(f);
        // SAFETY: pure lifetime erasure on the raw pointer — the pool's
        // `run` keeps the caller parked on the latch until workers
        // finish, so the pointee outlives every use.
        let raw: *mut (dyn FnMut() + Send + 'static) = unsafe { std::mem::transmute(raw) };
        Job { f: raw }
    }
}

struct Task {
    job: Job,
    done: Arc<Latch>,
}

struct Latch {
    remaining: AtomicUsize,
    lock: Mutex<()>,
    cv: Condvar,
}

impl Latch {
    fn count_down(&self) {
        if self.remaining.fetch_sub(1, Ordering::AcqRel) == 1 {
            let _g = self.lock.lock().expect("latch lock");
            self.cv.notify_all();
        }
    }

    fn wait(&self) {
        let mut g = self.lock.lock().expect("latch lock");
        while self.remaining.load(Ordering::Acquire) != 0 {
            g = self.cv.wait(g).expect("latch wait");
        }
    }
}

struct ShardPool {
    queue: Arc<(Mutex<Vec<Task>>, Condvar)>,
    workers: Mutex<usize>,
}

impl ShardPool {
    fn ensure_workers(&self, want: usize) {
        let mut n = self.workers.lock().expect("pool size lock");
        while *n < want {
            let queue = Arc::clone(&self.queue);
            std::thread::Builder::new()
                .name(format!("shard-worker-{}", *n))
                .spawn(move || loop {
                    let task = {
                        let (lock, cv) = &*queue;
                        let mut q = lock.lock().expect("pool queue lock");
                        loop {
                            if let Some(t) = q.pop() {
                                break t;
                            }
                            q = cv.wait(q).expect("pool queue wait");
                        }
                    };
                    // SAFETY: Job::new's contract — the submitting
                    // thread waits on the latch, so the pointee is
                    // alive and exclusively ours; reboxing frees the
                    // box Job::new leaked.
                    let f = unsafe { &mut *task.job.f };
                    f();
                    unsafe { drop(Box::from_raw(task.job.f)) };
                    task.done.count_down();
                })
                .expect("spawn shard worker");
            *n += 1;
        }
    }

    /// Run all jobs concurrently; blocks until every one completes.
    fn run(&self, jobs: &mut Vec<Job>) {
        self.ensure_workers(jobs.len());
        let latch = Arc::new(Latch {
            remaining: AtomicUsize::new(jobs.len()),
            lock: Mutex::new(()),
            cv: Condvar::new(),
        });
        {
            let (lock, cv) = &*self.queue;
            let mut q = lock.lock().expect("pool queue lock");
            for job in jobs.drain(..) {
                q.push(Task {
                    job,
                    done: Arc::clone(&latch),
                });
            }
            cv.notify_all();
        }
        latch.wait();
    }
}

fn pool() -> &'static ShardPool {
    static POOL: OnceLock<ShardPool> = OnceLock::new();
    POOL.get_or_init(|| ShardPool {
        queue: Arc::new((Mutex::new(Vec::new()), Condvar::new())),
        workers: Mutex::new(0),
    })
}

/// Serializes parallel runs: all shard loops of a run must hold workers
/// simultaneously, so two interleaved runs could otherwise starve each
/// other into livelock.
fn run_lock() -> &'static Mutex<()> {
    static LOCK: OnceLock<Mutex<()>> = OnceLock::new();
    LOCK.get_or_init(|| Mutex::new(()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::SimRng;

    #[test]
    fn partition_blocks_are_contiguous_and_cover() {
        let p = Partition::new(10, 3);
        let mut seen = Vec::new();
        for s in 0..3 {
            for r in p.range(s) {
                assert_eq!(p.shard_of(r), s);
                seen.push(r);
            }
        }
        assert_eq!(seen, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn mailbox_spsc_round_trip_and_full() {
        let mb: Mailbox<u32> = Mailbox::new();
        for i in 0..MAILBOX_CAP as u32 {
            assert!(mb.push(i).is_ok());
        }
        assert_eq!(mb.push(99), Err(99));
        for i in 0..MAILBOX_CAP as u32 {
            assert_eq!(mb.pop(), Some(i));
        }
        assert_eq!(mb.pop(), None);
    }

    /// A toy model: ranks bounce tokens along pseudo-random walks with
    /// per-rank RNG streams, logging every delivery. Token hops use a
    /// latency >= the engine's lookahead floor.
    struct Walk {
        base: u32,
        // (time, src, hops left) per delivery, per owned rank.
        logs: Vec<Vec<(u64, u32, u32)>>,
        rngs: Vec<SimRng>,
        ranks: u32,
    }

    const HOP_NS: u64 = 500;

    impl ShardModel for Walk {
        type Msg = u32; // remaining hops

        fn deliver(&mut self, ctx: &mut ShardCtx<'_, u32>, env: Envelope<u32>) {
            let li = (env.dst - self.base) as usize;
            self.logs[li].push((env.at.as_nanos(), env.src, env.msg));
            if env.msg == 0 {
                return;
            }
            let jitter = self.rngs[li].range_u64(0, 300);
            let next = self.rngs[li].range_u64(0, self.ranks as u64) as u32;
            ctx.send(
                next,
                env.at + SimTime::from_nanos(HOP_NS + jitter),
                env.msg - 1,
            );
        }
    }

    /// Per-rank delivery logs of `(time, src, seq)`, total executed,
    /// end time.
    type WalkResult = (Vec<Vec<(u64, u32, u32)>>, u64, SimTime);

    fn run_walk(ranks: u32, shards: u32) -> WalkResult {
        let part = Partition::new(ranks, shards);
        let models = (0..shards)
            .map(|s| {
                let range = part.range(s);
                Walk {
                    base: range.start,
                    logs: range.clone().map(|_| Vec::new()).collect(),
                    rngs: range
                        .clone()
                        .map(|r| SimRng::for_stream(7, r as u64))
                        .collect(),
                    ranks,
                }
            })
            .collect();
        let mut sim = ShardedSim::new(part, models, |_, _| SimTime::from_nanos(HOP_NS));
        for r in 0..ranks {
            sim.inject(r, (r + 1) % ranks, SimTime::from_nanos(1 + r as u64), 40);
        }
        let run = sim.run();
        let mut logs: Vec<Vec<(u64, u32, u32)>> = Vec::new();
        for model in run.models {
            logs.extend(model.logs);
        }
        (logs, run.executed, run.end_time)
    }

    #[test]
    fn parallel_run_is_bit_identical_to_single_shard() {
        let (ref_logs, ref_exec, ref_end) = run_walk(8, 1);
        for shards in [2, 4, 8] {
            let (logs, exec, end) = run_walk(8, shards);
            assert_eq!(logs, ref_logs, "{shards}-shard diverged from 1-shard");
            assert_eq!(exec, ref_exec);
            assert_eq!(end, ref_end);
        }
        assert_eq!(ref_exec, 8 * 41, "each token delivers hops+1 times");
    }

    #[test]
    #[should_panic(expected = "into the present/past")]
    fn same_instant_send_is_rejected() {
        struct Echo;
        impl ShardModel for Echo {
            type Msg = ();
            fn deliver(&mut self, ctx: &mut ShardCtx<'_, ()>, env: Envelope<()>) {
                ctx.send(env.dst, env.at, ());
            }
        }
        let mut sim = ShardedSim::new(Partition::new(2, 1), vec![Echo], |_, _| {
            SimTime::from_nanos(1)
        });
        sim.inject(0, 1, SimTime::from_nanos(5), ());
        sim.run();
    }

    #[test]
    #[should_panic(expected = "zero lookahead")]
    fn zero_lookahead_is_rejected() {
        struct Nop;
        impl ShardModel for Nop {
            type Msg = ();
            fn deliver(&mut self, _: &mut ShardCtx<'_, ()>, _: Envelope<()>) {}
        }
        let _ = ShardedSim::new(Partition::new(4, 2), vec![Nop, Nop], |_, _| SimTime::ZERO);
    }

    #[test]
    fn mailbox_pressure_does_not_deadlock() {
        // Every delivery fans out to all other ranks: far more in-flight
        // cross-shard messages than one mailbox holds.
        struct Burst {
            ranks: u32,
            delivered: u64,
        }
        impl ShardModel for Burst {
            type Msg = u32; // generation countdown

            fn deliver(&mut self, ctx: &mut ShardCtx<'_, u32>, env: Envelope<u32>) {
                self.delivered += 1;
                if env.msg == 0 {
                    return;
                }
                for d in 0..self.ranks {
                    if d != env.dst {
                        ctx.send(d, env.at + SimTime::from_nanos(100), env.msg - 1);
                    }
                }
            }
        }
        let part = Partition::new(8, 4);
        let models = (0..4)
            .map(|_| Burst {
                ranks: 8,
                delivered: 0,
            })
            .collect();
        let mut sim = ShardedSim::new(part, models, |_, _| SimTime::from_nanos(100));
        sim.inject(0, 1, SimTime::from_nanos(1), 4);
        let run = sim.run();
        // Generations 4,3,2,1,0 deliver 1, 7, 49, 343, 2401 times.
        assert_eq!(run.executed, 1 + 7 + 49 + 343 + 2401);
    }
}

/// Loom models of the mailbox protocol. Run by the nightly `loom` CI
/// job only: `RUSTFLAGS="--cfg loom" cargo test -p simcore --release
/// loom_` after appending the target-gated loom dependency. The models
/// drive the *real* `Mailbox` code through the `mbsync` shim, so every
/// load/store ordering above is what loom explores.
#[cfg(all(test, loom))]
mod loom_tests {
    use super::*;
    use loom::thread;

    /// Concurrent producer/consumer over a capacity-2 ring: no message
    /// is lost, duplicated, or reordered, across every interleaving —
    /// including the full-ring retry and the empty-ring miss.
    #[test]
    fn loom_mailbox_spsc_fifo_no_loss() {
        loom::model(|| {
            let mb = loom::sync::Arc::new(Mailbox::<u32>::with_cap(2));
            let producer = loom::sync::Arc::clone(&mb);
            let t = thread::spawn(move || {
                let mut v = 0u32;
                while v < 3 {
                    match producer.push(v) {
                        Ok(()) => v += 1,
                        Err(_) => thread::yield_now(),
                    }
                }
            });
            let mut got = Vec::new();
            while got.len() < 3 {
                match mb.pop() {
                    Some(v) => got.push(v),
                    None => thread::yield_now(),
                }
            }
            t.join().unwrap();
            assert_eq!(got, [0, 1, 2]);
            assert_eq!(mb.pop(), None);
        });
    }

    /// A push the consumer never drains: the Drop impl must release the
    /// still-queued message without touching uninitialized slots.
    #[test]
    fn loom_mailbox_drop_releases_undrained() {
        loom::model(|| {
            let mb = loom::sync::Arc::new(Mailbox::<Box<u32>>::with_cap(2));
            let producer = loom::sync::Arc::clone(&mb);
            let t = thread::spawn(move || {
                producer.push(Box::new(7)).unwrap();
            });
            t.join().unwrap();
            drop(mb); // the ring still holds the boxed 7
        });
    }
}
