//! Deterministic hashing for simulator-side collections.
//!
//! `std::collections::HashMap` seeds its hasher from process entropy,
//! so iteration order differs between runs. Nothing in the simulator
//! is allowed to observe that: the `xtask lint` determinism rule bans
//! the default-`RandomState` map in simulator crates. Code that wants
//! O(1) lookups uses [`DetHashMap`]/[`DetHashSet`] instead — the same
//! std containers behind an FxHash-style hasher with a fixed seed, so
//! iteration order is a pure function of the insertion sequence and is
//! identical on every run and every platform.

use std::collections::{HashMap, HashSet};
use std::hash::{BuildHasherDefault, Hasher};

/// FxHash-style multiply-xor hasher with no per-process seed.
///
/// Not DoS-resistant — all keys in the simulator are internal ids, not
/// attacker-controlled input.
#[derive(Default, Clone)]
pub struct DetHasher {
    hash: u64,
}

const SEED: u64 = 0x51_7c_c1_b7_27_22_0a_95;

impl DetHasher {
    #[inline]
    fn add(&mut self, word: u64) {
        self.hash = (self.hash.rotate_left(5) ^ word).wrapping_mul(SEED);
    }
}

impl Hasher for DetHasher {
    #[inline]
    fn finish(&self) -> u64 {
        self.hash
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in &mut chunks {
            let mut w = [0u8; 8];
            w.copy_from_slice(c);
            self.add(u64::from_le_bytes(w));
        }
        let rem = chunks.remainder();
        if !rem.is_empty() {
            let mut w = [0u8; 8];
            w[..rem.len()].copy_from_slice(rem);
            self.add(u64::from_le_bytes(w) | ((rem.len() as u64) << 56));
        }
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.add(v as u64);
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.add(v);
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.add(v as u64);
    }
}

/// The fixed-seed `BuildHasher` behind [`DetHashMap`]/[`DetHashSet`].
pub type DetBuildHasher = BuildHasherDefault<DetHasher>;

/// `HashMap` with a deterministic, explicitly seeded hasher.
pub type DetHashMap<K, V> = HashMap<K, V, DetBuildHasher>;

/// `HashSet` with a deterministic, explicitly seeded hasher.
pub type DetHashSet<T> = HashSet<T, DetBuildHasher>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_insertions_same_iteration_order() {
        let build = || {
            let mut m: DetHashMap<u64, u64> = DetHashMap::default();
            for i in 0..1000 {
                m.insert(i * 7919, i);
            }
            m.iter().map(|(k, v)| (*k, *v)).collect::<Vec<_>>()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn hasher_distributes() {
        let mut s: DetHashSet<u64> = DetHashSet::default();
        for i in 0..10_000u64 {
            s.insert(i);
        }
        assert_eq!(s.len(), 10_000);
    }

    #[test]
    fn str_keys_work() {
        let mut m: DetHashMap<&str, u32> = DetHashMap::default();
        m.insert("alpha", 1);
        m.insert("beta", 2);
        assert_eq!(m["alpha"], 1);
        assert_eq!(m["beta"], 2);
    }
}
