//! The event queue and simulation driver.
//!
//! A `Sim<W>` owns a user-supplied world `W` (the memory pools, GPUs,
//! NICs and protocol state of the run) and a pending-event set. An event
//! is an `FnOnce(&mut Sim<W>)`: when it fires it may mutate the world
//! and schedule further events. Ties in firing time are broken by
//! insertion order, which makes runs bit-for-bit reproducible.
//!
//! # Scheduler layering (DESIGN.md §13)
//!
//! Two structures share one total order `(time, seq)`:
//!
//! * the **same-instant lane** — a FIFO for events scheduled at the
//!   *current* virtual instant (`schedule_now`, zero-delay
//!   `schedule_in`). The pipelined engine defers a callback per fragment
//!   this way; a `VecDeque` push/pop is far cheaper than any priority
//!   structure, and the lane always drains before time can advance;
//! * the **calendar queue** ([`crate::calq::CalendarQueue`], shared
//!   with the sharded engine) — future events bucketed by virtual-time
//!   epoch with a sorted active run and an adaptive overflow rung; the
//!   driver's tiebreak key is a globally monotonic sequence number, so
//!   ties in firing time break by insertion order.
//!
//! Event payloads live in a generation-tagged **arena** (`Slab`): a
//! closure small enough for the inline slot area is stored in place and
//! never individually boxed; larger closures fall back to one heap
//! allocation. `EventId` carries (slot, generation), so cancellation is
//! an O(1) tombstone — the payload drops immediately and the queue entry
//! is skipped when it surfaces.
//!
//! The old `BinaryHeap` scheduler this replaces is preserved as the
//! reference model in `simcore/tests/event_queue_prop.rs`, which drives
//! both through randomized schedule/cancel/run interleavings and
//! requires identical pop order and cancellation observability.

use crate::calq::CalendarQueue;
use crate::time::SimTime;
use crate::trace::Tracer;
use std::collections::VecDeque;
use std::mem::MaybeUninit;

/// Identifier of a scheduled event, usable for cancellation. Packs an
/// arena slot index (low 32 bits) and that slot's generation at
/// scheduling time (high 32 bits), so a stale id — fired, cancelled, or
/// from a recycled slot — can never cancel a live event.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

impl EventId {
    fn new(slot: u32, gen: u32) -> Self {
        EventId(((gen as u64) << 32) | slot as u64)
    }
    fn slot(self) -> u32 {
        self.0 as u32
    }
    #[inline]
    fn gen(self) -> u32 {
        (self.0 >> 32) as u32
    }
}

// ---------------------------------------------------------------------
// Arena slots
// ---------------------------------------------------------------------

/// Inline payload area per slot, sized for the engine's completion
/// closures (a unit buffer, a couple of `Ptr`s, counters and a nested
/// callback). Anything larger — or over-aligned — falls back to one
/// heap allocation for that event only.
const INLINE_WORDS: usize = 8;
/// Bytes of in-slot closure storage: closures up to this size (and
/// 16-byte alignment) are stored in the arena, never boxed.
pub const INLINE_PAYLOAD_BYTES: usize = INLINE_WORDS * 16;

/// 16-byte-aligned raw storage. `MaybeUninit<u128>` is `Copy`, so a
/// payload image can be moved to the stack with a plain assignment.
type InlineBuf = [MaybeUninit<u128>; INLINE_WORDS];

const EMPTY_BUF: InlineBuf = [MaybeUninit::uninit(); INLINE_WORDS];

#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum SlotState {
    Free,
    Scheduled,
    /// Cancelled: payload already dropped; the queue entry still points
    /// here and frees the slot when it surfaces.
    Tombstone,
}

/// Call the payload at `p` (a by-value copy on the caller's stack).
type CallFn<W> = unsafe fn(*mut u8, &mut Sim<W>);
/// Drop the payload at `p` in place without calling it.
type DropFn = unsafe fn(*mut u8);

unsafe fn call_inline<W, F: FnOnce(&mut Sim<W>)>(p: *mut u8, sim: &mut Sim<W>) {
    // SAFETY: caller passes a 16-aligned buffer holding a valid F,
    // ownership of which transfers to this read.
    let f = unsafe { p.cast::<F>().read() };
    f(sim)
}

unsafe fn drop_inline<F>(p: *mut u8) {
    // SAFETY: caller passes a buffer holding a valid F it will not
    // touch again.
    unsafe { std::ptr::drop_in_place(p.cast::<F>()) }
}

unsafe fn call_boxed<W, F: FnOnce(&mut Sim<W>)>(p: *mut u8, sim: &mut Sim<W>) {
    // SAFETY: the buffer holds a raw Box pointer produced by
    // Box::into_raw in Slab::alloc; this is the unique owner.
    let b = unsafe { Box::from_raw(p.cast::<*mut F>().read()) };
    (*b)(sim)
}

unsafe fn drop_boxed<F>(p: *mut u8) {
    // SAFETY: as in call_boxed; dropping the Box drops the closure.
    drop(unsafe { Box::from_raw(p.cast::<*mut F>().read()) })
}

/// One arena slot. Fixed-size plain data: the closure (or the Box
/// pointer to it) lives in `data`, typed only through the `call`/`drop_`
/// function pointers recorded when the event was scheduled.
struct Slot<W> {
    state: SlotState,
    gen: u32,
    /// Bytes of `data` that carry the payload (closure size, or pointer
    /// size for the boxed fallback) — only this much is copied out.
    size: u16,
    next_free: u32,
    call: CallFn<W>,
    drop_payload: DropFn,
    data: InlineBuf,
}

/// Generation-tagged slab of event slots with an intrusive free list.
struct Slab<W> {
    slots: Vec<Slot<W>>,
    free_head: u32,
}

const NO_SLOT: u32 = u32::MAX;

impl<W> Slab<W> {
    fn new() -> Self {
        Slab {
            slots: Vec::new(),
            free_head: NO_SLOT,
        }
    }

    /// Store `f` and return its slot index. O(1): pops the free list or
    /// appends; the closure is written in place when it fits inline.
    fn alloc<F: FnOnce(&mut Sim<W>) + 'static>(&mut self, f: F) -> u32 {
        let idx = match self.free_head {
            NO_SLOT => {
                assert!(self.slots.len() < NO_SLOT as usize, "event arena exhausted");
                self.slots.push(Slot {
                    state: SlotState::Free,
                    gen: 0,
                    size: 0,
                    next_free: NO_SLOT,
                    call: call_inline::<W, fn(&mut Sim<W>)>,
                    drop_payload: drop_inline::<fn(&mut Sim<W>)>,
                    data: EMPTY_BUF,
                });
                (self.slots.len() - 1) as u32
            }
            head => {
                self.free_head = self.slots[head as usize].next_free;
                head
            }
        };
        let slot = &mut self.slots[idx as usize];
        debug_assert_eq!(slot.state, SlotState::Free);
        let p = slot.data.as_mut_ptr().cast::<u8>();
        if size_of::<F>() <= INLINE_PAYLOAD_BYTES && align_of::<F>() <= align_of::<InlineBuf>() {
            // SAFETY: the inline area is big and aligned enough for F
            // (just checked); the slot is free, so nothing is
            // overwritten that still owns a payload.
            unsafe { p.cast::<F>().write(f) };
            slot.size = size_of::<F>() as u16;
            slot.call = call_inline::<W, F>;
            slot.drop_payload = drop_inline::<F>;
        } else {
            let raw = Box::into_raw(Box::new(f));
            // SAFETY: a thin raw pointer always fits the inline area.
            unsafe { p.cast::<*mut F>().write(raw) };
            slot.size = size_of::<*mut F>() as u16;
            slot.call = call_boxed::<W, F>;
            slot.drop_payload = drop_boxed::<F>;
        }
        slot.state = SlotState::Scheduled;
        idx
    }

    #[inline]
    fn free(&mut self, idx: u32) {
        debug_assert!((idx as usize) < self.slots.len());
        // SAFETY: callers pass indices handed out by `alloc`, and the
        // slots vec never shrinks.
        let slot = unsafe { self.slots.get_unchecked_mut(idx as usize) };
        debug_assert_ne!(slot.state, SlotState::Free);
        slot.state = SlotState::Free;
        slot.gen = slot.gen.wrapping_add(1);
        slot.next_free = self.free_head;
        self.free_head = idx;
    }

    fn gen(&self, idx: u32) -> u32 {
        self.slots[idx as usize].gen
    }
}

impl<W> Drop for Slab<W> {
    fn drop(&mut self) {
        // Pending payloads (events never fired) still own resources;
        // tombstones and free slots were already dropped.
        for slot in &mut self.slots {
            if slot.state == SlotState::Scheduled {
                // SAFETY: the slot owns a valid payload and is dropped
                // exactly once here.
                unsafe { (slot.drop_payload)(slot.data.as_mut_ptr().cast::<u8>()) };
            }
        }
    }
}

// ---------------------------------------------------------------------
// The driver
// ---------------------------------------------------------------------

/// The simulation driver: virtual clock + event queue + world state.
pub struct Sim<W> {
    now: SimTime,
    slab: Slab<W>,
    cal: CalendarQueue<u32>,
    /// Fast lane for events scheduled at the *current* instant
    /// (`schedule_now` and zero-delay `schedule_in`). The lane drains
    /// before virtual time can advance, so entries always fire at
    /// `now`, in FIFO = insertion order: only the arena slot needs
    /// storing. No stored seq is needed for arbitration either — any
    /// calendar entry at time == `now` predates (hence outranks) every
    /// lane entry, and one at time > `now` never outranks them.
    lane: VecDeque<u32>,
    next_seq: u64,
    executed: u64,
    /// The simulated world. Public so event closures can reach it.
    pub world: W,
    /// Virtual-time trace recorder (spans, instants, byte counters).
    /// Public so models can record from inside event closures.
    pub trace: Tracer,
}

impl<W> Sim<W> {
    /// Create a simulation at t = 0 around `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            slab: Slab::new(),
            cal: CalendarQueue::new(),
            lane: VecDeque::new(),
            next_seq: 0,
            executed: 0,
            world,
            trace: Tracer::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending (cancelled-but-unswept entries
    /// included, matching the pre-calendar scheduler).
    pub fn pending_events(&self) -> usize {
        self.cal.len() + self.lane.len()
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past
    /// is a logic error in the models and panics in debug builds; in
    /// release it clamps to `now` to keep long runs alive.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let slot = self.slab.alloc(f);
        if at == self.now {
            // Same-instant events take the FIFO fast lane. The lane
            // drains before time advances (see `step`), so "at the
            // current instant" stays true for its whole lifetime.
            self.lane.push_back(slot);
        } else {
            let seq = self.next_seq;
            self.next_seq += 1;
            self.cal.insert(at, seq, slot);
        }
        EventId::new(slot, self.slab.gen(slot))
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` to run "immediately" (at the current time, after all
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a previously scheduled event: O(1). The payload drops
    /// immediately; the queue entry becomes a tombstone swept when it
    /// surfaces. Cancelling an event that has already fired (or was
    /// already cancelled) is a no-op — the generation tag in the id
    /// catches slot reuse.
    pub fn cancel(&mut self, id: EventId) {
        let idx = id.slot();
        let Some(slot) = self.slab.slots.get_mut(idx as usize) else {
            return;
        };
        if slot.gen != id.gen() || slot.state != SlotState::Scheduled {
            return;
        }
        // SAFETY: the slot holds a valid payload (state Scheduled) and
        // transitions to Tombstone, so it is dropped exactly once.
        unsafe { (slot.drop_payload)(slot.data.as_mut_ptr().cast::<u8>()) };
        slot.state = SlotState::Tombstone;
    }

    /// Consume the queue entry for `slot_idx`: sweep it if it was
    /// tombstoned by `cancel`, otherwise move the payload out, free the
    /// slot, and run it. The payload image is copied to the stack first
    /// so the closure may freely schedule (and thereby grow the arena)
    /// while it runs.
    #[inline]
    fn fire(&mut self, slot_idx: u32) {
        debug_assert!((slot_idx as usize) < self.slab.slots.len());
        // SAFETY: every slot index stored in the lane or calendar was
        // produced by Slab::alloc and the slots vec never shrinks.
        let slot = unsafe { self.slab.slots.get_unchecked_mut(slot_idx as usize) };
        if slot.state == SlotState::Tombstone {
            self.slab.free(slot_idx);
            return;
        }
        debug_assert_eq!(slot.state, SlotState::Scheduled);
        let call = slot.call;
        let size = slot.size as usize;
        let mut image = EMPTY_BUF;
        // Fixed-size copies: the payload image moves with one or eight
        // vector loads instead of a dynamic-length memcpy call.
        if size <= 16 {
            image[0] = slot.data[0];
        } else {
            image = slot.data;
        }
        self.slab.free(slot_idx);
        self.executed += 1;
        // SAFETY: `image` now owns the payload (the slot was freed
        // without dropping it); `call` consumes it exactly once.
        unsafe { call(image.as_mut_ptr().cast::<u8>(), self) };
    }

    /// Execute a single event. Returns `false` when the queue is empty.
    ///
    /// The globally next event is picked across the calendar and the
    /// same-instant lane, preserving the exact (time, insertion-order)
    /// total order of the original heap implementation: a calendar
    /// entry at time == `now` predates every lane entry (the lane
    /// drains before time advances), so it fires first; one at a later
    /// time waits for the lane.
    pub fn step(&mut self) -> bool {
        loop {
            let executed_before = self.executed;
            if !self.lane.is_empty() {
                if self.lane_wins() {
                    let slot = self.lane.pop_front().expect("lane checked non-empty");
                    self.fire(slot);
                } else {
                    // lane_wins is only false when a calendar head
                    // exists (at `now`, inserted before the lane's
                    // entries).
                    let (at, _, slot) = self.cal.pop_head();
                    debug_assert!(at == self.now);
                    self.fire(slot);
                }
            } else if self.cal.peek().is_some() {
                let (at, _, slot) = self.cal.pop_head();
                debug_assert!(at >= self.now, "time went backwards");
                self.now = at;
                self.fire(slot);
            } else {
                return false;
            }
            // A tombstone sweep executes nothing: keep going until a
            // real event fires or the queue drains.
            if self.executed > executed_before {
                return true;
            }
        }
    }

    /// Fire every event currently in (or appended to) the same-instant
    /// lane. Safe without re-consulting the calendar: entries can only
    /// enter the calendar with `at` strictly greater than `now`, so
    /// nothing scheduled while the lane drains can outrank it.
    #[inline]
    fn drain_lane(&mut self) {
        while let Some(slot) = self.lane.pop_front() {
            self.fire(slot);
        }
    }

    /// True when the lane front outranks the calendar head (the lane
    /// may then drain completely, see `drain_lane`). A calendar entry
    /// at `now` was necessarily inserted before any current lane entry
    /// (the lane drains before time advances), so time alone decides.
    /// Leaves the calendar's head positioned, so `pop_head` is valid
    /// afterwards.
    #[inline]
    fn lane_wins(&mut self) -> bool {
        match self.cal.peek() {
            None => true,
            Some((hat, _)) => hat > self.now,
        }
    }

    /// Run until the queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        loop {
            if !self.lane.is_empty() {
                if self.lane_wins() {
                    self.drain_lane();
                    continue;
                }
            } else if self.cal.peek().is_none() {
                return self.now;
            }
            // Calendar turn: either the lane is empty or the calendar
            // head (same time, earlier insertion) outranks it.
            let (at, _, slot) = self.cal.pop_head();
            debug_assert!(at >= self.now, "time went backwards");
            self.now = at;
            self.fire(slot);
        }
    }

    /// Run until `predicate(&world)` holds or the queue drains. Returns
    /// `true` if the predicate was satisfied.
    pub fn run_until(&mut self, predicate: impl Fn(&W) -> bool) -> bool {
        loop {
            if predicate(&self.world) {
                return true;
            }
            if !self.step() {
                return predicate(&self.world);
            }
        }
    }

    /// Run with a hard virtual-time limit. Returns the final virtual
    /// time once the queue drains before the deadline; panics if the
    /// limit is hit (a stalled protocol in tests should fail loudly).
    pub fn run_with_deadline(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let next = if self.lane.is_empty() {
                match self.cal.peek() {
                    Some((at, _)) => at,
                    None => return self.now,
                }
            } else {
                self.now
            };
            assert!(
                next <= deadline,
                "simulation exceeded deadline {deadline:?} (next event at {next:?}, {} executed)",
                self.executed
            );
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), tag));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for tag in ['x', 'y', 'z'] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(1), |s| {
            s.world += 1;
            s.schedule_in(SimTime::from_nanos(9), |s| s.world += 10);
        });
        let end = sim.run();
        assert_eq!(sim.world, 11);
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn cancellation() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_nanos(5), |s| s.world += 1);
        sim.schedule_at(SimTime::from_nanos(6), |s| s.world += 100);
        sim.cancel(id);
        sim.run();
        assert_eq!(sim.world, 100);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Sim::new(0u32);
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_nanos(i), move |s| s.world += 1);
        }
        assert!(sim.run_until(|w| *w == 4));
        assert_eq!(sim.world, 4);
        assert_eq!(sim.now().as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeded deadline")]
    fn deadline_panics_on_runaway() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_millis(10), |_| {});
        sim.run_with_deadline(SimTime::from_micros(1));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_nanos(1), |s| s.world += 1);
        sim.run();
        assert_eq!(sim.world, 1);
        sim.cancel(id); // already fired: must not poison later events
        sim.schedule_at(SimTime::from_nanos(2), |s| s.world += 10);
        sim.run();
        assert_eq!(sim.world, 11);
    }

    #[test]
    fn schedule_now_runs_after_current_event() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_nanos(5), |s| {
            s.world.push(1);
            s.schedule_now(|s| s.world.push(3));
            s.world.push(2);
        });
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now().as_nanos(), 5);
    }

    #[test]
    fn deadline_returns_final_time_when_drained() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(3), |s| s.world += 1);
        sim.schedule_at(SimTime::from_nanos(7), |s| {
            s.world += 1;
            s.schedule_now(|s| s.world += 1); // lane event at the deadline edge
        });
        let end = sim.run_with_deadline(SimTime::from_nanos(7));
        assert_eq!(end.as_nanos(), 7, "returns final virtual time, not a bool");
        assert_eq!(sim.world, 3);
        // Draining again without new events is a no-op at the same time.
        assert_eq!(sim.run_with_deadline(SimTime::from_nanos(7)), end);
    }

    #[test]
    fn lane_respects_calendar_insertion_order_at_same_instant() {
        // 'b' is calendar-scheduled for t=5 before 'a' fires; 'c' enters
        // the same-instant lane while 'a' runs. Global insertion order
        // at t=5 is a(0), b(1), c(2) — the lane must not let 'c' jump
        // 'b'.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |s| {
                log.borrow_mut().push('a');
                let log = Rc::clone(&log);
                s.schedule_now(move |_| log.borrow_mut().push('c'));
            });
        }
        {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push('b'));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn lane_events_can_be_cancelled() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(1), |s| {
            let id = s.schedule_now(|s| s.world += 100);
            s.schedule_now(|s| s.world += 1);
            s.cancel(id);
        });
        sim.run();
        assert_eq!(sim.world, 1);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn executed_counter() {
        let mut sim = Sim::new(());
        sim.schedule_now(|_| {});
        sim.schedule_now(|_| {});
        sim.run();
        assert_eq!(sim.executed_events(), 2);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn far_future_overflow_and_re_anchor() {
        // Mix of events inside the initial lap (32 ns × 1024 buckets ≈
        // 32 µs) and far beyond it, interleaved out of order: the
        // overflow rung must re-anchor — possibly several times — and
        // still fire in exact time order.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        let times: Vec<u64> = vec![
            5_000_000_000, // 5 s
            40,
            2_000_000, // 2 ms
            100_000,   // within first lap
            5_000_000_000 + 7,
            2_000_000 + 1,
            33_000, // just beyond a 32 µs lap
        ];
        for &t in &times {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(t));
        }
        sim.run();
        let mut expect = times.clone();
        expect.sort_unstable();
        assert_eq!(*log.borrow(), expect);
    }

    #[test]
    fn re_anchor_keeps_scheduling_live() {
        // After a wide re-anchor (second lap has coarse buckets), new
        // fine-grained events must still order correctly against the
        // coarse lap's entries.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for &t in &[10_000_000_000u64, 20_000_000_000] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |s| {
                log.borrow_mut().push(t);
                // Chain a short-delay event from deep inside the run.
                let log = Rc::clone(&log);
                s.schedule_in(SimTime::from_nanos(3), move |_| {
                    log.borrow_mut().push(t + 3);
                });
            });
        }
        sim.run();
        assert_eq!(
            *log.borrow(),
            vec![
                10_000_000_000,
                10_000_000_003,
                20_000_000_000,
                20_000_000_003
            ]
        );
    }

    #[test]
    fn cancel_far_future_overflow_event() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_millis(500), |s| s.world += 1);
        sim.schedule_at(SimTime::from_millis(700), |s| s.world += 100);
        sim.cancel(id);
        sim.run();
        assert_eq!(sim.world, 100);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn stale_id_from_recycled_slot_is_noop() {
        let mut sim = Sim::new(0u32);
        let stale = sim.schedule_at(SimTime::from_nanos(1), |s| s.world += 1);
        sim.run();
        // The slot was freed; this schedule recycles it with a new
        // generation.
        let _live = sim.schedule_at(SimTime::from_nanos(2), |s| s.world += 10);
        sim.cancel(stale); // must NOT cancel the recycled slot's event
        sim.run();
        assert_eq!(sim.world, 11);
    }

    #[test]
    fn double_cancel_is_noop() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_nanos(5), |s| s.world += 1);
        sim.schedule_at(SimTime::from_nanos(6), |s| s.world += 100);
        sim.cancel(id);
        sim.cancel(id);
        sim.run();
        assert_eq!(sim.world, 100);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn large_closures_fall_back_to_boxing() {
        // A closure bigger than the inline payload area must round-trip
        // through the boxed fallback, including cancellation (payload
        // drop) without running.
        let big = [7u8; 4 * INLINE_PAYLOAD_BYTES];
        let payload = vec![1u32; 100];
        let mut sim = Sim::new(0u64);
        sim.schedule_at(SimTime::from_nanos(1), move |s| {
            s.world += big.iter().map(|&b| b as u64).sum::<u64>();
            s.world += payload.iter().sum::<u32>() as u64;
        });
        let big2 = [1u8; 4 * INLINE_PAYLOAD_BYTES];
        let cancelled = sim.schedule_at(SimTime::from_nanos(2), move |s| {
            s.world += big2.iter().map(|&b| b as u64).sum::<u64>();
        });
        sim.cancel(cancelled);
        sim.run();
        assert_eq!(sim.world, 7 * 4 * INLINE_PAYLOAD_BYTES as u64 + 100);
    }

    #[test]
    fn pending_payloads_drop_with_the_sim() {
        // Payloads still scheduled when the Sim drops must be released
        // (the arena owns them; miri would flag the leak).
        struct Count(Rc<RefCell<u32>>);
        impl Drop for Count {
            fn drop(&mut self) {
                *self.0.borrow_mut() += 1;
            }
        }
        let drops = Rc::new(RefCell::new(0));
        {
            let mut sim = Sim::new(());
            let c1 = Count(Rc::clone(&drops));
            let c2 = Count(Rc::clone(&drops));
            let big = [0u8; 4 * INLINE_PAYLOAD_BYTES];
            sim.schedule_at(SimTime::from_nanos(5), move |_| drop(c1));
            sim.schedule_at(SimTime::from_nanos(6), move |_| {
                drop(c2);
                let _ = big;
            });
        }
        assert_eq!(*drops.borrow(), 2);
    }

    #[test]
    fn dense_same_bucket_burst_stays_fifo() {
        // Many events inside one 32 ns bucket, scheduled out of order,
        // with same-time ties: exact (time, seq) order required.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        let script = [(9u64, 'a'), (3, 'b'), (9, 'c'), (1, 'd'), (3, 'e')];
        for (t, tag) in script {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['d', 'b', 'e', 'a', 'c']);
    }
}
