//! The event queue and simulation driver.
//!
//! A `Sim<W>` owns a user-supplied world `W` (the memory pools, GPUs,
//! NICs and protocol state of the run) and a priority queue of events.
//! An event is a boxed `FnOnce(&mut Sim<W>)`: when it fires it may mutate
//! the world and schedule further events. Ties in firing time are broken
//! by insertion order, which makes runs bit-for-bit reproducible.

use crate::hash::DetHashSet;
use crate::time::SimTime;
use crate::trace::Tracer;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};

/// Identifier of a scheduled event, usable for cancellation.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct EventId(u64);

type EventFn<W> = Box<dyn FnOnce(&mut Sim<W>)>;

struct Scheduled<W> {
    at: SimTime,
    seq: u64,
    id: EventId,
    run: EventFn<W>,
}

impl<W> PartialEq for Scheduled<W> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<W> Eq for Scheduled<W> {}
impl<W> PartialOrd for Scheduled<W> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}
impl<W> Ord for Scheduled<W> {
    // Reversed: BinaryHeap is a max-heap and we want the earliest event on
    // top. Ties break by ascending sequence number (FIFO of insertion).
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

/// A same-instant event parked in the FIFO fast lane instead of the
/// heap. Lane entries always fire at the current virtual time, so only
/// the tie-breaking sequence number needs storing.
struct LaneEvent<W> {
    seq: u64,
    id: EventId,
    run: EventFn<W>,
}

/// The simulation driver: virtual clock + event queue + world state.
pub struct Sim<W> {
    now: SimTime,
    queue: BinaryHeap<Scheduled<W>>,
    /// Fast lane for events scheduled at the *current* instant
    /// (`schedule_now` and zero-delay `schedule_in`). The pipelined
    /// engine defers a callback per fragment this way; a `VecDeque`
    /// push/pop is much cheaper than churning the heap, and the lane
    /// always drains before virtual time can advance.
    lane: VecDeque<LaneEvent<W>>,
    cancelled: DetHashSet<EventId>,
    next_seq: u64,
    executed: u64,
    /// The simulated world. Public so event closures can reach it.
    pub world: W,
    /// Virtual-time trace recorder (spans, instants, byte counters).
    /// Public so models can record from inside event closures.
    pub trace: Tracer,
}

impl<W> Sim<W> {
    /// Create a simulation at t = 0 around `world`.
    pub fn new(world: W) -> Self {
        Sim {
            now: SimTime::ZERO,
            queue: BinaryHeap::new(),
            lane: VecDeque::new(),
            cancelled: DetHashSet::default(),
            next_seq: 0,
            executed: 0,
            world,
            trace: Tracer::new(),
        }
    }

    /// Current virtual time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    pub fn executed_events(&self) -> u64 {
        self.executed
    }

    /// Number of events still pending.
    pub fn pending_events(&self) -> usize {
        self.queue.len() + self.lane.len()
    }

    /// Schedule `f` to run at absolute time `at`. Scheduling in the past
    /// is a logic error in the models and panics in debug builds; in
    /// release it clamps to `now` to keep long runs alive.
    pub fn schedule_at(&mut self, at: SimTime, f: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        debug_assert!(
            at >= self.now,
            "scheduling into the past: {at:?} < {:?}",
            self.now
        );
        let at = at.max(self.now);
        let id = EventId(self.next_seq);
        if at == self.now {
            // Same-instant events take the FIFO fast lane. The lane
            // drains before time advances (see `step`), so "at the
            // current instant" stays true for its whole lifetime.
            self.lane.push_back(LaneEvent {
                seq: self.next_seq,
                id,
                run: Box::new(f),
            });
        } else {
            self.queue.push(Scheduled {
                at,
                seq: self.next_seq,
                id,
                run: Box::new(f),
            });
        }
        self.next_seq += 1;
        id
    }

    /// Schedule `f` to run `delay` after the current time.
    pub fn schedule_in(
        &mut self,
        delay: SimTime,
        f: impl FnOnce(&mut Sim<W>) + 'static,
    ) -> EventId {
        self.schedule_at(self.now + delay, f)
    }

    /// Schedule `f` to run "immediately" (at the current time, after all
    /// events already queued for this instant).
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Sim<W>) + 'static) -> EventId {
        self.schedule_at(self.now, f)
    }

    /// Cancel a previously scheduled event. Cancelling an event that has
    /// already fired (or was already cancelled) is a no-op.
    pub fn cancel(&mut self, id: EventId) {
        self.cancelled.insert(id);
    }

    /// Execute a single event. Returns `false` when the queue is empty.
    pub fn step(&mut self) -> bool {
        loop {
            // Pick the globally next event across the heap and the
            // same-instant lane. Lane entries sit at `now`; the heap may
            // also hold events at `now` that were scheduled *earlier*
            // (lower seq), so the lane only wins when the heap's head is
            // in the future or was inserted after the lane's head. This
            // preserves the exact (time, insertion-order) total order of
            // the plain-heap implementation.
            let use_lane = match (self.lane.front(), self.queue.peek()) {
                (Some(l), Some(h)) => h.at > self.now || h.seq > l.seq,
                (Some(_), None) => true,
                (None, Some(_)) => false,
                (None, None) => {
                    // Drained: any tombstones for already-fired or
                    // never-to-fire events are dead weight now.
                    if !self.cancelled.is_empty() {
                        self.cancelled.clear();
                    }
                    return false;
                }
            };
            if use_lane {
                let ev = self.lane.pop_front().expect("lane checked non-empty");
                // While no cancellations are outstanding (the common
                // case) the probe is a single branch, not a hash lookup.
                if !self.cancelled.is_empty() && self.cancelled.remove(&ev.id) {
                    continue;
                }
                self.executed += 1;
                (ev.run)(self);
            } else {
                let ev = self.queue.pop().expect("heap checked non-empty");
                if !self.cancelled.is_empty() && self.cancelled.remove(&ev.id) {
                    continue;
                }
                debug_assert!(ev.at >= self.now, "time went backwards");
                self.now = ev.at;
                self.executed += 1;
                (ev.run)(self);
            }
            return true;
        }
    }

    /// Run until the queue drains. Returns the final virtual time.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until `predicate(&world)` holds or the queue drains. Returns
    /// `true` if the predicate was satisfied.
    pub fn run_until(&mut self, predicate: impl Fn(&W) -> bool) -> bool {
        loop {
            if predicate(&self.world) {
                return true;
            }
            if !self.step() {
                return predicate(&self.world);
            }
        }
    }

    /// Run with a hard virtual-time limit. Returns the final virtual
    /// time once the queue drains before the deadline; panics if the
    /// limit is hit (a stalled protocol in tests should fail loudly).
    pub fn run_with_deadline(&mut self, deadline: SimTime) -> SimTime {
        loop {
            let next = if self.lane.is_empty() {
                match self.queue.peek() {
                    Some(e) => e.at,
                    None => return self.now,
                }
            } else {
                self.now
            };
            assert!(
                next <= deadline,
                "simulation exceeded deadline {deadline:?} (next event at {next:?}, {} executed)",
                self.executed
            );
            self.step();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn events_fire_in_time_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for (t, tag) in [(30u64, 'c'), (10, 'a'), (20, 'b')] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(t), move |s| {
                log.borrow_mut().push((s.now().as_nanos(), tag));
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![(10, 'a'), (20, 'b'), (30, 'c')]);
    }

    #[test]
    fn ties_break_by_insertion_order() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        for tag in ['x', 'y', 'z'] {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push(tag));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['x', 'y', 'z']);
    }

    #[test]
    fn events_can_schedule_events() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(1), |s| {
            s.world += 1;
            s.schedule_in(SimTime::from_nanos(9), |s| s.world += 10);
        });
        let end = sim.run();
        assert_eq!(sim.world, 11);
        assert_eq!(end.as_nanos(), 10);
    }

    #[test]
    fn cancellation() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_nanos(5), |s| s.world += 1);
        sim.schedule_at(SimTime::from_nanos(6), |s| s.world += 100);
        sim.cancel(id);
        sim.run();
        assert_eq!(sim.world, 100);
    }

    #[test]
    fn run_until_predicate() {
        let mut sim = Sim::new(0u32);
        for i in 1..=10u64 {
            sim.schedule_at(SimTime::from_nanos(i), move |s| s.world += 1);
        }
        assert!(sim.run_until(|w| *w == 4));
        assert_eq!(sim.world, 4);
        assert_eq!(sim.now().as_nanos(), 4);
    }

    #[test]
    #[should_panic(expected = "exceeded deadline")]
    fn deadline_panics_on_runaway() {
        let mut sim = Sim::new(());
        sim.schedule_at(SimTime::from_millis(10), |_| {});
        sim.run_with_deadline(SimTime::from_micros(1));
    }

    #[test]
    fn cancel_after_fire_is_noop() {
        let mut sim = Sim::new(0u32);
        let id = sim.schedule_at(SimTime::from_nanos(1), |s| s.world += 1);
        sim.run();
        assert_eq!(sim.world, 1);
        sim.cancel(id); // already fired: must not poison later events
        sim.schedule_at(SimTime::from_nanos(2), |s| s.world += 10);
        sim.run();
        assert_eq!(sim.world, 11);
    }

    #[test]
    fn schedule_now_runs_after_current_event() {
        let mut sim = Sim::new(Vec::<u32>::new());
        sim.schedule_at(SimTime::from_nanos(5), |s| {
            s.world.push(1);
            s.schedule_now(|s| s.world.push(3));
            s.world.push(2);
        });
        sim.run();
        assert_eq!(sim.world, vec![1, 2, 3]);
        assert_eq!(sim.now().as_nanos(), 5);
    }

    #[test]
    fn deadline_returns_final_time_when_drained() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(3), |s| s.world += 1);
        sim.schedule_at(SimTime::from_nanos(7), |s| {
            s.world += 1;
            s.schedule_now(|s| s.world += 1); // lane event at the deadline edge
        });
        let end = sim.run_with_deadline(SimTime::from_nanos(7));
        assert_eq!(end.as_nanos(), 7, "returns final virtual time, not a bool");
        assert_eq!(sim.world, 3);
        // Draining again without new events is a no-op at the same time.
        assert_eq!(sim.run_with_deadline(SimTime::from_nanos(7)), end);
    }

    #[test]
    fn lane_respects_heap_insertion_order_at_same_instant() {
        // 'b' is heap-scheduled for t=5 before 'a' fires; 'c' enters the
        // same-instant lane while 'a' runs. Global insertion order at
        // t=5 is a(0), b(1), c(2) — the lane must not let 'c' jump 'b'.
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut sim = Sim::new(());
        {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |s| {
                log.borrow_mut().push('a');
                let log = Rc::clone(&log);
                s.schedule_now(move |_| log.borrow_mut().push('c'));
            });
        }
        {
            let log = Rc::clone(&log);
            sim.schedule_at(SimTime::from_nanos(5), move |_| log.borrow_mut().push('b'));
        }
        sim.run();
        assert_eq!(*log.borrow(), vec!['a', 'b', 'c']);
    }

    #[test]
    fn lane_events_can_be_cancelled() {
        let mut sim = Sim::new(0u32);
        sim.schedule_at(SimTime::from_nanos(1), |s| {
            let id = s.schedule_now(|s| s.world += 100);
            s.schedule_now(|s| s.world += 1);
            s.cancel(id);
        });
        sim.run();
        assert_eq!(sim.world, 1);
        assert_eq!(sim.pending_events(), 0);
    }

    #[test]
    fn executed_counter() {
        let mut sim = Sim::new(());
        sim.schedule_now(|_| {});
        sim.schedule_now(|_| {});
        sim.run();
        assert_eq!(sim.executed_events(), 2);
        assert_eq!(sim.pending_events(), 0);
    }
}
