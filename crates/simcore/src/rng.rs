//! Deterministic randomness for workloads and failure-injection tests.
//!
//! All stochastic inputs in the workspace (fill patterns, randomized
//! indexed layouts, contention arrival times) flow through a seeded
//! [`SimRng`], so every run of every benchmark and test is reproducible
//! from its seed. The generator is a self-contained xoshiro256**
//! seeded via SplitMix64 — no external crates, identical output on
//! every platform.

/// A small, fast, deterministic PRNG (xoshiro256** seeded by SplitMix64).
#[derive(Clone, Debug)]
pub struct SimRng {
    s: [u64; 4],
}

impl SimRng {
    /// Create a generator from a 64-bit seed.
    pub fn new(seed: u64) -> SimRng {
        // SplitMix64 expansion of the seed into the xoshiro state; this
        // is the canonical recommended seeding procedure.
        let mut x = seed;
        let mut next = || {
            x = x.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = x;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        };
        SimRng {
            s: [next(), next(), next(), next()],
        }
    }

    /// Next 64 uniformly random bits.
    pub fn next_u64(&mut self) -> u64 {
        let r = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        r
    }

    /// Uniform integer in `[lo, hi)`. Panics when the range is empty.
    pub fn range_u64(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(lo < hi, "empty range {lo}..{hi}");
        let span = hi - lo;
        // Debiased multiply-shift (Lemire); the span here is tiny
        // relative to 2^64 so one rejection round is essentially free.
        let threshold = span.wrapping_neg() % span;
        loop {
            let r = self.next_u64();
            let (hi128, lo128) = {
                let m = (r as u128) * (span as u128);
                ((m >> 64) as u64, m as u64)
            };
            if lo128 >= threshold {
                return lo + hi128;
            }
        }
    }

    /// Uniform `usize` in `[lo, hi)`.
    pub fn range(&mut self, lo: usize, hi: usize) -> usize {
        self.range_u64(lo as u64, hi as u64) as usize
    }

    /// Uniform `bool` with probability `p` of `true`.
    pub fn chance(&mut self, p: f64) -> bool {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64) < p
    }

    /// Fill a byte buffer with pseudo-random bytes.
    pub fn fill(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let last = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&last[..rem.len()]);
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.range(0, i + 1);
            items.swap(i, j);
        }
    }

    /// Pick a uniformly random element of a non-empty slice.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.range(0, items.len())]
    }

    /// Create an independent per-stream generator from a base seed and a
    /// stream id (a rank, a shard, a plan). The derivation mixes the id
    /// through SplitMix64's finalizer before reseeding, so streams for
    /// adjacent ids share no low-bit structure, and — crucially for the
    /// sharded engine — the stream for `(seed, rank)` is a pure function
    /// of those two values: the draw sequence a rank sees is identical
    /// however ranks are partitioned into shards or interleaved by the
    /// worker pool.
    pub fn for_stream(seed: u64, stream: u64) -> SimRng {
        let mut z = seed ^ stream.wrapping_mul(0x9E3779B97F4A7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        SimRng::new(z ^ (z >> 31))
    }
}

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> SimRng {
    SimRng::new(seed)
}

/// Fill a byte buffer with a reproducible pseudo-random pattern.
pub fn fill_bytes(seed: u64, buf: &mut [u8]) {
    let mut r = rng(seed);
    r.fill(buf);
}

/// A reproducible non-zero test pattern that encodes each byte's position,
/// handy for pinpointing *where* a pack/unpack went wrong (byte `i`
/// becomes `(i * 131 + 17) mod 255 + 1`, never zero so it can't be
/// confused with untouched memory).
pub fn position_pattern(buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((i.wrapping_mul(131).wrapping_add(17)) % 255 + 1) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_bytes(42, &mut a);
        fill_bytes(42, &mut b);
        assert_eq!(a, b);
        fill_bytes(43, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn position_pattern_has_no_zeros() {
        let mut buf = [0u8; 1024];
        position_pattern(&mut buf);
        assert!(buf.iter().all(|&b| b != 0));
        // And differs across nearby positions.
        assert_ne!(buf[0], buf[1]);
    }

    #[test]
    fn range_stays_in_bounds_and_covers() {
        let mut r = rng(7);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = r.range(3, 13);
            assert!((3..13).contains(&v));
            seen[v - 3] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of a small range hit");
    }

    #[test]
    fn stream_split_is_deterministic_and_independent() {
        let mut a = SimRng::for_stream(42, 7);
        let mut b = SimRng::for_stream(42, 7);
        assert_eq!(a.next_u64(), b.next_u64());
        // Different stream ids (and ids vs the base generator) diverge.
        let mut c = SimRng::for_stream(42, 8);
        let mut base = SimRng::new(42);
        let x = a.next_u64();
        assert_ne!(x, c.next_u64());
        assert_ne!(x, base.next_u64());
        // Adjacent ids don't collapse to shifted copies: compare a run.
        let mut d = SimRng::for_stream(42, 9);
        let run_c: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        let run_d: Vec<u64> = (0..8).map(|_| d.next_u64()).collect();
        assert_ne!(run_c, run_d);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = rng(11);
        let mut v: Vec<u32> = (0..100).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "a 100-element shuffle is not identity");
    }
}
