//! Deterministic randomness for workloads and failure-injection tests.
//!
//! All stochastic inputs in the workspace (fill patterns, randomized
//! indexed layouts, contention arrival times) flow through a seeded
//! [`rand::rngs::StdRng`], so every run of every benchmark and test is
//! reproducible from its seed.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Create a deterministic RNG from a 64-bit seed.
pub fn rng(seed: u64) -> StdRng {
    StdRng::seed_from_u64(seed)
}

/// Fill a byte buffer with a reproducible pseudo-random pattern.
pub fn fill_bytes(seed: u64, buf: &mut [u8]) {
    let mut r = rng(seed);
    r.fill(buf);
}

/// A reproducible non-zero test pattern that encodes each byte's position,
/// handy for pinpointing *where* a pack/unpack went wrong (byte `i`
/// becomes `(i * 131 + 17) mod 255 + 1`, never zero so it can't be
/// confused with untouched memory).
pub fn position_pattern(buf: &mut [u8]) {
    for (i, b) in buf.iter_mut().enumerate() {
        *b = ((i.wrapping_mul(131).wrapping_add(17)) % 255 + 1) as u8;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn seeded_rng_is_deterministic() {
        let mut a = [0u8; 64];
        let mut b = [0u8; 64];
        fill_bytes(42, &mut a);
        fill_bytes(42, &mut b);
        assert_eq!(a, b);
        fill_bytes(43, &mut b);
        assert_ne!(a, b);
    }

    #[test]
    fn position_pattern_has_no_zeros() {
        let mut buf = [0u8; 1024];
        position_pattern(&mut buf);
        assert!(buf.iter().all(|&b| b != 0));
        // And differs across nearby positions.
        assert_ne!(buf[0], buf[1]);
    }
}
