//! Small online statistics used by the benchmark harnesses to summarize
//! repeated ping-pong iterations.

use crate::time::SimTime;

/// Streaming min/max/mean/stddev accumulator (Welford's algorithm).
#[derive(Clone, Debug, Default)]
pub struct Summary {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Summary {
    pub fn new() -> Self {
        Summary {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn add_time(&mut self, t: SimTime) {
        self.add(t.as_secs_f64());
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        self.mean
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            f64::NAN
        } else {
            self.max
        }
    }

    /// Sample standard deviation.
    pub fn stddev(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            (self.m2 / (self.n - 1) as f64).sqrt()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basics() {
        let mut s = Summary::new();
        for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
            s.add(x);
        }
        assert_eq!(s.count(), 8);
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
        // Sample stddev of this classic dataset is ~2.138.
        assert!((s.stddev() - 2.13809).abs() < 1e-4);
    }

    #[test]
    fn empty_summary() {
        let s = Summary::new();
        assert!(s.min().is_nan());
        assert!(s.max().is_nan());
        assert_eq!(s.stddev(), 0.0);
    }
}
