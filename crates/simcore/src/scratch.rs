//! Thread-local recycling of `CopyOp` unit buffers.
//!
//! The fragment pipeline needs an *owned* `Vec<CopyOp>` per in-flight
//! kernel (the completion event fires long after the engine has moved on
//! to the next fragment), so a purely borrowed API can't make the hot
//! path allocation-free by itself. Instead, the engine takes cleared
//! buffers from a thread-local shelf and the kernel-completion event
//! returns them, so steady-state streaming reuses the same few
//! allocations no matter how many fragments flow through.
//!
//! Retention is bounded two ways (the shelf once grew to a 9468-unit
//! high-water mark with nothing ever trimmed):
//!
//! * a **high-water cap** ([`SHELF_CAP_UNITS`]): a returned buffer that
//!   would push the *idle* total past the cap is dropped instead
//!   (counted in `trimmed`/`trimmed_units`). The one exception is a
//!   return to an empty shelf — a single working buffer bigger than the
//!   cap is the workload's legitimate footprint, and dropping it would
//!   force a fresh allocation every cycle;
//! * a **decay on take** ([`SHELF_DECAY_TAKES`]): the coldest shelved
//!   buffer is dropped once it has sat idle through that many takes
//!   (counted in `decayed`), so a burst's buffers don't linger after
//!   the workload shrinks.
//!
//! The shelf also counts its traffic ([`ScratchStats`]): the
//! `hotpath_wallclock` harness uses `fresh` vs `recycled` as an
//! allocation-pressure proxy and asserts the trim policy engages, since
//! the workspace has no global allocator hooks.

use crate::par::CopyOp;
use std::cell::RefCell;

/// Maximum number of idle buffers kept on the shelf. The pipeline keeps
/// at most a handful of fragments in flight, so this is generous; extra
/// returns are dropped (and counted) instead of hoarding memory.
const SHELF_CAP: usize = 64;

/// High-water cap on the total capacity (in `CopyOp` units) resting
/// idle on the shelf. One unit is 24 bytes, so this bounds idle shelf
/// memory to ~192 KiB per thread.
pub const SHELF_CAP_UNITS: u64 = 8192;

/// A shelved buffer untouched for this many takes is dropped: the
/// workload that needed it has moved on.
pub const SHELF_DECAY_TAKES: u64 = 256;

/// Counters describing shelf traffic since the last [`reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers handed out by [`take_units_buf`].
    pub takes: u64,
    /// Hand-outs that had to heap-allocate a new `Vec` (shelf empty).
    pub fresh: u64,
    /// Hand-outs served from the shelf without allocating.
    pub recycled: u64,
    /// Returned buffers dropped because the shelf was full.
    pub dropped: u64,
    /// Returned buffers dropped by the high-water cap
    /// ([`SHELF_CAP_UNITS`]).
    pub trimmed: u64,
    /// Total capacity (in `CopyOp`s) dropped by the high-water cap.
    pub trimmed_units: u64,
    /// Shelved buffers dropped by idle decay ([`SHELF_DECAY_TAKES`]).
    pub decayed: u64,
    /// Buffers currently resting on the shelf.
    pub retained: u64,
    /// Total capacity (in `CopyOp`s) currently resting on the shelf.
    pub retained_units: u64,
    /// High-water mark of `retained_units` — the resident-memory proxy.
    pub peak_retained_units: u64,
}

struct Shelf {
    /// Idle buffers, LIFO (hottest last), each tagged with the value of
    /// `stats.takes` when it was shelved.
    bufs: Vec<(Vec<CopyOp>, u64)>,
    stats: ScratchStats,
}

thread_local! {
    static SHELF: RefCell<Shelf> = RefCell::new(Shelf {
        bufs: Vec::new(),
        stats: ScratchStats::default(),
    });
}

/// Take an empty unit buffer, reusing a recycled one when available.
pub fn take_units_buf() -> Vec<CopyOp> {
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        s.stats.takes += 1;
        // Idle decay: the coldest buffer sits at the bottom of the LIFO.
        // At most one drop per take keeps this O(1).
        if let Some((cold, shelved_at)) = s.bufs.first() {
            if s.stats.takes.saturating_sub(*shelved_at) > SHELF_DECAY_TAKES {
                let units = cold.capacity() as u64;
                s.bufs.remove(0);
                s.stats.decayed += 1;
                s.stats.retained -= 1;
                s.stats.retained_units -= units;
            }
        }
        match s.bufs.pop() {
            Some((mut v, _)) => {
                s.stats.recycled += 1;
                s.stats.retained -= 1;
                s.stats.retained_units -= v.capacity() as u64;
                v.clear();
                v
            }
            None => {
                s.stats.fresh += 1;
                Vec::new()
            }
        }
    })
}

/// Return a buffer to the shelf for reuse. Zero-capacity buffers,
/// overflow beyond the shelf cap, and returns that would push the idle
/// total past the high-water cap are dropped (the latter two counted).
pub fn recycle_units_buf(v: Vec<CopyOp>) {
    if v.capacity() == 0 {
        return;
    }
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        if s.bufs.len() >= SHELF_CAP {
            s.stats.dropped += 1;
            return;
        }
        let units = v.capacity() as u64;
        // High-water trim. An empty shelf always accepts: a single
        // working buffer larger than the cap is the live footprint, not
        // hoarding, and re-allocating it every cycle would be worse.
        if !s.bufs.is_empty() && s.stats.retained_units + units > SHELF_CAP_UNITS {
            s.stats.trimmed += 1;
            s.stats.trimmed_units += units;
            return;
        }
        s.stats.retained += 1;
        s.stats.retained_units += units;
        s.stats.peak_retained_units = s.stats.peak_retained_units.max(s.stats.retained_units);
        let takes = s.stats.takes;
        s.bufs.push((v, takes));
    });
}

/// Current counters for this thread's shelf.
pub fn stats() -> ScratchStats {
    SHELF.with(|s| s.borrow().stats)
}

/// Reset the traffic counters (the shelf's contents stay). `retained` /
/// `retained_units` describe live state and are preserved;
/// `peak_retained_units` restarts from the current level.
pub fn reset_stats() {
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        let (retained, retained_units) = (s.stats.retained, s.stats.retained_units);
        s.stats = ScratchStats {
            retained,
            retained_units,
            peak_retained_units: retained_units,
            ..ScratchStats::default()
        };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(len: usize) -> CopyOp {
        CopyOp {
            src_off: 0,
            dst_off: 0,
            len,
        }
    }

    /// Drain the shelf so a test starts from a known-empty state (the
    /// thread-local persists across tests on the same thread).
    fn drain_shelf() {
        loop {
            reset_stats();
            let v = take_units_buf();
            if stats().fresh == 1 {
                break; // shelf was empty
            }
            drop(v);
        }
        reset_stats();
    }

    #[test]
    fn recycling_reuses_capacity() {
        drain_shelf();
        let mut a = take_units_buf();
        a.extend((0..100).map(|_| op(1)));
        let cap = a.capacity();
        recycle_units_buf(a);
        let b = take_units_buf();
        assert!(b.is_empty());
        assert!(b.capacity() >= cap, "recycled buffer keeps its capacity");
        let st = stats();
        assert_eq!(st.takes, 2);
        assert!(st.recycled >= 1);
        recycle_units_buf(b);
    }

    #[test]
    fn stats_track_shelf_traffic() {
        drain_shelf();
        let base = stats();
        let mut v = take_units_buf();
        v.push(op(1));
        recycle_units_buf(v);
        let st = stats();
        assert_eq!(st.takes, base.takes + 1);
        assert_eq!(st.retained, base.retained + 1);
        assert!(st.retained_units > base.retained_units);
        assert!(st.peak_retained_units >= st.retained_units);
        // Empty-capacity returns are a no-op.
        recycle_units_buf(Vec::new());
        assert_eq!(stats().retained, st.retained);
    }

    #[test]
    fn high_water_cap_trims_overflow_but_keeps_working_buffer() {
        drain_shelf();
        // A working buffer larger than the cap is retained on an empty
        // shelf...
        let mut big = take_units_buf();
        big.reserve_exact(SHELF_CAP_UNITS as usize + 100);
        let big_cap = big.capacity() as u64;
        recycle_units_buf(big);
        let st = stats();
        assert_eq!(st.retained, 1);
        assert_eq!(st.trimmed, 0);
        assert!(st.retained_units >= big_cap);
        // ...but any further return that would exceed the cap is
        // trimmed, so the idle total stops growing.
        let mut extra = take_units_buf(); // takes the big buffer back
        assert!(extra.capacity() as u64 >= big_cap);
        recycle_units_buf(extra); // shelf empty again: retained
        extra = Vec::with_capacity(1277);
        recycle_units_buf(extra);
        let st = stats();
        assert_eq!(st.trimmed, 1);
        assert_eq!(st.trimmed_units, 1277);
        assert_eq!(st.retained, 1, "only the working buffer is shelved");
        // Clean up for other tests on this thread.
        drain_shelf();
    }

    #[test]
    fn small_buffers_fill_up_to_the_cap() {
        drain_shelf();
        // Returns within the cap all shelve; the first overflow trims.
        let n = 4usize;
        let each = (SHELF_CAP_UNITS as usize) / n;
        for _ in 0..n {
            recycle_units_buf(Vec::with_capacity(each));
        }
        assert_eq!(stats().trimmed, 0);
        assert_eq!(stats().retained, n as u64);
        recycle_units_buf(Vec::with_capacity(each));
        assert_eq!(stats().trimmed, 1);
        drain_shelf();
    }

    #[test]
    fn idle_buffers_decay_after_enough_takes() {
        drain_shelf();
        recycle_units_buf(Vec::with_capacity(500)); // the cold buffer
        recycle_units_buf(Vec::with_capacity(100)); // stays hot via reuse
        for _ in 0..=SHELF_DECAY_TAKES {
            let v = take_units_buf(); // pops the hot one (LIFO)
            recycle_units_buf(v);
        }
        let st = stats();
        assert_eq!(st.decayed, 1, "cold buffer should decay");
        assert_eq!(st.retained, 1);
        assert!(st.retained_units < 500);
        drain_shelf();
    }
}
