//! Thread-local recycling of `CopyOp` unit buffers.
//!
//! The fragment pipeline needs an *owned* `Vec<CopyOp>` per in-flight
//! kernel (the completion event fires long after the engine has moved on
//! to the next fragment), so a purely borrowed API can't make the hot
//! path allocation-free by itself. Instead, the engine takes cleared
//! buffers from a thread-local shelf and the kernel-completion event
//! returns them, so steady-state streaming reuses the same few
//! allocations no matter how many fragments flow through.
//!
//! The shelf also counts its traffic ([`ScratchStats`]): the
//! `hotpath_wallclock` harness uses `fresh` vs `recycled` as an
//! allocation-pressure / peak-RSS proxy, since the workspace has no
//! global allocator hooks.

use crate::par::CopyOp;
use std::cell::RefCell;

/// Maximum number of idle buffers kept on the shelf. The pipeline keeps
/// at most a handful of fragments in flight, so this is generous; extra
/// returns are dropped (and counted) instead of hoarding memory.
const SHELF_CAP: usize = 64;

/// Counters describing shelf traffic since the last [`reset_stats`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScratchStats {
    /// Buffers handed out by [`take_units_buf`].
    pub takes: u64,
    /// Hand-outs that had to heap-allocate a new `Vec` (shelf empty).
    pub fresh: u64,
    /// Hand-outs served from the shelf without allocating.
    pub recycled: u64,
    /// Returned buffers dropped because the shelf was full.
    pub dropped: u64,
    /// Buffers currently resting on the shelf.
    pub retained: u64,
    /// Total capacity (in `CopyOp`s) currently resting on the shelf.
    pub retained_units: u64,
    /// High-water mark of `retained_units` — the resident-memory proxy.
    pub peak_retained_units: u64,
}

struct Shelf {
    bufs: Vec<Vec<CopyOp>>,
    stats: ScratchStats,
}

thread_local! {
    static SHELF: RefCell<Shelf> = RefCell::new(Shelf {
        bufs: Vec::new(),
        stats: ScratchStats::default(),
    });
}

/// Take an empty unit buffer, reusing a recycled one when available.
pub fn take_units_buf() -> Vec<CopyOp> {
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        s.stats.takes += 1;
        match s.bufs.pop() {
            Some(mut v) => {
                s.stats.recycled += 1;
                s.stats.retained -= 1;
                s.stats.retained_units -= v.capacity() as u64;
                v.clear();
                v
            }
            None => {
                s.stats.fresh += 1;
                Vec::new()
            }
        }
    })
}

/// Return a buffer to the shelf for reuse. Zero-capacity buffers and
/// overflow beyond the shelf cap are dropped (the latter counted).
pub fn recycle_units_buf(v: Vec<CopyOp>) {
    if v.capacity() == 0 {
        return;
    }
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        if s.bufs.len() >= SHELF_CAP {
            s.stats.dropped += 1;
            return;
        }
        s.stats.retained += 1;
        s.stats.retained_units += v.capacity() as u64;
        s.stats.peak_retained_units = s.stats.peak_retained_units.max(s.stats.retained_units);
        s.bufs.push(v);
    });
}

/// Current counters for this thread's shelf.
pub fn stats() -> ScratchStats {
    SHELF.with(|s| s.borrow().stats)
}

/// Reset the traffic counters (the shelf's contents stay). `retained` /
/// `retained_units` describe live state and are preserved;
/// `peak_retained_units` restarts from the current level.
pub fn reset_stats() {
    SHELF.with(|s| {
        let mut s = s.borrow_mut();
        let (retained, retained_units) = (s.stats.retained, s.stats.retained_units);
        s.stats = ScratchStats {
            retained,
            retained_units,
            peak_retained_units: retained_units,
            ..ScratchStats::default()
        };
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    fn op(len: usize) -> CopyOp {
        CopyOp {
            src_off: 0,
            dst_off: 0,
            len,
        }
    }

    #[test]
    fn recycling_reuses_capacity() {
        reset_stats();
        let mut a = take_units_buf();
        a.extend((0..100).map(|_| op(1)));
        let cap = a.capacity();
        recycle_units_buf(a);
        let b = take_units_buf();
        assert!(b.is_empty());
        assert!(b.capacity() >= cap, "recycled buffer keeps its capacity");
        let st = stats();
        assert_eq!(st.takes, 2);
        assert!(st.recycled >= 1);
        recycle_units_buf(b);
    }

    #[test]
    fn stats_track_shelf_traffic() {
        reset_stats();
        let base = stats();
        let mut v = take_units_buf();
        v.push(op(1));
        recycle_units_buf(v);
        let st = stats();
        assert_eq!(st.takes, base.takes + 1);
        assert_eq!(st.retained, base.retained + 1);
        assert!(st.retained_units > base.retained_units);
        assert!(st.peak_retained_units >= st.retained_units);
        // Empty-capacity returns are a no-op.
        recycle_units_buf(Vec::new());
        assert_eq!(stats().retained, st.retained);
    }
}
