//! Parallel byte movement on the host.
//!
//! The simulated GPU kernels *really* move bytes between host-backed
//! buffers; for multi-megabyte packs this is worth parallelizing across
//! host cores. Rayon is outside this workspace's dependency policy, so we
//! provide a tiny fork-join built on `std::thread::scope` — enough for the
//! two access patterns the datatype engine needs:
//!
//! * [`par_copy`] — one large contiguous copy, split into chunks;
//! * [`par_transfer`] — a list of `(src_off, dst_off, len)` segment moves
//!   (the shape of a DEV work-unit list), partitioned across threads.
//!
//! Safety relies on the segments being disjoint **in the destination**,
//! which the datatype engine guarantees by construction (a pack writes
//! each packed byte exactly once); debug builds verify it.

/// One segment move, offsets relative to the source/destination slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyOp {
    pub src_off: usize,
    pub dst_off: usize,
    pub len: usize,
}

/// Below this total size the scoped-thread setup costs more than it saves.
const PAR_THRESHOLD: usize = 1 << 20;

fn worker_count(total_bytes: usize) -> usize {
    if total_bytes < PAR_THRESHOLD {
        return 1;
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

/// Parallel contiguous copy: `dst.copy_from_slice(src)` using multiple
/// threads when the copy is large enough to benefit.
pub fn par_copy(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "par_copy length mismatch");
    let n = worker_count(dst.len());
    if n <= 1 {
        dst.copy_from_slice(src);
        return;
    }
    let chunk = dst.len().div_ceil(n);
    std::thread::scope(|scope| {
        for (d, s) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
            scope.spawn(move || d.copy_from_slice(s));
        }
    });
}

#[cfg(debug_assertions)]
fn assert_dst_disjoint(ops: &[CopyOp]) {
    let mut spans: Vec<(usize, usize)> = ops
        .iter()
        .filter(|o| o.len > 0)
        .map(|o| (o.dst_off, o.dst_off + o.len))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "overlapping destination segments: {:?} and {:?}",
            w[0],
            w[1]
        );
    }
}

/// Raw pointer wrapper so disjoint destination writes can cross the
/// `std::thread::scope` boundary.
#[derive(Clone, Copy)]
struct SendPtr(*mut u8);
// SAFETY: every thread writes a disjoint destination range (checked in
// debug builds by `assert_dst_disjoint`), so concurrent use is data-race
// free.
unsafe impl Send for SendPtr {}
unsafe impl Sync for SendPtr {}

/// Execute a batch of segment moves from `src` into `dst`.
///
/// Segments must lie in bounds and be pairwise disjoint in `dst`
/// (overlap in `src` is fine — a broadcast-style unpack may read the same
/// source bytes twice).
pub fn par_transfer(dst: &mut [u8], src: &[u8], ops: &[CopyOp]) {
    let total: usize = ops.iter().map(|o| o.len).sum();
    for o in ops {
        assert!(
            o.src_off + o.len <= src.len(),
            "source segment out of bounds: {o:?} vs len {}",
            src.len()
        );
        assert!(
            o.dst_off + o.len <= dst.len(),
            "destination segment out of bounds: {o:?} vs len {}",
            dst.len()
        );
    }
    #[cfg(debug_assertions)]
    assert_dst_disjoint(ops);

    let n = worker_count(total);
    if n <= 1 || ops.len() == 1 {
        for o in ops {
            dst[o.dst_off..o.dst_off + o.len].copy_from_slice(&src[o.src_off..o.src_off + o.len]);
        }
        return;
    }

    // Partition ops into n contiguous runs of roughly equal byte volume.
    let target = total.div_ceil(n);
    let mut runs: Vec<&[CopyOp]> = Vec::with_capacity(n);
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, o) in ops.iter().enumerate() {
        acc += o.len;
        if acc >= target {
            runs.push(&ops[start..=i]);
            start = i + 1;
            acc = 0;
        }
    }
    if start < ops.len() {
        runs.push(&ops[start..]);
    }

    let dst_ptr = SendPtr(dst.as_mut_ptr());
    std::thread::scope(|scope| {
        for run in runs {
            scope.spawn(move || {
                let dst_ptr = dst_ptr; // move the Copy wrapper into the thread
                for o in run {
                    // SAFETY: bounds were checked above; destination
                    // ranges are disjoint across all ops, so threads
                    // never write the same byte.
                    unsafe {
                        std::ptr::copy_nonoverlapping(
                            src.as_ptr().add(o.src_off),
                            dst_ptr.0.add(o.dst_off),
                            o.len,
                        );
                    }
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_copy_small_and_large() {
        for len in [0usize, 13, 4096, (1 << 20) + 17] {
            let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut dst = vec![0u8; len];
            par_copy(&mut dst, &src);
            assert_eq!(dst, src, "len={len}");
        }
    }

    #[test]
    fn transfer_gathers_segments() {
        // Gather every other 4-byte block of src into a packed dst.
        let src: Vec<u8> = (0..64u8).collect();
        let mut dst = vec![0u8; 32];
        let ops: Vec<CopyOp> = (0..8)
            .map(|i| CopyOp {
                src_off: i * 8,
                dst_off: i * 4,
                len: 4,
            })
            .collect();
        par_transfer(&mut dst, &src, &ops);
        let expect: Vec<u8> = (0..8)
            .flat_map(|i| i * 8..i * 8 + 4)
            .map(|v| v as u8)
            .collect();
        assert_eq!(dst, expect);
    }

    #[test]
    fn transfer_large_parallel_path() {
        // Big enough to trigger the multi-threaded path.
        let seg = 4096usize;
        let count = 600usize; // ~2.4 MB
        let src: Vec<u8> = (0..seg * count * 2).map(|i| (i % 253) as u8).collect();
        let mut dst = vec![0u8; seg * count];
        let ops: Vec<CopyOp> = (0..count)
            .map(|i| CopyOp {
                src_off: i * 2 * seg,
                dst_off: i * seg,
                len: seg,
            })
            .collect();
        par_transfer(&mut dst, &src, &ops);
        for i in 0..count {
            assert_eq!(
                &dst[i * seg..(i + 1) * seg],
                &src[i * 2 * seg..i * 2 * seg + seg],
                "segment {i}"
            );
        }
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn transfer_rejects_oob() {
        let src = vec![0u8; 16];
        let mut dst = vec![0u8; 16];
        par_transfer(
            &mut dst,
            &src,
            &[CopyOp {
                src_off: 10,
                dst_off: 0,
                len: 10,
            }],
        );
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlapping destination")]
    fn transfer_rejects_overlap_in_debug() {
        let src = vec![0u8; 32];
        let mut dst = vec![0u8; 32];
        let ops = [
            CopyOp {
                src_off: 0,
                dst_off: 0,
                len: 8,
            },
            CopyOp {
                src_off: 8,
                dst_off: 4,
                len: 8,
            },
        ];
        par_transfer(&mut dst, &src, &ops);
    }

    #[test]
    fn empty_ops_are_fine() {
        let src = vec![1u8; 8];
        let mut dst = vec![2u8; 8];
        par_transfer(&mut dst, &src, &[]);
        assert_eq!(dst, vec![2u8; 8]);
    }
}
