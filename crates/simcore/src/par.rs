//! Parallel byte movement on the host.
//!
//! The simulated GPU kernels *really* move bytes between host-backed
//! buffers; for multi-megabyte packs this is worth parallelizing across
//! host cores. Rayon is outside this workspace's dependency policy, so we
//! provide a tiny fork-join built on a **persistent worker pool** —
//! enough for the two access patterns the datatype engine needs:
//!
//! * [`par_copy`] — one large contiguous copy, split into chunks;
//! * [`par_transfer`] — a list of `(src_off, dst_off, len)` segment moves
//!   (the shape of a DEV work-unit list), partitioned across threads.
//!
//! The pool is lazily initialized on the first transfer that crosses the
//! parallel threshold and lives for the process. Workers block on
//! channels and are woken only when a sharded copy arrives, so the hot
//! data path never spawns OS threads (the pre-pool `std::thread::scope`
//! implementation paid a spawn+join for *every* large simulated kernel —
//! it is preserved in [`scoped`] for wall-clock comparison benchmarks).
//!
//! Pool size defaults to `min(available_parallelism, 8)` and can be
//! overridden with the `GPU_DDT_COPY_THREADS` environment variable
//! (validated, `1..=64`); the choice is logged once at initialization.
//! The shard count also adapts to the transfer size so medium transfers
//! don't wake more workers than they can feed.
//!
//! Safety relies on the segments being disjoint **in the destination**,
//! which the datatype engine guarantees by construction (a pack writes
//! each packed byte exactly once); debug builds verify it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::OnceLock;

/// One segment move, offsets relative to the source/destination slices.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CopyOp {
    pub src_off: usize,
    pub dst_off: usize,
    pub len: usize,
}

/// Below this total size the cross-thread handoff costs more than it
/// saves and the copy stays inline on the calling thread.
const PAR_THRESHOLD: usize = 1 << 20;

/// Each shard should carry at least this many bytes; transfers just over
/// the threshold wake fewer workers than the pool holds.
const MIN_BYTES_PER_SHARD: usize = 256 << 10;

/// Hard ceiling on the pool size (env override included).
pub const MAX_POOL_THREADS: usize = 64;

/// Default cap when the environment does not override the pool size.
const DEFAULT_POOL_CAP: usize = 8;

/// Environment variable overriding the copy-pool size.
pub const POOL_THREADS_ENV: &str = "GPU_DDT_COPY_THREADS";

/// How the pool was sized, for logging and benchmarks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PoolInfo {
    /// Copy lanes used for large transfers, *including* the calling
    /// thread (so `threads - 1` parked workers exist).
    pub threads: usize,
    /// Whether the size came from [`POOL_THREADS_ENV`].
    pub from_env: bool,
}

/// One sharded copy handed to a worker. Raw pointers erase the caller's
/// borrow lifetimes; the caller blocks until every shard completes, so
/// the pointee outlives the job (the classic scoped-pool contract).
struct Job {
    src: *const u8,
    dst: *mut u8,
    ops: *const CopyOp,
    ops_len: usize,
    done: *const Completion,
}
// SAFETY: the pointers stay valid until `done.remaining` hits zero (the
// submitting thread parks until then), and every job writes a disjoint
// destination range.
unsafe impl Send for Job {}

/// Completion latch shared by all shards of one call, on the caller's
/// stack.
struct Completion {
    remaining: AtomicUsize,
    caller: std::thread::Thread,
}

struct CopyPool {
    /// One channel per parked worker; shard `i` goes to worker `i - 1`.
    senders: Vec<Sender<Job>>,
    info: PoolInfo,
}

static POOL: OnceLock<CopyPool> = OnceLock::new();

fn desired_threads() -> PoolInfo {
    let default = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(DEFAULT_POOL_CAP);
    match std::env::var(POOL_THREADS_ENV) {
        Ok(raw) => match raw.trim().parse::<usize>() {
            Ok(n) if (1..=MAX_POOL_THREADS).contains(&n) => PoolInfo {
                threads: n,
                from_env: true,
            },
            _ => {
                eprintln!(
                    "[simcore::par] ignoring invalid {POOL_THREADS_ENV}={raw:?} \
                     (expected 1..={MAX_POOL_THREADS}); using {default}"
                );
                PoolInfo {
                    threads: default,
                    from_env: false,
                }
            }
        },
        Err(_) => PoolInfo {
            threads: default,
            from_env: false,
        },
    }
}

fn pool() -> &'static CopyPool {
    POOL.get_or_init(|| {
        let info = desired_threads();
        let senders = (1..info.threads)
            .map(|i| {
                let (tx, rx) = channel::<Job>();
                std::thread::Builder::new()
                    .name(format!("gpuddt-copy-{i}"))
                    .spawn(move || worker_loop(rx))
                    .expect("spawn copy-pool worker");
                tx
            })
            .collect();
        // `get_or_init` runs this exactly once per process: the one-time
        // log of the sizing decision.
        eprintln!(
            "[simcore::par] copy pool: {} thread(s) ({})",
            info.threads,
            if info.from_env {
                POOL_THREADS_ENV
            } else {
                "default: min(available_parallelism, 8)"
            }
        );
        CopyPool { senders, info }
    })
}

/// The pool's sizing decision. Forces initialization (spawns the
/// workers) — benchmarks and the wall-clock harness call this; the data
/// path initializes lazily instead.
pub fn pool_info() -> PoolInfo {
    pool().info
}

/// The sizing decision if the pool has already been started, without
/// forcing initialization. Used to surface the choice through tracers.
pub fn pool_info_if_started() -> Option<PoolInfo> {
    POOL.get().map(|p| p.info)
}

fn worker_loop(rx: Receiver<Job>) {
    while let Ok(job) = rx.recv() {
        // SAFETY: the submitting thread keeps src/dst/ops/done alive
        // until the latch releases; destination ranges are disjoint
        // across shards (debug-checked before submission).
        unsafe {
            let ops = std::slice::from_raw_parts(job.ops, job.ops_len);
            copy_ops_raw(job.dst, job.src, ops);
            // Clone the caller handle *before* the decrement: once
            // `remaining` hits zero the Completion may be freed.
            let caller = (*job.done).caller.clone();
            if (*job.done).remaining.fetch_sub(1, Ordering::Release) == 1 {
                caller.unpark();
            }
        }
    }
}

/// How many copy lanes a transfer of `total_bytes` should use. Returns 1
/// (inline) below the threshold without touching — or initializing —
/// the pool.
fn lanes_for(total_bytes: usize) -> usize {
    if total_bytes < PAR_THRESHOLD {
        return 1;
    }
    let adaptive = (total_bytes / MIN_BYTES_PER_SHARD).max(1);
    pool().info.threads.min(adaptive).min(MAX_POOL_THREADS)
}

/// Execute `shards` (disjoint-destination op runs) using the pool: shard
/// 0 runs on the calling thread, the rest on parked workers. Blocks
/// until every shard has completed.
fn run_sharded(dst: &mut [u8], src: &[u8], shards: &[&[CopyOp]]) {
    let dst_ptr = dst.as_mut_ptr();
    let src_ptr = src.as_ptr();
    if shards.len() <= 1 {
        if let Some(ops) = shards.first() {
            // SAFETY: bounds checked by the caller.
            unsafe { copy_ops_raw(dst_ptr, src_ptr, ops) };
        }
        return;
    }
    let p = pool();
    let completion = Completion {
        remaining: AtomicUsize::new(shards.len() - 1),
        caller: std::thread::current(),
    };
    for (i, shard) in shards[1..].iter().enumerate() {
        let job = Job {
            src: src_ptr,
            dst: dst_ptr,
            ops: shard.as_ptr(),
            ops_len: shard.len(),
            done: &completion,
        };
        p.senders[i % p.senders.len()]
            .send(job)
            .expect("copy-pool worker died");
    }
    // The calling thread is lane 0 — it copies too instead of idling.
    // All writes go through the raw pointer so the worker aliases stay
    // legal.
    // SAFETY: destination ranges are disjoint across shards.
    unsafe { copy_ops_raw(dst_ptr, src_ptr, shards[0]) };
    while completion.remaining.load(Ordering::Acquire) != 0 {
        std::thread::park();
    }
}

/// Segments at or above this length go to `memcpy`; below it the
/// explicit chunked loop in [`copy_segment`] wins (measured: a 64-byte
/// unit gather runs ~13% faster chunked, while glibc's dispatch is
/// unbeatable from two cache lines up).
const CHUNKED_COPY_MAX: usize = 128;

/// Copy one segment. Short segments — the unit moves a fine-grained
/// datatype produces — use explicit fixed-width chunks that the backend
/// autovectorizes into whole-register moves, skipping the size dispatch
/// a `memcpy` call pays on every segment. Long segments still belong to
/// `memcpy`.
///
/// # Safety
/// `src..src+len` must be readable, `dst..dst+len` writable, and the two
/// ranges must not overlap.
#[inline]
unsafe fn copy_segment(src: *const u8, dst: *mut u8, len: usize) {
    if len >= CHUNKED_COPY_MAX {
        // SAFETY: caller contract.
        unsafe { std::ptr::copy_nonoverlapping(src, dst, len) };
        return;
    }
    // Head-and-tail whole-register moves: the widest chunk that fits,
    // then one (possibly overlapping) chunk flush against the end.
    // Overlapped bytes are rewritten with identical values. Unaligned
    // reads/writes keep the split points free — callers still align
    // shard boundaries to cache lines where they can.
    macro_rules! tiers {
        ($($w:literal),*) => {$(
            if len >= $w {
                // SAFETY: len >= $w, so both chunks are in bounds.
                unsafe {
                    let head = src.cast::<[u8; $w]>().read_unaligned();
                    let tail = src.add(len - $w).cast::<[u8; $w]>().read_unaligned();
                    dst.cast::<[u8; $w]>().write_unaligned(head);
                    dst.add(len - $w).cast::<[u8; $w]>().write_unaligned(tail);
                }
                return;
            }
        )*};
    }
    tiers!(64, 32, 16, 8, 4, 2);
    if len == 1 {
        // SAFETY: caller contract.
        unsafe { *dst = *src };
    }
}

/// Raw-pointer segment copies (bounds already validated by the caller).
unsafe fn copy_ops_raw(dst: *mut u8, src: *const u8, ops: &[CopyOp]) {
    for o in ops {
        // SAFETY: bounds validated by the caller; destinations disjoint.
        unsafe { copy_segment(src.add(o.src_off), dst.add(o.dst_off), o.len) };
    }
}

/// Parallel contiguous copy: `dst.copy_from_slice(src)` using the pool
/// when the copy is large enough to benefit.
pub fn par_copy(dst: &mut [u8], src: &[u8]) {
    assert_eq!(dst.len(), src.len(), "par_copy length mismatch");
    let n = lanes_for(dst.len());
    if n <= 1 {
        dst.copy_from_slice(src);
        return;
    }
    // One whole-chunk op per lane, built on the stack. Chunk boundaries
    // round up to cache lines so no two lanes ever write the same line.
    let mut ops = [CopyOp {
        src_off: 0,
        dst_off: 0,
        len: 0,
    }; MAX_POOL_THREADS];
    let chunk = round_up_cache_line(dst.len().div_ceil(n));
    let mut lanes = 0usize;
    let mut off = 0usize;
    while off < dst.len() {
        let l = chunk.min(dst.len() - off);
        ops[lanes] = CopyOp {
            src_off: off,
            dst_off: off,
            len: l,
        };
        lanes += 1;
        off += l;
    }
    let mut shards: [&[CopyOp]; MAX_POOL_THREADS] = [&[]; MAX_POOL_THREADS];
    for (i, shard) in shards.iter_mut().enumerate().take(lanes) {
        *shard = &ops[i..i + 1];
    }
    run_sharded(dst, src, &shards[..lanes]);
}

#[cfg(debug_assertions)]
fn assert_dst_disjoint(ops: &[CopyOp]) {
    let mut spans: Vec<(usize, usize)> = ops
        .iter()
        .filter(|o| o.len > 0)
        .map(|o| (o.dst_off, o.dst_off + o.len))
        .collect();
    spans.sort_unstable();
    for w in spans.windows(2) {
        assert!(
            w[0].1 <= w[1].0,
            "overlapping destination segments: {:?} and {:?}",
            w[0],
            w[1]
        );
    }
}

fn assert_in_bounds(dst: &[u8], src: &[u8], ops: &[CopyOp]) {
    for o in ops {
        assert!(
            o.src_off + o.len <= src.len(),
            "source segment out of bounds: {o:?} vs len {}",
            src.len()
        );
        assert!(
            o.dst_off + o.len <= dst.len(),
            "destination segment out of bounds: {o:?} vs len {}",
            dst.len()
        );
    }
}

/// Cache-line size the shard splits align to.
const CACHE_LINE: usize = 64;

fn round_up_cache_line(n: usize) -> usize {
    (n + (CACHE_LINE - 1)) & !(CACHE_LINE - 1)
}

/// Split `ops` into pieces no longer than `target` bytes (rounded up to
/// a cache line), so a transfer with fewer segments than copy lanes —
/// one huge contiguous block, say — still spreads across the pool, and
/// no two lanes share a destination cache line.
fn split_ops_to_target(ops: &[CopyOp], target: usize) -> Vec<CopyOp> {
    let target = round_up_cache_line(target.max(1));
    let mut out = Vec::with_capacity(ops.len() * 2);
    for o in ops {
        let mut off = 0usize;
        while o.len - off > target {
            out.push(CopyOp {
                src_off: o.src_off + off,
                dst_off: o.dst_off + off,
                len: target,
            });
            off += target;
        }
        out.push(CopyOp {
            src_off: o.src_off + off,
            dst_off: o.dst_off + off,
            len: o.len - off,
        });
    }
    out
}

/// Partition `ops` into at most `n` contiguous runs of roughly equal
/// byte volume. Returns the number of runs written into `bounds`
/// (half-open index ranges into `ops`).
fn partition_runs(
    ops: &[CopyOp],
    total: usize,
    n: usize,
    bounds: &mut [(usize, usize); MAX_POOL_THREADS],
) -> usize {
    let target = total.div_ceil(n);
    let mut runs = 0usize;
    let mut start = 0usize;
    let mut acc = 0usize;
    for (i, o) in ops.iter().enumerate() {
        acc += o.len;
        if acc >= target && runs + 1 < n {
            bounds[runs] = (start, i + 1);
            runs += 1;
            start = i + 1;
            acc = 0;
        }
    }
    if start < ops.len() {
        bounds[runs] = (start, ops.len());
        runs += 1;
    }
    runs
}

/// Execute a batch of segment moves from `src` into `dst`.
///
/// Segments must lie in bounds and be pairwise disjoint in `dst`
/// (overlap in `src` is fine — a broadcast-style unpack may read the same
/// source bytes twice).
pub fn par_transfer(dst: &mut [u8], src: &[u8], ops: &[CopyOp]) {
    let total: usize = ops.iter().map(|o| o.len).sum();
    let n = lanes_for(total);
    transfer_with(dst, src, ops, total, n);
}

/// [`par_transfer`] with an explicit lane count, clamped to the pool's
/// actual worker count (so the numbers stay honest on small machines —
/// requesting 8 lanes on a single-core box measures 1). This is the
/// per-core-count measurement hook for the wall-clock harness, not a
/// hot-path API: the adaptive `par_transfer` sizing is the production
/// path.
pub fn par_transfer_lanes(dst: &mut [u8], src: &[u8], ops: &[CopyOp], lanes: usize) -> usize {
    let total: usize = ops.iter().map(|o| o.len).sum();
    let n = lanes.clamp(1, pool().info.threads);
    transfer_with(dst, src, ops, total, n);
    n
}

fn transfer_with(dst: &mut [u8], src: &[u8], ops: &[CopyOp], total: usize, n: usize) {
    assert_in_bounds(dst, src, ops);
    #[cfg(debug_assertions)]
    assert_dst_disjoint(ops);

    if n <= 1 {
        // Inline path: same chunked segment copies the workers use.
        // SAFETY: bounds asserted above; a single thread writes dst.
        unsafe { copy_ops_raw(dst.as_mut_ptr(), src.as_ptr(), ops) };
        return;
    }

    // Fewer segments than lanes (a contiguous block, or a couple of huge
    // extents): split the big ops at cache-line-aligned points so each
    // worker owns a chunk sized to the slice length.
    let split;
    let ops = if ops.len() < n {
        split = split_ops_to_target(ops, total.div_ceil(n));
        &split[..]
    } else {
        ops
    };

    let mut bounds = [(0usize, 0usize); MAX_POOL_THREADS];
    let runs = partition_runs(ops, total, n, &mut bounds);
    let mut shards: [&[CopyOp]; MAX_POOL_THREADS] = [&[]; MAX_POOL_THREADS];
    for (i, shard) in shards.iter_mut().enumerate().take(runs) {
        let (s, e) = bounds[i];
        *shard = &ops[s..e];
    }
    run_sharded(dst, src, &shards[..runs]);
}

pub mod scoped {
    //! The pre-pool implementation: spawn scoped threads per call. Kept
    //! as the wall-clock baseline the persistent pool is measured
    //! against (`cargo bench -p bench`, `hotpath_wallclock`) and as an
    //! independent correctness cross-check. Not used on the hot path.

    use super::{assert_in_bounds, lanes_for, CopyOp, MAX_POOL_THREADS};

    /// [`super::par_copy`] via `std::thread::scope` — spawns threads on
    /// every call.
    pub fn par_copy_scoped(dst: &mut [u8], src: &[u8]) {
        assert_eq!(dst.len(), src.len(), "par_copy length mismatch");
        let n = lanes_for(dst.len());
        if n <= 1 {
            dst.copy_from_slice(src);
            return;
        }
        let chunk = dst.len().div_ceil(n);
        std::thread::scope(|scope| {
            for (d, s) in dst.chunks_mut(chunk).zip(src.chunks(chunk)) {
                scope.spawn(move || d.copy_from_slice(s));
            }
        });
    }

    /// Raw pointer wrapper so disjoint destination writes can cross the
    /// `std::thread::scope` boundary.
    #[derive(Clone, Copy)]
    struct SendPtr(*mut u8);
    // SAFETY: every thread writes a disjoint destination range, so
    // concurrent use is data-race free.
    unsafe impl Send for SendPtr {}
    unsafe impl Sync for SendPtr {}

    /// [`super::par_transfer`] via `std::thread::scope` — spawns threads
    /// on every call.
    pub fn par_transfer_scoped(dst: &mut [u8], src: &[u8], ops: &[CopyOp]) {
        let total: usize = ops.iter().map(|o| o.len).sum();
        assert_in_bounds(dst, src, ops);
        #[cfg(debug_assertions)]
        super::assert_dst_disjoint(ops);

        let n = lanes_for(total);
        if n <= 1 || ops.len() == 1 {
            for o in ops {
                dst[o.dst_off..o.dst_off + o.len]
                    .copy_from_slice(&src[o.src_off..o.src_off + o.len]);
            }
            return;
        }

        let mut bounds = [(0usize, 0usize); MAX_POOL_THREADS];
        let runs = super::partition_runs(ops, total, n, &mut bounds);
        let dst_ptr = SendPtr(dst.as_mut_ptr());
        std::thread::scope(|scope| {
            for &(s, e) in &bounds[..runs] {
                let run = &ops[s..e];
                scope.spawn(move || {
                    let dst_ptr = dst_ptr; // move the Copy wrapper into the thread
                    for o in run {
                        // SAFETY: bounds were checked above; destination
                        // ranges are disjoint across all ops.
                        unsafe {
                            std::ptr::copy_nonoverlapping(
                                src.as_ptr().add(o.src_off),
                                dst_ptr.0.add(o.dst_off),
                                o.len,
                            );
                        }
                    }
                });
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::scoped::{par_copy_scoped, par_transfer_scoped};
    use super::*;

    #[test]
    fn par_copy_small_and_large() {
        for len in [0usize, 13, 4096, (1 << 20) + 17] {
            let src: Vec<u8> = (0..len).map(|i| (i % 251) as u8).collect();
            let mut dst = vec![0u8; len];
            par_copy(&mut dst, &src);
            assert_eq!(dst, src, "len={len}");
        }
    }

    #[test]
    fn transfer_gathers_segments() {
        // Gather every other 4-byte block of src into a packed dst.
        let src: Vec<u8> = (0..64u8).collect();
        let mut dst = vec![0u8; 32];
        let ops: Vec<CopyOp> = (0..8)
            .map(|i| CopyOp {
                src_off: i * 8,
                dst_off: i * 4,
                len: 4,
            })
            .collect();
        par_transfer(&mut dst, &src, &ops);
        let expect: Vec<u8> = (0..8)
            .flat_map(|i| i * 8..i * 8 + 4)
            .map(|v| v as u8)
            .collect();
        assert_eq!(dst, expect);
    }

    fn gather_case(seg: usize, count: usize) -> (Vec<u8>, Vec<CopyOp>) {
        let src: Vec<u8> = (0..seg * count * 2).map(|i| (i % 253) as u8).collect();
        let ops: Vec<CopyOp> = (0..count)
            .map(|i| CopyOp {
                src_off: i * 2 * seg,
                dst_off: i * seg,
                len: seg,
            })
            .collect();
        (src, ops)
    }

    #[test]
    fn transfer_large_parallel_path() {
        // Big enough to trigger the pooled path.
        let (seg, count) = (4096usize, 600usize); // ~2.4 MB
        let (src, ops) = gather_case(seg, count);
        let mut dst = vec![0u8; seg * count];
        par_transfer(&mut dst, &src, &ops);
        for i in 0..count {
            assert_eq!(
                &dst[i * seg..(i + 1) * seg],
                &src[i * 2 * seg..i * 2 * seg + seg],
                "segment {i}"
            );
        }
    }

    #[test]
    fn explicit_lane_counts_all_produce_the_same_bytes() {
        let (seg, count) = (4096usize, 512usize); // ~2 MB
        let (src, ops) = gather_case(seg, count);
        let mut want = vec![0u8; seg * count];
        par_transfer(&mut want, &src, &ops);
        for lanes in [1usize, 2, 4, 8, 64] {
            let mut dst = vec![0u8; seg * count];
            let used = par_transfer_lanes(&mut dst, &src, &ops, lanes);
            assert!((1..=lanes.max(1)).contains(&used));
            assert_eq!(dst, want, "lanes={lanes}");
        }
    }

    #[test]
    fn pooled_and_scoped_agree() {
        // Same inputs through the pool and the scoped baseline.
        let (seg, count) = (2048usize, 700usize); // ~1.4 MB
        let (src, ops) = gather_case(seg, count);
        let mut pooled = vec![0u8; seg * count];
        let mut scoped = vec![0u8; seg * count];
        par_transfer(&mut pooled, &src, &ops);
        par_transfer_scoped(&mut scoped, &src, &ops);
        assert_eq!(pooled, scoped);

        let big: Vec<u8> = (0..(1 << 21)).map(|i| (i % 241) as u8).collect();
        let mut a = vec![0u8; big.len()];
        let mut b = vec![0u8; big.len()];
        par_copy(&mut a, &big);
        par_copy_scoped(&mut b, &big);
        assert_eq!(a, b);
    }

    #[test]
    fn pool_survives_repeated_large_transfers() {
        // Exercise the persistent workers across many calls (the
        // regression the pool exists for: no spawn per call, no leaked
        // completions).
        let (seg, count) = (4096usize, 300usize); // ~1.2 MB
        let (src, ops) = gather_case(seg, count);
        let mut dst = vec![0u8; seg * count];
        for round in 0..16 {
            dst.fill(0);
            par_transfer(&mut dst, &src, &ops);
            assert_eq!(&dst[..seg], &src[..seg], "round {round}");
        }
        let info = pool_info();
        assert!(info.threads >= 1 && info.threads <= MAX_POOL_THREADS);
        assert_eq!(pool_info_if_started(), Some(info));
    }

    #[test]
    fn transfer_rejects_oob() {
        let src = vec![0u8; 16];
        let mut dst = vec![0u8; 16];
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            par_transfer(
                &mut dst,
                &src,
                &[CopyOp {
                    src_off: 10,
                    dst_off: 0,
                    len: 10,
                }],
            );
        }));
        assert!(r.is_err(), "out-of-bounds op must panic");
    }

    #[test]
    #[cfg(debug_assertions)]
    #[should_panic(expected = "overlapping destination")]
    fn transfer_rejects_overlap_in_debug() {
        let src = vec![0u8; 32];
        let mut dst = vec![0u8; 32];
        let ops = [
            CopyOp {
                src_off: 0,
                dst_off: 0,
                len: 8,
            },
            CopyOp {
                src_off: 8,
                dst_off: 4,
                len: 8,
            },
        ];
        par_transfer(&mut dst, &src, &ops);
    }

    #[test]
    fn empty_ops_are_fine() {
        let src = vec![1u8; 8];
        let mut dst = vec![2u8; 8];
        par_transfer(&mut dst, &src, &[]);
        assert_eq!(dst, vec![2u8; 8]);
    }

    #[test]
    fn chunked_segment_copy_all_small_lengths() {
        // Every length through the chunked tiers, with guard bytes to
        // catch overruns on either side.
        for len in 0..=2 * CHUNKED_COPY_MAX {
            let src: Vec<u8> = (0..len).map(|i| (i % 249) as u8 ^ 0x5a).collect();
            let mut dst = vec![0xEEu8; len + 16];
            unsafe { copy_segment(src.as_ptr(), dst.as_mut_ptr().add(8), len) };
            assert_eq!(&dst[..8], &[0xEE; 8], "head guard, len={len}");
            assert_eq!(&dst[8..8 + len], &src[..], "payload, len={len}");
            assert_eq!(&dst[8 + len..], &[0xEE; 8], "tail guard, len={len}");
        }
    }

    #[test]
    fn single_huge_op_splits_across_lanes() {
        // One contiguous 2 MB segment: previously forced inline, now
        // split at cache-line boundaries across the pool.
        let len = 2 << 20;
        let src: Vec<u8> = (0..len).map(|i| (i % 239) as u8).collect();
        let mut dst = vec![0u8; len];
        let op = [CopyOp {
            src_off: 0,
            dst_off: 0,
            len,
        }];
        par_transfer(&mut dst, &src, &op);
        assert_eq!(dst, src);
    }

    #[test]
    fn split_targets_are_cache_line_aligned_and_cover() {
        let ops = [
            CopyOp {
                src_off: 10,
                dst_off: 3,
                len: 1_000_000,
            },
            CopyOp {
                src_off: 2_000_000,
                dst_off: 1_000_003,
                len: 100,
            },
        ];
        let total: usize = ops.iter().map(|o| o.len).sum();
        let pieces = split_ops_to_target(&ops, total.div_ceil(4));
        assert!(pieces.len() >= 4);
        // Pieces tile each original op exactly, in order, and every
        // split point (piece length before the last of an op) is a
        // cache-line multiple.
        let mut idx = 0usize;
        for o in &ops {
            let mut off = 0usize;
            while off < o.len {
                let p = pieces[idx];
                assert_eq!(p.src_off, o.src_off + off);
                assert_eq!(p.dst_off, o.dst_off + off);
                if off + p.len < o.len {
                    assert_eq!(p.len % CACHE_LINE, 0, "interior split unaligned");
                }
                off += p.len;
                idx += 1;
            }
            assert_eq!(off, o.len);
        }
        assert_eq!(idx, pieces.len());
    }

    #[test]
    fn partitioning_covers_all_ops() {
        let ops: Vec<CopyOp> = (0..37)
            .map(|i| CopyOp {
                src_off: i * 100,
                dst_off: i * 50,
                len: 13 + (i % 7),
            })
            .collect();
        let total: usize = ops.iter().map(|o| o.len).sum();
        for n in 1..=8usize {
            let mut bounds = [(0usize, 0usize); MAX_POOL_THREADS];
            let runs = partition_runs(&ops, total, n, &mut bounds);
            assert!(runs >= 1 && runs <= n, "n={n} runs={runs}");
            let mut pos = 0usize;
            for &(s, e) in &bounds[..runs] {
                assert_eq!(s, pos, "runs must be contiguous");
                assert!(e > s);
                pos = e;
            }
            assert_eq!(pos, ops.len(), "runs must cover all ops (n={n})");
        }
    }
}

/// Loom model of the [`run_sharded`] handoff protocol (nightly `loom`
/// CI job; see `shard.rs` for the invocation). The worker pool itself
/// cannot run under loom — it parks on real channels and lives for the
/// process — so this models the exact protocol shape instead: workers
/// write disjoint destination ranges through a shared raw pointer, then
/// count a latch down with a Release `fetch_sub`; the submitter spins
/// on an Acquire load and reads the buffer once the latch hits zero.
/// Loom verifies the Release/Acquire pair is what makes every worker
/// write visible to the submitting thread.
#[cfg(all(test, loom))]
mod loom_tests {
    use loom::cell::UnsafeCell;
    use loom::sync::atomic::{AtomicUsize, Ordering};
    use loom::sync::Arc;
    use loom::thread;

    #[test]
    fn loom_job_handoff_publishes_disjoint_writes() {
        loom::model(|| {
            // Two "shards" of a destination buffer, one cell each (the
            // real code hands out disjoint CopyOp ranges of one slice).
            let buf = Arc::new([UnsafeCell::new(0u8), UnsafeCell::new(0u8)]);
            let remaining = Arc::new(AtomicUsize::new(2));
            let workers: Vec<_> = (0..2)
                .map(|i| {
                    let buf = Arc::clone(&buf);
                    let remaining = Arc::clone(&remaining);
                    thread::spawn(move || {
                        buf[i].with_mut(|p| unsafe { *p = i as u8 + 1 });
                        remaining.fetch_sub(1, Ordering::Release);
                    })
                })
                .collect();
            // Submitter side: `run_sharded` parks/unparks around the
            // same Acquire load; the spin models the wakeup.
            while remaining.load(Ordering::Acquire) != 0 {
                thread::yield_now();
            }
            let seen = [
                buf[0].with(|p| unsafe { *p }),
                buf[1].with(|p| unsafe { *p }),
            ];
            assert_eq!(
                seen,
                [1, 2],
                "worker writes must be visible after the latch"
            );
            for w in workers {
                w.join().unwrap();
            }
        });
    }
}
