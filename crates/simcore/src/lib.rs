//! Discrete-event simulation kernel used by every substrate in this
//! workspace.
//!
//! The paper's evaluation ran on real hardware (NVIDIA K40 GPUs, PCIe gen3,
//! FDR InfiniBand). This reproduction replaces the hardware with a
//! deterministic discrete-event simulation: every protocol step, kernel
//! launch, DMA transfer and network message is an *event* on a single
//! virtual clock. `simcore` provides the clock, the event queue, FIFO
//! resource models (a stream, a DMA engine and a network link are all
//! "busy-until" FIFO resources), and small parallel byte-movement helpers
//! so that the *functional* side of the simulation (bytes really moving)
//! can use all host cores.
//!
//! Everything is deterministic: same inputs, same event order, same
//! virtual timestamps.

pub mod calq;
pub mod event;
pub mod hash;
pub mod par;
pub mod rate;
pub mod resource;
pub mod rng;
pub mod scratch;
pub mod shard;
pub mod stats;
pub mod time;
pub mod trace;

pub use calq::CalendarQueue;
pub use event::{EventId, Sim};
pub use rate::Bandwidth;
pub use resource::FifoResource;
pub use time::SimTime;
pub use trace::{Metrics, SpanId, Tracer, Track};
