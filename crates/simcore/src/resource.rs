//! FIFO "busy-until" resources.
//!
//! A CUDA stream, a copy engine, a NIC send queue and a PCIe link all
//! share the same first-order behaviour: operations submitted to them
//! execute one after another, each occupying the resource for a modeled
//! duration. `FifoResource` captures exactly that: it remembers when it
//! becomes free, and `reserve` returns the (start, end) window for the
//! next operation.

use crate::time::SimTime;

/// A serially-occupied resource on the virtual timeline.
#[derive(Clone, Debug, Default)]
pub struct FifoResource {
    busy_until: SimTime,
    total_busy: SimTime,
    ops: u64,
}

impl FifoResource {
    pub fn new() -> Self {
        Self::default()
    }

    /// Reserve the resource for `duration`, starting no earlier than
    /// `now`. Returns the `(start, completion)` window.
    pub fn reserve(&mut self, now: SimTime, duration: SimTime) -> (SimTime, SimTime) {
        let start = now.max(self.busy_until);
        let end = start + duration;
        self.busy_until = end;
        self.total_busy += duration;
        self.ops += 1;
        (start, end)
    }

    /// When the resource next becomes free.
    pub fn free_at(&self) -> SimTime {
        self.busy_until
    }

    /// Is the resource idle at `now`?
    pub fn idle_at(&self, now: SimTime) -> bool {
        self.busy_until <= now
    }

    /// Cumulative busy time across all reservations (for utilization
    /// reporting in the benchmark harnesses).
    pub fn total_busy(&self) -> SimTime {
        self.total_busy
    }

    /// Number of operations that have reserved this resource.
    pub fn op_count(&self) -> u64 {
        self.ops
    }

    /// Utilization in `[0, 1]` over the window `[0, now]`.
    pub fn utilization(&self, now: SimTime) -> f64 {
        if now == SimTime::ZERO {
            return 0.0;
        }
        (self.total_busy.as_secs_f64() / now.as_secs_f64()).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn back_to_back_ops_queue() {
        let mut r = FifoResource::new();
        let (s1, e1) = r.reserve(SimTime::from_nanos(0), SimTime::from_nanos(100));
        assert_eq!((s1.as_nanos(), e1.as_nanos()), (0, 100));
        // Submitted while busy: starts when the first finishes.
        let (s2, e2) = r.reserve(SimTime::from_nanos(10), SimTime::from_nanos(50));
        assert_eq!((s2.as_nanos(), e2.as_nanos()), (100, 150));
    }

    #[test]
    fn idle_gap_starts_immediately() {
        let mut r = FifoResource::new();
        r.reserve(SimTime::ZERO, SimTime::from_nanos(10));
        let (s, e) = r.reserve(SimTime::from_nanos(500), SimTime::from_nanos(10));
        assert_eq!((s.as_nanos(), e.as_nanos()), (500, 510));
        assert!(r.idle_at(SimTime::from_nanos(511)));
        assert!(!r.idle_at(SimTime::from_nanos(505)));
    }

    #[test]
    fn accounting() {
        let mut r = FifoResource::new();
        r.reserve(SimTime::ZERO, SimTime::from_nanos(30));
        r.reserve(SimTime::ZERO, SimTime::from_nanos(70));
        assert_eq!(r.total_busy().as_nanos(), 100);
        assert_eq!(r.op_count(), 2);
        assert!((r.utilization(SimTime::from_nanos(200)) - 0.5).abs() < 1e-12);
        assert_eq!(r.utilization(SimTime::ZERO), 0.0);
    }
}
