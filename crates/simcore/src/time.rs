//! Virtual time. One tick = one nanosecond of simulated time.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point (or span) of virtual time, in nanoseconds.
///
/// `SimTime` is used both as an absolute timestamp ("the event fires at
/// t = 1_200 ns") and as a duration ("the kernel runs for 42_000 ns");
/// the arithmetic is identical and keeping a single type avoids a zoo of
/// conversions in the protocol code.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(pub u64);

impl SimTime {
    pub const ZERO: SimTime = SimTime(0);
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from nanoseconds.
    pub const fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Construct from microseconds.
    pub const fn from_micros(us: u64) -> Self {
        SimTime(us * 1_000)
    }

    /// Construct from milliseconds.
    pub const fn from_millis(ms: u64) -> Self {
        SimTime(ms * 1_000_000)
    }

    /// Construct from (possibly fractional) seconds, rounding to the
    /// nearest nanosecond.
    pub fn from_secs_f64(s: f64) -> Self {
        debug_assert!(s >= 0.0, "negative duration: {s}");
        SimTime((s * 1e9).round() as u64)
    }

    pub const fn as_nanos(self) -> u64 {
        self.0
    }

    pub fn as_micros_f64(self) -> f64 {
        self.0 as f64 / 1e3
    }

    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1e6
    }

    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1e9
    }

    /// Saturating subtraction: `a.saturating_sub(b)` is zero when `b > a`.
    pub fn saturating_sub(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.saturating_sub(rhs.0))
    }

    /// The later of two instants.
    pub fn max(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.max(rhs.0))
    }

    /// The earlier of two instants.
    pub fn min(self, rhs: SimTime) -> SimTime {
        SimTime(self.0.min(rhs.0))
    }
}

impl Add for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimTime) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign for SimTime {
    fn add_assign(&mut self, rhs: SimTime) {
        self.0 += rhs.0;
    }
}

impl Sub for SimTime {
    type Output = SimTime;
    fn sub(self, rhs: SimTime) -> SimTime {
        debug_assert!(self.0 >= rhs.0, "SimTime underflow: {} - {}", self.0, rhs.0);
        SimTime(self.0 - rhs.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}ns", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1_000_000 {
            write!(f, "{:.3}ms", self.as_millis_f64())
        } else if self.0 >= 1_000 {
            write!(f, "{:.3}us", self.as_micros_f64())
        } else {
            write!(f, "{}ns", self.0)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_roundtrips() {
        assert_eq!(SimTime::from_micros(3).as_nanos(), 3_000);
        assert_eq!(SimTime::from_millis(2).as_nanos(), 2_000_000);
        assert_eq!(SimTime::from_secs_f64(1.5).as_nanos(), 1_500_000_000);
        assert_eq!(SimTime::from_nanos(7).as_nanos(), 7);
    }

    #[test]
    fn arithmetic() {
        let a = SimTime::from_nanos(100);
        let b = SimTime::from_nanos(40);
        assert_eq!((a + b).as_nanos(), 140);
        assert_eq!((a - b).as_nanos(), 60);
        assert_eq!(b.saturating_sub(a), SimTime::ZERO);
        assert_eq!(a.max(b), a);
        assert_eq!(a.min(b), b);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(SimTime::from_nanos(5).to_string(), "5ns");
        assert_eq!(SimTime::from_nanos(1_500).to_string(), "1.500us");
        assert_eq!(SimTime::from_millis(2).to_string(), "2.000ms");
    }

    #[test]
    fn secs_roundtrip() {
        let t = SimTime::from_secs_f64(0.000_123_456);
        assert!((t.as_secs_f64() - 0.000_123_456).abs() < 1e-12);
    }
}
