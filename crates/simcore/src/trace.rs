//! Virtual-time tracing: spans, instant events and monotonic counters
//! stamped with [`SimTime`], plus the per-run [`Metrics`] aggregate
//! derived from them.
//!
//! Every [`crate::Sim`] owns a [`Tracer`]. Models record *spans* for
//! work that occupies a resource over a virtual-time window (a kernel
//! on a stream, a fragment on a wire, DEV preparation on a CPU),
//! *instants* for point events (cache hit/miss), and *counters* for
//! byte totals. Counters are incremented inside the same events that
//! move the bytes — there is no parallel bookkeeping — so they double
//! as correctness checks: bytes packed must equal bytes delivered must
//! equal bytes unpacked for every protocol run.
//!
//! Span/instant recording is off by default (zero allocation on hot
//! paths); counters are always on, they are a handful of integer adds.
//! The recorded form exports directly as Chrome `trace_event` JSON,
//! loadable in `chrome://tracing` or <https://ui.perfetto.dev>.

use crate::time::SimTime;
use std::collections::{BTreeMap, BTreeSet};

/// The single registry of every trace counter, span category, and
/// span/instant name emitted anywhere in the workspace.
///
/// Counters double as correctness checks (bytes packed must equal
/// bytes delivered), and `Metrics` lookups are stringly keyed — a typo
/// at an emit site would silently report zero. The `xtask lint`
/// metrics-coherence rule therefore bans inline string literals at
/// `count`/`span_*`/`instant` call sites in simulator crates: every
/// name must be one of these constants.
pub mod names {
    // ---- counters: protocol layer ----
    /// Bytes landed in a matched receive buffer (the end-to-end total).
    pub const MPI_DELIVERED_BYTES: &str = "mpi.delivered.bytes";
    /// Bytes that crossed the staged copy-in/copy-out wire hop.
    pub const MPIRT_WIRE_BYTES: &str = "mpirt.wire.bytes";

    // ---- counters: fault engine ----
    /// Injections fired, dimensioned by `FaultOp::index()`.
    pub const FAULT_INJECTED: &str = "fault.injected";
    /// Retries provoked by transient faults (all layers).
    pub const RETRY_ATTEMPTS: &str = "retry.attempts";
    /// Protocol path renegotiations (SmIpc → CopyInOut, ZeroCopy → staged).
    pub const FALLBACK_EVENTS: &str = "fallback.events";

    // ---- counters: commit-time optimizer / tuner ----
    pub const OPTIMIZER_UNIT_TUNED: &str = "optimizer.unit.tuned";
    pub const OPTIMIZER_CHUNK_TUNED: &str = "optimizer.chunk.tuned";
    pub const OPTIMIZER_FRAG_TUNED: &str = "optimizer.frag.tuned";
    pub const OPTIMIZER_FRAG_DEFAULT: &str = "optimizer.frag.default";
    pub const OPTIMIZER_FRAG_CACHE_HIT: &str = "optimizer.frag.cache.hit";

    // ---- counters: GPU substrate ----
    pub const GPUSIM_KERNEL_BYTES: &str = "gpusim.kernel.bytes";
    pub const GPUSIM_KERNEL_UNITS: &str = "gpusim.kernel.units";
    pub const GPUSIM_KERNEL_LAUNCHES: &str = "gpusim.kernel.launches";
    pub const GPUSIM_IPC_OPEN_COUNT: &str = "gpusim.ipc_open.count";
    pub const GPUSIM_MEMCPY_H2H_BYTES: &str = "gpusim.memcpy.h2h.bytes";
    pub const GPUSIM_MEMCPY_H2D_BYTES: &str = "gpusim.memcpy.h2d.bytes";
    pub const GPUSIM_MEMCPY_D2H_BYTES: &str = "gpusim.memcpy.d2h.bytes";
    pub const GPUSIM_MEMCPY_D2D_BYTES: &str = "gpusim.memcpy.d2d.bytes";
    pub const GPUSIM_MEMCPY_P2P_BYTES: &str = "gpusim.memcpy.p2p.bytes";

    // ---- counters: datatype engines ----
    pub const DEVENGINE_PACK_BYTES: &str = "devengine.pack.bytes";
    pub const DEVENGINE_UNPACK_BYTES: &str = "devengine.unpack.bytes";
    pub const DEVENGINE_SOURCE_VECTOR: &str = "devengine.source.vector";
    pub const DEVENGINE_SOURCE_STRIDED2D: &str = "devengine.source.strided2d";
    pub const DEVENGINE_SOURCE_CACHED: &str = "devengine.source.cached";
    pub const DEVENGINE_SOURCE_FRESH: &str = "devengine.source.fresh";
    pub const DEVENGINE_CACHE_HIT: &str = "devengine.cache.hit";
    pub const DEVENGINE_CACHE_MISS: &str = "devengine.cache.miss";
    pub const DEVENGINE_CACHE_EVICT: &str = "devengine.cache.evict";
    pub const CPUPACK_PACK_BYTES: &str = "cpupack.pack.bytes";
    pub const CPUPACK_UNPACK_BYTES: &str = "cpupack.unpack.bytes";

    // ---- counters: network substrate ----
    pub const NETSIM_AM_COUNT: &str = "netsim.am.count";
    pub const NETSIM_AM_PAYLOAD_BYTES: &str = "netsim.am.payload.bytes";
    pub const NETSIM_RDMA_BYTES: &str = "netsim.rdma.bytes";

    // ---- counters: infrastructure ----
    /// Copy-pool sizing decision, surfaced once per session.
    pub const PAR_POOL_THREADS: &str = "simcore.par.pool_threads";

    // ---- counters: sharded scale model ----
    /// Messages delivered by the message-level scale model.
    pub const SCALE_MSGS: &str = "scale.msgs";
    /// Bytes delivered by the message-level scale model.
    pub const SCALE_DELIVERED_BYTES: &str = "scale.delivered.bytes";

    // ---- counters: offload frontier (NIC executor + stream trigger) ----
    /// DEV descriptor programs executed on a NIC packet processor.
    pub const OFFLOAD_NIC_PROGRAMS: &str = "offload.nic.programs";
    /// Payload bytes gathered/scattered by NIC-executed DEV programs.
    pub const OFFLOAD_NIC_BYTES: &str = "offload.nic.bytes";
    /// NicOffload → GpuPack demotions (NIC handler install lost).
    pub const OFFLOAD_NIC_DEMOTIONS: &str = "offload.nic.demotions";
    /// Captured stream-op graph replays (one per iteration re-issue).
    pub const OFFLOAD_STREAM_REPLAYS: &str = "offload.stream.replays";
    /// Stream-op graphs captured (once per persistent transfer shape).
    pub const OFFLOAD_STREAM_CAPTURES: &str = "offload.stream.captures";
    /// StreamTriggered → CPU-driven demotions (doorbell lost).
    pub const OFFLOAD_STREAM_DEMOTIONS: &str = "offload.stream.demotions";

    // ---- span categories (one per emitting layer) ----
    pub const CAT_MPIRT: &str = "mpirt";
    pub const CAT_NETSIM: &str = "netsim";
    pub const CAT_GPUSIM: &str = "gpusim";
    pub const CAT_DEVENGINE: &str = "devengine";
    pub const CAT_CPUPACK: &str = "cpupack";
    pub const CAT_SCALE: &str = "scale";

    // ---- span / instant names: protocol layer ----
    pub const SPAN_SESSION: &str = "session";
    pub const SPAN_EAGER: &str = "eager";
    pub const SPAN_COPYIO: &str = "copyio";
    pub const SPAN_WIRE: &str = "wire";
    pub const SPAN_FRAG: &str = "frag";
    pub const SPAN_SM_BOTH_DENSE: &str = "sm-both-dense";
    pub const SPAN_SM_SENDER_DENSE: &str = "sm-sender-dense";
    pub const SPAN_SM_RECEIVER_DENSE: &str = "sm-receiver-dense";
    pub const SPAN_SM_PIPELINE: &str = "sm-pipeline";

    // ---- span / instant names: substrates ----
    pub const SPAN_AM: &str = "am";
    pub const SPAN_RDMA_REGISTER: &str = "rdma-register";
    pub const SPAN_RDMA_GET: &str = "rdma-get";
    pub const SPAN_RDMA_PUT: &str = "rdma-put";
    pub const SPAN_KERNEL: &str = "kernel";
    pub const SPAN_MEMCPY: &str = "memcpy";
    pub const SPAN_MEMCPY2D: &str = "memcpy2d";
    pub const SPAN_IPC_OPEN: &str = "ipc-open";
    pub const SPAN_STREAM_SYNC: &str = "stream-sync";
    pub const SPAN_PREP: &str = "prep";
    pub const SPAN_DEV_CACHE_HIT: &str = "dev-cache-hit";
    pub const SPAN_DEV_CACHE_MISS: &str = "dev-cache-miss";
    pub const SPAN_CPU_PACK: &str = "cpu-pack";
    pub const SPAN_CPU_UNPACK: &str = "cpu-unpack";

    // ---- span / instant names: offload frontier ----
    pub const SPAN_NIC_PROGRAM: &str = "nic-program";
    pub const SPAN_STREAM_CAPTURE: &str = "stream-capture";
    pub const SPAN_STREAM_REPLAY: &str = "stream-replay";

    // ---- span / instant names: sharded scale model ----
    pub const SPAN_SCALE_OP: &str = "scale-op";
}

/// Where a span ran: a stable, allocation-free identifier that maps to
/// one row ("thread") in the trace viewer.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub enum Track {
    /// A CUDA stream on a GPU.
    Stream { gpu: u32, index: u32 },
    /// A rank's host CPU.
    Cpu { rank: u32 },
    /// The control (active-message) half of a link.
    LinkCtrl { from: u32, to: u32 },
    /// The data (RDMA / fragment) half of a link.
    LinkData { from: u32, to: u32 },
    /// The fragment ring of a connection.
    Ring { from: u32, to: u32 },
    /// Protocol-level state machine for a rank pair.
    Proto { from: u32, to: u32 },
    /// Session / run-level spans.
    Session,
}

impl std::fmt::Display for Track {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Track::Stream { gpu, index } => write!(f, "gpu{gpu}/stream{index}"),
            Track::Cpu { rank } => write!(f, "rank{rank}/cpu"),
            Track::LinkCtrl { from, to } => write!(f, "link {from}->{to} ctrl"),
            Track::LinkData { from, to } => write!(f, "link {from}->{to} data"),
            Track::Ring { from, to } => write!(f, "ring {from}->{to}"),
            Track::Proto { from, to } => write!(f, "proto {from}->{to}"),
            Track::Session => write!(f, "session"),
        }
    }
}

/// One recorded event.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// A closed span: work occupying `track` over `[start, end]`.
    Span {
        cat: &'static str,
        name: &'static str,
        track: Track,
        start: SimTime,
        end: SimTime,
    },
    /// A point event.
    Instant {
        cat: &'static str,
        name: &'static str,
        track: Track,
        at: SimTime,
    },
}

/// Handle to a span opened with [`Tracer::span_begin`].
#[derive(Clone, Copy, Debug)]
#[must_use = "close the span with span_end"]
pub struct SpanId(usize);

const SPAN_DISABLED: usize = usize::MAX;

impl SpanId {
    /// An inert handle: [`Tracer::span_end`] on it is a no-op. Useful
    /// as a placeholder in state structs before a span is opened.
    pub const fn disabled() -> SpanId {
        SpanId(SPAN_DISABLED)
    }
}

struct OpenSpan {
    cat: &'static str,
    name: &'static str,
    track: Track,
    start: SimTime,
}

/// Monotonic counter identity: a static name plus two small dimensions
/// (rank/GPU/link endpoints — 0 when unused).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub struct CounterKey {
    pub name: &'static str,
    pub a: u32,
    pub b: u32,
}

/// The per-simulation trace recorder. Owned by [`crate::Sim`] as the
/// public `trace` field.
#[derive(Default)]
pub struct Tracer {
    recording: bool,
    events: Vec<TraceEvent>,
    open: Vec<Option<OpenSpan>>,
    counters: BTreeMap<CounterKey, u64>,
}

impl Tracer {
    pub fn new() -> Tracer {
        Tracer::default()
    }

    /// Turn span/instant recording on or off. Counters are unaffected
    /// (always on).
    pub fn set_recording(&mut self, on: bool) {
        self.recording = on;
    }

    pub fn is_recording(&self) -> bool {
        self.recording
    }

    /// Record a span whose window is already known — the shape of every
    /// `FifoResource::reserve` call site, which learns `(start, end)` up
    /// front.
    pub fn span_at(
        &mut self,
        start: SimTime,
        end: SimTime,
        cat: &'static str,
        name: &'static str,
        track: Track,
    ) {
        if !self.recording {
            return;
        }
        debug_assert!(end >= start, "span {name} ends before it starts");
        self.events.push(TraceEvent::Span {
            cat,
            name,
            track,
            start,
            end,
        });
    }

    /// Open a span now; close it with [`Tracer::span_end`]. Used for
    /// protocol lifecycles whose end is not known at the start.
    pub fn span_begin(
        &mut self,
        now: SimTime,
        cat: &'static str,
        name: &'static str,
        track: Track,
    ) -> SpanId {
        if !self.recording {
            return SpanId(SPAN_DISABLED);
        }
        self.open.push(Some(OpenSpan {
            cat,
            name,
            track,
            start: now,
        }));
        SpanId(self.open.len() - 1)
    }

    /// Close a span opened with [`Tracer::span_begin`]. Panics if the
    /// span is closed twice or closes before it opened — spans must
    /// nest and close in virtual-time order.
    pub fn span_end(&mut self, now: SimTime, id: SpanId) {
        if id.0 == SPAN_DISABLED {
            return;
        }
        let open = self.open[id.0].take().expect("span closed twice");
        assert!(
            now >= open.start,
            "span {} closes at {now:?} before it opened at {:?}",
            open.name,
            open.start
        );
        self.events.push(TraceEvent::Span {
            cat: open.cat,
            name: open.name,
            track: open.track,
            start: open.start,
            end: now,
        });
    }

    /// Record a point event.
    pub fn instant(&mut self, at: SimTime, cat: &'static str, name: &'static str, track: Track) {
        if !self.recording {
            return;
        }
        self.events.push(TraceEvent::Instant {
            cat,
            name,
            track,
            at,
        });
    }

    /// Bump a counter. Always on; call this from the event that
    /// actually moves the bytes it counts.
    pub fn count(&mut self, name: &'static str, a: u32, b: u32, delta: u64) {
        *self.counters.entry(CounterKey { name, a, b }).or_insert(0) += delta;
    }

    /// Raise a counter to an absolute total (monotone: never lowers).
    /// For reconciling externally-accumulated totals — e.g. the per-rank
    /// `DevCache` hit/miss/evict tallies — into the trace without double
    /// counting increments that were already `count`ed along the way.
    pub fn count_to(&mut self, name: &'static str, a: u32, b: u32, total: u64) {
        let e = self.counters.entry(CounterKey { name, a, b }).or_insert(0);
        if *e < total {
            *e = total;
        }
    }

    /// Total of a counter across all dimensions.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// One dimension of a counter.
    pub fn counter_at(&self, name: &str, a: u32, b: u32) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name && k.a == a && k.b == b)
            .map(|(_, v)| *v)
            .sum()
    }

    /// All counters, sorted by key.
    pub fn counters(&self) -> impl Iterator<Item = (CounterKey, u64)> + '_ {
        self.counters.iter().map(|(k, v)| (*k, *v))
    }

    /// All recorded events.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Number of spans still open. Zero after a well-formed run.
    pub fn open_spans(&self) -> usize {
        self.open.iter().filter(|s| s.is_some()).count()
    }

    /// The distinct tracks touched by recorded events, in stable order.
    pub fn tracks(&self) -> Vec<Track> {
        let mut set = BTreeSet::new();
        for e in &self.events {
            match e {
                TraceEvent::Span { track, .. } | TraceEvent::Instant { track, .. } => {
                    set.insert(*track);
                }
            }
        }
        set.into_iter().collect()
    }

    /// Append this trace's Chrome `trace_event` objects to `out`, one
    /// JSON object per element, under process id `pid` (named `label`).
    /// Timestamps are microseconds as the format requires.
    pub fn chrome_events(&self, pid: u32, label: &str, out: &mut Vec<String>) {
        out.push(format!(
            r#"{{"name":"process_name","ph":"M","pid":{pid},"tid":0,"args":{{"name":"{}"}}}}"#,
            json_escape(label)
        ));
        let tracks = self.tracks();
        let tid_of = |t: &Track| tracks.iter().position(|x| x == t).unwrap() as u32 + 1;
        for t in &tracks {
            out.push(format!(
                r#"{{"name":"thread_name","ph":"M","pid":{pid},"tid":{},"args":{{"name":"{}"}}}}"#,
                tid_of(t),
                json_escape(&t.to_string())
            ));
        }
        for e in &self.events {
            match e {
                TraceEvent::Span {
                    cat,
                    name,
                    track,
                    start,
                    end,
                } => {
                    let ts = start.as_nanos() as f64 / 1000.0;
                    let dur = (end.as_nanos() - start.as_nanos()) as f64 / 1000.0;
                    out.push(format!(
                        r#"{{"name":"{name}","cat":"{cat}","ph":"X","ts":{ts},"dur":{dur},"pid":{pid},"tid":{}}}"#,
                        tid_of(track)
                    ));
                }
                TraceEvent::Instant {
                    cat,
                    name,
                    track,
                    at,
                } => {
                    let ts = at.as_nanos() as f64 / 1000.0;
                    out.push(format!(
                        r#"{{"name":"{name}","cat":"{cat}","ph":"i","ts":{ts},"s":"t","pid":{pid},"tid":{}}}"#,
                        tid_of(track)
                    ));
                }
            }
        }
    }

    /// The whole trace as a single-process Chrome JSON document.
    pub fn chrome_json(&self, label: &str) -> String {
        let mut events = Vec::new();
        self.chrome_events(1, label, &mut events);
        format!("{{\"traceEvents\":[\n{}\n]}}\n", events.join(",\n"))
    }

    /// Fold another tracer into this one: events append, counters sum.
    /// All of `other`'s spans must be closed.
    pub fn absorb(&mut self, other: Tracer) {
        assert_eq!(other.open_spans(), 0, "absorbing a tracer with open spans");
        self.recording |= other.recording;
        self.events.extend(other.events);
        for (k, v) in other.counters {
            *self.counters.entry(k).or_insert(0) += v;
        }
    }

    /// Deterministically merge per-shard tracers into one trace whose
    /// event order is independent of shard count and worker
    /// interleaving: events are re-sorted by the content key
    /// `(time, track, category, name)` and counters sum per key (shards
    /// count on disjoint dimensions, so summing loses nothing). A
    /// 1-shard run passed through this function yields byte-identical
    /// `chrome_json` output to an N-shard run of the same model.
    pub fn merge_shards(parts: Vec<Tracer>) -> Tracer {
        let mut out = Tracer::new();
        for t in parts {
            out.absorb(t);
        }
        out.events.sort_by(|a, b| a.sort_key().cmp(&b.sort_key()));
        out
    }
}

impl TraceEvent {
    /// Content-based total-order key for the deterministic shard merge.
    /// Spans sort before instants at the same `(time, track)` so the
    /// order does not depend on which shard recorded what.
    fn sort_key(&self) -> (u64, u8, Track, &'static str, &'static str, u64) {
        match *self {
            TraceEvent::Span {
                cat,
                name,
                track,
                start,
                end,
            } => (start.as_nanos(), 0, track, cat, name, end.as_nanos()),
            TraceEvent::Instant {
                cat,
                name,
                track,
                at,
            } => (at.as_nanos(), 1, track, cat, name, 0),
        }
    }
}

fn json_escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

/// Coarse classification of spans into pipeline stages, used for the
/// overlap computation. The paper's pipeline hides `Prep` (CPU DEV
/// generation / host packing) and `Copy`/`Wire` behind `Kernel`.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Debug)]
pub enum WorkClass {
    /// CPU-side preparation: DEV generation, host pack/unpack.
    Prep,
    /// GPU pack/unpack kernels.
    Kernel,
    /// memcpy engines (H2D/D2H/D2D/P2P).
    Copy,
    /// Link occupancy: AMs, RDMA, staged wire fragments.
    Wire,
}

impl WorkClass {
    /// Classify a span by its category/name; `None` for spans that are
    /// not pipeline work (protocol lifecycles, sync, session spans).
    pub fn of(cat: &str, name: &str) -> Option<WorkClass> {
        match cat {
            names::CAT_DEVENGINE | names::CAT_CPUPACK => Some(WorkClass::Prep),
            names::CAT_GPUSIM => match name {
                names::SPAN_KERNEL => Some(WorkClass::Kernel),
                n if n.starts_with(names::SPAN_MEMCPY) => Some(WorkClass::Copy),
                _ => None,
            },
            names::CAT_NETSIM => Some(WorkClass::Wire),
            _ => None,
        }
    }
}

/// Per-run aggregate metrics, derived entirely from the recorded trace.
#[derive(Clone, Debug, Default)]
pub struct Metrics {
    /// Virtual time spanned by classified work (first start → last end).
    pub makespan: SimTime,
    /// Busy time per work class (union of that class's spans).
    pub class_busy: BTreeMap<WorkClass, SimTime>,
    /// Union busy time across all classified work.
    pub union_busy: SimTime,
    /// Pipeline overlap: `100 * (Σ class busy − union busy) / union
    /// busy`. Zero when stages strictly serialize; positive when any
    /// two classes run concurrently.
    pub overlap_pct: f64,
    /// Fraction of the makespan with at least one kernel running.
    pub kernel_occupancy: f64,
    /// Average number of in-flight ring fragments (Σ fragment-span
    /// durations / makespan).
    pub ring_residency: f64,
    /// Final counter totals (bytes moved per link/space, AM counts...).
    pub counters: Vec<(CounterKey, u64)>,
    /// GPU architecture the run was simulated on, when the world above
    /// knows it (sessions stamp this so traces/CSVs are
    /// self-describing). `None` for bare tracer-derived metrics.
    pub arch: Option<&'static str>,
}

/// Union length of a set of intervals.
fn union_busy(mut iv: Vec<(u64, u64)>) -> u64 {
    iv.sort_unstable();
    let mut total = 0u64;
    let mut cur: Option<(u64, u64)> = None;
    for (s, e) in iv {
        match cur {
            Some((cs, ce)) if s <= ce => cur = Some((cs, ce.max(e))),
            Some((cs, ce)) => {
                total += ce - cs;
                cur = Some((s, e));
                let _ = cs;
            }
            None => cur = Some((s, e)),
        }
    }
    if let Some((cs, ce)) = cur {
        total += ce - cs;
    }
    total
}

impl Metrics {
    /// Compute metrics from a recorded trace. Requires recording to
    /// have been on during the run (counters alone carry no timing).
    pub fn from_trace(trace: &Tracer) -> Metrics {
        let mut per_class: BTreeMap<WorkClass, Vec<(u64, u64)>> = BTreeMap::new();
        let mut all: Vec<(u64, u64)> = Vec::new();
        let mut kernel: Vec<(u64, u64)> = Vec::new();
        let mut frag_total = 0u64;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for e in trace.events() {
            let TraceEvent::Span {
                cat,
                name,
                start,
                end,
                track,
            } = e
            else {
                continue;
            };
            if *cat == names::CAT_MPIRT && *name == names::SPAN_FRAG {
                frag_total += end.as_nanos() - start.as_nanos();
            }
            let Some(class) = WorkClass::of(cat, name) else {
                let _ = track;
                continue;
            };
            let iv = (start.as_nanos(), end.as_nanos());
            lo = lo.min(iv.0);
            hi = hi.max(iv.1);
            per_class.entry(class).or_default().push(iv);
            all.push(iv);
            if class == WorkClass::Kernel {
                kernel.push(iv);
            }
        }
        if all.is_empty() {
            // No timing spans (recording off) — counters still apply.
            return Metrics {
                counters: trace.counters().collect(),
                ..Metrics::default()
            };
        }
        let makespan = hi - lo;
        let union = union_busy(all);
        let mut class_busy = BTreeMap::new();
        let mut sum = 0u64;
        for (class, iv) in per_class {
            let busy = union_busy(iv);
            sum += busy;
            class_busy.insert(class, SimTime::from_nanos(busy));
        }
        let overlap_pct = if union > 0 {
            100.0 * (sum - union) as f64 / union as f64
        } else {
            0.0
        };
        let kernel_busy = union_busy(kernel);
        Metrics {
            makespan: SimTime::from_nanos(makespan),
            class_busy,
            union_busy: SimTime::from_nanos(union),
            overlap_pct,
            kernel_occupancy: if makespan > 0 {
                kernel_busy as f64 / makespan as f64
            } else {
                0.0
            },
            ring_residency: if makespan > 0 {
                frag_total as f64 / makespan as f64
            } else {
                0.0
            },
            counters: trace.counters().collect(),
            arch: None,
        }
    }

    /// Final total of a named counter, summed across its dimensions.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .filter(|(k, _)| k.name == name)
            .map(|(_, v)| *v)
            .sum()
    }

    /// Human-readable multi-line summary.
    pub fn summary(&self) -> String {
        use std::fmt::Write as _;
        let mut s = String::new();
        if let Some(arch) = self.arch {
            let _ = writeln!(s, "arch              {arch}");
        }
        let _ = writeln!(s, "makespan          {}", self.makespan);
        for (class, busy) in &self.class_busy {
            let _ = writeln!(s, "busy[{class:?}]{:<8} {busy}", "");
        }
        let _ = writeln!(s, "busy[any]         {}", self.union_busy);
        let _ = writeln!(s, "overlap           {:.1}%", self.overlap_pct);
        let _ = writeln!(s, "kernel occupancy  {:.1}%", self.kernel_occupancy * 100.0);
        let _ = writeln!(
            s,
            "ring residency    {:.2} fragments in flight",
            self.ring_residency
        );
        for (k, v) in &self.counters {
            if k.a == 0 && k.b == 0 {
                let _ = writeln!(s, "{:<24} {v}", k.name);
            } else {
                let _ = writeln!(s, "{:<24} {v}  [{}->{}]", k.name, k.a, k.b);
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const T: Track = Track::Cpu { rank: 0 };

    fn ns(n: u64) -> SimTime {
        SimTime::from_nanos(n)
    }

    #[test]
    fn spans_record_only_when_recording() {
        let mut t = Tracer::new();
        t.span_at(ns(0), ns(10), "gpusim", "kernel", T);
        assert!(t.events().is_empty());
        t.set_recording(true);
        t.span_at(ns(0), ns(10), "gpusim", "kernel", T);
        assert_eq!(t.events().len(), 1);
    }

    #[test]
    fn counters_always_on() {
        let mut t = Tracer::new();
        t.count("x.bytes", 0, 1, 7);
        t.count("x.bytes", 0, 1, 5);
        t.count("x.bytes", 2, 3, 1);
        assert_eq!(t.counter_at("x.bytes", 0, 1), 12);
        assert_eq!(t.counter("x.bytes"), 13);
        assert_eq!(t.counter("y.bytes"), 0);
    }

    #[test]
    fn begin_end_spans_close_in_time_order() {
        let mut t = Tracer::new();
        t.set_recording(true);
        let outer = t.span_begin(ns(10), "mpirt", "rendezvous", T);
        let inner = t.span_begin(ns(20), "mpirt", "frag", T);
        t.span_end(ns(30), inner);
        t.span_end(ns(50), outer);
        assert_eq!(t.open_spans(), 0);
        // Both spans recorded with their true windows.
        let spans: Vec<(u64, u64)> = t
            .events()
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Span { start, end, .. } => Some((start.as_nanos(), end.as_nanos())),
                _ => None,
            })
            .collect();
        assert_eq!(spans, vec![(20, 30), (10, 50)]);
    }

    #[test]
    #[should_panic(expected = "closed twice")]
    fn double_close_panics() {
        let mut t = Tracer::new();
        t.set_recording(true);
        let id = t.span_begin(ns(0), "mpirt", "run", T);
        t.span_end(ns(1), id);
        t.span_end(ns(2), id);
    }

    #[test]
    #[should_panic(expected = "before it opened")]
    fn closing_before_opening_panics() {
        let mut t = Tracer::new();
        t.set_recording(true);
        let id = t.span_begin(ns(10), "mpirt", "run", T);
        t.span_end(ns(5), id);
    }

    #[test]
    fn disabled_span_handles_are_inert() {
        let mut t = Tracer::new();
        let id = t.span_begin(ns(0), "mpirt", "run", T);
        t.span_end(ns(5), id);
        assert!(t.events().is_empty());
        assert_eq!(t.open_spans(), 0);
    }

    #[test]
    fn union_merges_overlaps() {
        assert_eq!(union_busy(vec![(0, 10), (5, 15), (20, 30)]), 25);
        assert_eq!(union_busy(vec![]), 0);
        assert_eq!(union_busy(vec![(3, 3)]), 0);
    }

    #[test]
    fn overlap_zero_when_serialized() {
        let mut t = Tracer::new();
        t.set_recording(true);
        t.span_at(ns(0), ns(10), "devengine", "prep", T);
        t.span_at(
            ns(10),
            ns(30),
            "gpusim",
            "kernel",
            Track::Stream { gpu: 0, index: 0 },
        );
        let m = Metrics::from_trace(&t);
        assert_eq!(m.overlap_pct, 0.0);
        assert_eq!(m.makespan, ns(30));
        assert_eq!(m.union_busy, ns(30));
    }

    #[test]
    fn overlap_positive_when_pipelined() {
        let mut t = Tracer::new();
        t.set_recording(true);
        // Prep of fragment i+1 hides behind kernel of fragment i.
        t.span_at(ns(0), ns(10), "devengine", "prep", T);
        t.span_at(
            ns(10),
            ns(30),
            "gpusim",
            "kernel",
            Track::Stream { gpu: 0, index: 0 },
        );
        t.span_at(ns(10), ns(20), "devengine", "prep", T);
        let m = Metrics::from_trace(&t);
        assert!(m.overlap_pct > 0.0, "overlap {}", m.overlap_pct);
        assert_eq!(m.kernel_occupancy, 20.0 / 30.0);
    }

    #[test]
    fn shard_merge_is_partition_independent() {
        // The same three events recorded into one tracer vs split across
        // two (in a different order) must merge to identical traces.
        let record = |t: &mut Tracer, which: &[u8]| {
            for &w in which {
                match w {
                    0 => t.span_at(ns(10), ns(20), "scale", "scale-op", Track::Cpu { rank: 0 }),
                    1 => t.span_at(ns(10), ns(15), "scale", "scale-op", Track::Cpu { rank: 1 }),
                    _ => t.instant(ns(12), "scale", "scale-op", Track::Cpu { rank: 2 }),
                }
                t.count(names::SCALE_MSGS, w as u32, 0, 1);
            }
        };
        let mut single = Tracer::new();
        single.set_recording(true);
        record(&mut single, &[0, 1, 2]);
        let merged_single = Tracer::merge_shards(vec![single]);

        let mut a = Tracer::new();
        a.set_recording(true);
        let mut b = Tracer::new();
        b.set_recording(true);
        record(&mut a, &[2, 0]);
        record(&mut b, &[1]);
        let merged_split = Tracer::merge_shards(vec![a, b]);

        assert_eq!(
            merged_single.chrome_json("x"),
            merged_split.chrome_json("x")
        );
        assert_eq!(merged_split.counter(names::SCALE_MSGS), 3);
        assert_eq!(merged_split.counter_at(names::SCALE_MSGS, 1, 0), 1);
    }

    #[test]
    fn chrome_json_is_well_formed() {
        let mut t = Tracer::new();
        t.set_recording(true);
        t.span_at(
            ns(1000),
            ns(2500),
            "gpusim",
            "kernel",
            Track::Stream { gpu: 0, index: 1 },
        );
        t.instant(ns(1200), "devengine", "dev-cache-hit", T);
        let json = t.chrome_json("test");
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains(r#""ph":"X""#));
        assert!(json.contains(r#""ph":"i""#));
        assert!(json.contains("gpu0/stream1"));
        assert!(json.contains(r#""ts":1,"dur":1.5"#));
        // Balanced braces as a cheap well-formedness check.
        assert_eq!(json.matches('{').count(), json.matches('}').count());
    }
}
