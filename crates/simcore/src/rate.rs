//! Bandwidth as a first-class quantity.
//!
//! Every hardware model in the workspace (GPU DRAM, PCIe, InfiniBand,
//! shared-memory channel) is calibrated in bytes per second; `Bandwidth`
//! centralizes the "how long does N bytes take" arithmetic so the cost
//! models cannot disagree about rounding.

use crate::time::SimTime;
use std::fmt;

/// A transfer rate in bytes per second.
#[derive(Clone, Copy, PartialEq, PartialOrd, Debug)]
pub struct Bandwidth(f64);

impl Bandwidth {
    /// Construct from bytes per second.
    pub fn from_bytes_per_sec(bps: f64) -> Self {
        assert!(bps > 0.0, "bandwidth must be positive, got {bps}");
        Bandwidth(bps)
    }

    /// Construct from gigabytes per second (decimal GB, matching how the
    /// paper and vendor datasheets quote link speeds).
    pub fn from_gbps(gbps: f64) -> Self {
        Self::from_bytes_per_sec(gbps * 1e9)
    }

    pub fn bytes_per_sec(self) -> f64 {
        self.0
    }

    pub fn as_gbps(self) -> f64 {
        self.0 / 1e9
    }

    /// Virtual time needed to move `bytes` at this rate (ceiling to the
    /// next nanosecond so zero-cost transfers cannot exist).
    pub fn time_for(self, bytes: u64) -> SimTime {
        if bytes == 0 {
            return SimTime::ZERO;
        }
        let ns = (bytes as f64) * 1e9 / self.0;
        SimTime::from_nanos(ns.ceil() as u64)
    }

    /// Derate this bandwidth by a multiplicative factor in `(0, 1]`,
    /// e.g. a contention share when another kernel occupies the GPU.
    pub fn derated(self, factor: f64) -> Bandwidth {
        assert!(
            factor > 0.0 && factor <= 1.0,
            "derate factor {factor} out of (0,1]"
        );
        Bandwidth(self.0 * factor)
    }

    /// Effective bandwidth achieved moving `bytes` in `elapsed` time.
    pub fn effective(bytes: u64, elapsed: SimTime) -> f64 {
        if elapsed == SimTime::ZERO {
            return f64::INFINITY;
        }
        bytes as f64 / elapsed.as_secs_f64()
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2}GB/s", self.as_gbps())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn time_for_scales_linearly() {
        let bw = Bandwidth::from_gbps(10.0);
        assert_eq!(bw.time_for(0), SimTime::ZERO);
        // 10 GB/s == 10 bytes/ns, so 1000 bytes == 100 ns.
        assert_eq!(bw.time_for(1_000).as_nanos(), 100);
        assert_eq!(bw.time_for(2_000).as_nanos(), 200);
    }

    #[test]
    fn tiny_transfers_round_up() {
        let bw = Bandwidth::from_gbps(100.0);
        // 1 byte at 100 B/ns would be 0.01 ns; must round up to 1 ns.
        assert_eq!(bw.time_for(1).as_nanos(), 1);
    }

    #[test]
    fn derating() {
        let bw = Bandwidth::from_gbps(10.0).derated(0.5);
        assert!((bw.as_gbps() - 5.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "out of (0,1]")]
    fn derate_rejects_zero() {
        let _ = Bandwidth::from_gbps(1.0).derated(0.0);
    }

    #[test]
    fn effective_bandwidth() {
        let t = SimTime::from_nanos(100);
        let e = Bandwidth::effective(1_000, t);
        assert!((e - 1e10).abs() / 1e10 < 1e-12);
    }
}
