//! Differential test of the calendar-queue scheduler against a
//! reference model.
//!
//! The model is the data structure the simulator used before the
//! calendar/arena rewrite — a plain `BinaryHeap` ordered by
//! `(time, insertion seq)` — with cancellation as a seq set. The real
//! scheduler routes the same schedule through three structures (the
//! same-instant fast lane, the bucketed calendar ring, the far-future
//! overflow rung) and sweeps cancellations lazily as tombstones; this
//! test drives both through random interleavings of schedule / cancel /
//! partial-run and asserts they observe the *identical* history:
//!
//! * the sequence of fired event tags (total `(time, seq)` order,
//!   including FIFO among same-instant events),
//! * virtual time after every segment (tombstone sweeps advance it),
//! * the executed-event count (cancelled events never execute),
//! * the pending count (cancelled entries stay pending until swept).
//!
//! Workload shapes are chosen to cross every internal boundary:
//! zero-delay bursts (fast lane), nearby deltas (same / adjacent
//! buckets), lap-edge deltas (bucket promotion and re-anchoring), and
//! multi-second deltas (overflow rung + adaptive shift), with nested
//! scheduling from inside callbacks and cancels aimed at live, already
//! fired, and already cancelled handles.

use simcore::rng::{rng, SimRng};
use simcore::{EventId, Sim, SimTime};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

type World = Vec<u64>;

/// Tags grow 4x per nesting generation; stopping here bounds cascade
/// depth (and with the sub-critical branching factor below, total event
/// count) without either side tracking depth explicitly.
const MAX_NESTING_TAG: u64 = 1 << 22;

/// A scheduling delay that lands in one of the scheduler's regimes.
fn pick_delta(r: &mut SimRng) -> u64 {
    match r.range(0, 10) {
        0 | 1 => 0,                                     // same-instant fast lane
        2..=4 => r.range_u64(1, 100),                   // same or adjacent bucket
        5 | 6 => r.range_u64(1_000, 50_000),            // a few buckets out
        7 | 8 => r.range_u64(1 << 19, 1 << 21),         // around the lap edge
        _ => r.range_u64(2_000_000_000, 6_000_000_000), // overflow rung
    }
}

/// Deterministic children of a fired event, derived from its tag alone
/// so the live callback and the model's pop loop agree with no shared
/// state. Branching averages 0.5 children, so cascades die out.
fn children(seed: u64, tag: u64) -> Vec<(u64, u64)> {
    if tag >= MAX_NESTING_TAG {
        return Vec::new();
    }
    let mut r = rng(seed ^ tag.wrapping_mul(0x9E3779B97F4A7C15));
    let n = match r.range(0, 8) {
        0..=4 => 0,
        5 | 6 => 1,
        _ => 2,
    };
    (0..n)
        .map(|i| (pick_delta(&mut r), tag * 4 + i as u64 + 1))
        .collect()
}

/// Fire an event in the live simulator: log the tag, spawn children.
fn spawn(sim: &mut Sim<World>, seed: u64, tag: u64) {
    sim.world.push(tag);
    let now = sim.now();
    for (delta, child) in children(seed, tag) {
        sim.schedule_at(now + SimTime::from_nanos(delta), move |s| {
            spawn(s, seed, child)
        });
    }
}

/// The reference scheduler: a heap of `(at, seq, tag)` with monotonic
/// insertion seqs — the total order the real scheduler must preserve.
#[derive(Default)]
struct Model {
    heap: BinaryHeap<Reverse<(u64, u64, u64)>>,
    cancelled: HashSet<u64>,
    next_seq: u64,
    now: u64,
    fired: Vec<u64>,
}

impl Model {
    fn schedule(&mut self, at: u64, tag: u64) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.heap.push(Reverse((at, seq, tag)));
        seq
    }

    /// Pop until one live event fires (sweeping cancelled entries, which
    /// still advance time, exactly like the real tombstone sweep).
    fn pop_one(&mut self, seed: u64) -> bool {
        while let Some(Reverse((at, seq, tag))) = self.heap.pop() {
            self.now = at;
            if self.cancelled.contains(&seq) {
                continue;
            }
            self.fired.push(tag);
            for (delta, child) in children(seed, tag) {
                let child_seq = self.next_seq;
                self.next_seq += 1;
                self.heap
                    .push(Reverse((at + delta, child_seq, tag_checked(child))));
            }
            return true;
        }
        false
    }

    fn run_until_count(&mut self, seed: u64, k: usize) {
        while self.fired.len() < k && self.pop_one(seed) {}
    }

    fn drain(&mut self, seed: u64) {
        while self.pop_one(seed) {}
    }
}

/// Child tags of both sides must agree bit-for-bit; this is just a
/// guard against the test's own tag arithmetic overflowing.
fn tag_checked(tag: u64) -> u64 {
    assert!(tag < u64::MAX / 8);
    tag
}

fn assert_in_sync(sim: &Sim<World>, model: &Model, ctx: &str) {
    assert_eq!(
        sim.now().as_nanos(),
        model.now,
        "virtual time diverged ({ctx})"
    );
    assert_eq!(
        sim.executed_events(),
        model.fired.len() as u64,
        "executed count diverged ({ctx})"
    );
    assert_eq!(
        sim.pending_events(),
        model.heap.len(),
        "pending count diverged ({ctx})"
    );
    assert_eq!(sim.world, model.fired, "fired order diverged ({ctx})");
}

/// One random interleaving of schedule / cancel / partial-run phases,
/// ending in a full drain.
fn differential_case(seed: u64) {
    let mut r = rng(seed);
    let mut sim = Sim::new(World::new());
    let mut model = Model::default();
    // Every top-level handle ever issued — cancels deliberately target
    // live, already-fired, and already-cancelled entries alike.
    let mut handles: Vec<(EventId, u64)> = Vec::new();
    let mut next_tag = 1u64;

    for phase in 0..8 {
        // Schedule a burst; sometimes a dense one (many events on the
        // same future instant, stressing single-bucket sorting + FIFO).
        let (m, dense_delta) = if r.chance(0.25) {
            (50, Some(pick_delta(&mut r)))
        } else {
            (r.range(1, 40), None)
        };
        for _ in 0..m {
            let delta = dense_delta.unwrap_or_else(|| pick_delta(&mut r));
            let at = model.now + delta;
            let tag = next_tag;
            next_tag += 1;
            let id = sim.schedule_at(SimTime::from_nanos(at), move |s| spawn(s, seed, tag));
            let seq = model.schedule(at, tag);
            handles.push((id, seq));
        }
        // Cancel a handful of arbitrary handles (stale ids are no-ops
        // on both sides; double-cancels too).
        for _ in 0..r.range(0, 2 + handles.len() / 4) {
            let (id, seq) = handles[r.range(0, handles.len())];
            sim.cancel(id);
            model.cancelled.insert(seq);
        }
        // Partially drain to a fired-count threshold.
        let k = model.fired.len() + r.range(0, 40);
        sim.run_until(move |w: &World| w.len() >= k);
        model.run_until_count(seed, k);
        assert_in_sync(&sim, &model, &format!("seed {seed} phase {phase}"));
    }

    // Final drain; alternate between the two terminal drivers.
    if seed.is_multiple_of(2) {
        sim.run();
    } else {
        sim.run_with_deadline(SimTime::from_nanos(1 << 62));
    }
    model.drain(seed);
    assert_in_sync(&sim, &model, &format!("seed {seed} final"));
    assert_eq!(sim.pending_events(), 0);
}

#[test]
fn random_interleavings_match_reference_model() {
    for seed in 0..12 {
        differential_case(seed);
    }
}

/// Purely same-instant storm: everything rides the fast lane and must
/// come out in exact insertion order, interleaved with cancels.
#[test]
fn same_instant_storm_matches_reference_model() {
    let seed = 999;
    let mut sim = Sim::new(World::new());
    let mut model = Model::default();
    let mut handles = Vec::new();
    for tag in 1..=400u64 {
        let id = sim.schedule_at(SimTime::ZERO, move |s| spawn(s, seed, tag));
        let seq = model.schedule(0, tag);
        handles.push((id, seq));
    }
    // Cancel every seventh before anything runs.
    for (id, seq) in handles.iter().step_by(7) {
        sim.cancel(*id);
        model.cancelled.insert(*seq);
    }
    sim.run();
    model.drain(seed);
    assert_in_sync(&sim, &model, "same-instant storm");
}

/// Far-future–only workload: every event lives on the overflow rung
/// until re-anchoring promotes it, and half are cancelled out there.
#[test]
fn far_future_overflow_matches_reference_model() {
    let seed = 4242;
    let mut r = rng(seed);
    let mut sim = Sim::new(World::new());
    let mut model = Model::default();
    let mut handles = Vec::new();
    for tag in 1..=120u64 {
        let delta = r.range_u64(2_000_000_000, 20_000_000_000);
        let id = sim.schedule_at(SimTime::from_nanos(delta), move |s| spawn(s, seed, tag));
        let seq = model.schedule(delta, tag);
        handles.push((id, seq));
    }
    for (id, seq) in handles.iter().skip(1).step_by(2) {
        sim.cancel(*id);
        model.cancelled.insert(*seq);
    }
    sim.run();
    model.drain(seed);
    assert_in_sync(&sim, &model, "far-future overflow");
}
