//! Loom-style exhaustive interleaving check for the `simcore::par`
//! completion latch.
//!
//! `par::run_sharded` hands jobs to parked workers and blocks the
//! caller on a stack-allocated `Completion { remaining, caller }`:
//! each worker clones the caller's thread handle *before* decrementing
//! `remaining`, unparks via the clone when it performed the final
//! decrement, and the caller parks until `remaining` reads zero — at
//! which point the `Completion` dies with the caller's stack frame.
//!
//! The loom crate is outside the workspace's no-external-deps policy,
//! so this test does what loom would: it enumerates **every**
//! interleaving of a small model of that protocol (sequentially
//! consistent; `park`/`unpark` modeled with the documented one-token
//! semantics, no spurious wakeups — spurious wakeups only add benign
//! re-check loops) and checks two properties across all of them:
//!
//! * **no use-after-free** — no worker touches the `Completion` after
//!   the caller could have freed it;
//! * **no lost wakeup / deadlock** — some transition stays enabled
//!   until the caller and every worker have finished.
//!
//! Two deliberately broken protocol variants prove the checker can
//! fail: reading the handle *after* the decrement (the exact ordering
//! bug the comment in `par.rs` guards against) and skipping the
//! unpark. The real implementation is exercised against the model's
//! result by the existing stress tests in `par.rs`; `cargo +nightly
//! miri test -p simcore` (nightly CI) checks the same code under a
//! weak-memory-aware interpreter.

use std::collections::BTreeSet;

/// What a worker does in which order. `HandleThenDecrement` is the
/// shipped protocol; the other variants are seeded bugs.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
enum Variant {
    /// Clone the caller handle, then `fetch_sub`, then unpark via the
    /// clone (the real `worker_loop`).
    HandleThenDecrement,
    /// `fetch_sub` first, then read the handle from the latch — a
    /// use-after-free once the caller observed zero.
    DecrementThenHandle,
    /// Decrement but never unpark — a lost wakeup.
    NoUnpark,
}

/// One model state. `Ord` so the visited set is deterministic.
#[derive(Clone, Debug, PartialEq, Eq, PartialOrd, Ord)]
struct State {
    /// Per-worker program counter: 0 = pre-handle-read, 1 =
    /// pre-decrement, 2 = done. (For `DecrementThenHandle` pc 0 is the
    /// decrement and pc 1 the handle read.)
    workers: Vec<u8>,
    /// The shared `remaining` counter.
    remaining: usize,
    /// The caller's park token (std semantics: unpark stores a single
    /// token; park consumes it or blocks).
    token: bool,
    /// 0 = checking the counter, 1 = parked, 2 = exited (latch freed).
    caller: u8,
    /// False once the caller's stack frame — and the latch — is gone.
    alive: bool,
}

impl State {
    fn initial(n: usize) -> Self {
        State {
            workers: vec![0; n],
            remaining: n,
            token: false,
            caller: 0,
            alive: true,
        }
    }

    fn finished(&self) -> bool {
        self.caller == 2 && self.workers.iter().all(|&pc| pc == 2)
    }
}

/// Apply one worker step. Returns an error on a latch access after the
/// caller freed it.
fn step_worker(s: &mut State, w: usize, variant: Variant) -> Result<(), String> {
    let pc = s.workers[w];
    let touch_latch = |s: &State, what: &str| -> Result<(), String> {
        if s.alive {
            Ok(())
        } else {
            Err(format!(
                "worker {w} {what} after the caller freed the completion latch ({variant:?})"
            ))
        }
    };
    match (variant, pc) {
        (Variant::HandleThenDecrement, 0) => {
            touch_latch(s, "read the caller handle")?;
            s.workers[w] = 1;
        }
        (Variant::HandleThenDecrement, 1) => {
            touch_latch(s, "decremented remaining")?;
            s.remaining -= 1;
            if s.remaining == 0 {
                // Unpark goes through the cloned handle: legal even if
                // the caller frees the latch between these two lines.
                s.token = true;
            }
            s.workers[w] = 2;
        }
        (Variant::DecrementThenHandle, 0) => {
            touch_latch(s, "decremented remaining")?;
            s.remaining -= 1;
            s.workers[w] = 1;
        }
        (Variant::DecrementThenHandle, 1) => {
            // The bug: the latch may already be gone.
            touch_latch(s, "read the caller handle")?;
            if s.remaining == 0 {
                s.token = true;
            }
            s.workers[w] = 2;
        }
        (Variant::NoUnpark, 0) => {
            touch_latch(s, "read the caller handle")?;
            s.workers[w] = 1;
        }
        (Variant::NoUnpark, 1) => {
            touch_latch(s, "decremented remaining")?;
            s.remaining -= 1;
            s.workers[w] = 2;
        }
        _ => unreachable!("stepped a finished worker"),
    }
    Ok(())
}

/// Depth-first search over every interleaving reachable from `s`.
fn explore(s: &State, variant: Variant, visited: &mut BTreeSet<State>) -> Result<(), String> {
    if !visited.insert(s.clone()) {
        return Ok(());
    }
    let mut enabled = 0usize;
    // Worker transitions.
    for w in 0..s.workers.len() {
        if s.workers[w] < 2 {
            enabled += 1;
            let mut next = s.clone();
            step_worker(&mut next, w, variant)?;
            explore(&next, variant, visited)?;
        }
    }
    // Caller: check-loop transition (atomic load + branch).
    if s.caller == 0 {
        enabled += 1;
        let mut next = s.clone();
        if next.remaining == 0 {
            next.caller = 2;
            next.alive = false; // run_sharded returns; the latch dies
        } else {
            next.caller = 1; // park
        }
        explore(&next, variant, visited)?;
    }
    // Caller: park consumes the token when present; blocks otherwise.
    if s.caller == 1 && s.token {
        enabled += 1;
        let mut next = s.clone();
        next.token = false;
        next.caller = 0;
        explore(&next, variant, visited)?;
    }
    if enabled == 0 && !s.finished() {
        return Err(format!(
            "deadlock: no transition enabled in {s:?} ({variant:?})"
        ));
    }
    Ok(())
}

fn check(n_workers: usize, variant: Variant) -> Result<usize, String> {
    let mut visited = BTreeSet::new();
    explore(&State::initial(n_workers), variant, &mut visited)?;
    Ok(visited.len())
}

#[test]
fn latch_protocol_is_safe_and_live_under_all_interleavings() {
    // 1–3 workers covers the single-shard fast path, the two-party
    // race on the final decrement, and a contended three-way finish.
    for n in 1..=3 {
        let states =
            check(n, Variant::HandleThenDecrement).unwrap_or_else(|e| panic!("n={n}: {e}"));
        assert!(states > n, "n={n}: explored a trivial state space");
    }
}

#[test]
fn checker_catches_handle_read_after_decrement() {
    // The ordering `par::worker_loop` explicitly defends against:
    // decrement first, and the caller can free the latch before the
    // worker reads the handle. The model must find that schedule.
    let err = check(2, Variant::DecrementThenHandle).unwrap_err();
    assert!(
        err.contains("after the caller freed"),
        "wrong failure: {err}"
    );
}

#[test]
fn checker_catches_lost_wakeup() {
    let err = check(2, Variant::NoUnpark).unwrap_err();
    assert!(err.contains("deadlock"), "wrong failure: {err}");
}
