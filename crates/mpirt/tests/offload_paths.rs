//! End-to-end guarantees for the offload path classes.
//!
//! Three properties the ISSUE pins:
//!
//! * **byte identity** — NicOffload and StreamTriggered deliver exactly
//!   the bytes the GPU-pack baseline delivers, across seeded random
//!   datatypes;
//! * **fault demotion** — a lost NIC handler / doorbell demotes to the
//!   GPU-pack pipeline byte-equal and *sticky* (no re-attempt on later
//!   transfers), mirroring the SmIpc → CopyInOut demotion;
//! * **defaults untouched** — with both knobs off, none of the offload
//!   machinery runs: zero counters, no handlers, no programs, no
//!   captures, so default runs stay byte-identical to the seed.

use datatype::testutil::buffer_span;
use datatype::DataType;
use faultsim::{FaultKind, FaultOp, FaultPlan};
use gpusim::GpuWorld as _;
use memsim::{GpuId, MemSpace};
use mpirt::{irecv, isend, wait_all, MpiConfig, RecvArgs, SendArgs, Session};
use simcore::rng::SimRng;

/// Random coarse-grained indexed layout (1–4 KiB blocks, ~100 KiB
/// total): large enough for rendezvous, block-granular enough that the
/// NIC descriptor-issue cost stays negligible against the stream.
fn random_coarse_ty(rng: &mut SimRng) -> DataType {
    let n = rng.range(24, 40);
    let mut lens = Vec::new();
    let mut displs = Vec::new();
    let mut off: i64 = 0;
    for _ in 0..n {
        let len = rng.range_u64(128, 512); // doubles: 1–4 KiB blocks
        lens.push(len);
        displs.push(off);
        off += len as i64 + rng.range_u64(0, 64) as i64;
    }
    DataType::indexed(&lens, &displs, &DataType::double())
        .unwrap()
        .commit()
}

/// Random latency-bound medium layout (~128 KiB in 192–320 B blocks):
/// the shape where one stream re-arm beats two kernel launches plus the
/// per-fragment active message.
fn random_medium_ty(rng: &mut SimRng) -> DataType {
    let n = rng.range(400, 560);
    let mut lens = Vec::new();
    let mut displs = Vec::new();
    let mut off: i64 = 0;
    for _ in 0..n {
        let len = rng.range_u64(24, 40); // doubles: 192–320 B blocks
        lens.push(len);
        displs.push(off);
        off += len as i64 + rng.range_u64(0, 8) as i64;
    }
    DataType::indexed(&lens, &displs, &DataType::double())
        .unwrap()
        .commit()
}

/// Run `iters` identical device→device IB transfers of `ty` and return
/// the receiver's final buffer bytes plus the session metrics.
fn run_transfers(
    arch: &str,
    cfg: MpiConfig,
    ty: &DataType,
    seed: u64,
    iters: usize,
) -> (Vec<u8>, simcore::Metrics, Session) {
    let mut sess = Session::builder()
        .two_ranks_ib()
        .arch(arch)
        .config(cfg)
        .build();
    let (base, len) = buffer_span(ty, 1);
    assert_eq!(base, 0, "generators keep displacements non-negative");
    let sbuf = sess
        .world
        .mem()
        .alloc(MemSpace::Device(GpuId(0)), len as u64)
        .unwrap();
    let rbuf = sess
        .world
        .mem()
        .alloc(MemSpace::Device(GpuId(1)), len as u64)
        .unwrap();
    let mut bytes = vec![0u8; len];
    simcore::rng::fill_bytes(seed, &mut bytes);
    sess.world.mem().write(sbuf, &bytes).unwrap();
    for _ in 0..iters {
        let s = isend(&mut sess, SendArgs::new(0, 1, sbuf, ty, 1));
        let r = irecv(&mut sess, RecvArgs::new(1, 0, rbuf, ty, 1));
        wait_all(&mut sess, &[s, r]).unwrap();
    }
    let got = sess.world.mem().read_vec(rbuf, len as u64).unwrap();
    let m = sess.metrics();
    (got, m, sess)
}

#[test]
fn nic_offload_is_byte_identical_to_gpu_pack() {
    for seed in [11u64, 23, 47] {
        let mut rng = SimRng::new(seed);
        let ty = random_coarse_ty(&mut rng);
        assert!(ty.size() > 64 << 10, "rendezvous-sized: {}", ty.size());
        let (base_bytes, base_m, _) = run_transfers("a100", MpiConfig::default(), &ty, seed, 1);
        assert_eq!(base_m.counter("offload.nic.programs"), 0);
        let cfg = MpiConfig {
            nic_offload: true,
            ..MpiConfig::default()
        };
        let (nic_bytes, nic_m, _) = run_transfers("a100", cfg, &ty, seed, 1);
        assert!(
            nic_m.counter("offload.nic.programs") >= 1,
            "seed {seed}: the tuner must route this shape to the NIC"
        );
        assert_eq!(nic_m.counter("offload.nic.bytes"), ty.size());
        assert_eq!(nic_bytes, base_bytes, "seed {seed}: delivery differs");
    }
}

#[test]
fn stream_trigger_is_byte_identical_and_captures_once() {
    for seed in [5u64, 17] {
        let mut rng = SimRng::new(seed);
        let ty = random_medium_ty(&mut rng);
        assert!(ty.size() > 64 << 10, "rendezvous-sized: {}", ty.size());
        let (base_bytes, base_m, _) = run_transfers("p100", MpiConfig::default(), &ty, seed, 2);
        assert_eq!(base_m.counter("offload.stream.replays"), 0);
        let cfg = MpiConfig {
            stream_trigger: true,
            ..MpiConfig::default()
        };
        let (st_bytes, st_m, _) = run_transfers("p100", cfg, &ty, seed, 2);
        assert_eq!(
            st_m.counter("offload.stream.replays"),
            2,
            "seed {seed}: both iterations replay the graph"
        );
        assert_eq!(
            st_m.counter("offload.stream.captures"),
            1,
            "seed {seed}: the second iteration reuses the capture"
        );
        assert_eq!(st_bytes, base_bytes, "seed {seed}: delivery differs");
    }
}

#[test]
fn nic_handler_loss_demotes_byte_equal_and_sticky() {
    let mut rng = SimRng::new(99);
    let ty = random_coarse_ty(&mut rng);
    let (base_bytes, _, _) = run_transfers("a100", MpiConfig::default(), &ty, 99, 2);
    let cfg = MpiConfig {
        nic_offload: true,
        fault_plan: FaultPlan::empty().with_seed(7).with_rule(
            Some(FaultOp::NicHandler),
            FaultKind::PermanentLoss,
            1.0,
        ),
        ..MpiConfig::default()
    };
    let (got, m, sess) = run_transfers("a100", cfg, &ty, 99, 2);
    assert_eq!(got, base_bytes, "demoted delivery must stay byte-equal");
    assert!(!sess.world.mpi.nic_offload_runtime_ok);
    assert_eq!(
        m.counter("offload.nic.demotions"),
        1,
        "sticky: the second transfer never re-attempts the handler"
    );
    assert_eq!(m.counter("offload.nic.programs"), 0);
    assert!(sess.world.mpi.nic_handlers.is_empty());
}

#[test]
fn doorbell_loss_demotes_byte_equal_and_sticky() {
    let mut rng = SimRng::new(31);
    let ty = random_medium_ty(&mut rng);
    let (base_bytes, _, _) = run_transfers("p100", MpiConfig::default(), &ty, 31, 2);
    let cfg = MpiConfig {
        stream_trigger: true,
        fault_plan: FaultPlan::empty().with_seed(13).with_rule(
            Some(FaultOp::StreamDoorbell),
            FaultKind::PermanentLoss,
            1.0,
        ),
        ..MpiConfig::default()
    };
    let (got, m, sess) = run_transfers("p100", cfg, &ty, 31, 2);
    assert_eq!(got, base_bytes, "demoted delivery must stay byte-equal");
    assert!(!sess.world.mpi.stream_trigger_runtime_ok);
    assert_eq!(
        m.counter("offload.stream.demotions"),
        1,
        "sticky: the second transfer never re-rings the doorbell"
    );
    assert_eq!(m.counter("offload.stream.replays"), 0);
    assert!(sess.world.mpi.stream_captures.is_empty());
}

#[test]
fn transient_faults_retry_without_demoting() {
    let mut rng = SimRng::new(61);
    let ty = random_coarse_ty(&mut rng);
    let (base_bytes, _, _) = run_transfers("a100", MpiConfig::default(), &ty, 61, 1);
    let mut plan = FaultPlan::empty().with_seed(21).with_rule(
        Some(FaultOp::NicHandler),
        FaultKind::Transient,
        1.0,
    );
    plan.rules[0].max_injections = Some(2);
    let cfg = MpiConfig {
        nic_offload: true,
        fault_plan: plan,
        ..MpiConfig::default()
    };
    let (got, m, sess) = run_transfers("a100", cfg, &ty, 61, 1);
    assert_eq!(got, base_bytes);
    assert!(sess.world.mpi.nic_offload_runtime_ok);
    assert_eq!(m.counter("offload.nic.demotions"), 0);
    assert!(
        m.counter("offload.nic.programs") >= 1,
        "retries then offloads"
    );
}

#[test]
fn defaults_leave_offload_machinery_untouched() {
    let mut rng = SimRng::new(77);
    let ty = random_coarse_ty(&mut rng);
    let (_, m, sess) = run_transfers("a100", MpiConfig::default(), &ty, 77, 2);
    for name in [
        "offload.nic.programs",
        "offload.nic.bytes",
        "offload.nic.demotions",
        "offload.stream.replays",
        "offload.stream.captures",
        "offload.stream.demotions",
    ] {
        assert_eq!(m.counter(name), 0, "{name} must stay silent by default");
    }
    assert!(sess.world.mpi.nic_handlers.is_empty());
    assert!(sess.world.mpi.nic_programs.is_empty());
    assert!(sess.world.mpi.stream_captures.is_empty());
}
