//! An Open MPI-like point-to-point runtime with the paper's GPU-aware
//! datatype protocols.
//!
//! Layering follows §4 of the paper:
//!
//! * **PML** ([`api`] + [`matcher`]) — MPI matching, eager vs rendezvous
//!   selection, request completion.
//! * **BML / BTL** — transport selection by channel kind: the `smcuda`
//!   BTL ([`protocol::sm`]) uses CUDA IPC + the paper's **pipelined RDMA
//!   protocol** (Figure 4); the `openib` BTL ([`protocol::copyio`]) uses the
//!   **copy-in/copy-out protocol** through pinned host fragment rings,
//!   optionally with zero-copy.
//! * The **GPU datatype engine** (`devengine`) packs and unpacks device
//!   data; the **CPU convertor** (`datatype` + [`cpupack`]) handles host
//!   data. Contiguous datatypes short-circuit the pack and/or unpack
//!   stages after the rendezvous handshake, exactly as in §4.1.

pub mod api;
pub mod coll;
pub mod config;
pub mod connection;
pub mod cpupack;
pub mod io;
pub mod matcher;
pub mod onesided;
pub mod protocol;
pub mod request;
pub mod scale;
pub mod session;
pub mod tuner;
pub mod world;

pub use api::{irecv, isend, ping_pong, wait_all, PingPongSpec, RecvArgs, SendArgs};
pub use coll::{allgather, alltoall, barrier, bcast};
pub use config::MpiConfig;
pub use io::{read_at, write_at, FileView, SimFile};
pub use onesided::{fence, get, put, RmaArgs, Win};
pub use request::{join, MpiError, Request};
pub use session::{Session, SessionBuilder};
pub use world::{MpiWorld, RankSpec};
