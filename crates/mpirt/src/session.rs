//! The session API: one place that owns world construction, trace-sink
//! configuration, and run finalization.
//!
//! A [`Session`] wraps `Sim<MpiWorld>`; build one with
//! [`Session::builder`], drive it exactly like the `Sim` it derefs to,
//! and call [`Session::finish`] to close the run, write the Chrome
//! trace (if a sink was configured) and get the [`Metrics`] derived
//! from the recorded events.
//!
//! ```
//! use mpirt::{Session, SendArgs, RecvArgs};
//! use datatype::DataType;
//! use gpusim::GpuWorld as _;
//!
//! let mut sess = Session::builder().two_ranks_ib().build();
//! let ty = DataType::contiguous(256, &DataType::double()).unwrap().commit();
//! let sbuf = sess.world.mem().alloc(memsim::MemSpace::Host, 2048).unwrap();
//! let rbuf = sess.world.mem().alloc(memsim::MemSpace::Host, 2048).unwrap();
//! let s = mpirt::isend(&mut sess, SendArgs::new(0, 1, sbuf, &ty, 1));
//! let r = mpirt::irecv(&mut sess, RecvArgs::new(1, 0, rbuf, &ty, 1));
//! mpirt::api::wait_all(&mut sess, &[s, r]).unwrap();
//! let metrics = sess.finish();
//! assert_eq!(metrics.counter("mpi.delivered.bytes"), 2048);
//! ```

use crate::config::MpiConfig;
use crate::world::{MpiWorld, RankSpec};
use gpusim::GpuArch;
use memsim::GpuId;
use simcore::trace::names;
use simcore::{Metrics, Sim, SpanId, Track};
use std::ops::{Deref, DerefMut};
use std::path::PathBuf;

/// Configures and builds a [`Session`]. Obtained from
/// [`Session::builder`]; defaults to the paper's "2GPU" topology
/// (two ranks on one node, one GPU each) with the default [`MpiConfig`].
pub struct SessionBuilder {
    specs: Vec<RankSpec>,
    gpu_count: u32,
    /// Topology-driven rank count; when set, `build` derives the specs
    /// from `topo` instead of `specs`.
    nranks: Option<usize>,
    topo: netsim::Topology,
    arch: &'static GpuArch,
    config: MpiConfig,
    trace_path: Option<PathBuf>,
    record: bool,
    label: String,
}

impl Default for SessionBuilder {
    fn default() -> SessionBuilder {
        SessionBuilder {
            specs: vec![
                RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                },
                RankSpec {
                    gpu: GpuId(1),
                    node: 0,
                },
            ],
            gpu_count: 2,
            nranks: None,
            topo: netsim::Topology::default_for(2),
            arch: GpuArch::default_arch(),
            config: MpiConfig::default(),
            trace_path: None,
            record: false,
            label: "run".to_string(),
        }
    }
}

impl SessionBuilder {
    /// Two ranks on one node sharing a single GPU ("1GPU").
    pub fn two_ranks_one_gpu(mut self) -> SessionBuilder {
        self.specs = vec![
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
        ];
        self.gpu_count = 1;
        self
    }

    /// Two ranks on one node, each with its own GPU ("2GPU"). The
    /// default.
    pub fn two_ranks_two_gpus(mut self) -> SessionBuilder {
        self.specs = vec![
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(1),
                node: 0,
            },
        ];
        self.gpu_count = 2;
        self
    }

    /// Two ranks on different nodes connected by InfiniBand ("IB").
    pub fn two_ranks_ib(mut self) -> SessionBuilder {
        self.specs = vec![
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(1),
                node: 1,
            },
        ];
        self.gpu_count = 2;
        self
    }

    /// Arbitrary rank placement over `gpu_count` GPUs per node.
    pub fn rank_specs(mut self, specs: &[RankSpec], gpu_count: u32) -> SessionBuilder {
        self.specs = specs.to_vec();
        self.gpu_count = gpu_count;
        self.nranks = None;
        self
    }

    /// An `n`-rank job laid out by the builder's [`netsim::Topology`]
    /// (set with [`SessionBuilder::topology`]; defaults to a two-rank-
    /// per-node ring). Each rank gets its own GPU; placement is applied
    /// at `build`, so `ranks` and `topology` compose in either order.
    pub fn ranks(mut self, n: usize) -> SessionBuilder {
        assert!(n > 0, "need at least one rank");
        self.nranks = Some(n);
        self
    }

    /// Select the fabric used by [`SessionBuilder::ranks`].
    pub fn topology(mut self, topo: netsim::Topology) -> SessionBuilder {
        self.topo = topo;
        self
    }

    /// Select the GPU architecture for the whole job — a registry
    /// reference or a name (`.arch("v100")`). Composes uniformly with
    /// every topology preset; the default is the paper's K40.
    pub fn arch(mut self, arch: impl Into<&'static GpuArch>) -> SessionBuilder {
        self.arch = arch.into();
        self
    }

    /// Replace the runtime configuration.
    pub fn config(mut self, config: MpiConfig) -> SessionBuilder {
        self.config = config;
        self
    }

    /// Name the run: becomes the Chrome trace process label.
    pub fn label(mut self, label: impl Into<String>) -> SessionBuilder {
        self.label = label.into();
        self
    }

    /// Write a Chrome `trace_event` JSON file to `path` at
    /// [`Session::finish`]. Implies [`SessionBuilder::record`].
    pub fn trace(mut self, path: impl Into<PathBuf>) -> SessionBuilder {
        self.trace_path = Some(path.into());
        self.record = true;
        self
    }

    /// Record spans/instants in memory (for [`Session::metrics`])
    /// without writing a trace file. Counters are always on regardless.
    pub fn record(mut self) -> SessionBuilder {
        self.record = true;
        self
    }

    /// Conditional [`SessionBuilder::record`], for callers that decide
    /// at runtime (the bench runner's trace pass).
    pub fn record_if(mut self, on: bool) -> SessionBuilder {
        self.record |= on;
        self
    }

    /// Build the world and start the session.
    pub fn build(self) -> Session {
        let (specs, gpu_count) = match self.nranks {
            Some(n) => {
                let specs: Vec<RankSpec> = (0..n)
                    .map(|r| RankSpec {
                        gpu: GpuId(r as u32),
                        node: self.topo.node_of(r as u32) as usize,
                    })
                    .collect();
                (specs, n as u32)
            }
            None => (self.specs, self.gpu_count),
        };
        let world = MpiWorld::on_arch(self.arch, &specs, gpu_count, self.config);
        let mut sim = Sim::new(world);
        sim.trace.set_recording(self.record);
        // The run-level span: every recorded trace carries at least one
        // `mpirt` span covering the whole session, so figure traces
        // show the runtime layer even when they drive the engines
        // directly rather than through a protocol.
        let run_span = sim.trace.span_begin(
            sim.now(),
            names::CAT_MPIRT,
            names::SPAN_SESSION,
            Track::Session,
        );
        // Surface the copy-pool sizing decision (GPU_DDT_COPY_THREADS or
        // the default) in the trace, once per session. Lazily-started
        // pools that never spun up have nothing to report.
        if let Some(info) = simcore::par::pool_info_if_started() {
            sim.trace
                .count(names::PAR_POOL_THREADS, 0, 0, info.threads as u64);
        }
        Session {
            sim,
            label: self.label,
            trace_path: self.trace_path,
            run_span,
        }
    }
}

/// A running simulation plus its observability state. Derefs to
/// `Sim<MpiWorld>`, so everything that takes `&mut Sim<MpiWorld>`
/// (`isend`, `irecv`, `ping_pong`, the collectives) accepts a
/// `&mut Session` unchanged.
pub struct Session {
    sim: Sim<MpiWorld>,
    label: String,
    trace_path: Option<PathBuf>,
    run_span: SpanId,
}

impl Session {
    pub fn builder() -> SessionBuilder {
        SessionBuilder::default()
    }

    /// The run label configured at build time.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// The GPU architecture the session's world was built on.
    pub fn arch(&self) -> &'static GpuArch {
        self.sim.world.cluster.gpu_system.arch
    }

    /// Metrics over everything recorded so far (the session is left
    /// running). Counters are always populated; timing fields need the
    /// builder's `record()` or `trace()`.
    pub fn metrics(&mut self) -> Metrics {
        self.sync_devcache_counters();
        let mut m = Metrics::from_trace(&self.sim.trace);
        m.arch = Some(self.arch().name);
        m
    }

    /// Reconcile each rank's `DevCache` hit/miss/evict tallies into the
    /// trace counters. The engines bump `devengine.cache.*` as they go;
    /// raising to the cache's own (authoritative, monotone) totals also
    /// covers plans built outside a `FragmentEngine` without ever double
    /// counting.
    fn sync_devcache_counters(&mut self) {
        for i in 0..self.sim.world.mpi.ranks.len() {
            let (hits, misses, evictions) = {
                let c = self.sim.world.mpi.ranks[i].dev_cache.borrow();
                (c.hits(), c.misses(), c.evictions())
            };
            let r = i as u32;
            self.sim
                .trace
                .count_to(names::DEVENGINE_CACHE_HIT, r, 0, hits);
            self.sim
                .trace
                .count_to(names::DEVENGINE_CACHE_MISS, r, 0, misses);
            self.sim
                .trace
                .count_to(names::DEVENGINE_CACHE_EVICT, r, 0, evictions);
        }
    }

    /// Take the simulation out of the session, dropping the
    /// observability state (for handing off to APIs that want the
    /// `Sim` by value).
    pub fn into_sim(self) -> Sim<MpiWorld> {
        self.sim
    }

    /// End the run span and hand back the raw tracer, for callers that
    /// merge several runs into one trace document (the bench runner).
    pub fn into_trace(mut self) -> simcore::Tracer {
        self.sync_devcache_counters();
        let now = self.sim.now();
        self.sim.trace.span_end(now, self.run_span);
        std::mem::take(&mut self.sim.trace)
    }

    /// Close the run: end the session span, write the Chrome trace if a
    /// sink was configured, and return the run's metrics.
    pub fn finish(mut self) -> Metrics {
        self.sync_devcache_counters();
        let now = self.sim.now();
        self.sim.trace.span_end(now, self.run_span);
        let mut metrics = Metrics::from_trace(&self.sim.trace);
        metrics.arch = Some(self.arch().name);
        if let Some(path) = &self.trace_path {
            let json = self.sim.trace.chrome_json(&self.label);
            std::fs::write(path, json)
                .unwrap_or_else(|e| panic!("write trace {}: {e}", path.display()));
        }
        metrics
    }
}

impl Deref for Session {
    type Target = Sim<MpiWorld>;
    fn deref(&self) -> &Sim<MpiWorld> {
        &self.sim
    }
}

impl DerefMut for Session {
    fn deref_mut(&mut self) -> &mut Sim<MpiWorld> {
        &mut self.sim
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::api::{irecv, isend, wait_all, RecvArgs, SendArgs};
    use datatype::DataType;
    use gpusim::GpuWorld as _;
    use memsim::MemSpace;

    fn contig(bytes: u64) -> DataType {
        DataType::contiguous(bytes / 8, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn session_runs_a_transfer_and_counts_delivered_bytes() {
        let mut sess = Session::builder().two_ranks_ib().record().build();
        let ty = contig(40_000);
        let sbuf = sess.world.mem().alloc(MemSpace::Host, 40_000).unwrap();
        let rbuf = sess.world.mem().alloc(MemSpace::Host, 40_000).unwrap();
        let s = isend(&mut sess, SendArgs::new(0, 1, sbuf, &ty, 1));
        let r = irecv(&mut sess, RecvArgs::new(1, 0, rbuf, &ty, 1));
        wait_all(&mut sess, &[s, r]).unwrap();
        let metrics = sess.finish();
        assert_eq!(metrics.counter("mpi.delivered.bytes"), 40_000);
        assert!(metrics.makespan > simcore::SimTime::ZERO);
    }

    #[test]
    fn finish_writes_chrome_trace_with_mpirt_spans() {
        let path = std::env::temp_dir().join("mpirt-session-test-trace.json");
        let mut sess = Session::builder()
            .two_ranks_two_gpus()
            .label("unit")
            .trace(&path)
            .build();
        let ty = contig(512);
        let sbuf = sess.world.mem().alloc(MemSpace::Host, 512).unwrap();
        let rbuf = sess.world.mem().alloc(MemSpace::Host, 512).unwrap();
        let s = isend(&mut sess, SendArgs::new(0, 1, sbuf, &ty, 1));
        let r = irecv(&mut sess, RecvArgs::new(1, 0, rbuf, &ty, 1));
        wait_all(&mut sess, &[s, r]).unwrap();
        sess.finish();
        let json = std::fs::read_to_string(&path).unwrap();
        std::fs::remove_file(&path).ok();
        assert!(json.starts_with("{\"traceEvents\":["));
        assert!(json.contains("\"cat\":\"mpirt\""));
        assert!(json.contains("\"name\":\"session\""));
    }

    #[test]
    fn devcache_counters_reach_session_metrics() {
        use datatype::DataType;
        let mut sess = Session::builder().two_ranks_two_gpus().build();
        // An irregular GPU-resident layout forces the generic DEV path
        // (and therefore the DevCache) on both sides; a second identical
        // transfer must hit the cache.
        let lens: Vec<u64> = (0..256).map(|i| 1 + (i % 7)).collect();
        let disps: Vec<i64> = (0..256).map(|i| i * 16).collect();
        let ty = DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit();
        let bytes = ty.extent() as u64;
        let b0 = sess
            .world
            .mem()
            .alloc(MemSpace::Device(GpuId(0)), bytes)
            .unwrap();
        let b1 = sess
            .world
            .mem()
            .alloc(MemSpace::Device(GpuId(1)), bytes)
            .unwrap();
        for _ in 0..2 {
            let s = isend(&mut sess, SendArgs::new(0, 1, b0, &ty, 1));
            let r = irecv(&mut sess, RecvArgs::new(1, 0, b1, &ty, 1));
            wait_all(&mut sess, &[s, r]).unwrap();
        }
        let m = sess.finish();
        assert!(
            m.counter("devengine.cache.miss") >= 1,
            "first transfer must miss: {:?}",
            m.counters
        );
        assert!(
            m.counter("devengine.cache.hit") >= 1,
            "repeat transfer must hit: {:?}",
            m.counters
        );
        let summary = m.summary();
        assert!(summary.contains("devengine.cache.hit"));
    }

    #[test]
    fn metrics_without_recording_still_has_counters() {
        let mut sess = Session::builder().two_ranks_ib().build();
        let ty = contig(512);
        let sbuf = sess.world.mem().alloc(MemSpace::Host, 512).unwrap();
        let rbuf = sess.world.mem().alloc(MemSpace::Host, 512).unwrap();
        let s = isend(&mut sess, SendArgs::new(0, 1, sbuf, &ty, 1));
        let r = irecv(&mut sess, RecvArgs::new(1, 0, rbuf, &ty, 1));
        wait_all(&mut sess, &[s, r]).unwrap();
        let m = sess.metrics();
        assert_eq!(m.counter("mpi.delivered.bytes"), 512);
        assert_eq!(
            m.makespan,
            simcore::SimTime::ZERO,
            "no spans without record()"
        );
    }
}
