//! Host-side pack/unpack: the CPU convertor with a time model.
//!
//! When the data lives in host memory, Open MPI's ordinary convertor
//! does the packing. We reuse the exact same segment machinery as the
//! GPU engine (`datatype::Convertor` via `DevCursor`) for the
//! functional byte movement, and charge the rank's CPU at a calibrated
//! memcpy-bound rate.

use datatype::{DataType, TypeError};
use devengine::{flip_units_in_place, DevCursor};
use faultsim::{FaultDecision, FaultOp};
use gpusim::{fault, GpuWorld};
use memsim::Ptr;
use simcore::trace::names;
use simcore::{Bandwidth, Sim, SimTime, Track};

/// Direction of the host conversion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CpuDir {
    Pack,
    Unpack,
}

/// Sequential CPU pack/unpack over a datatype, fragment by fragment.
pub struct CpuEngine {
    cursor: DevCursor,
    dir: CpuDir,
    typed: Ptr,
    rank: usize,
    bw: Bandwidth,
    per_call: SimTime,
}

impl CpuEngine {
    pub fn new(
        ty: &DataType,
        count: u64,
        typed: Ptr,
        dir: CpuDir,
        rank: usize,
        bw: Bandwidth,
    ) -> Result<CpuEngine, TypeError> {
        assert!(typed.space.is_host(), "CpuEngine drives host memory only");
        Ok(CpuEngine {
            // Huge unit size: the CPU walks whole segments; no warp
            // balancing needed.
            cursor: DevCursor::new(ty, count, 1 << 30)?,
            dir,
            typed,
            rank,
            bw,
            per_call: SimTime::from_nanos(500),
        })
    }

    pub fn total_bytes(&self) -> u64 {
        self.cursor.total_bytes()
    }

    pub fn position(&self) -> u64 {
        self.cursor.position()
    }

    pub fn finished(&self) -> bool {
        self.cursor.finished()
    }

    /// Move the next `cap` packed bytes between the typed buffer and
    /// `frag` (contiguous host memory). Time is charged on the rank's
    /// CPU; `done` runs at completion with the fragment size.
    pub fn process_fragment<W: GpuWorld>(
        &mut self,
        sim: &mut Sim<W>,
        frag: Ptr,
        cap: u64,
        done: impl FnOnce(&mut Sim<W>, u64) + 'static,
    ) {
        let from = self.position();
        // Scratch buffer: recycled by the completion event below.
        let mut units = simcore::scratch::take_units_buf();
        self.cursor.next_units_into(cap, &mut units);
        for u in &mut units {
            u.dst_off -= from as usize;
        }
        let n: u64 = units.iter().map(|u| u.len as u64).sum();
        if n == 0 {
            simcore::scratch::recycle_units_buf(units);
            sim.schedule_now(move |sim| done(sim, 0));
            return;
        }
        let typed = self.typed.offset_by(self.cursor.base_shift());
        let (src, dst) = match self.dir {
            CpuDir::Pack => (typed, frag),
            CpuDir::Unpack => {
                flip_units_in_place(&mut units);
                (frag, typed)
            }
        };
        let pass = self.bw.time_for(n) + self.per_call;
        let mut duration = fault::fault_scaled(sim, FaultOp::CpuPack, pass);
        // The CPU convertor is the fallback of last resort, so a faulted
        // pass cannot demote to another path: it backs off and re-walks
        // the fragment, folding the extra passes into one reservation.
        let mut backoff = fault::default_backoff();
        loop {
            let verdict = fault::fault_roll(sim, FaultOp::CpuPack);
            if !verdict.is_fault() {
                break;
            }
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::CpuPack, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::CpuPack);
            duration = duration + backoff.next_delay() + pass;
        }
        let now = sim.now();
        let (start, end) = sim.world.cpu(self.rank).reserve(now, duration);
        let rank = self.rank as u32;
        let (span_name, counter) = match self.dir {
            CpuDir::Pack => (names::SPAN_CPU_PACK, names::CPUPACK_PACK_BYTES),
            CpuDir::Unpack => (names::SPAN_CPU_UNPACK, names::CPUPACK_UNPACK_BYTES),
        };
        sim.trace.span_at(
            start,
            end,
            names::CAT_CPUPACK,
            span_name,
            Track::Cpu { rank },
        );
        sim.schedule_at(end, move |sim| {
            sim.world
                .mem()
                .transfer(src, dst, &units)
                .expect("cpu pack transfer");
            simcore::scratch::recycle_units_buf(units);
            sim.trace.count(counter, rank, 0, n);
            done(sim, n);
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use faultsim::FaultPlan;
    use gpusim::NodeWorld;
    use memsim::MemSpace;

    #[test]
    fn cpu_pack_matches_reference_and_charges_time() {
        let ty = DataType::vector(64, 2, 5, &DataType::double())
            .unwrap()
            .commit();
        let mut sim = Sim::new(NodeWorld::new(1));
        let (base, len) = buffer_span(&ty, 2);
        let typed = sim.world.memory.alloc(MemSpace::Host, len as u64).unwrap();
        let bytes = pattern(len);
        sim.world.memory.write(typed, &bytes).unwrap();
        let total = ty.size() * 2;
        let out = sim.world.memory.alloc(MemSpace::Host, total).unwrap();

        let mut eng = CpuEngine::new(
            &ty,
            2,
            typed.add(base as u64),
            CpuDir::Pack,
            0,
            Bandwidth::from_gbps(5.0),
        )
        .unwrap();
        assert_eq!(eng.total_bytes(), total);
        // Two fragments.
        let half = total / 2;
        eng.process_fragment(&mut sim, out, half, move |_, n| assert_eq!(n, half));
        sim.run();
        eng.process_fragment(&mut sim, out.add(half), u64::MAX, move |_, n| {
            assert_eq!(n, total - half)
        });
        let end = sim.run();
        assert!(eng.finished());
        assert_eq!(
            sim.world.memory.read_vec(out, total).unwrap(),
            reference_pack(&ty, 2, &bytes, base)
        );
        // ~2 KB at 5 GB/s plus two 0.5 us call overheads.
        assert!(end >= SimTime::from_micros(1));
    }

    #[test]
    fn cpu_unpack_roundtrip() {
        let ty = DataType::indexed(&[3, 1, 2], &[0, 4, 7], &DataType::double())
            .unwrap()
            .commit();
        let mut sim = Sim::new(NodeWorld::new(1));
        let (base, len) = buffer_span(&ty, 1);
        let src = sim.world.memory.alloc(MemSpace::Host, len as u64).unwrap();
        let bytes = pattern(len);
        sim.world.memory.write(src, &bytes).unwrap();
        let packed_bytes = reference_pack(&ty, 1, &bytes, base);
        let packed = sim.world.memory.alloc(MemSpace::Host, ty.size()).unwrap();
        sim.world.memory.write(packed, &packed_bytes).unwrap();

        let dst = sim.world.memory.alloc(MemSpace::Host, len as u64).unwrap();
        let mut eng = CpuEngine::new(
            &ty,
            1,
            dst.add(base as u64),
            CpuDir::Unpack,
            0,
            Bandwidth::from_gbps(5.0),
        )
        .unwrap();
        eng.process_fragment(&mut sim, packed, u64::MAX, |_, _| {});
        sim.run();
        let got = sim.world.memory.read_vec(dst, len as u64).unwrap();
        for s in ty.segments(1) {
            let r = (base + s.disp) as usize..(base + s.disp) as usize + s.len as usize;
            assert_eq!(&got[r.clone()], &bytes[r]);
        }
    }

    #[test]
    fn transient_cpupack_fault_retries_and_inflates_time() {
        let ty = DataType::vector(64, 2, 5, &DataType::double())
            .unwrap()
            .commit();
        let run = |faulted: bool| {
            let mut sim = Sim::new(NodeWorld::new(1));
            if faulted {
                let mut plan = FaultPlan::empty().with_seed(11).with_rule(
                    Some(FaultOp::CpuPack),
                    faultsim::FaultKind::Transient,
                    1.0,
                );
                plan.rules[0].max_injections = Some(2);
                sim.world.faults = faultsim::FaultSim::from_plan(plan);
            }
            let (base, len) = buffer_span(&ty, 2);
            let typed = sim.world.memory.alloc(MemSpace::Host, len as u64).unwrap();
            let bytes = pattern(len);
            sim.world.memory.write(typed, &bytes).unwrap();
            let total = ty.size() * 2;
            let out = sim.world.memory.alloc(MemSpace::Host, total).unwrap();
            let mut eng = CpuEngine::new(
                &ty,
                2,
                typed.add(base as u64),
                CpuDir::Pack,
                0,
                Bandwidth::from_gbps(5.0),
            )
            .unwrap();
            eng.process_fragment(&mut sim, out, u64::MAX, |_, _| {});
            let end = sim.run();
            (
                end,
                sim.world.memory.read_vec(out, total).unwrap(),
                reference_pack(&ty, 2, &bytes, base),
            )
        };
        let (clean_end, clean_out, reference) = run(false);
        let (fault_end, fault_out, _) = run(true);
        // The retry fold re-walks the fragment and charges backoff, so
        // the faulted run is strictly slower — and byte-identical.
        assert!(fault_end > clean_end, "{fault_end:?} vs {clean_end:?}");
        assert_eq!(fault_out, reference);
        assert_eq!(clean_out, reference);
    }

    #[test]
    #[should_panic(expected = "host memory only")]
    fn rejects_device_buffers() {
        let ty = DataType::double().commit();
        let p = Ptr {
            space: MemSpace::Device(memsim::GpuId(0)),
            alloc: memsim::AllocId(0),
            offset: 0,
        };
        let _ = CpuEngine::new(&ty, 1, p, CpuDir::Pack, 0, Bandwidth::from_gbps(5.0));
    }
}
