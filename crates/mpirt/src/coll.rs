//! Collective operations built on the point-to-point stack.
//!
//! The paper notes that a committed datatype is usable in "any
//! point-to-point, collective, I/O and one-sided" operation; this
//! module demonstrates that the GPU datatype engine composes with
//! classic collective algorithms unchanged — every underlying transfer
//! goes through the same protocol selection (pipelined IPC RDMA /
//! copy-in/out / eager) as a plain send.
//!
//! Algorithms are the textbook ones Open MPI's `coll/base` uses at
//! these scales: binomial-tree broadcast, ring allgather, pairwise
//! alltoall, dissemination barrier.
//!
//! Buffers are passed as one pointer per rank (each rank's buffer in
//! its own memory space), since all ranks live in one simulation.

use crate::api::{irecv, isend, RecvArgs, SendArgs};
use crate::request::{join, Request};
use crate::world::MpiWorld;
use datatype::DataType;
use gpusim::GpuWorld as _;
use memsim::Ptr;
use simcore::Sim;

/// Tag space reserved for collectives (far above user tags).
const COLL_TAG_BASE: u64 = 1 << 40;

/// Broadcast `count` instances of `ty` from `root`'s buffer to every
/// rank, binomial tree. Completes when all ranks have the data.
pub fn bcast(
    sim: &mut Sim<MpiWorld>,
    root: usize,
    ty: &DataType,
    count: u64,
    bufs: &[Ptr],
    op_tag: u64,
) -> Request {
    let p = bufs.len();
    assert_eq!(p, sim.world.mpi.ranks.len(), "one buffer per rank");
    let done = Request::new();
    if p == 1 {
        done.complete(sim, Ok(0));
        return done;
    }
    let tag = COLL_TAG_BASE + op_tag;
    let remaining = std::rc::Rc::new(std::cell::RefCell::new(p - 1));
    // Each rank forwards to its binomial subtree once its own data is
    // ready; the root starts immediately.
    fan_out(
        sim,
        root,
        root,
        p,
        ty,
        count,
        bufs.to_vec(),
        tag,
        remaining,
        done.clone(),
    );
    done
}

/// Recursive binomial fan-out from `vrank`-relative tree structure.
#[allow(clippy::too_many_arguments)]
fn fan_out(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    root: usize,
    p: usize,
    ty: &DataType,
    count: u64,
    bufs: Vec<Ptr>,
    tag: u64,
    remaining: std::rc::Rc<std::cell::RefCell<usize>>,
    done: Request,
) {
    let vrank = (rank + p - root) % p;
    // Children of vrank are vrank + 2^k for 2^k > vrank, while in range.
    let mut k = 1usize;
    while k <= vrank {
        k <<= 1;
    }
    while vrank + k < p {
        let child_v = vrank + k;
        let child = (child_v + root) % p;
        let s = isend(
            sim,
            SendArgs {
                from: rank,
                to: child,
                tag,
                ty: ty.clone(),
                count,
                buf: bufs[rank],
            },
        );
        // The send side needs no continuation; completion is tracked on
        // the receiving child.
        let _ = s;
        let r = irecv(
            sim,
            RecvArgs {
                rank: child,
                src: Some(rank),
                tag: Some(tag),
                ty: ty.clone(),
                count,
                buf: bufs[child],
            },
        );
        let ty2 = ty.clone();
        let bufs2 = bufs.clone();
        let rem = std::rc::Rc::clone(&remaining);
        let done2 = done.clone();
        r.on_complete(sim, move |sim, res| {
            res.as_ref().expect("bcast transfer failed");
            {
                let mut m = rem.borrow_mut();
                *m -= 1;
                if *m == 0 {
                    done2.complete(sim, Ok(ty2.size() * count));
                }
            }
            // The child now forwards to its own subtree.
            fan_out(sim, child, root, p, &ty2, count, bufs2, tag, rem, done2);
        });
        k <<= 1;
    }
}

/// Ring allgather: every rank contributes `count` instances of `ty`
/// from `send_bufs[r]`; each rank's `recv_bufs[r]` holds `p` blocks
/// (block `i` at offset `i * count * extent`). Completes when all ranks
/// hold everything.
pub fn allgather(
    sim: &mut Sim<MpiWorld>,
    ty: &DataType,
    count: u64,
    send_bufs: &[Ptr],
    recv_bufs: &[Ptr],
    op_tag: u64,
) -> Request {
    let p = send_bufs.len();
    assert_eq!(p, recv_bufs.len());
    let tag = COLL_TAG_BASE + (1 << 20) + op_tag;
    let block = count * ty.extent().max(ty.size() as i64) as u64;

    // Local copy of own contribution into slot `r` (charged as a
    // device/host copy on the rank's copy stream). The ring starts
    // only once the copy lands: step 0 sends slot `r` itself, and an
    // eager-path send snapshots the block when posted — posting before
    // the copy completes would ship uninitialized bytes (seen at 32
    // ranks with small host blocks; device rendezvous masked it).
    let mut reqs: Vec<Request> = Vec::new();
    for r in 0..p {
        let dst = recv_bufs[r].add(r as u64 * block);
        let stream = sim.world.mpi.ranks[r].copy_stream;
        let req = Request::new();
        let req2 = req.clone();
        let size = ty.size() * count;
        let src = send_bufs[r];
        let ty = ty.clone();
        let recv_bufs = recv_bufs.to_vec();
        gpusim::memcpy(
            sim,
            stream,
            src,
            dst,
            block.min(size.max(block)),
            move |sim, _| {
                // Ring: in step s (0..p-1), rank r sends block
                // (r - s) mod p to r+1 and receives block
                // (r - s - 1) mod p from r-1. Each rank proceeds to
                // its next step when both its step transfers complete.
                ring_step(sim, r, 0, p, ty, count, block, recv_bufs, tag, req2);
            },
        );
        reqs.push(req);
    }
    join(sim, &reqs)
}

#[allow(clippy::too_many_arguments)]
fn ring_step(
    sim: &mut Sim<MpiWorld>,
    r: usize,
    step: usize,
    p: usize,
    ty: DataType,
    count: u64,
    block: u64,
    recv_bufs: Vec<Ptr>,
    tag: u64,
    done: Request,
) {
    if step == p - 1 {
        done.complete(sim, Ok(0));
        return;
    }
    let right = (r + 1) % p;
    let left = (r + p - 1) % p;
    let send_block = (r + p - step) % p;
    let recv_block = (r + p - step - 1) % p;
    let s = isend(
        sim,
        SendArgs {
            from: r,
            to: right,
            tag: tag + step as u64,
            ty: ty.clone(),
            count,
            buf: recv_bufs[r].add(send_block as u64 * block),
        },
    );
    let rv = irecv(
        sim,
        RecvArgs {
            rank: r,
            src: Some(left),
            tag: Some(tag + step as u64),
            ty: ty.clone(),
            count,
            buf: recv_bufs[r].add(recv_block as u64 * block),
        },
    );
    let both = join(sim, &[s, rv]);
    both.on_complete(sim, move |sim, res| {
        res.as_ref().expect("allgather step failed");
        ring_step(sim, r, step + 1, p, ty, count, block, recv_bufs, tag, done);
    });
}

/// Pairwise alltoall: rank r's `send_bufs[r]` holds `p` blocks of
/// `count` instances; block `i` goes to rank `i`, landing in block `r`
/// of `recv_bufs[i]`. `p-1` exchange rounds plus a local copy.
pub fn alltoall(
    sim: &mut Sim<MpiWorld>,
    ty: &DataType,
    count: u64,
    send_bufs: &[Ptr],
    recv_bufs: &[Ptr],
    op_tag: u64,
) -> Request {
    let p = send_bufs.len();
    assert_eq!(p, recv_bufs.len());
    let tag = COLL_TAG_BASE + (2 << 20) + op_tag;
    let block = count * ty.extent().max(ty.size() as i64) as u64;
    let mut reqs: Vec<Request> = Vec::new();

    // Local block r -> r.
    for r in 0..p {
        let stream = sim.world.mpi.ranks[r].copy_stream;
        let req = Request::new();
        let req2 = req.clone();
        let src = send_bufs[r].add(r as u64 * block);
        let dst = recv_bufs[r].add(r as u64 * block);
        let size = ty.size() * count;
        gpusim::memcpy(sim, stream, src, dst, block, move |sim, _| {
            req2.complete(sim, Ok(size));
        });
        reqs.push(req);
    }

    // Rounds: in round d (1..p), r sends block (r+d)%p to (r+d)%p and
    // receives from (r-d)%p. All rounds issued per rank sequentially.
    for r in 0..p {
        let req = Request::new();
        alltoall_round(
            sim,
            r,
            1,
            p,
            ty.clone(),
            count,
            block,
            send_bufs.to_vec(),
            recv_bufs.to_vec(),
            tag,
            req.clone(),
        );
        reqs.push(req);
    }
    join(sim, &reqs)
}

#[allow(clippy::too_many_arguments)]
fn alltoall_round(
    sim: &mut Sim<MpiWorld>,
    r: usize,
    d: usize,
    p: usize,
    ty: DataType,
    count: u64,
    block: u64,
    send_bufs: Vec<Ptr>,
    recv_bufs: Vec<Ptr>,
    tag: u64,
    done: Request,
) {
    if d == p {
        done.complete(sim, Ok(0));
        return;
    }
    let to = (r + d) % p;
    let from = (r + p - d) % p;
    let s = isend(
        sim,
        SendArgs {
            from: r,
            to,
            tag: tag + d as u64,
            ty: ty.clone(),
            count,
            buf: send_bufs[r].add(to as u64 * block),
        },
    );
    let rv = irecv(
        sim,
        RecvArgs {
            rank: r,
            src: Some(from),
            tag: Some(tag + d as u64),
            ty: ty.clone(),
            count,
            buf: recv_bufs[r].add(from as u64 * block),
        },
    );
    let both = join(sim, &[s, rv]);
    both.on_complete(sim, move |sim, res| {
        res.as_ref().expect("alltoall round failed");
        alltoall_round(
            sim,
            r,
            d + 1,
            p,
            ty,
            count,
            block,
            send_bufs,
            recv_bufs,
            tag,
            done,
        );
    });
}

/// Dissemination barrier over 1-byte eager messages.
pub fn barrier(sim: &mut Sim<MpiWorld>, op_tag: u64) -> Request {
    let p = sim.world.mpi.ranks.len();
    let tag = COLL_TAG_BASE + (3 << 20) + op_tag;
    // Tiny host scratch per rank.
    let scratch: Vec<Ptr> = (0..p)
        .map(|_| sim.world.mem().alloc(memsim::MemSpace::Host, 8).unwrap())
        .collect();
    let byte = DataType::byte().commit();
    let mut reqs = Vec::new();
    for r in 0..p {
        let req = Request::new();
        barrier_round(
            sim,
            r,
            0,
            p,
            byte.clone(),
            scratch.clone(),
            tag,
            req.clone(),
        );
        reqs.push(req);
    }
    join(sim, &reqs)
}

#[allow(clippy::too_many_arguments)]
fn barrier_round(
    sim: &mut Sim<MpiWorld>,
    r: usize,
    k: u32,
    p: usize,
    byte: DataType,
    scratch: Vec<Ptr>,
    tag: u64,
    done: Request,
) {
    let dist = 1usize << k;
    if dist >= p {
        done.complete(sim, Ok(0));
        return;
    }
    let to = (r + dist) % p;
    let from = (r + p - dist) % p;
    let s = isend(
        sim,
        SendArgs {
            from: r,
            to,
            tag: tag + k as u64,
            ty: byte.clone(),
            count: 1,
            buf: scratch[r],
        },
    );
    let rv = irecv(
        sim,
        RecvArgs {
            rank: r,
            src: Some(from),
            tag: Some(tag + k as u64),
            ty: byte.clone(),
            count: 1,
            buf: scratch[r],
        },
    );
    let both = join(sim, &[s, rv]);
    both.on_complete(sim, move |sim, res| {
        res.as_ref().expect("barrier round failed");
        barrier_round(sim, r, k + 1, p, byte, scratch, tag, done);
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use crate::world::RankSpec;
    use datatype::testutil::pattern;
    use memsim::{GpuId, MemSpace};

    /// A 4-rank job: two nodes with two GPUs each (SM within a node,
    /// IB across).
    fn four_ranks() -> Sim<MpiWorld> {
        let specs = [
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(1),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(2),
                node: 1,
            },
            RankSpec {
                gpu: GpuId(3),
                node: 1,
            },
        ];
        Sim::new(MpiWorld::new(&specs, 4, MpiConfig::default()))
    }

    fn dev_alloc(sim: &mut Sim<MpiWorld>, rank: usize, bytes: u64) -> Ptr {
        let gpu = sim.world.mpi.ranks[rank].gpu;
        sim.world.mem().alloc(MemSpace::Device(gpu), bytes).unwrap()
    }

    #[test]
    fn bcast_delivers_to_all() {
        let mut sim = four_ranks();
        let ty = DataType::vector(64, 8, 16, &DataType::double())
            .unwrap()
            .commit();
        let len = ty.extent() as u64;
        let bufs: Vec<Ptr> = (0..4).map(|r| dev_alloc(&mut sim, r, len)).collect();
        let data = pattern(len as usize);
        sim.world.mem().write(bufs[2], &data).unwrap(); // root = 2
        let req = bcast(&mut sim, 2, &ty, 1, &bufs, 0);
        sim.run();
        assert!(req.is_complete());
        for (r, b) in bufs.iter().enumerate() {
            let got = sim.world.mem().read_vec(*b, len).unwrap();
            for s in ty.segments(1) {
                let range = s.disp as usize..(s.disp + s.len as i64) as usize;
                assert_eq!(&got[range.clone()], &data[range], "rank {r}");
            }
        }
    }

    #[test]
    fn allgather_assembles_all_blocks() {
        let mut sim = four_ranks();
        let ty = DataType::contiguous(1024, &DataType::double())
            .unwrap()
            .commit();
        let block = ty.size();
        let sends: Vec<Ptr> = (0..4).map(|r| dev_alloc(&mut sim, r, block)).collect();
        let recvs: Vec<Ptr> = (0..4).map(|r| dev_alloc(&mut sim, r, block * 4)).collect();
        let mut datas = Vec::new();
        for (r, s) in sends.iter().enumerate() {
            let mut d = pattern(block as usize);
            d[0] = r as u8 + 1; // distinguish contributions
            sim.world.mem().write(*s, &d).unwrap();
            datas.push(d);
        }
        let req = allgather(&mut sim, &ty, 1, &sends, &recvs, 0);
        sim.run();
        assert!(req.is_complete());
        for (r, b) in recvs.iter().enumerate() {
            let got = sim.world.mem().read_vec(*b, block * 4).unwrap();
            for (i, d) in datas.iter().enumerate() {
                assert_eq!(
                    &got[i * block as usize..(i + 1) * block as usize],
                    &d[..],
                    "rank {r}, block {i}"
                );
            }
        }
    }

    #[test]
    fn alltoall_transposes_blocks() {
        let mut sim = four_ranks();
        let ty = DataType::contiguous(512, &DataType::double())
            .unwrap()
            .commit();
        let block = ty.size();
        let sends: Vec<Ptr> = (0..4).map(|r| dev_alloc(&mut sim, r, block * 4)).collect();
        let recvs: Vec<Ptr> = (0..4).map(|r| dev_alloc(&mut sim, r, block * 4)).collect();
        // send_bufs[r] block i = filled with marker (r*4 + i + 1).
        for (r, s) in sends.iter().enumerate() {
            let mut d = vec![0u8; (block * 4) as usize];
            for i in 0..4 {
                d[i * block as usize..(i + 1) * block as usize].fill((r * 4 + i + 1) as u8);
            }
            sim.world.mem().write(*s, &d).unwrap();
        }
        let req = alltoall(&mut sim, &ty, 1, &sends, &recvs, 0);
        sim.run();
        assert!(req.is_complete());
        for (r, b) in recvs.iter().enumerate() {
            let got = sim.world.mem().read_vec(*b, block * 4).unwrap();
            for i in 0..4usize {
                // recv_bufs[r] block i came from rank i's block r.
                let expect = (i * 4 + r + 1) as u8;
                assert!(
                    got[i * block as usize..(i + 1) * block as usize]
                        .iter()
                        .all(|&x| x == expect),
                    "rank {r} block {i}: expected {expect}"
                );
            }
        }
    }

    #[test]
    fn barrier_completes() {
        let mut sim = four_ranks();
        let req = barrier(&mut sim, 0);
        sim.run();
        assert!(req.is_complete());
        assert_eq!(sim.world.mpi.matcher.pending(), 0);
    }

    #[test]
    fn bcast_single_rank_is_trivial() {
        let specs = [RankSpec {
            gpu: GpuId(0),
            node: 0,
        }];
        let mut sim = Sim::new(MpiWorld::new(&specs, 1, MpiConfig::default()));
        let ty = DataType::double().commit();
        let b = dev_alloc(&mut sim, 0, 8);
        let req = bcast(&mut sim, 0, &ty, 1, &[b], 0);
        assert!(req.is_complete());
    }
}
