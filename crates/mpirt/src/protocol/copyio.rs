//! The pipelined copy-in/copy-out protocol (§4.2).
//!
//! Used whenever GPU RDMA is unavailable: across nodes (InfiniBand), for
//! host-resident data, or when IPC is administratively disabled. Data
//! flows
//!
//! ```text
//!   sender typed buffer ──pack──▶ host fragment ──wire──▶ host fragment ──unpack──▶ receiver typed buffer
//! ```
//!
//! fully pipelined over a ring of `pipeline_depth` fragments. With
//! `zero_copy` the pack/unpack kernels read/write the pinned host
//! fragments directly (the device↔host hop rides inside the kernel and
//! overlaps with it); otherwise explicit `cudaMemcpy` staging hops are
//! inserted on the copy stream. Dense sides skip their conversion stage
//! entirely.

use crate::connection::{ib_connection, IbConn};
use crate::protocol::{make_engine, Side, SideEngine};
use crate::request::{MpiError, Request};
use crate::tuner::{tuned_shape, PathClass};
use crate::world::MpiWorld;
use devengine::Direction;
use gpusim::memcpy;
use gpusim::GpuWorld as _;
use memsim::Ptr;
use netsim::{ensure_registered, send_am, wire_send};
use simcore::trace::names;
use simcore::{Sim, SpanId, Track};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

struct Xfer {
    s: Side,
    r: Side,
    conn: Rc<RefCell<IbConn>>,
    s_engine: Option<SideEngine>,
    r_engine: Option<SideEngine>,
    total: u64,
    frag: u64,
    nfrags: u64,
    next_seq: u64,
    free_slots: VecDeque<usize>,
    acked: u64,
    recvd: u64,
    send_req: Request,
    recv_req: Request,
    zero_copy: bool,
    span: SpanId,
    /// Open "frag" span per ring slot, from claim to ack-recycle.
    frag_spans: Vec<SpanId>,
}

type St = Rc<RefCell<Xfer>>;

/// Abort the transfer: resolve both requests with `err` (unless a
/// completion already beat the abort) and close the protocol span.
fn fail(sim: &mut Sim<MpiWorld>, st: &St, err: MpiError) {
    let (send_req, recv_req, span) = {
        let x = st.borrow();
        (x.send_req.clone(), x.recv_req.clone(), x.span)
    };
    send_req.complete_if_pending(sim, Err(err.clone()));
    recv_req.complete_if_pending(sim, Err(err));
    sim.trace.span_end(sim.now(), span);
}

pub fn start(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    if total == 0 {
        send_req.complete(sim, Ok(0));
        recv_req.complete(sim, Ok(0));
        return;
    }
    let s_rank = s.rank;
    let r_rank = r.rank;
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_COPYIO,
        Track::Proto {
            from: s_rank as u32,
            to: r_rank as u32,
        },
    );
    ib_connection(sim, s_rank, r_rank, move |sim, conn| {
        let conn = match conn {
            Ok(c) => c,
            Err(e) => {
                send_req.complete_if_pending(sim, Err(e.clone()));
                recv_req.complete_if_pending(sim, Err(e));
                sim.trace.span_end(sim.now(), span);
                return;
            }
        };
        let (frag0, depth0) = {
            let c = conn.borrow();
            (c.frag_size, c.depth)
        };
        // Zero copy needs both the configured knob and the runtime
        // capability (the latter flips off on permanent pinned-
        // registration loss, demoting this transfer to staged copies).
        let zero_copy = sim.world.mpi.config.zero_copy && sim.world.mpi.zero_copy_runtime_ok;
        let class = if zero_copy {
            PathClass::ZeroCopy
        } else {
            PathClass::CopyInOut
        };
        let (frag, depth) = tuned_shape(sim, &s, &r, class, frag0, depth0);
        let (s_engine, r_engine) = match (
            make_engine(sim, &s, Direction::Pack),
            make_engine(sim, &r, Direction::Unpack),
        ) {
            (Ok(se), Ok(re)) => (Some(se), Some(re)),
            (Err(e), _) | (_, Err(e)) => {
                send_req.complete(sim, Err(e.clone()));
                recv_req.complete(sim, Err(e));
                sim.trace.span_end(sim.now(), span);
                return;
            }
        };
        let st = Rc::new(RefCell::new(Xfer {
            s,
            r,
            conn,
            s_engine,
            r_engine,
            total,
            frag,
            nfrags: total.div_ceil(frag),
            next_seq: 0,
            free_slots: (0..depth).collect(),
            acked: 0,
            recvd: 0,
            send_req,
            recv_req,
            zero_copy,
            span,
            frag_spans: vec![SpanId::disabled(); depth],
        }));
        // A dense host sender wires straight out of the user buffer,
        // which must be registered with the NIC once.
        let needs_reg = {
            let x = st.borrow();
            matches!(x.s_engine, Some(SideEngine::Contig)) && !x.s.device()
        };
        if needs_reg {
            let (buf, rank) = {
                let x = st.borrow();
                (x.s.buf, x.s.rank)
            };
            ensure_registered(sim, rank, buf, move |sim| pump(sim, st));
        } else {
            pump(sim, st);
        }
    });
}

/// Launch sender stages for every free fragment slot, in sequence order.
fn pump(sim: &mut Sim<MpiWorld>, st: St) {
    loop {
        let (slot, seq, n) = {
            let mut x = st.borrow_mut();
            if x.next_seq >= x.nfrags {
                return;
            }
            let Some(slot) = x.free_slots.pop_front() else {
                return;
            };
            let seq = x.next_seq;
            x.next_seq += 1;
            let n = x.frag.min(x.total - seq * x.frag);
            (slot, seq, n)
        };
        {
            let track = {
                let x = st.borrow();
                Track::Ring {
                    from: x.s.rank as u32,
                    to: x.r.rank as u32,
                }
            };
            let id = sim
                .trace
                .span_begin(sim.now(), names::CAT_MPIRT, names::SPAN_FRAG, track);
            if let Some(span) = st.borrow_mut().frag_spans.get_mut(slot) {
                *span = id;
            }
        }
        sender_stage(sim, Rc::clone(&st), slot, seq, n);
    }
}

/// Stage 1: produce packed bytes into the sender's host fragment.
fn sender_stage(sim: &mut Sim<MpiWorld>, st: St, slot: usize, seq: u64, n: u64) {
    let (host_slot, dev_slot, zero_copy) = {
        let x = st.borrow();
        let c = x.conn.borrow();
        (c.send_host_slot(slot), c.send_dev_slot(slot), x.zero_copy)
    };
    let (Some(host_slot), Some(dev_slot)) = (host_slot, dev_slot) else {
        return fail(
            sim,
            &st,
            MpiError::Faulted("copyio ring slot out of range".into()),
        );
    };
    let Some(mut engine) = st.borrow_mut().s_engine.take() else {
        return fail(
            sim,
            &st,
            MpiError::Faulted("copyio sender engine already in use".into()),
        );
    };
    match &mut engine {
        SideEngine::Gpu(eng) => {
            if zero_copy {
                // Kernel scatters straight into the mapped host slot.
                let stw = Rc::clone(&st);
                eng.process_fragment(
                    sim,
                    host_slot,
                    n,
                    |_| {},
                    move |sim, _| {
                        wire(sim, stw, slot, seq, n, None);
                    },
                );
            } else {
                // Kernel packs into the device slot, then DMA to host.
                let stw = Rc::clone(&st);
                eng.process_fragment(
                    sim,
                    dev_slot,
                    n,
                    |_| {},
                    move |sim, _| {
                        let copy_stream = {
                            let x = stw.borrow();
                            sim.world.rank(x.s.rank).copy_stream
                        };
                        let stw2 = Rc::clone(&stw);
                        memcpy(sim, copy_stream, dev_slot, host_slot, n, move |sim, _| {
                            wire(sim, stw2, slot, seq, n, None);
                        });
                    },
                );
            }
        }
        SideEngine::Cpu(eng) => {
            let stw = Rc::clone(&st);
            eng.process_fragment(sim, host_slot, n, move |sim, _| {
                wire(sim, stw, slot, seq, n, None);
            });
        }
        SideEngine::Contig => {
            let x = st.borrow();
            let user = x.s.data_ptr().add(seq * x.frag);
            if x.s.device() {
                // DMA the window of the user buffer down to the host slot.
                let copy_stream = sim.world.rank(x.s.rank).copy_stream;
                drop(x);
                let stw = Rc::clone(&st);
                memcpy(sim, copy_stream, user, host_slot, n, move |sim, _| {
                    wire(sim, stw, slot, seq, n, None);
                });
            } else {
                // Registered host data goes on the wire directly.
                drop(x);
                let stw = Rc::clone(&st);
                sim.schedule_now(move |sim| wire(sim, stw, slot, seq, n, Some(user)));
            }
        }
    }
    st.borrow_mut().s_engine = Some(engine);
}

/// Stage 2: RDMA-write the fragment to the receiver's host ring (or,
/// for a dense host receiver, straight into the user buffer).
fn wire(sim: &mut Sim<MpiWorld>, st: St, slot: usize, seq: u64, n: u64, direct_src: Option<Ptr>) {
    let (s_rank, r_rank, src) = {
        let x = st.borrow();
        let c = x.conn.borrow();
        (x.s.rank, x.r.rank, direct_src.or(c.send_host_slot(slot)))
    };
    let Some(src) = src else {
        return fail(
            sim,
            &st,
            MpiError::Faulted("copyio ring slot out of range".into()),
        );
    };
    let dst = {
        let x = st.borrow();
        let dense_host_recv = matches!(x.r_engine, Some(SideEngine::Contig)) && !x.r.device();
        if dense_host_recv {
            Some(x.r.data_ptr().add(seq * x.frag))
        } else {
            x.conn.borrow().recv_host_slot(slot)
        }
    };
    let Some(dst) = dst else {
        return fail(
            sim,
            &st,
            MpiError::Faulted("copyio ring slot out of range".into()),
        );
    };
    let now = sim.now();
    let stw = Rc::clone(&st);
    // The hop must go through the faultsim-consulting wrapper — raw
    // link charges are banned by the fault-coverage lint rule.
    let shipped = wire_send(sim, s_rank, r_rank, n, move |sim| {
        if let Err(e) = sim.world.mem().copy(src, dst, n) {
            return fail(sim, &stw, MpiError::Mem(e.to_string()));
        }
        sim.trace
            .count(names::MPIRT_WIRE_BYTES, s_rank as u32, r_rank as u32, n);
        receiver_stage(sim, stw, slot, seq, n, dst);
    });
    match shipped {
        Ok(arrive) => {
            let track = Track::LinkData {
                from: s_rank as u32,
                to: r_rank as u32,
            };
            sim.trace
                .span_at(now, arrive, names::CAT_MPIRT, names::SPAN_WIRE, track);
        }
        Err(e) => fail(sim, &st, MpiError::Net(e)),
    }
}

/// How the receiver consumes an arrived fragment.
enum RecvKind {
    GpuZeroCopy,
    GpuStaged,
    Cpu,
    ContigDevice,
    ContigHost,
}

/// Stage 3: consume the fragment on the receiver.
fn receiver_stage(sim: &mut Sim<MpiWorld>, st: St, slot: usize, seq: u64, n: u64, arrived_at: Ptr) {
    let (dev_slot, kind, copy_stream, user) = {
        let x = st.borrow();
        let c = x.conn.borrow();
        let kind = match x.r_engine.as_ref() {
            Some(SideEngine::Gpu(_)) if x.zero_copy => RecvKind::GpuZeroCopy,
            Some(SideEngine::Gpu(_)) => RecvKind::GpuStaged,
            Some(SideEngine::Cpu(_)) => RecvKind::Cpu,
            Some(SideEngine::Contig) if x.r.device() => RecvKind::ContigDevice,
            Some(SideEngine::Contig) => RecvKind::ContigHost,
            None => {
                drop(c);
                drop(x);
                return fail(
                    sim,
                    &st,
                    MpiError::Faulted("copyio receiver engine already in use".into()),
                );
            }
        };
        (
            c.recv_dev_slot(slot),
            kind,
            sim.world.rank(x.r.rank).copy_stream,
            x.r.data_ptr().add(seq * x.frag),
        )
    };
    match kind {
        RecvKind::GpuZeroCopy => {
            run_unpack(sim, st, arrived_at, slot, n);
        }
        RecvKind::GpuStaged => {
            // H2D staging hop, then the unpack kernel. Copies on the
            // copy stream complete in arrival order, preserving the
            // engine's sequential consumption.
            let Some(dev_slot) = dev_slot else {
                return fail(
                    sim,
                    &st,
                    MpiError::Faulted("copyio ring slot out of range".into()),
                );
            };
            let stw = Rc::clone(&st);
            memcpy(sim, copy_stream, arrived_at, dev_slot, n, move |sim, _| {
                run_unpack(sim, stw, dev_slot, slot, n);
            });
        }
        RecvKind::Cpu => {
            let Some(mut engine) = st.borrow_mut().r_engine.take() else {
                return fail(
                    sim,
                    &st,
                    MpiError::Faulted("copyio receiver engine already in use".into()),
                );
            };
            if let SideEngine::Cpu(eng) = &mut engine {
                let stw = Rc::clone(&st);
                eng.process_fragment(sim, arrived_at, n, move |sim, _| {
                    consumed(sim, stw, slot, n);
                });
            }
            st.borrow_mut().r_engine = Some(engine);
        }
        RecvKind::ContigDevice => {
            let stw = Rc::clone(&st);
            memcpy(sim, copy_stream, arrived_at, user, n, move |sim, _| {
                consumed(sim, stw, slot, n);
            });
        }
        RecvKind::ContigHost => {
            // The wire already landed the bytes in the user buffer.
            let stw = Rc::clone(&st);
            sim.schedule_now(move |sim| consumed(sim, stw, slot, n));
        }
    }
}

/// Run the GPU unpack engine on a fragment's bytes at `src`.
fn run_unpack(sim: &mut Sim<MpiWorld>, st: St, src: Ptr, slot: usize, n: u64) {
    let Some(mut engine) = st.borrow_mut().r_engine.take() else {
        return fail(
            sim,
            &st,
            MpiError::Faulted("copyio receiver engine already in use".into()),
        );
    };
    if let SideEngine::Gpu(eng) = &mut engine {
        let stw = Rc::clone(&st);
        eng.process_fragment(
            sim,
            src,
            n,
            |_| {},
            move |sim, _| {
                consumed(sim, stw, slot, n);
            },
        );
        st.borrow_mut().r_engine = Some(engine);
    } else {
        // receiver_stage only routes GPU engines here; anything else is
        // a protocol-state corruption, surfaced as a typed failure.
        st.borrow_mut().r_engine = Some(engine);
        fail(
            sim,
            &st,
            MpiError::Faulted("copyio unpack reached a non-GPU engine".into()),
        );
    }
}

/// Stage 4: account the fragment, ack the slot back to the sender, and
/// complete the requests when everything has moved.
fn consumed(sim: &mut Sim<MpiWorld>, st: St, slot: usize, n: u64) {
    let (s_rank, r_rank, recv_finished) = {
        let mut x = st.borrow_mut();
        x.recvd += n;
        (x.s.rank, x.r.rank, x.recvd >= x.total)
    };
    sim.trace
        .count(names::MPI_DELIVERED_BYTES, s_rank as u32, r_rank as u32, n);
    if recv_finished {
        let x = st.borrow();
        x.recv_req.complete(sim, Ok(x.total));
    }
    let stw = Rc::clone(&st);
    let acked = send_am(sim, r_rank, s_rank, 16, move |sim| {
        let frag_span = stw
            .borrow()
            .frag_spans
            .get(slot)
            .copied()
            .unwrap_or(SpanId::disabled());
        sim.trace.span_end(sim.now(), frag_span);
        let send_finished = {
            let mut x = stw.borrow_mut();
            x.acked += n;
            x.free_slots.push_back(slot);
            x.acked >= x.total
        };
        if send_finished {
            let x = stw.borrow();
            x.send_req.complete(sim, Ok(x.total));
            let span = x.span;
            sim.trace.span_end(sim.now(), span);
        } else {
            pump(sim, stw);
        }
    });
    if let Err(e) = acked {
        fail(sim, &st, MpiError::Net(e));
    }
}
