//! The offload path classes: NIC-executed DEV programs and GPU
//! stream-triggered sends.
//!
//! Both eliminate work the GPU-pack pipeline pays on every transfer:
//!
//! * **NicOffload** — the NIC packet processor executes the merged
//!   gather/scatter descriptor program (sPIN), so there is no pack
//!   kernel, no packed staging buffer and no per-fragment control
//!   traffic. A one-time DEV handler install per rank pair mirrors the
//!   IPC/pinned-registration handshakes, including its fault charge
//!   point (`FaultOp::NicHandler`): permanent loss flips
//!   `nic_offload_runtime_ok` off and this — and every later — transfer
//!   demotes to the GPU-pack copy-in/out pipeline, sticky and
//!   byte-equal, exactly like the SmIpc → CopyInOut demotion.
//!
//! * **StreamTriggered** — the transfer is captured once into a GPU
//!   stream-op graph (trigger → pack kernel → doorbell → unpack kernel
//!   → completion) and replayed per iteration with zero CPU events on
//!   the critical path (HPE's stream-aware MPI). The doorbell ring is
//!   the fault charge point (`FaultOp::StreamDoorbell`), rolled before
//!   each replay: a lost doorbell demotes to the CPU-driven pipeline,
//!   sticky via `stream_trigger_runtime_ok`.
//!
//! Neither path is entered unless `tuner::select_path` predicted a win
//! past its never-worse margin, so a demotion only ever returns the
//! transfer to the timing it would have had with the knob off.

use crate::connection::{HANDSHAKE_RETRY_MAX, HANDSHAKE_TIMEOUT};
use crate::protocol::{copyio, Side};
use crate::request::{MpiError, Request};
use crate::tuner::{cache_key, PathClass};
use crate::world::MpiWorld;
use devengine::{flip_units, whole_units};
use faultsim::{Backoff, FaultDecision, FaultOp};
use gpusim::{fault, graph_kernel, GpuWorld as _, GraphCapture, StreamGraph};
use memsim::{MemSpace, Ptr};
use netsim::{compile_program, execute_program, wire_send, NicCosts};
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::Sim;
use std::rc::Rc;

/// One captured stream-triggered transfer shape: the replayable graph
/// plus everything the replay needs baked at capture time — whole-
/// message pack/unpack unit lists, `true_lb` shifts, and the pinned
/// bounce buffer the graph kernels stream through.
pub struct CapturedXfer {
    pub graph: StreamGraph,
    pub pack_units: Vec<CopyOp>,
    pub unpack_units: Vec<CopyOp>,
    pub s_shift: i64,
    pub r_shift: i64,
    pub bounce: Ptr,
    pub total: u64,
}

fn complete_both(sim: &mut Sim<MpiWorld>, send_req: &Request, recv_req: &Request, err: MpiError) {
    send_req.complete_if_pending(sim, Err(err.clone()));
    recv_req.complete_if_pending(sim, Err(err));
}

// ---------------------------------------------------------------- NIC

/// Start one NicOffload rendezvous: install the DEV handler on the pair
/// (once, cached), compile the merged descriptor program (once per
/// shape, cached), execute it on the NIC. Demotes to
/// [`copyio::start`] when the handler capability is lost.
pub fn start_nic(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    if total == 0 {
        send_req.complete(sim, Ok(0));
        recv_req.complete(sim, Ok(0));
        return;
    }
    let deadline = sim.now() + HANDSHAKE_TIMEOUT;
    nic_handler_attempt(
        sim,
        s.rank,
        r.rank,
        fault::default_backoff(),
        deadline,
        move |sim, installed| {
            if !installed {
                // The capability is gone: this and every later transfer
                // renegotiate to the GPU-pack pipeline.
                return copyio::start(sim, s, r, send_req, recv_req);
            }
            let key = cache_key(sim, &s, &r, PathClass::NicOffload);
            let prog = match sim.world.mpi.nic_programs.get(&key) {
                Some(p) => Rc::clone(p),
                None => match compile_program(&s.ty, s.count, &r.ty, r.count) {
                    Ok(p) => {
                        let p = Rc::new(p);
                        sim.world.mpi.nic_programs.insert(key, Rc::clone(&p));
                        p
                    }
                    Err(e) => {
                        return complete_both(sim, &send_req, &recv_req, MpiError::Type(e));
                    }
                },
            };
            let costs = NicCosts::of(&sim.world.gpus_ref().topo);
            let (s_rank, r_rank) = (s.rank, r.rank);
            let sreq = send_req.clone();
            let rreq = recv_req.clone();
            let shipped = execute_program(
                sim,
                s_rank,
                r_rank,
                s.buf,
                r.buf,
                &prog,
                &costs,
                move |sim| {
                    sim.trace.count(
                        names::MPI_DELIVERED_BYTES,
                        s_rank as u32,
                        r_rank as u32,
                        total,
                    );
                    rreq.complete(sim, Ok(total));
                    sreq.complete(sim, Ok(total));
                },
            );
            if let Err(e) = shipped {
                complete_both(sim, &send_req, &recv_req, MpiError::Net(e));
            }
        },
    );
}

/// Install (or reuse) the DEV handler for the directed pair, rolling
/// the `NicHandler` fault charge point: transients retry under the
/// connection-handshake budget, permanent loss (or an exhausted budget)
/// flips the runtime flag, counts the demotion, and reports `false`.
fn nic_handler_attempt(
    sim: &mut Sim<MpiWorld>,
    s_rank: usize,
    r_rank: usize,
    mut backoff: Backoff,
    deadline: simcore::SimTime,
    then: impl FnOnce(&mut Sim<MpiWorld>, bool) + 'static,
) {
    if sim.world.mpi.nic_handlers.contains_key(&(s_rank, r_rank)) {
        sim.schedule_now(move |sim| then(sim, true));
        return;
    }
    match fault::fault_roll(sim, FaultOp::NicHandler) {
        FaultDecision::Ok => {
            let setup = sim.world.gpus_ref().topo.nic_handler_setup;
            sim.schedule_in(setup, move |sim| {
                sim.world.mpi.nic_handlers.insert((s_rank, r_rank), ());
                then(sim, true);
            });
        }
        FaultDecision::Transient
            if sim.now() < deadline && backoff.attempts() < HANDSHAKE_RETRY_MAX =>
        {
            fault::count_retry(sim, FaultOp::NicHandler);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                nic_handler_attempt(sim, s_rank, r_rank, backoff, deadline, then);
            });
        }
        _ => {
            sim.world.mpi.nic_offload_runtime_ok = false;
            sim.trace.count(
                names::OFFLOAD_NIC_DEMOTIONS,
                s_rank as u32,
                r_rank as u32,
                1,
            );
            sim.trace.count(
                faultsim::counters::FALLBACK_EVENTS,
                s_rank as u32,
                r_rank as u32,
                1,
            );
            then(sim, false);
        }
    }
}

// ------------------------------------------------------------- stream

/// Start one StreamTriggered rendezvous: roll the doorbell, capture the
/// graph if this shape has never been captured on the pair, replay it.
/// A lost doorbell demotes to [`copyio::start`].
pub fn start_stream(
    sim: &mut Sim<MpiWorld>,
    s: Side,
    r: Side,
    send_req: Request,
    recv_req: Request,
) {
    let total = s.total();
    if total == 0 {
        send_req.complete(sim, Ok(0));
        recv_req.complete(sim, Ok(0));
        return;
    }
    let deadline = sim.now() + HANDSHAKE_TIMEOUT;
    doorbell_attempt(
        sim,
        s.rank,
        r.rank,
        fault::default_backoff(),
        deadline,
        move |sim, rung| {
            if !rung {
                return copyio::start(sim, s, r, send_req, recv_req);
            }
            let cap = match captured(sim, &s, &r) {
                Ok(c) => c,
                Err(e) => return complete_both(sim, &send_req, &recv_req, e),
            };
            replay(sim, cap, s, r, send_req, recv_req);
        },
    );
}

/// Ring the doorbell for one replay, rolling the `StreamDoorbell` fault
/// charge point. Transients re-ring under the handshake budget; a lost
/// doorbell flips the runtime flag, counts the demotion, and reports
/// `false` so the caller renegotiates to the CPU-driven pipeline.
fn doorbell_attempt(
    sim: &mut Sim<MpiWorld>,
    s_rank: usize,
    r_rank: usize,
    mut backoff: Backoff,
    deadline: simcore::SimTime,
    then: impl FnOnce(&mut Sim<MpiWorld>, bool) + 'static,
) {
    match fault::fault_roll(sim, FaultOp::StreamDoorbell) {
        FaultDecision::Ok => then(sim, true),
        FaultDecision::Transient
            if sim.now() < deadline && backoff.attempts() < HANDSHAKE_RETRY_MAX =>
        {
            fault::count_retry(sim, FaultOp::StreamDoorbell);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                doorbell_attempt(sim, s_rank, r_rank, backoff, deadline, then);
            });
        }
        _ => {
            sim.world.mpi.stream_trigger_runtime_ok = false;
            sim.trace.count(
                names::OFFLOAD_STREAM_DEMOTIONS,
                s_rank as u32,
                r_rank as u32,
                1,
            );
            sim.trace.count(
                faultsim::counters::FALLBACK_EVENTS,
                s_rank as u32,
                r_rank as u32,
                1,
            );
            then(sim, false);
        }
    }
}

/// Get (or capture) the stream-op graph for this pair and shape. The
/// capture is the expensive, once-per-shape step: bake whole-message
/// pack/unpack unit lists, pin a bounce buffer, and walk the graph
/// through the capture API (its only sanctioned constructor).
fn captured(sim: &mut Sim<MpiWorld>, s: &Side, r: &Side) -> Result<Rc<CapturedXfer>, MpiError> {
    let key = cache_key(sim, s, r, PathClass::StreamTriggered);
    if let Some(c) = sim
        .world
        .mpi
        .stream_captures
        .get(&(s.rank, r.rank))
        .and_then(|m| m.get(&key))
    {
        return Ok(Rc::clone(c));
    }
    let total = s.total();
    let (unit_size, coalesce) = {
        let cfg = &sim.world.mpi.config;
        (cfg.engine.unit_size, cfg.engine.optimizer.coalesce)
    };
    let (pack_units, s_shift) =
        whole_units(&s.ty, s.count, unit_size, coalesce).map_err(MpiError::Type)?;
    let (r_pack, r_shift) =
        whole_units(&r.ty, r.count, unit_size, coalesce).map_err(MpiError::Type)?;
    let unpack_units = flip_units(&r_pack);
    let bounce = sim
        .world
        .mem()
        .alloc(MemSpace::Host, total)
        .map_err(|e| MpiError::Mem(e.to_string()))?;
    let stream = sim.world.rank(s.rank).kernel_stream;
    let graph = GraphCapture::begin(stream)
        .trigger()
        .kernel()
        .doorbell(total)
        .kernel()
        .completion()
        .finish(sim);
    let cap = Rc::new(CapturedXfer {
        graph,
        pack_units,
        unpack_units,
        s_shift,
        r_shift,
        bounce,
        total,
    });
    sim.world
        .mpi
        .stream_captures
        .entry((s.rank, r.rank))
        .or_default()
        .insert(key, Rc::clone(&cap));
    Ok(cap)
}

/// Replay the captured graph for one iteration: re-arm on the stream
/// front-end, then pack kernel → wire → unpack kernel with no CPU event
/// in between (the graph kernels skip the driver launch path — they
/// were baked at capture).
fn replay(
    sim: &mut Sim<MpiWorld>,
    cap: Rc<CapturedXfer>,
    s: Side,
    r: Side,
    send_req: Request,
    recv_req: Request,
) {
    let cap2 = Rc::clone(&cap);
    gpusim::replay_issue(sim, &cap.graph, move |sim, _| {
        let cap = cap2;
        let src = s.buf.offset_by(cap.s_shift);
        let pack = cap.pack_units.clone();
        let stream = sim.world.rank(s.rank).kernel_stream;
        let cap3 = Rc::clone(&cap);
        graph_kernel(sim, stream, src, cap.bounce, pack, move |sim, _| {
            let cap = cap3;
            let total = cap.total;
            let (s_rank, r_rank) = (s.rank, r.rank);
            let cap4 = Rc::clone(&cap);
            let sreq = send_req.clone();
            let rreq = recv_req.clone();
            let shipped = wire_send(sim, s_rank, r_rank, total, move |sim| {
                let cap = cap4;
                let dst = r.buf.offset_by(cap.r_shift);
                let unpack = cap.unpack_units.clone();
                let stream = sim.world.rank(r_rank).kernel_stream;
                graph_kernel(sim, stream, cap.bounce, dst, unpack, move |sim, _| {
                    sim.trace.count(
                        names::MPI_DELIVERED_BYTES,
                        s_rank as u32,
                        r_rank as u32,
                        total,
                    );
                    rreq.complete(sim, Ok(total));
                    sreq.complete(sim, Ok(total));
                });
            });
            if let Err(e) = shipped {
                complete_both(sim, &send_req, &recv_req, MpiError::Net(e));
            }
        });
    });
}
