//! Protocol selection (the BML role) and shared per-side machinery.

pub mod copyio;
pub mod eager;
pub mod offload;
pub mod sm;

use crate::cpupack::{CpuDir, CpuEngine};
use crate::matcher::RecvPosting;
use crate::request::{MpiError, Request};
use crate::world::MpiWorld;
use datatype::{DataType, Signature};
use devengine::{Direction, FragmentEngine};
use memsim::Ptr;
use simcore::Sim;

/// One endpoint of a transfer.
#[derive(Clone)]
pub struct Side {
    pub rank: usize,
    pub ty: DataType,
    pub count: u64,
    pub buf: Ptr,
}

impl Side {
    pub fn total(&self) -> u64 {
        self.ty.size() * self.count
    }

    pub fn dense(&self) -> bool {
        self.ty.is_contiguous(self.count)
    }

    pub fn device(&self) -> bool {
        self.buf.space.is_device()
    }

    /// Displacement-0 pointer adjusted to the first data byte, for the
    /// contiguous fast paths (dense data starts at `true_lb`).
    pub fn data_ptr(&self) -> Ptr {
        self.buf.offset_by(self.ty.true_lb())
    }
}

/// The engine driving one side's conversion.
pub(crate) enum SideEngine {
    Gpu(FragmentEngine),
    Cpu(CpuEngine),
    /// Dense layout: fragments are direct windows of the user buffer.
    Contig,
}

pub(crate) fn make_engine(
    sim: &mut Sim<MpiWorld>,
    side: &Side,
    dir: Direction,
) -> Result<SideEngine, MpiError> {
    if side.dense() {
        return Ok(SideEngine::Contig);
    }
    if side.device() {
        let (stream, cache) = {
            let r = sim.world.rank(side.rank);
            (r.kernel_stream, std::rc::Rc::clone(&r.dev_cache))
        };
        let cfg = sim.world.mpi.config.engine.clone();
        let eng = FragmentEngine::new(
            sim,
            side.rank,
            stream,
            &side.ty,
            side.count,
            side.buf,
            dir,
            cfg,
            Some(&cache),
        )
        .map_err(MpiError::Type)?;
        Ok(SideEngine::Gpu(eng))
    } else {
        let cdir = match dir {
            Direction::Pack => CpuDir::Pack,
            Direction::Unpack => CpuDir::Unpack,
        };
        let bw = sim.world.mpi.config.cpu_pack_bw;
        Ok(SideEngine::Cpu(
            CpuEngine::new(&side.ty, side.count, side.buf, cdir, side.rank, bw)
                .map_err(MpiError::Type)?,
        ))
    }
}

/// Start a matched rendezvous transfer: verify signatures, then pick the
/// protocol — same-node GPU↔GPU with IPC takes the pipelined RDMA
/// protocol; everything else (InfiniBand, host data, IPC disabled) the
/// pipelined copy-in/copy-out protocol.
pub fn start_rendezvous(
    sim: &mut Sim<MpiWorld>,
    send: Side,
    send_req: Request,
    posting: RecvPosting,
) {
    let s_sig = Signature::of(&send.ty, send.count);
    if let Err(e) = posting.signature().check_recv(&s_sig) {
        send_req.complete(sim, Err(MpiError::Type(e.clone())));
        posting.request.complete(sim, Err(MpiError::Type(e)));
        return;
    }
    let recv = Side {
        rank: posting.rank,
        ty: posting.ty.clone(),
        count: posting.count,
        buf: posting.buf,
    };
    let recv_req = posting.request.clone();
    run_transfer(sim, send, recv, send_req, recv_req);
}

/// Dispatch a (signature-checked) transfer to the right protocol. Also
/// used directly by the one-sided layer, where there is no matching.
///
/// Path selection consults the *runtime* IPC flag alongside the
/// configured one: once fault injection permanently takes out the IPC
/// capability, every later same-node transfer renegotiates straight to
/// copy-in/copy-out without re-attempting the lost path.
pub(crate) fn run_transfer(
    sim: &mut Sim<MpiWorld>,
    send: Side,
    recv: Side,
    send_req: Request,
    recv_req: Request,
) {
    let same_node = sim.world.same_node(send.rank, recv.rank);
    let use_ipc = sim.world.mpi.config.use_ipc && sim.world.mpi.ipc_runtime_ok;
    if same_node && use_ipc && send.device() && recv.device() {
        sm::start(sim, send, recv, send_req, recv_req);
    } else {
        // Cross-node (and degraded same-node) transfers consult the
        // analytic path selector: the offload classes compete only when
        // their knobs are on and their runtime-health flags are up, and
        // win only past the never-worse margin.
        match crate::tuner::select_path(sim, &send, &recv, same_node) {
            crate::tuner::PathClass::NicOffload => {
                offload::start_nic(sim, send, recv, send_req, recv_req)
            }
            crate::tuner::PathClass::StreamTriggered => {
                offload::start_stream(sim, send, recv, send_req, recv_req)
            }
            _ => copyio::start(sim, send, recv, send_req, recv_req),
        }
    }
}
