//! The pipelined RDMA protocol over CUDA IPC (§4.1, Figure 4).
//!
//! Same-node GPU↔GPU transfers. The sender packs fragments into a ring
//! of reusable GPU buffers exposed to the receiver through a one-time
//! IPC mapping; active messages carry "unpack fragment i" requests one
//! way and "fragment i is free" acknowledgements the other, so the
//! sender packs fragment `i+1` while the receiver unpacks fragment `i`.
//!
//! The rendezvous handshake short-circuits the conversion stages:
//!
//! * sender contiguous → the receiver unpacks straight out of the
//!   sender's (mapped) user buffer, no pack at all;
//! * receiver contiguous → the sender's pack kernels scatter directly
//!   into the receiver's (mapped) user buffer, no unpack at all;
//! * both contiguous → a bulk peer-to-peer copy.

use crate::connection::{open_peer_buffer, sm_connection, SmConn};
use crate::protocol::{make_engine, Side, SideEngine};
use crate::request::{MpiError, Request};
use crate::tuner::{tuned_shape, PathClass};
use crate::world::MpiWorld;
use devengine::Direction;
use gpusim::memcpy;
use netsim::send_am;
use simcore::trace::names;
use simcore::{Sim, SpanId, Track};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

fn proto_track(s_rank: usize, r_rank: usize) -> Track {
    Track::Proto {
        from: s_rank as u32,
        to: r_rank as u32,
    }
}

fn ring_track(s_rank: usize, r_rank: usize) -> Track {
    Track::Ring {
        from: s_rank as u32,
        to: r_rank as u32,
    }
}

/// Abort a transfer: complete both requests with `err` (unless a racing
/// completion already resolved one) and close the protocol span.
fn fail_both(
    sim: &mut Sim<MpiWorld>,
    send_req: &Request,
    recv_req: &Request,
    span: SpanId,
    err: MpiError,
) {
    send_req.complete_if_pending(sim, Err(err.clone()));
    recv_req.complete_if_pending(sim, Err(err));
    sim.trace.span_end(sim.now(), span);
}

fn pull_fail(sim: &mut Sim<MpiWorld>, st: &Rc<RefCell<PullState>>, err: MpiError) {
    let (sreq, rreq, span) = {
        let x = st.borrow();
        (x.send_req.clone(), x.recv_req.clone(), x.span)
    };
    fail_both(sim, &sreq, &rreq, span, err);
}

fn put_fail(sim: &mut Sim<MpiWorld>, st: &Rc<RefCell<PutState>>, err: MpiError) {
    let (sreq, rreq, span) = {
        let x = st.borrow();
        (x.send_req.clone(), x.recv_req.clone(), x.span)
    };
    fail_both(sim, &sreq, &rreq, span, err);
}

fn full_fail(sim: &mut Sim<MpiWorld>, st: &FSt, err: MpiError) {
    let (sreq, rreq, span) = {
        let x = st.borrow();
        (x.send_req.clone(), x.recv_req.clone(), x.span)
    };
    fail_both(sim, &sreq, &rreq, span, err);
}

/// Path renegotiation: the IPC mapping was lost mid-handshake, so replay
/// the same transfer over the copy-in/copy-out protocol. Connection
/// establishment precedes all data motion, so nothing has moved yet and
/// the sides and requests replay verbatim; the connection layer already
/// freed the half-built ring and flipped the runtime IPC flag, steering
/// every *later* transfer straight to copy-in/out.
fn renegotiate(
    sim: &mut Sim<MpiWorld>,
    s: Side,
    r: Side,
    send_req: Request,
    recv_req: Request,
    span: SpanId,
) {
    sim.trace.count(
        faultsim::counters::FALLBACK_EVENTS,
        s.rank as u32,
        r.rank as u32,
        1,
    );
    sim.trace.span_end(sim.now(), span);
    crate::protocol::copyio::start(sim, s, r, send_req, recv_req);
}

pub fn start(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    if total == 0 {
        send_req.complete(sim, Ok(0));
        recv_req.complete(sim, Ok(0));
        return;
    }
    match (s.dense(), r.dense()) {
        (true, true) => both_dense(sim, s, r, send_req, recv_req),
        (true, false) => sender_dense(sim, s, r, send_req, recv_req),
        (false, true) => receiver_dense(sim, s, r, send_req, recv_req),
        (false, false) => full_pipeline(sim, s, r, send_req, recv_req),
    }
}

/// Both sides contiguous: one bulk GET (peer-to-peer DMA, or an
/// in-device copy when the ranks share a GPU).
fn both_dense(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    let src = s.data_ptr();
    let dst = r.data_ptr();
    let (s_rank, r_rank) = (s.rank, r.rank);
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_SM_BOTH_DENSE,
        proto_track(s_rank, r_rank),
    );
    open_peer_buffer(sim, src, total, move |sim, res| {
        if res.is_err() {
            renegotiate(sim, s, r, send_req, recv_req, span);
            return;
        }
        let copy_stream = sim.world.rank(r_rank).copy_stream;
        memcpy(sim, copy_stream, src, dst, total, move |sim, _| {
            sim.trace.count(
                names::MPI_DELIVERED_BYTES,
                s_rank as u32,
                r_rank as u32,
                total,
            );
            recv_req.complete(sim, Ok(total));
            // Tell the sender its buffer is free.
            let sreq = send_req.clone();
            let acked = send_am(sim, r_rank, s_rank, 16, move |sim| {
                send_req.complete(sim, Ok(total));
                sim.trace.span_end(sim.now(), span);
            });
            if let Err(e) = acked {
                sreq.complete_if_pending(sim, Err(MpiError::Net(e)));
                sim.trace.span_end(sim.now(), span);
            }
        });
    });
}

/// Sender contiguous: receiver-driven unpack straight from the sender's
/// mapped buffer, pipelined through the staging ring when present.
fn sender_dense(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    let src = s.data_ptr();
    let (s_rank, r_rank) = (s.rank, r.rank);
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_SM_SENDER_DENSE,
        proto_track(s_rank, r_rank),
    );
    open_peer_buffer(sim, src, total, move |sim, res| {
        if res.is_err() {
            renegotiate(sim, s, r, send_req, recv_req, span);
            return;
        }
        sm_connection(sim, s_rank, r_rank, move |sim, conn| {
            let conn = match conn {
                Ok(c) => c,
                Err(_) => {
                    renegotiate(sim, s, r, send_req, recv_req, span);
                    return;
                }
            };
            let (frag0, depth0) = {
                let c = conn.borrow();
                (c.frag_size, c.depth)
            };
            let (frag, depth) = tuned_shape(sim, &s, &r, PathClass::SmIpc, frag0, depth0);
            let unpacker = match make_engine(sim, &r, Direction::Unpack) {
                Ok(e) => e,
                Err(err) => return fail_both(sim, &send_req, &recv_req, span, err),
            };
            let st = Rc::new(RefCell::new(PullState {
                conn,
                engine: Some(unpacker),
                src,
                total,
                frag,
                depth,
                next_seq: 0,
                consumed: 0,
                inflight: 0,
                r_rank,
                s_rank,
                send_req,
                recv_req,
                span,
            }));
            pull_pump(sim, st);
        });
    });
}

/// State for the sender-dense pull pipeline.
struct PullState {
    conn: Rc<RefCell<SmConn>>,
    engine: Option<SideEngine>,
    src: memsim::Ptr,
    total: u64,
    /// Pipeline shape in use (auto-tuned; never exceeds the ring's
    /// allocated `frag_size`/`depth`).
    frag: u64,
    depth: usize,
    next_seq: u64,
    consumed: u64,
    inflight: usize,
    r_rank: usize,
    s_rank: usize,
    send_req: Request,
    recv_req: Request,
    span: SpanId,
}

fn pull_pump(sim: &mut Sim<MpiWorld>, st: Rc<RefCell<PullState>>) {
    loop {
        let (seq, n, frag, depth, staging_slot) = {
            let mut x = st.borrow_mut();
            let frag = x.frag;
            let depth = x.depth;
            if x.next_seq * frag >= x.total || x.inflight >= depth {
                return;
            }
            let seq = x.next_seq;
            x.next_seq += 1;
            x.inflight += 1;
            let n = frag.min(x.total - seq * frag);
            let staging = x.conn.borrow().staging_slot(seq as usize);
            (seq, n, frag, depth, staging)
        };
        let _ = depth;
        let window = { st.borrow().src.add(seq * frag) };
        let frag_span = {
            let x = st.borrow();
            sim.trace.span_begin(
                sim.now(),
                names::CAT_MPIRT,
                names::SPAN_FRAG,
                ring_track(x.s_rank, x.r_rank),
            )
        };
        match staging_slot {
            Some(stage) => {
                // GET the window into local staging, then unpack locally.
                let copy_stream = {
                    let r_rank = st.borrow().r_rank;
                    sim.world.rank(r_rank).copy_stream
                };
                let stw = Rc::clone(&st);
                memcpy(sim, copy_stream, window, stage, n, move |sim, _| {
                    pull_unpack(sim, stw, stage, n, frag_span);
                });
            }
            None => {
                // Same GPU (or staging disabled): unpack from the
                // window directly.
                pull_unpack(sim, Rc::clone(&st), window, n, frag_span);
            }
        }
    }
}

fn pull_unpack(
    sim: &mut Sim<MpiWorld>,
    st: Rc<RefCell<PullState>>,
    src: memsim::Ptr,
    n: u64,
    frag_span: SpanId,
) {
    let Some(mut engine) = st.borrow_mut().engine.take() else {
        return pull_fail(
            sim,
            &st,
            MpiError::Faulted("sm unpacker already in use".into()),
        );
    };
    if let SideEngine::Gpu(eng) = &mut engine {
        let stw = Rc::clone(&st);
        eng.process_fragment(
            sim,
            src,
            n,
            |_| {},
            move |sim, _| {
                let finished = {
                    let mut x = stw.borrow_mut();
                    x.consumed += n;
                    x.inflight -= 1;
                    x.consumed >= x.total
                };
                {
                    let x = stw.borrow();
                    sim.trace.count(
                        names::MPI_DELIVERED_BYTES,
                        x.s_rank as u32,
                        x.r_rank as u32,
                        n,
                    );
                }
                sim.trace.span_end(sim.now(), frag_span);
                if finished {
                    let x = stw.borrow();
                    x.recv_req.complete(sim, Ok(x.total));
                    let send_req = x.send_req.clone();
                    let (r, s, total) = (x.r_rank, x.s_rank, x.total);
                    let span = x.span;
                    drop(x);
                    let acked = send_am(sim, r, s, 16, move |sim| {
                        send_req.complete(sim, Ok(total));
                        sim.trace.span_end(sim.now(), span);
                    });
                    if let Err(e) = acked {
                        pull_fail(sim, &stw, MpiError::Net(e));
                    }
                } else {
                    pull_pump(sim, stw);
                }
            },
        );
        st.borrow_mut().engine = Some(engine);
    } else {
        // The sm protocol only runs device-to-device, so a non-dense
        // receiver always gets a GPU engine; anything else is protocol
        // corruption, surfaced as a typed failure.
        st.borrow_mut().engine = Some(engine);
        pull_fail(
            sim,
            &st,
            MpiError::Faulted("sm sender-dense path requires a GPU unpacker".into()),
        );
    }
}

/// Receiver contiguous: the sender packs fragments into its ring and
/// bulk-DMAs each one (PUT-style) straight to its final offset in the
/// receiver's mapped buffer — no unpack stage, and the wire hop runs at
/// full P2P rate instead of strided kernel-over-IPC speed. Ring slots
/// recycle when their PUT completes.
fn receiver_dense(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    let dst = r.data_ptr();
    let (s_rank, r_rank) = (s.rank, r.rank);
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_SM_RECEIVER_DENSE,
        proto_track(s_rank, r_rank),
    );
    open_peer_buffer(sim, dst, total, move |sim, res| {
        if res.is_err() {
            renegotiate(sim, s, r, send_req, recv_req, span);
            return;
        }
        sm_connection(sim, s_rank, r_rank, move |sim, conn| {
            let conn = match conn {
                Ok(c) => c,
                Err(_) => {
                    renegotiate(sim, s, r, send_req, recv_req, span);
                    return;
                }
            };
            let (frag0, depth0) = {
                let c = conn.borrow();
                (c.frag_size, c.depth)
            };
            let (frag, depth) = tuned_shape(sim, &s, &r, PathClass::SmIpc, frag0, depth0);
            let packer = match make_engine(sim, &s, Direction::Pack) {
                Ok(e) => e,
                Err(err) => return fail_both(sim, &send_req, &recv_req, span, err),
            };
            let st = Rc::new(RefCell::new(PutState {
                conn,
                engine: Some(packer),
                dst,
                total,
                frag,
                depth,
                next_seq: 0,
                put_bytes: 0,
                inflight: 0,
                s_rank,
                r_rank,
                send_req,
                recv_req,
                span,
            }));
            put_pump(sim, st);
        });
    });
}

/// State for the receiver-dense push pipeline.
struct PutState {
    conn: Rc<RefCell<SmConn>>,
    engine: Option<SideEngine>,
    dst: memsim::Ptr,
    total: u64,
    /// Pipeline shape in use (auto-tuned; never exceeds the ring's
    /// allocated `frag_size`/`depth`).
    frag: u64,
    depth: usize,
    next_seq: u64,
    put_bytes: u64,
    inflight: usize,
    s_rank: usize,
    r_rank: usize,
    send_req: Request,
    recv_req: Request,
    span: SpanId,
}

fn put_pump(sim: &mut Sim<MpiWorld>, st: Rc<RefCell<PutState>>) {
    loop {
        let (seq, n, frag, slot_ptr) = {
            let mut x = st.borrow_mut();
            let frag = x.frag;
            let depth = x.depth;
            if x.next_seq * frag >= x.total || x.inflight >= depth {
                return;
            }
            let seq = x.next_seq;
            x.next_seq += 1;
            x.inflight += 1;
            let n = frag.min(x.total - seq * frag);
            let slot_ptr = x.conn.borrow().ring_slot(seq as usize);
            (seq, n, frag, slot_ptr)
        };
        let Some(slot_ptr) = slot_ptr else {
            return put_fail(
                sim,
                &st,
                MpiError::Faulted("sm ring slot out of range".into()),
            );
        };
        // Pack into the local ring slot, then PUT to the final offset.
        let frag_span = {
            let x = st.borrow();
            sim.trace.span_begin(
                sim.now(),
                names::CAT_MPIRT,
                names::SPAN_FRAG,
                ring_track(x.s_rank, x.r_rank),
            )
        };
        let Some(mut engine) = st.borrow_mut().engine.take() else {
            return put_fail(
                sim,
                &st,
                MpiError::Faulted("sm packer already in use".into()),
            );
        };
        if let SideEngine::Gpu(eng) = &mut engine {
            let stw = Rc::clone(&st);
            eng.process_fragment(
                sim,
                slot_ptr,
                n,
                |_| {},
                move |sim, _| {
                    let (window, copy_stream) = {
                        let x = stw.borrow();
                        (x.dst.add(seq * frag), sim.world.rank(x.s_rank).copy_stream)
                    };
                    let stw2 = Rc::clone(&stw);
                    memcpy(sim, copy_stream, slot_ptr, window, n, move |sim, _| {
                        let finished = {
                            let mut x = stw2.borrow_mut();
                            x.put_bytes += n;
                            x.inflight -= 1;
                            x.put_bytes >= x.total
                        };
                        {
                            let x = stw2.borrow();
                            sim.trace.count(
                                names::MPI_DELIVERED_BYTES,
                                x.s_rank as u32,
                                x.r_rank as u32,
                                n,
                            );
                        }
                        sim.trace.span_end(sim.now(), frag_span);
                        if finished {
                            let x = stw2.borrow();
                            x.send_req.complete(sim, Ok(x.total));
                            let rreq = x.recv_req.clone();
                            let (s_rank, r_rank, total) = (x.s_rank, x.r_rank, x.total);
                            let span = x.span;
                            drop(x);
                            let acked = send_am(sim, s_rank, r_rank, 16, move |sim| {
                                rreq.complete(sim, Ok(total));
                                sim.trace.span_end(sim.now(), span);
                            });
                            if let Err(e) = acked {
                                put_fail(sim, &stw2, MpiError::Net(e));
                            }
                        } else {
                            put_pump(sim, stw2);
                        }
                    });
                },
            );
            st.borrow_mut().engine = Some(engine);
        } else {
            // Device-to-device protocol: a non-dense sender always gets
            // a GPU engine; anything else is protocol corruption.
            st.borrow_mut().engine = Some(engine);
            return put_fail(
                sim,
                &st,
                MpiError::Faulted("sm receiver-dense path requires a GPU packer".into()),
            );
        }
    }
}

/// Both sides non-contiguous: the full Figure 4 pipeline.
struct FullState {
    conn: Rc<RefCell<SmConn>>,
    packer: Option<SideEngine>,
    unpacker: Option<SideEngine>,
    total: u64,
    frag: u64,
    nfrags: u64,
    next_seq: u64,
    free_slots: VecDeque<usize>,
    acked: u64,
    recvd: u64,
    s_rank: usize,
    r_rank: usize,
    send_req: Request,
    recv_req: Request,
    span: SpanId,
}

type FSt = Rc<RefCell<FullState>>;

fn full_pipeline(sim: &mut Sim<MpiWorld>, s: Side, r: Side, send_req: Request, recv_req: Request) {
    let total = s.total();
    let (s_rank, r_rank) = (s.rank, r.rank);
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_SM_PIPELINE,
        proto_track(s_rank, r_rank),
    );
    sm_connection(sim, s_rank, r_rank, move |sim, conn| {
        let conn = match conn {
            Ok(c) => c,
            Err(_) => {
                renegotiate(sim, s, r, send_req, recv_req, span);
                return;
            }
        };
        let (frag0, depth0) = {
            let c = conn.borrow();
            (c.frag_size, c.depth)
        };
        let (frag, depth) = tuned_shape(sim, &s, &r, PathClass::SmIpc, frag0, depth0);
        let engines = make_engine(sim, &s, Direction::Pack)
            .and_then(|p| make_engine(sim, &r, Direction::Unpack).map(|u| (p, u)));
        let (packer, unpacker) = match engines {
            Ok(pair) => pair,
            Err(err) => return fail_both(sim, &send_req, &recv_req, span, err),
        };
        let st = Rc::new(RefCell::new(FullState {
            conn,
            packer: Some(packer),
            unpacker: Some(unpacker),
            total,
            frag,
            nfrags: total.div_ceil(frag),
            next_seq: 0,
            free_slots: (0..depth).collect(),
            acked: 0,
            recvd: 0,
            s_rank,
            r_rank,
            send_req,
            recv_req,
            span,
        }));
        full_pump(sim, st);
    });
}

fn full_pump(sim: &mut Sim<MpiWorld>, st: FSt) {
    loop {
        let (slot, n, ring_slot) = {
            let mut x = st.borrow_mut();
            if x.next_seq >= x.nfrags {
                return;
            }
            let Some(slot) = x.free_slots.pop_front() else {
                return;
            };
            let seq = x.next_seq;
            x.next_seq += 1;
            let n = x.frag.min(x.total - seq * x.frag);
            let ring_slot = x.conn.borrow().ring_slot(slot);
            (slot, n, ring_slot)
        };
        let Some(ring_slot) = ring_slot else {
            return full_fail(
                sim,
                &st,
                MpiError::Faulted("sm ring slot out of range".into()),
            );
        };
        // Sender packs the fragment into the ring slot... The frag span
        // covers the slot's whole residency: claim here, recycle on ack.
        let frag_span = {
            let x = st.borrow();
            sim.trace.span_begin(
                sim.now(),
                names::CAT_MPIRT,
                names::SPAN_FRAG,
                ring_track(x.s_rank, x.r_rank),
            )
        };
        let Some(mut packer) = st.borrow_mut().packer.take() else {
            return full_fail(
                sim,
                &st,
                MpiError::Faulted("sm packer already in use".into()),
            );
        };
        if let SideEngine::Gpu(eng) = &mut packer {
            let stw = Rc::clone(&st);
            eng.process_fragment(
                sim,
                ring_slot,
                n,
                |_| {},
                move |sim, _| {
                    // ...then active-messages an unpack request (§4.1).
                    let (s_rank, r_rank) = {
                        let x = stw.borrow();
                        (x.s_rank, x.r_rank)
                    };
                    let stw2 = Rc::clone(&stw);
                    let sent = send_am(sim, s_rank, r_rank, 16, move |sim| {
                        full_recv(sim, stw2, slot, n, ring_slot, frag_span);
                    });
                    if let Err(e) = sent {
                        full_fail(sim, &stw, MpiError::Net(e));
                    }
                },
            );
            st.borrow_mut().packer = Some(packer);
        } else {
            // Device-to-device protocol: both engines are GPU engines;
            // anything else is protocol corruption.
            st.borrow_mut().packer = Some(packer);
            return full_fail(
                sim,
                &st,
                MpiError::Faulted("sm full pipeline requires a GPU packer".into()),
            );
        }
    }
}

fn full_recv(
    sim: &mut Sim<MpiWorld>,
    st: FSt,
    slot: usize,
    n: u64,
    ring_slot: memsim::Ptr,
    frag_span: SpanId,
) {
    let staging = { st.borrow().conn.borrow().staging_slot(slot) };
    match staging {
        Some(stage) => {
            let copy_stream = {
                let r_rank = st.borrow().r_rank;
                sim.world.rank(r_rank).copy_stream
            };
            let stw = Rc::clone(&st);
            memcpy(sim, copy_stream, ring_slot, stage, n, move |sim, _| {
                full_unpack(sim, stw, stage, slot, n, frag_span);
            });
        }
        None => full_unpack(sim, Rc::clone(&st), ring_slot, slot, n, frag_span),
    }
}

fn full_unpack(
    sim: &mut Sim<MpiWorld>,
    st: FSt,
    src: memsim::Ptr,
    slot: usize,
    n: u64,
    frag_span: SpanId,
) {
    let Some(mut unpacker) = st.borrow_mut().unpacker.take() else {
        return full_fail(
            sim,
            &st,
            MpiError::Faulted("sm unpacker already in use".into()),
        );
    };
    if let SideEngine::Gpu(eng) = &mut unpacker {
        let stw = Rc::clone(&st);
        eng.process_fragment(
            sim,
            src,
            n,
            |_| {},
            move |sim, _| {
                let (r_rank, s_rank, recv_finished) = {
                    let mut x = stw.borrow_mut();
                    x.recvd += n;
                    (x.r_rank, x.s_rank, x.recvd >= x.total)
                };
                sim.trace
                    .count(names::MPI_DELIVERED_BYTES, s_rank as u32, r_rank as u32, n);
                if recv_finished {
                    let x = stw.borrow();
                    x.recv_req.complete(sim, Ok(x.total));
                }
                // Ack the slot so the sender can reuse it.
                let stw2 = Rc::clone(&stw);
                let acked = send_am(sim, r_rank, s_rank, 16, move |sim| {
                    sim.trace.span_end(sim.now(), frag_span);
                    let send_finished = {
                        let mut x = stw2.borrow_mut();
                        x.acked += n;
                        x.free_slots.push_back(slot);
                        x.acked >= x.total
                    };
                    if send_finished {
                        let x = stw2.borrow();
                        x.send_req.complete(sim, Ok(x.total));
                        let span = x.span;
                        sim.trace.span_end(sim.now(), span);
                    } else {
                        full_pump(sim, stw2);
                    }
                });
                if let Err(e) = acked {
                    full_fail(sim, &stw, MpiError::Net(e));
                }
            },
        );
        st.borrow_mut().unpacker = Some(unpacker);
    } else {
        // Device-to-device protocol: both engines are GPU engines;
        // anything else is protocol corruption.
        st.borrow_mut().unpacker = Some(unpacker);
        full_fail(
            sim,
            &st,
            MpiError::Faulted("sm full pipeline requires a GPU unpacker".into()),
        );
    }
}
