//! The eager protocol for small messages.
//!
//! The sender packs into a transient host bounce buffer and ships the
//! bytes with the first (and only) active message; the send completes
//! as soon as the data is buffered. The receiver unpacks at match time
//! — possibly much later, from the unexpected queue.

use crate::cpupack::{CpuDir, CpuEngine};
use crate::matcher::{Envelope, RecvPosting};
use crate::request::{MpiError, Request};
use crate::world::MpiWorld;
use datatype::Signature;
use devengine::pack_async;
use gpusim::GpuWorld as _;
use memsim::Ptr;
use netsim::send_am;
use simcore::trace::names;
use simcore::{Sim, SpanId, Track};
use std::rc::Rc;

use super::Side;

/// Start an eager send. `bytes` must be at or below the eager limit.
pub fn send(sim: &mut Sim<MpiWorld>, s: Side, to: usize, tag: u64, send_req: Request) {
    let n = s.total();
    let bounce = match sim.world.mem().alloc(memsim::MemSpace::Host, n.max(1)) {
        Ok(p) => p,
        Err(e) => {
            send_req.complete(sim, Err(MpiError::Mem(e.to_string())));
            return;
        }
    };
    let sig = Signature::of(&s.ty, s.count);
    let from = s.rank;
    let span = sim.trace.span_begin(
        sim.now(),
        names::CAT_MPIRT,
        names::SPAN_EAGER,
        Track::Proto {
            from: from as u32,
            to: to as u32,
        },
    );

    let sreq = send_req.clone();
    let after_pack = move |sim: &mut Sim<MpiWorld>| {
        let starter_sig = sig;
        let shipped = send_am(sim, from, to, n, move |sim| {
            // Arrived: try to match.
            let env = Envelope {
                src: from,
                dst: to,
                tag,
                bytes: n,
                starter: Box::new(move |sim, posting| {
                    deliver(sim, posting, from, bounce, n, starter_sig, span);
                }),
            };
            if let Some((posting, starter)) = sim.world.mpi.matcher.arrive(env) {
                starter(sim, posting);
            }
        });
        match shipped {
            Ok(()) => send_req.complete(sim, Ok(n)),
            Err(e) => {
                // The transport error is the root cause; releasing a
                // pointer we allocated cannot fail independently of it.
                let _ = sim.world.mem().free(bounce);
                sim.trace.span_end(sim.now(), span);
                send_req.complete(sim, Err(MpiError::Net(e)));
            }
        }
    };

    // Pack into the bounce buffer.
    if n == 0 {
        sim.schedule_now(after_pack);
    } else if s.device() {
        let (stream, cache) = {
            let r = sim.world.rank(s.rank);
            (r.kernel_stream, Rc::clone(&r.dev_cache))
        };
        let cfg = sim.world.mpi.config.engine.clone();
        pack_async(
            sim,
            s.rank,
            stream,
            &s.ty,
            s.count,
            s.buf,
            bounce,
            cfg,
            Some(&cache),
            move |sim, _| after_pack(sim),
        );
    } else {
        let bw = sim.world.mpi.config.cpu_pack_bw;
        match CpuEngine::new(&s.ty, s.count, s.buf, CpuDir::Pack, s.rank, bw) {
            Ok(mut eng) => {
                eng.process_fragment(sim, bounce, u64::MAX, move |sim, _| after_pack(sim));
            }
            Err(e) => {
                let _ = sim.world.mem().free(bounce);
                sim.trace.span_end(sim.now(), span);
                sreq.complete(sim, Err(MpiError::Type(e)));
            }
        }
    }
}

/// Unpack a buffered eager message into the matched receive.
fn deliver(
    sim: &mut Sim<MpiWorld>,
    posting: RecvPosting,
    from: usize,
    bounce: Ptr,
    n: u64,
    sig: Signature,
    span: SpanId,
) {
    if let Err(e) = posting.signature().check_recv(&sig) {
        posting.request.complete(sim, Err(MpiError::Type(e)));
        // The signature error is the root cause; releasing a pointer we
        // allocated cannot fail independently of it.
        let _ = sim.world.mem().free(bounce);
        sim.trace.span_end(sim.now(), span);
        return;
    }
    let req = posting.request.clone();
    let to = posting.rank;
    let finish = move |sim: &mut Sim<MpiWorld>| {
        sim.trace
            .count(names::MPI_DELIVERED_BYTES, from as u32, to as u32, n);
        match sim.world.mem().free(bounce) {
            Ok(_) => req.complete(sim, Ok(n)),
            Err(e) => req.complete(sim, Err(MpiError::Mem(e.to_string()))),
        }
        sim.trace.span_end(sim.now(), span);
    };
    if n == 0 {
        finish(sim);
        return;
    }
    if posting.buf.space.is_device() {
        let (stream, cache) = {
            let r = sim.world.rank(posting.rank);
            (r.kernel_stream, Rc::clone(&r.dev_cache))
        };
        let cfg = sim.world.mpi.config.engine.clone();
        // The message may be shorter than the posted receive; a single
        // capped fragment unpacks exactly the incoming prefix.
        match devengine::FragmentEngine::new(
            sim,
            posting.rank,
            stream,
            &posting.ty,
            posting.count,
            posting.buf,
            devengine::Direction::Unpack,
            cfg,
            Some(&cache),
        ) {
            Ok(mut eng) => {
                eng.process_fragment(sim, bounce, n, |_| {}, move |sim, _| finish(sim));
            }
            Err(e) => fail_delivery(sim, &posting.request, bounce, span, MpiError::Type(e)),
        }
    } else {
        let bw = sim.world.mpi.config.cpu_pack_bw;
        match CpuEngine::new(
            &posting.ty,
            posting.count,
            posting.buf,
            CpuDir::Unpack,
            posting.rank,
            bw,
        ) {
            Ok(mut eng) => {
                eng.process_fragment(sim, bounce, n, move |sim, _| finish(sim));
            }
            Err(e) => fail_delivery(sim, &posting.request, bounce, span, MpiError::Type(e)),
        }
    }
}

/// Abort an eager delivery after matching: fail the receive, release the
/// bounce buffer, and close the span.
fn fail_delivery(sim: &mut Sim<MpiWorld>, req: &Request, bounce: Ptr, span: SpanId, err: MpiError) {
    req.complete_if_pending(sim, Err(err));
    let _ = sim.world.mem().free(bounce);
    sim.trace.span_end(sim.now(), span);
}
