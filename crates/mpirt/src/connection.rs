//! Per-pair connection state: fragment rings, IPC mappings, pinned host
//! buffers and their registrations.
//!
//! Connections are established **once** per rank pair and cached — the
//! core of the paper's "light-weight pipelined RDMA protocol ... which
//! only proposes a single one-time establishment of the RDMA connection
//! (and then caching the registration)".

use crate::world::MpiWorld;
use gpusim::ipc_open;
use gpusim::GpuWorld as _;
use memsim::{MemSpace, Ptr, Registration};
use netsim::ensure_registered;
use simcore::Sim;
use std::cell::RefCell;
use std::rc::Rc;

/// Shared-memory (CUDA IPC) connection: a fragment ring in the sender's
/// GPU memory, mapped into the receiver, plus an optional local staging
/// ring on the receiver.
pub struct SmConn {
    pub frag_size: u64,
    pub depth: usize,
    /// Slots in the sender's device memory (receiver has them mapped).
    pub ring: Vec<Ptr>,
    /// Receiver-local staging slots (None when staging is disabled).
    pub staging: Option<Vec<Ptr>>,
}

/// Copy-in/copy-out connection: pinned host rings on both sides and
/// device-side rings for the non-zero-copy staging path.
pub struct IbConn {
    pub frag_size: u64,
    pub depth: usize,
    pub send_host: Vec<Ptr>,
    pub recv_host: Vec<Ptr>,
    pub send_dev: Vec<Ptr>,
    pub recv_dev: Vec<Ptr>,
}

fn ring(sim: &mut Sim<MpiWorld>, space: MemSpace, frag: u64, depth: usize) -> Vec<Ptr> {
    // One allocation per slot keeps slots maximally aligned, matching
    // cudaMalloc'd fragment buffers.
    (0..depth)
        .map(|_| sim.world.mem().alloc(space, frag).expect("ring alloc"))
        .collect()
}

/// Get or lazily establish the SM connection `sender -> receiver`,
/// charging the one-time IPC mapping cost on first use.
pub fn sm_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    done: impl FnOnce(&mut Sim<MpiWorld>, Rc<RefCell<SmConn>>) + 'static,
) {
    if let Some(conn) = sim.world.mpi.sm_conns.get(&(sender, receiver)) {
        let conn = Rc::clone(conn);
        sim.schedule_now(move |sim| done(sim, conn));
        return;
    }
    let frag = sim.world.mpi.config.frag_size;
    let depth = sim.world.mpi.config.pipeline_depth;
    let s_gpu = sim.world.mpi.ranks[sender].gpu;
    let r_gpu = sim.world.mpi.ranks[receiver].gpu;
    let want_staging = sim.world.mpi.config.recv_local_staging;

    let ring_slots = ring(sim, MemSpace::Device(s_gpu), frag, depth);
    for &slot in &ring_slots {
        sim.world
            .mem()
            .registry
            .export_ipc(slot, frag)
            .expect("export ring slot");
    }
    let staging = if want_staging && r_gpu != s_gpu {
        Some(ring(sim, MemSpace::Device(r_gpu), frag, depth))
    } else {
        // Same-GPU "peers" read the ring directly; staging would be a
        // pointless extra copy.
        None
    };
    let conn = Rc::new(RefCell::new(SmConn {
        frag_size: frag,
        depth,
        ring: ring_slots,
        staging,
    }));
    sim.world
        .mpi
        .sm_conns
        .insert((sender, receiver), Rc::clone(&conn));

    // Receiver maps the exported ring: one ipc_open charge for the
    // connection (handles for all slots are opened in one exchange).
    let first = conn.borrow().ring[0];
    let handle = sim
        .world
        .mem()
        .registry
        .export_ipc(first, frag)
        .expect("handle");
    ipc_open(sim, handle, move |sim, res| {
        res.expect("ipc open");
        done(sim, conn);
    });
}

/// Open a peer's *user buffer* over IPC (for the contiguous fast paths
/// where one side reads or writes the other's buffer directly). The
/// mapping cost is charged only the first time a given allocation is
/// exported — repeated transfers of the same buffer reuse the mapping.
pub fn open_peer_buffer(
    sim: &mut Sim<MpiWorld>,
    buf: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<MpiWorld>) + 'static,
) {
    let already = sim
        .world
        .mem()
        .registry
        .is_registered(buf, Registration::IpcExport);
    if already {
        sim.schedule_now(done);
        return;
    }
    let handle = sim
        .world
        .mem()
        .registry
        .export_ipc(buf, len)
        .expect("export user buffer");
    ipc_open(sim, handle, move |sim, res| {
        res.expect("ipc open user buffer");
        done(sim);
    });
}

/// Get or lazily establish the copy-in/out connection `sender ->
/// receiver`: allocates pinned host rings (registered with the NIC) and
/// device staging rings, charging registration once per side.
pub fn ib_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    done: impl FnOnce(&mut Sim<MpiWorld>, Rc<RefCell<IbConn>>) + 'static,
) {
    if let Some(conn) = sim.world.mpi.ib_conns.get(&(sender, receiver)) {
        let conn = Rc::clone(conn);
        sim.schedule_now(move |sim| done(sim, conn));
        return;
    }
    let frag = sim.world.mpi.config.frag_size;
    let depth = sim.world.mpi.config.pipeline_depth;
    let s_gpu = sim.world.mpi.ranks[sender].gpu;
    let r_gpu = sim.world.mpi.ranks[receiver].gpu;

    let send_host = ring(sim, MemSpace::Host, frag, depth);
    let recv_host = ring(sim, MemSpace::Host, frag, depth);
    let send_dev = ring(sim, MemSpace::Device(s_gpu), frag, depth);
    let recv_dev = ring(sim, MemSpace::Device(r_gpu), frag, depth);

    // Pin + register host rings: RDMA for the NIC, zero-copy mapping
    // for the GPUs. Registration cost is charged once per side.
    for &p in &send_host {
        sim.world
            .mem()
            .registry
            .register(p, Registration::PinnedHost);
        sim.world
            .mem()
            .registry
            .register(p, Registration::ZeroCopy(s_gpu));
    }
    for &p in &recv_host {
        sim.world
            .mem()
            .registry
            .register(p, Registration::PinnedHost);
        sim.world
            .mem()
            .registry
            .register(p, Registration::ZeroCopy(r_gpu));
    }
    let conn = Rc::new(RefCell::new(IbConn {
        frag_size: frag,
        depth,
        send_host,
        recv_host,
        send_dev,
        recv_dev,
    }));
    sim.world
        .mpi
        .ib_conns
        .insert((sender, receiver), Rc::clone(&conn));

    let first_s = conn.borrow().send_host[0];
    let first_r = conn.borrow().recv_host[0];
    ensure_registered(sim, sender, first_s, move |sim| {
        ensure_registered(sim, receiver, first_r, move |sim| {
            done(sim, conn);
        });
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use simcore::SimTime;

    #[test]
    fn sm_connection_cached_after_first_use() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        sm_connection(&mut sim, 0, 1, |sim, conn| {
            let c = conn.borrow();
            assert_eq!(c.ring.len(), c.depth);
            assert!(c.staging.is_some());
            // First establishment pays the IPC open cost.
            assert!(sim.now() >= SimTime::from_micros(120));
        });
        sim.run();
        let t1 = sim.now();
        sm_connection(&mut sim, 0, 1, move |sim, _| {
            assert_eq!(sim.now(), t1, "cached connection is free");
        });
        sim.run();
    }

    #[test]
    fn same_gpu_connection_skips_staging() {
        let mut sim = Sim::new(MpiWorld::two_ranks_one_gpu(MpiConfig::default()));
        sm_connection(&mut sim, 0, 1, |_, conn| {
            assert!(conn.borrow().staging.is_none());
        });
        sim.run();
    }

    #[test]
    fn ib_connection_registers_rings() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        ib_connection(&mut sim, 0, 1, |sim, conn| {
            let c = conn.borrow();
            assert_eq!(c.send_host.len(), c.depth);
            let p = c.send_host[0];
            assert!(sim
                .world
                .mem()
                .registry
                .is_registered(p, Registration::Rdma));
            assert!(sim
                .world
                .mem()
                .registry
                .is_registered(p, Registration::PinnedHost));
        });
        sim.run();
        // Two registrations charged (one per side).
        assert!(sim.now() >= SimTime::from_micros(100));
    }

    #[test]
    fn peer_buffer_mapping_cached_per_allocation() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(memsim::GpuId(0)), 4096)
            .unwrap();
        open_peer_buffer(&mut sim, buf, 4096, |_| {});
        sim.run();
        let t1 = sim.now();
        assert!(t1 >= SimTime::from_micros(120));
        open_peer_buffer(&mut sim, buf, 4096, move |sim| {
            assert_eq!(sim.now(), t1, "second mapping is cached");
        });
        sim.run();
    }
}
