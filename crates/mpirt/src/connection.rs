//! Per-pair connection state: fragment rings, IPC mappings, pinned host
//! buffers and their registrations.
//!
//! Connections are established **once** per rank pair and cached — the
//! core of the paper's "light-weight pipelined RDMA protocol ... which
//! only proposes a single one-time establishment of the RDMA connection
//! (and then caching the registration)".
//!
//! Establishment is also where the runtime absorbs injected faults: a
//! transient IPC-open failure is retried under a capped exponential
//! backoff until [`HANDSHAKE_TIMEOUT`] virtual time has elapsed; a
//! permanent loss (or an exhausted handshake budget) tears the
//! half-built connection back down — freeing the ring so its invariants
//! never leak — flips the runtime IPC flag off, and surfaces a typed
//! error so the protocol layer can renegotiate the path.

use crate::request::MpiError;
use crate::world::MpiWorld;
use faultsim::{Backoff, FaultDecision, FaultOp};
use gpusim::GpuWorld as _;
use gpusim::{fault, ipc_open};
use memsim::{MemError, MemSpace, Ptr, Registration};
use netsim::ensure_registered;
use simcore::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Attempt cap for one connection handshake under transient faults.
pub const HANDSHAKE_RETRY_MAX: u32 = 5;

/// Virtual-time budget for one connection handshake: when injected
/// transient faults keep an establishment step failing past this long,
/// the runtime treats the capability as lost and renegotiates.
pub const HANDSHAKE_TIMEOUT: SimTime = SimTime(5_000_000);

/// Shared-memory (CUDA IPC) connection: a fragment ring in the sender's
/// GPU memory, mapped into the receiver, plus an optional local staging
/// ring on the receiver.
pub struct SmConn {
    pub frag_size: u64,
    pub depth: usize,
    /// Slots in the sender's device memory (receiver has them mapped).
    pub ring: Vec<Ptr>,
    /// Receiver-local staging slots (None when staging is disabled).
    pub staging: Option<Vec<Ptr>>,
}

/// Copy-in/copy-out connection: pinned host rings on both sides and
/// device-side rings for the non-zero-copy staging path.
pub struct IbConn {
    pub frag_size: u64,
    pub depth: usize,
    pub send_host: Vec<Ptr>,
    pub recv_host: Vec<Ptr>,
    pub send_dev: Vec<Ptr>,
    pub recv_dev: Vec<Ptr>,
}

impl SmConn {
    /// Ring slot for a sequence number, reduced modulo the pipeline
    /// depth. `None` means the connection bookkeeping is corrupted (the
    /// ring is always built with `depth` slots); callers surface that
    /// as a typed protocol failure instead of panicking.
    pub fn ring_slot(&self, seq: usize) -> Option<Ptr> {
        self.ring.get(seq % self.depth.max(1)).copied()
    }

    /// Receiver-local staging slot for a sequence number; `None` when
    /// staging is disabled (callers unpack straight from the ring).
    pub fn staging_slot(&self, seq: usize) -> Option<Ptr> {
        self.staging.as_ref()?.get(seq % self.depth.max(1)).copied()
    }
}

impl IbConn {
    /// Checked slot lookups for the four rings: every ring is built
    /// with `depth` slots and slots are recycled through a 0..depth
    /// free list, so `None` can only mean corrupted bookkeeping —
    /// which the protocols report as a typed failure.
    pub fn send_host_slot(&self, slot: usize) -> Option<Ptr> {
        self.send_host.get(slot).copied()
    }
    pub fn recv_host_slot(&self, slot: usize) -> Option<Ptr> {
        self.recv_host.get(slot).copied()
    }
    pub fn send_dev_slot(&self, slot: usize) -> Option<Ptr> {
        self.send_dev.get(slot).copied()
    }
    pub fn recv_dev_slot(&self, slot: usize) -> Option<Ptr> {
        self.recv_dev.get(slot).copied()
    }
}

fn ring(
    sim: &mut Sim<MpiWorld>,
    space: MemSpace,
    frag: u64,
    depth: usize,
) -> Result<Vec<Ptr>, MemError> {
    // One allocation per slot keeps slots maximally aligned, matching
    // cudaMalloc'd fragment buffers.
    let mut slots = Vec::with_capacity(depth);
    for _ in 0..depth {
        match sim.world.mem().alloc(space, frag) {
            Ok(p) => slots.push(p),
            Err(e) => {
                free_slots(sim, slots);
                return Err(e);
            }
        }
    }
    Ok(slots)
}

/// Release ring slots, ignoring bookkeeping failures: every pointer here
/// came from our own `alloc`, so a failed free cannot be the root cause
/// of whatever error is already being reported.
fn free_slots(sim: &mut Sim<MpiWorld>, slots: Vec<Ptr>) {
    for p in slots {
        let _ = sim.world.mem().free(p);
    }
}

/// Get or lazily establish the SM connection `sender -> receiver`,
/// charging the one-time IPC mapping cost on first use. `done` receives
/// `Err` when the IPC capability was permanently lost mid-handshake (the
/// caller is expected to renegotiate to copy-in/copy-out).
pub fn sm_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    done: impl FnOnce(&mut Sim<MpiWorld>, Result<Rc<RefCell<SmConn>>, MpiError>) + 'static,
) {
    if let Some(conn) = sim.world.mpi.sm_conns.get(&(sender, receiver)) {
        let conn = Rc::clone(conn);
        sim.schedule_now(move |sim| done(sim, Ok(conn)));
        return;
    }
    let frag = sim.world.mpi.config.frag_size;
    let depth = sim.world.mpi.config.pipeline_depth;
    let s_gpu = sim.world.rank(sender).gpu;
    let r_gpu = sim.world.rank(receiver).gpu;
    let want_staging = sim.world.mpi.config.recv_local_staging;

    let ring_slots = match ring(sim, MemSpace::Device(s_gpu), frag, depth) {
        Ok(v) => v,
        Err(e) => {
            let err = MpiError::Mem(e.to_string());
            sim.schedule_now(move |sim| done(sim, Err(err)));
            return;
        }
    };
    for &slot in &ring_slots {
        if let Err(e) = sim.world.mem().registry.export_ipc(slot, frag) {
            free_slots(sim, ring_slots);
            let err = MpiError::Mem(e.to_string());
            sim.schedule_now(move |sim| done(sim, Err(err)));
            return;
        }
    }
    let staging = if want_staging && r_gpu != s_gpu {
        match ring(sim, MemSpace::Device(r_gpu), frag, depth) {
            Ok(v) => Some(v),
            Err(e) => {
                free_slots(sim, ring_slots);
                let err = MpiError::Mem(e.to_string());
                sim.schedule_now(move |sim| done(sim, Err(err)));
                return;
            }
        }
    } else {
        // Same-GPU "peers" read the ring directly; staging would be a
        // pointless extra copy.
        None
    };
    let conn = Rc::new(RefCell::new(SmConn {
        frag_size: frag,
        depth,
        ring: ring_slots,
        staging,
    }));
    sim.world
        .mpi
        .sm_conns
        .insert((sender, receiver), Rc::clone(&conn));

    // Receiver maps the exported ring: one ipc_open charge for the
    // connection (handles for all slots are opened in one exchange).
    let first = conn.borrow().ring.first().copied();
    let Some(first) = first else {
        // Zero-depth ring: degenerate configuration, nothing to map.
        sim.schedule_now(move |sim| done(sim, Ok(conn)));
        return;
    };
    let handle = match sim.world.mem().registry.export_ipc(first, frag) {
        Ok(h) => h,
        Err(e) => {
            teardown_sm_connection(sim, sender, receiver, &conn);
            let err = MpiError::Mem(e.to_string());
            sim.schedule_now(move |sim| done(sim, Err(err)));
            return;
        }
    };
    let deadline = sim.now() + HANDSHAKE_TIMEOUT;
    sm_open_attempt(
        sim,
        sender,
        receiver,
        conn,
        handle,
        fault::default_backoff(),
        deadline,
        done,
    );
}

#[allow(clippy::too_many_arguments)]
fn sm_open_attempt(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    conn: Rc<RefCell<SmConn>>,
    handle: memsim::IpcHandle,
    mut backoff: Backoff,
    deadline: SimTime,
    done: impl FnOnce(&mut Sim<MpiWorld>, Result<Rc<RefCell<SmConn>>, MpiError>) + 'static,
) {
    ipc_open(sim, handle, move |sim, res| match res {
        Ok(_) => done(sim, Ok(conn)),
        Err(MemError::Faulted { transient }) => {
            let retriable =
                transient && sim.now() < deadline && backoff.attempts() < HANDSHAKE_RETRY_MAX;
            if retriable {
                fault::count_retry(sim, FaultOp::IpcOpen);
                let delay = backoff.next_delay();
                sim.schedule_in(delay, move |sim| {
                    sm_open_attempt(sim, sender, receiver, conn, handle, backoff, deadline, done);
                });
                return;
            }
            abandon_sm_connection(sim, sender, receiver, &conn);
            let why = if transient {
                format!(
                    "IPC handshake {sender} -> {receiver} timed out after {} attempts",
                    backoff.attempts()
                )
            } else {
                format!("IPC capability lost opening handle {sender} -> {receiver}")
            };
            done(sim, Err(MpiError::Faulted(why)));
        }
        Err(e) => {
            // Unexpected bookkeeping failure (not a fault injection):
            // tear the half-built connection down and surface it typed.
            abandon_sm_connection(sim, sender, receiver, &conn);
            done(sim, Err(MpiError::Mem(format!("ipc open: {e}"))));
        }
    });
}

/// Evict a half-established SM connection from the cache and free every
/// ring slot (which also drops the slots' IPC exports), so a later path
/// holds no dangling fragment-ring state.
fn teardown_sm_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    conn: &Rc<RefCell<SmConn>>,
) {
    sim.world.mpi.sm_conns.remove(&(sender, receiver));
    let (slots, staging) = {
        let mut c = conn.borrow_mut();
        (std::mem::take(&mut c.ring), c.staging.take())
    };
    free_slots(sim, slots);
    if let Some(st) = staging {
        free_slots(sim, st);
    }
}

/// Tear down a half-established SM connection *and* flip the runtime IPC
/// flag off: the capability itself is gone, so later same-node transfers
/// renegotiate straight to copy-in/copy-out.
fn abandon_sm_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    conn: &Rc<RefCell<SmConn>>,
) {
    teardown_sm_connection(sim, sender, receiver, conn);
    sim.world.mpi.ipc_runtime_ok = false;
}

/// Open a peer's *user buffer* over IPC (for the contiguous fast paths
/// where one side reads or writes the other's buffer directly). The
/// mapping cost is charged only the first time a given allocation is
/// exported — repeated transfers of the same buffer reuse the mapping.
/// `Err` means the IPC capability is gone; the export mark is dropped so
/// the mapping cache never claims the buffer is reachable.
pub fn open_peer_buffer(
    sim: &mut Sim<MpiWorld>,
    buf: Ptr,
    len: u64,
    done: impl FnOnce(&mut Sim<MpiWorld>, Result<(), MpiError>) + 'static,
) {
    let already = sim
        .world
        .mem()
        .registry
        .is_registered(buf, Registration::IpcExport);
    if already {
        sim.schedule_now(move |sim| done(sim, Ok(())));
        return;
    }
    let handle = match sim.world.mem().registry.export_ipc(buf, len) {
        Ok(h) => h,
        Err(e) => {
            let err = MpiError::Mem(e.to_string());
            sim.schedule_now(move |sim| done(sim, Err(err)));
            return;
        }
    };
    let deadline = sim.now() + HANDSHAKE_TIMEOUT;
    peer_open_attempt(sim, buf, handle, fault::default_backoff(), deadline, done);
}

fn peer_open_attempt(
    sim: &mut Sim<MpiWorld>,
    buf: Ptr,
    handle: memsim::IpcHandle,
    mut backoff: Backoff,
    deadline: SimTime,
    done: impl FnOnce(&mut Sim<MpiWorld>, Result<(), MpiError>) + 'static,
) {
    ipc_open(sim, handle, move |sim, res| match res {
        Ok(_) => done(sim, Ok(())),
        Err(MemError::Faulted { transient }) => {
            let retriable =
                transient && sim.now() < deadline && backoff.attempts() < HANDSHAKE_RETRY_MAX;
            if retriable {
                fault::count_retry(sim, FaultOp::IpcOpen);
                let delay = backoff.next_delay();
                sim.schedule_in(delay, move |sim| {
                    peer_open_attempt(sim, buf, handle, backoff, deadline, done);
                });
                return;
            }
            sim.world
                .mem()
                .registry
                .unregister(buf, Registration::IpcExport);
            sim.world.mpi.ipc_runtime_ok = false;
            done(
                sim,
                Err(MpiError::Faulted(format!(
                    "IPC capability lost mapping peer buffer {buf}"
                ))),
            );
        }
        Err(e) => {
            // Unexpected bookkeeping failure (not a fault injection):
            // drop the export mark and surface it typed.
            sim.world
                .mem()
                .registry
                .unregister(buf, Registration::IpcExport);
            done(sim, Err(MpiError::Mem(format!("ipc open: {e}"))));
        }
    });
}

/// Get or lazily establish the copy-in/out connection `sender ->
/// receiver`: allocates pinned host rings (registered with the NIC) and
/// device staging rings, charging registration once per side.
///
/// Mapping the pinned rings into the GPUs (zero copy) is its own fault
/// charge point (`FaultOp::PinnedRegister`): a permanent loss demotes
/// the runtime to the explicitly staged variant — the connection still
/// comes up, just without the zero-copy capability.
pub fn ib_connection(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    done: impl FnOnce(&mut Sim<MpiWorld>, Result<Rc<RefCell<IbConn>>, MpiError>) + 'static,
) {
    if let Some(conn) = sim.world.mpi.ib_conns.get(&(sender, receiver)) {
        let conn = Rc::clone(conn);
        sim.schedule_now(move |sim| done(sim, Ok(conn)));
        return;
    }
    let frag = sim.world.mpi.config.frag_size;
    let depth = sim.world.mpi.config.pipeline_depth;
    let s_gpu = sim.world.rank(sender).gpu;
    let r_gpu = sim.world.rank(receiver).gpu;

    // Allocate all four rings, unwinding the earlier ones if a later
    // one fails so establishment never leaks ring slots.
    let mut rings: Vec<Vec<Ptr>> = Vec::with_capacity(4);
    let spaces = [
        MemSpace::Host,
        MemSpace::Host,
        MemSpace::Device(s_gpu),
        MemSpace::Device(r_gpu),
    ];
    for space in spaces {
        match ring(sim, space, frag, depth) {
            Ok(v) => rings.push(v),
            Err(e) => {
                for r in rings {
                    free_slots(sim, r);
                }
                let err = MpiError::Mem(e.to_string());
                sim.schedule_now(move |sim| done(sim, Err(err)));
                return;
            }
        }
    }
    let mut rings = rings.into_iter();
    let (send_host, recv_host, send_dev, recv_dev) =
        match (rings.next(), rings.next(), rings.next(), rings.next()) {
            (Some(a), Some(b), Some(c), Some(d)) => (a, b, c, d),
            _ => {
                let err = MpiError::Faulted("ib ring allocation bookkeeping broke".into());
                sim.schedule_now(move |sim| done(sim, Err(err)));
                return;
            }
        };

    // Pin the host rings for the NIC. Registration cost is charged once
    // per side (below, through `ensure_registered`).
    for &p in send_host.iter().chain(recv_host.iter()) {
        sim.world
            .mem()
            .registry
            .register(p, Registration::PinnedHost);
    }
    let conn = Rc::new(RefCell::new(IbConn {
        frag_size: frag,
        depth,
        send_host,
        recv_host,
        send_dev,
        recv_dev,
    }));
    sim.world
        .mpi
        .ib_conns
        .insert((sender, receiver), Rc::clone(&conn));

    let deadline = sim.now() + HANDSHAKE_TIMEOUT;
    zero_copy_pin_attempt(
        sim,
        sender,
        receiver,
        Rc::clone(&conn),
        s_gpu,
        r_gpu,
        fault::default_backoff(),
        deadline,
        move |sim| {
            let firsts = {
                let c = conn.borrow();
                c.send_host
                    .first()
                    .copied()
                    .zip(c.recv_host.first().copied())
            };
            let Some((first_s, first_r)) = firsts else {
                // Zero-depth ring: degenerate configuration, nothing to
                // register.
                return done(sim, Ok(conn));
            };
            ensure_registered(sim, sender, first_s, move |sim| {
                ensure_registered(sim, receiver, first_r, move |sim| {
                    done(sim, Ok(conn));
                });
            });
        },
    );
}

/// Map the pinned host rings into both GPUs (CUDA zero copy), rolling
/// the `PinnedRegister` fault charge point. On permanent loss the marks
/// are skipped and the runtime zero-copy flag flips off; the staged path
/// needs no mapping, so establishment continues either way.
#[allow(clippy::too_many_arguments)]
fn zero_copy_pin_attempt(
    sim: &mut Sim<MpiWorld>,
    sender: usize,
    receiver: usize,
    conn: Rc<RefCell<IbConn>>,
    s_gpu: memsim::GpuId,
    r_gpu: memsim::GpuId,
    mut backoff: Backoff,
    deadline: SimTime,
    then: impl FnOnce(&mut Sim<MpiWorld>) + 'static,
) {
    let verdict = fault::fault_roll(sim, FaultOp::PinnedRegister);
    match verdict {
        FaultDecision::Ok => {
            let (send_host, recv_host) = {
                let c = conn.borrow();
                (c.send_host.clone(), c.recv_host.clone())
            };
            for &p in &send_host {
                sim.world
                    .mem()
                    .registry
                    .register(p, Registration::ZeroCopy(s_gpu));
            }
            for &p in &recv_host {
                sim.world
                    .mem()
                    .registry
                    .register(p, Registration::ZeroCopy(r_gpu));
            }
            then(sim);
        }
        FaultDecision::Transient
            if sim.now() < deadline && backoff.attempts() < HANDSHAKE_RETRY_MAX =>
        {
            fault::count_retry(sim, FaultOp::PinnedRegister);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                zero_copy_pin_attempt(
                    sim, sender, receiver, conn, s_gpu, r_gpu, backoff, deadline, then,
                );
            });
        }
        _ => {
            sim.world.mpi.zero_copy_runtime_ok = false;
            sim.trace.count(
                faultsim::counters::FALLBACK_EVENTS,
                sender as u32,
                receiver as u32,
                1,
            );
            then(sim);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use crate::world::MpiWorld;
    use faultsim::{FaultKind, FaultPlan};
    use simcore::SimTime;

    #[test]
    fn sm_connection_cached_after_first_use() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        sm_connection(&mut sim, 0, 1, |sim, conn| {
            let conn = conn.expect("no faults");
            let c = conn.borrow();
            assert_eq!(c.ring.len(), c.depth);
            assert!(c.staging.is_some());
            // First establishment pays the IPC open cost.
            assert!(sim.now() >= SimTime::from_micros(120));
        });
        sim.run();
        let t1 = sim.now();
        sm_connection(&mut sim, 0, 1, move |sim, _| {
            assert_eq!(sim.now(), t1, "cached connection is free");
        });
        sim.run();
    }

    #[test]
    fn same_gpu_connection_skips_staging() {
        let mut sim = Sim::new(MpiWorld::two_ranks_one_gpu(MpiConfig::default()));
        sm_connection(&mut sim, 0, 1, |_, conn| {
            assert!(conn.expect("no faults").borrow().staging.is_none());
        });
        sim.run();
    }

    #[test]
    fn ib_connection_registers_rings() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        ib_connection(&mut sim, 0, 1, |sim, conn| {
            let conn = conn.expect("no faults");
            let c = conn.borrow();
            assert_eq!(c.send_host.len(), c.depth);
            let p = c.send_host[0];
            assert!(sim
                .world
                .mem()
                .registry
                .is_registered(p, Registration::Rdma));
            assert!(sim
                .world
                .mem()
                .registry
                .is_registered(p, Registration::PinnedHost));
        });
        sim.run();
        // Two registrations charged (one per side).
        assert!(sim.now() >= SimTime::from_micros(100));
    }

    #[test]
    fn peer_buffer_mapping_cached_per_allocation() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(memsim::GpuId(0)), 4096)
            .unwrap();
        open_peer_buffer(&mut sim, buf, 4096, |_, res| res.expect("no faults"));
        sim.run();
        let t1 = sim.now();
        assert!(t1 >= SimTime::from_micros(120));
        open_peer_buffer(&mut sim, buf, 4096, move |sim, _| {
            assert_eq!(sim.now(), t1, "second mapping is cached");
        });
        sim.run();
    }

    #[test]
    fn transient_ipc_fault_retries_and_connects() {
        let mut plan = FaultPlan::empty().with_seed(11).with_rule(
            Some(FaultOp::IpcOpen),
            FaultKind::Transient,
            1.0,
        );
        plan.rules[0].max_injections = Some(2);
        let cfg = MpiConfig {
            fault_plan: plan,
            ..Default::default()
        };
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(cfg));
        sm_connection(&mut sim, 0, 1, |_, conn| {
            conn.expect("retries must eventually connect");
        });
        let end = sim.run();
        // Three ipc_open charges (120 µs each) plus two backoff delays.
        assert!(end >= SimTime::from_micros(360));
        assert!(
            sim.world.mpi.ipc_runtime_ok,
            "transient faults don't disable IPC"
        );
    }

    #[test]
    fn permanent_ipc_loss_tears_down_and_reports() {
        let cfg = MpiConfig {
            fault_plan: FaultPlan::empty().with_seed(3).with_rule(
                Some(FaultOp::IpcOpen),
                FaultKind::PermanentLoss,
                1.0,
            ),
            ..Default::default()
        };
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(cfg));
        let hit = std::rc::Rc::new(std::cell::RefCell::new(false));
        let h = std::rc::Rc::clone(&hit);
        sm_connection(&mut sim, 0, 1, move |sim, conn| {
            assert!(matches!(conn, Err(MpiError::Faulted(_))));
            assert!(!sim.world.mpi.ipc_runtime_ok);
            assert!(
                !sim.world.mpi.sm_conns.contains_key(&(0, 1)),
                "half-built connection must not stay cached"
            );
            *h.borrow_mut() = true;
        });
        sim.run();
        assert!(*hit.borrow());
    }

    #[test]
    fn permanent_pin_loss_demotes_zero_copy_but_connects() {
        let cfg = MpiConfig {
            fault_plan: FaultPlan::empty().with_seed(5).with_rule(
                Some(FaultOp::PinnedRegister),
                FaultKind::PermanentLoss,
                1.0,
            ),
            ..Default::default()
        };
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(cfg));
        ib_connection(&mut sim, 0, 1, |sim, conn| {
            let conn = conn.expect("connects without zero copy");
            let c = conn.borrow();
            assert!(!sim.world.mpi.zero_copy_runtime_ok);
            // The pinned rings are still NIC-registered, but not mapped
            // into the GPUs.
            assert!(!sim
                .world
                .mem()
                .registry
                .is_registered(c.send_host[0], Registration::ZeroCopy(memsim::GpuId(0))));
        });
        sim.run();
    }
}
