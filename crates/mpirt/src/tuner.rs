//! Protocol-level fragment-size / ring-depth auto-tuning.
//!
//! The rendezvous protocols pipeline a transfer through a ring of
//! `pipeline_depth` fragments of `frag_size` bytes, both hand-picked
//! constants in [`crate::MpiConfig`]. This module evaluates the same
//! per-fragment cost arithmetic the simulator charges — kernel launch +
//! DRAM/PCIe traffic for the conversion stages, link bandwidth +
//! latency for the wire, active-message latency for the per-fragment
//! control traffic — as a closed-form pipeline makespan
//! ([`devengine::tune::pipeline_makespan_ns`]) and lets
//! [`devengine::tune::pick_fragment`] choose a (fragment, depth) shape
//! per *(canonical sender layout, canonical receiver layout, message
//! size, path class)*.
//!
//! Two hard safety properties:
//!
//! * the static configuration always competes and wins ties (plus a 7%
//!   margin), so a tuned transfer is never predicted slower than the
//!   default — `ablation_optimizer` asserts the simulated times agree;
//! * tuned fragments only ever *shrink* and tuned depths never grow, so
//!   the rings allocated at connection establishment (at the configured
//!   shape) always fit the tuned schedule.
//!
//! Decisions are cached in [`crate::world::MpiState::tuned_shapes`] and
//! surfaced through the `optimizer.frag.*` trace counters.

use crate::protocol::Side;
use crate::world::MpiWorld;
use devengine::tune::{pick_fragment, Stage};
use devengine::OptimizerConfig;
use gpusim::GpuWorld as _;
use netsim::NetWorld as _;
use simcore::trace::names;
use simcore::Sim;

/// Which transfer pipeline a rendezvous took.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathClass {
    /// Same-node CUDA IPC fragment ring (`protocol::sm`, §4.1).
    SmIpc,
    /// Copy-in/copy-out with explicit `cudaMemcpy` staging hops
    /// (`protocol::copyio`, §4.2).
    CopyInOut,
    /// Copy-in/copy-out with zero-copy mapped host fragments: the
    /// device↔host hop rides inside the pack/unpack kernels.
    ZeroCopy,
}

/// One cached tuning decision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TuneKey {
    /// GPU architecture the model constants came from. The cache lives
    /// on a single-arch `MpiState` today, but keying on the arch keeps
    /// cached decisions honest if states are ever shared or compared
    /// across worlds (and makes per-arch divergence directly testable).
    pub arch: &'static str,
    /// Structural fingerprint of the sender layout (canonical form when
    /// canonicalization is on, so equivalent trees share a decision).
    pub s_layout: u64,
    /// Structural fingerprint of the receiver layout.
    pub r_layout: u64,
    /// Total message size in bytes.
    pub total: u64,
    /// Protocol pipeline the transfer takes.
    pub class: PathClass,
}

fn side_fingerprint(side: &Side, opt: &OptimizerConfig) -> u64 {
    let ty = if opt.canonicalize {
        side.ty.canonical()
    } else {
        side.ty.clone()
    };
    let mut fp = ty.layout_fingerprint();
    // Fold in count, density and placement: the same element layout
    // tunes differently on host vs device, dense vs strided.
    for word in [side.count, side.dense() as u64, side.device() as u64] {
        fp = (fp ^ word).wrapping_mul(0x100_0000_01b3);
    }
    fp
}

/// Calibration constants gathered once per decision from the same specs
/// the simulator charges.
struct Model {
    /// Effective pack-kernel DRAM bandwidth, ns per traffic byte.
    dram_nspb: f64,
    /// ns per byte over PCIe for kernels touching mapped host memory.
    pcie_host_nspb: f64,
    /// ns per byte over PCIe P2P for kernels touching peer GPU memory
    /// through an IPC mapping (derated per §5.2.1).
    peer_nspb: f64,
    /// ns per byte of a bulk P2P `cudaMemcpy` (staging GET/PUT).
    p2p_copy_nspb: f64,
    /// ns per byte of a D2H/H2D staging `cudaMemcpy`.
    pcie_copy_nspb: f64,
    /// Fixed cost of any `cudaMemcpy` (driver + PCIe transaction).
    memcpy_fixed_ns: f64,
    /// Kernel launch overhead.
    launch_ns: f64,
    /// PCIe transaction latency (added once per off-GPU kernel).
    pcie_lat_ns: f64,
    /// Descriptor bytes streamed per CUDA-DEV work unit.
    desc_bytes: f64,
    /// CPU preparation: fixed per batch / per unit produced.
    prep_call_ns: f64,
    prep_per_unit_ns: f64,
    /// Host CPU pack/unpack path, ns per byte.
    cpu_pack_nspb: f64,
    /// Data link between the ranks: ns per byte + fixed latency.
    wire_nspb: f64,
    wire_lat_ns: f64,
    /// One active message on the control link (per-fragment protocol
    /// traffic: unpack requests, slot acks).
    am_ns: f64,
    /// Engine work-unit size (for descriptor-path shatter estimates).
    unit_size: u64,
}

fn nspb(bw: simcore::Bandwidth) -> f64 {
    1e9 / bw.bytes_per_sec()
}

fn gather(sim: &mut Sim<MpiWorld>, s_rank: usize, r_rank: usize) -> Model {
    let (dram_nspb, launch_ns, memcpy_lat_ns, desc_bytes) = {
        let sys = sim.world.gpus_ref();
        let g = sys.gpu(sim.world.mpi.ranks[s_rank].gpu);
        let eff = g
            .effective_traffic_bw()
            .derated(g.spec.pack_kernel_efficiency);
        (
            nspb(eff),
            g.spec.launch_overhead.as_nanos() as f64,
            g.spec.memcpy_latency.as_nanos() as f64,
            g.spec.descriptor_bytes as f64,
        )
    };
    let (pcie_host_nspb, peer_nspb, p2p_copy_nspb, pcie_copy_nspb, pcie_lat_ns) = {
        let topo = &sim.world.gpus_ref().topo;
        (
            nspb(topo.pcie_h2d),
            nspb(topo.pcie_p2p.derated(topo.peer_kernel_efficiency)),
            nspb(topo.pcie_p2p),
            nspb(topo.pcie_d2h),
            topo.pcie_latency.as_nanos() as f64,
        )
    };
    let (wire_nspb, wire_lat_ns, am_ns) = {
        let ch = sim.world.net().channel_mut(s_rank, r_rank);
        (
            nspb(ch.data.bandwidth),
            ch.data.latency.as_nanos() as f64,
            ch.ctrl.latency.as_nanos() as f64 + ch.ctrl.bandwidth.time_for(16).as_nanos() as f64,
        )
    };
    let cfg = &sim.world.mpi.config;
    Model {
        dram_nspb,
        pcie_host_nspb,
        peer_nspb,
        p2p_copy_nspb,
        pcie_copy_nspb,
        memcpy_fixed_ns: memcpy_lat_ns + pcie_lat_ns,
        launch_ns,
        pcie_lat_ns,
        desc_bytes,
        prep_call_ns: cfg.engine.prep_call.as_nanos() as f64,
        prep_per_unit_ns: cfg.engine.prep_per_unit.as_nanos() as f64,
        cpu_pack_nspb: nspb(cfg.cpu_pack_bw),
        wire_nspb,
        wire_lat_ns,
        am_ns,
        unit_size: cfg.engine.unit_size,
    }
}

/// Where the non-typed side of a conversion kernel lives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum KernelFar {
    /// Fragment buffer in the executing GPU's own DRAM.
    LocalDevice,
    /// Zero-copy mapped host fragment (PCIe per payload byte).
    MappedHost,
    /// Peer GPU's ring slot through the IPC mapping.
    PeerDevice,
}

/// Cost stage of one GPU pack/unpack kernel over a fragment, for a
/// non-dense `side` whose typed buffer is local to the executing GPU.
fn kernel_stage(m: &Model, side: &Side, opt: &OptimizerConfig, far: KernelFar) -> Stage {
    let total = side.total().max(1);
    let ty = if opt.canonicalize {
        side.ty.canonical()
    } else {
        side.ty.clone()
    };
    let arithmetic = opt.vector_dispatch
        && (ty.vector_shape().is_some()
            || ty.strided2d_shape().is_some()
            || ty.is_contiguous(side.count));
    let segments = ty.segment_estimate().saturating_mul(side.count).max(1) as f64;
    let units = if arithmetic {
        // The specialized kernels still emit a unit per contiguous run
        // (prep-charged) but stream no descriptors.
        segments
    } else if opt.coalesce {
        segments
    } else {
        segments + total as f64 / m.unit_size as f64
    };
    let units_per_byte = units / total as f64;
    let desc_nspb = if arithmetic {
        0.0
    } else {
        units_per_byte * m.desc_bytes * m.dram_nspb
    };
    // Traffic per payload byte: each LocalDevice side touches ~its
    // payload in 128-byte lines; the off-GPU side rides PCIe and the
    // hardware overlaps the two (kernel time is their max).
    let local_sides = match far {
        KernelFar::LocalDevice => 2.0,
        KernelFar::MappedHost | KernelFar::PeerDevice => 1.0,
    };
    let dram = local_sides * m.dram_nspb + desc_nspb;
    let pcie = match far {
        KernelFar::LocalDevice => 0.0,
        KernelFar::MappedHost => m.pcie_host_nspb,
        KernelFar::PeerDevice => m.peer_nspb,
    };
    let fixed_pcie = if far == KernelFar::LocalDevice {
        0.0
    } else {
        m.pcie_lat_ns
    };
    Stage {
        fixed_ns: m.launch_ns + m.prep_call_ns + fixed_pcie,
        ns_per_byte: dram.max(pcie) + m.prep_per_unit_ns * units_per_byte,
    }
}

/// Per-fragment stage list for one transfer down a given path. Dense
/// sides contribute their staging copies only; non-dense sides their
/// conversion engines.
fn path_stages(sim: &mut Sim<MpiWorld>, s: &Side, r: &Side, class: PathClass) -> Vec<Stage> {
    let m = gather(sim, s.rank, r.rank);
    let opt = sim.world.mpi.config.engine.optimizer;
    let mut stages = Vec::new();
    let copy = |nspb: f64| Stage {
        fixed_ns: m.memcpy_fixed_ns,
        ns_per_byte: nspb,
    };
    let am = Stage {
        fixed_ns: m.am_ns,
        ns_per_byte: 0.0,
    };
    match class {
        PathClass::SmIpc => {
            let s_gpu = sim.world.mpi.ranks[s.rank].gpu;
            let r_gpu = sim.world.mpi.ranks[r.rank].gpu;
            let staged = sim.world.mpi.config.recv_local_staging && s_gpu != r_gpu;
            if !s.dense() {
                // Pack into the sender-local ring slot.
                stages.push(kernel_stage(&m, s, &opt, KernelFar::LocalDevice));
            }
            if staged {
                // Receiver GETs the fragment into local staging.
                stages.push(copy(m.p2p_copy_nspb));
            }
            if !r.dense() {
                let far = if staged || s_gpu == r_gpu {
                    KernelFar::LocalDevice
                } else {
                    KernelFar::PeerDevice
                };
                stages.push(kernel_stage(&m, r, &opt, far));
            } else if !s.dense() {
                // receiver-dense: the packed fragment is PUT to its
                // final window at bulk P2P rate.
                stages.push(copy(m.p2p_copy_nspb));
            }
            stages.push(am);
        }
        PathClass::CopyInOut | PathClass::ZeroCopy => {
            let zero = class == PathClass::ZeroCopy;
            // Sender conversion into the host fragment.
            match (s.dense(), s.device()) {
                (false, true) if zero => {
                    stages.push(kernel_stage(&m, s, &opt, KernelFar::MappedHost));
                }
                (false, true) => {
                    stages.push(kernel_stage(&m, s, &opt, KernelFar::LocalDevice));
                    stages.push(copy(m.pcie_copy_nspb));
                }
                (false, false) => stages.push(Stage {
                    fixed_ns: 0.0,
                    ns_per_byte: m.cpu_pack_nspb,
                }),
                (true, true) => stages.push(copy(m.pcie_copy_nspb)),
                (true, false) => {} // registered host data wires directly
            }
            stages.push(Stage {
                fixed_ns: m.wire_lat_ns,
                ns_per_byte: m.wire_nspb,
            });
            // Receiver consumption out of the arrived fragment.
            match (r.dense(), r.device()) {
                (false, true) if zero => {
                    stages.push(kernel_stage(&m, r, &opt, KernelFar::MappedHost));
                }
                (false, true) => {
                    stages.push(copy(m.pcie_copy_nspb));
                    stages.push(kernel_stage(&m, r, &opt, KernelFar::LocalDevice));
                }
                (false, false) => stages.push(Stage {
                    fixed_ns: 0.0,
                    ns_per_byte: m.cpu_pack_nspb,
                }),
                (true, true) => stages.push(copy(m.pcie_copy_nspb)),
                (true, false) => {} // the wire landed in the user buffer
            }
            stages.push(am);
        }
    }
    stages
}

/// Pick the pipeline shape for one transfer: the configured
/// `(frag0, depth0)` unless the auto-tuner is enabled *and* the cost
/// model predicts a ≥7% win for a smaller fragment / shallower ring.
/// Decisions are cached per (layouts, size, path) and counted in the
/// trace (`optimizer.frag.tuned` / `.default` / `.cache.hit`).
pub fn tuned_shape(
    sim: &mut Sim<MpiWorld>,
    s: &Side,
    r: &Side,
    class: PathClass,
    frag0: u64,
    depth0: usize,
) -> (u64, usize) {
    let opt = sim.world.mpi.config.engine.optimizer;
    if !opt.autotune {
        return (frag0, depth0);
    }
    let total = s.total();
    let key = TuneKey {
        arch: sim.world.gpus_ref().arch.name,
        s_layout: side_fingerprint(s, &opt),
        r_layout: side_fingerprint(r, &opt),
        total,
        class,
    };
    if let Some(&shape) = sim.world.mpi.tuned_shapes.get(&key) {
        sim.trace.count(
            names::OPTIMIZER_FRAG_CACHE_HIT,
            s.rank as u32,
            r.rank as u32,
            1,
        );
        return shape;
    }
    let stages = path_stages(sim, s, r, class);
    let shape = pick_fragment(total, frag0, depth0, &stages);
    sim.world.mpi.tuned_shapes.insert(key, shape);
    let counter = if shape == (frag0, depth0) {
        names::OPTIMIZER_FRAG_DEFAULT
    } else {
        names::OPTIMIZER_FRAG_TUNED
    };
    sim.trace.count(counter, s.rank as u32, r.rank as u32, 1);
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use datatype::DataType;
    use devengine::EngineConfig;
    use memsim::MemSpace;

    fn world(opt: OptimizerConfig) -> Sim<MpiWorld> {
        let config = MpiConfig {
            engine: EngineConfig {
                optimizer: opt,
                ..EngineConfig::default()
            },
            ..MpiConfig::default()
        };
        Sim::new(MpiWorld::two_ranks_two_gpus(config))
    }

    fn strided_side(sim: &mut Sim<MpiWorld>, rank: usize) -> Side {
        let ty = DataType::vector(4096, 2, 4, &DataType::double())
            .unwrap()
            .commit();
        let gpu = sim.world.mpi.ranks[rank].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), ty.extent() as u64)
            .unwrap();
        Side {
            rank,
            ty,
            count: 1,
            buf,
        }
    }

    #[test]
    fn disabled_tuner_returns_the_configured_shape() {
        let mut sim = world(OptimizerConfig::disabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        let shape = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert_eq!(shape, (512 << 10, 4));
        assert!(sim.world.mpi.tuned_shapes.is_empty());
    }

    #[test]
    fn tuned_fragment_never_grows_and_decisions_are_cached() {
        let mut sim = world(OptimizerConfig::enabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        let (f, d) = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert!(f <= 512 << 10, "fragments must fit the allocated ring");
        assert!(d <= 4, "depth must fit the allocated ring");
        assert!(f >= devengine::tune::MIN_FRAG);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 1);
        let again = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert_eq!(again, (f, d));
        assert_eq!(sim.trace.counter("optimizer.frag.cache.hit"), 1);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 1);
    }

    #[test]
    fn path_classes_tune_independently() {
        let mut sim = world(OptimizerConfig::enabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        tuned_shape(&mut sim, &s, &r, PathClass::ZeroCopy, 512 << 10, 4);
        tuned_shape(&mut sim, &s, &r, PathClass::CopyInOut, 512 << 10, 4);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 3);
    }
}
