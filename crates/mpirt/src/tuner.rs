//! Protocol-level fragment-size / ring-depth auto-tuning.
//!
//! The rendezvous protocols pipeline a transfer through a ring of
//! `pipeline_depth` fragments of `frag_size` bytes, both hand-picked
//! constants in [`crate::MpiConfig`]. This module evaluates the same
//! per-fragment cost arithmetic the simulator charges — kernel launch +
//! DRAM/PCIe traffic for the conversion stages, link bandwidth +
//! latency for the wire, active-message latency for the per-fragment
//! control traffic — as a closed-form pipeline makespan
//! ([`devengine::tune::pipeline_makespan_ns`]) and lets
//! [`devengine::tune::pick_fragment`] choose a (fragment, depth) shape
//! per *(canonical sender layout, canonical receiver layout, message
//! size, path class)*.
//!
//! Two hard safety properties:
//!
//! * the static configuration always competes and wins ties (plus a 7%
//!   margin), so a tuned transfer is never predicted slower than the
//!   default — `ablation_optimizer` asserts the simulated times agree;
//! * tuned fragments only ever *shrink* and tuned depths never grow, so
//!   the rings allocated at connection establishment (at the configured
//!   shape) always fit the tuned schedule.
//!
//! Decisions are cached in [`crate::world::MpiState::tuned_shapes`] and
//! surfaced through the `optimizer.frag.*` trace counters.

use crate::protocol::Side;
use crate::world::MpiWorld;
use devengine::tune::{pick_fragment, pipeline_makespan_ns, Stage};
use devengine::OptimizerConfig;
use gpusim::GpuWorld as _;
use netsim::NetWorld as _;
use simcore::trace::names;
use simcore::Sim;

/// Which transfer pipeline a rendezvous took.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum PathClass {
    /// Same-node CUDA IPC fragment ring (`protocol::sm`, §4.1).
    SmIpc,
    /// Copy-in/copy-out with explicit `cudaMemcpy` staging hops
    /// (`protocol::copyio`, §4.2).
    CopyInOut,
    /// Copy-in/copy-out with zero-copy mapped host fragments: the
    /// device↔host hop rides inside the pack/unpack kernels.
    ZeroCopy,
    /// Cross-node NIC DEV-executor path: the NIC packet processor runs
    /// the merged gather/scatter program in-line with the wire stream —
    /// no GPU pack kernel, no packed staging (`protocol::offload`).
    NicOffload,
    /// Cross-node stream-triggered path: the transfer is captured once
    /// into a GPU stream-op graph and replayed per iteration with zero
    /// CPU events on the critical path (`protocol::offload`).
    StreamTriggered,
}

/// One cached tuning decision.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct TuneKey {
    /// GPU architecture the model constants came from. The cache lives
    /// on a single-arch `MpiState` today, but keying on the arch keeps
    /// cached decisions honest if states are ever shared or compared
    /// across worlds (and makes per-arch divergence directly testable).
    pub arch: &'static str,
    /// Structural fingerprint of the sender layout (canonical form when
    /// canonicalization is on, so equivalent trees share a decision).
    pub s_layout: u64,
    /// Structural fingerprint of the receiver layout.
    pub r_layout: u64,
    /// Total message size in bytes.
    pub total: u64,
    /// Protocol pipeline the transfer takes.
    pub class: PathClass,
}

fn side_fingerprint(side: &Side, opt: &OptimizerConfig) -> u64 {
    let ty = if opt.canonicalize {
        side.ty.canonical()
    } else {
        side.ty.clone()
    };
    let mut fp = ty.layout_fingerprint();
    // Fold in count, density and placement: the same element layout
    // tunes differently on host vs device, dense vs strided.
    for word in [side.count, side.dense() as u64, side.device() as u64] {
        fp = (fp ^ word).wrapping_mul(0x100_0000_01b3);
    }
    fp
}

/// Cache key for per-shape offload state (compiled NIC programs,
/// captured stream graphs): the same canonical-layout fingerprinting as
/// tuning decisions, so equivalent datatype trees share one program.
pub(crate) fn cache_key(sim: &Sim<MpiWorld>, s: &Side, r: &Side, class: PathClass) -> TuneKey {
    let opt = sim.world.mpi.config.engine.optimizer;
    TuneKey {
        arch: sim.world.gpus_ref().arch.name,
        s_layout: side_fingerprint(s, &opt),
        r_layout: side_fingerprint(r, &opt),
        total: s.total(),
        class,
    }
}

/// Calibration constants gathered once per decision from the same specs
/// the simulator charges.
struct Model {
    /// Effective pack-kernel DRAM bandwidth, ns per traffic byte.
    dram_nspb: f64,
    /// ns per byte over PCIe for kernels touching mapped host memory.
    pcie_host_nspb: f64,
    /// ns per byte over PCIe P2P for kernels touching peer GPU memory
    /// through an IPC mapping (derated per §5.2.1).
    peer_nspb: f64,
    /// ns per byte of a bulk P2P `cudaMemcpy` (staging GET/PUT).
    p2p_copy_nspb: f64,
    /// ns per byte of a D2H/H2D staging `cudaMemcpy`.
    pcie_copy_nspb: f64,
    /// Fixed cost of any `cudaMemcpy` (driver + PCIe transaction).
    memcpy_fixed_ns: f64,
    /// Kernel launch overhead.
    launch_ns: f64,
    /// PCIe transaction latency (added once per off-GPU kernel).
    pcie_lat_ns: f64,
    /// Descriptor bytes streamed per CUDA-DEV work unit.
    desc_bytes: f64,
    /// CPU preparation: fixed per batch / per unit produced.
    prep_call_ns: f64,
    prep_per_unit_ns: f64,
    /// Host CPU pack/unpack path, ns per byte.
    cpu_pack_nspb: f64,
    /// Data link between the ranks: ns per byte + fixed latency.
    wire_nspb: f64,
    wire_lat_ns: f64,
    /// One active message on the control link (per-fragment protocol
    /// traffic: unpack requests, slot acks).
    am_ns: f64,
    /// NIC packet processor: per-descriptor issue on the handler cores
    /// and the gather/scatter DMA streaming rate (ns per byte).
    nic_desc_issue_ns: f64,
    nic_dma_nspb: f64,
    /// Stream-triggered replay: doorbell MMIO latency and per-op re-arm
    /// issue on the stream front-end.
    stream_doorbell_ns: f64,
    stream_op_issue_ns: f64,
    /// Engine work-unit size (for descriptor-path shatter estimates).
    unit_size: u64,
    /// DRAM transaction granularity and warp chunk (bytes): the
    /// simulator charges kernel traffic in whole transactions per warp
    /// chunk (`gpusim::kernel::access_lines`), so the model must too.
    txn_bytes: f64,
    warp_chunk: f64,
}

fn nspb(bw: simcore::Bandwidth) -> f64 {
    1e9 / bw.bytes_per_sec()
}

fn gather(sim: &mut Sim<MpiWorld>, s_rank: usize, r_rank: usize) -> Model {
    let (dram_nspb, launch_ns, memcpy_lat_ns, desc_bytes, txn_bytes, warp_chunk) = {
        let sys = sim.world.gpus_ref();
        let g = sys.gpu(sim.world.mpi.ranks[s_rank].gpu);
        let eff = g
            .effective_traffic_bw()
            .derated(g.spec.pack_kernel_efficiency);
        (
            nspb(eff),
            g.spec.launch_overhead.as_nanos() as f64,
            g.spec.memcpy_latency.as_nanos() as f64,
            g.spec.descriptor_bytes as f64,
            g.spec.transaction_bytes as f64,
            g.spec.warp_chunk() as f64,
        )
    };
    let (pcie_host_nspb, peer_nspb, p2p_copy_nspb, pcie_copy_nspb, pcie_lat_ns) = {
        let topo = &sim.world.gpus_ref().topo;
        (
            nspb(topo.pcie_h2d),
            nspb(topo.pcie_p2p.derated(topo.peer_kernel_efficiency)),
            nspb(topo.pcie_p2p),
            nspb(topo.pcie_d2h),
            topo.pcie_latency.as_nanos() as f64,
        )
    };
    let (nic_desc_issue_ns, nic_dma_nspb, stream_doorbell_ns, stream_op_issue_ns) = {
        let topo = &sim.world.gpus_ref().topo;
        (
            topo.nic_desc_issue.as_nanos() as f64,
            nspb(topo.nic_dma_bw),
            topo.stream_doorbell_lat.as_nanos() as f64,
            topo.stream_op_issue.as_nanos() as f64,
        )
    };
    let (wire_nspb, wire_lat_ns, am_ns) = {
        let ch = sim.world.net().channel_mut(s_rank, r_rank);
        (
            nspb(ch.data.bandwidth),
            ch.data.latency.as_nanos() as f64,
            ch.ctrl.latency.as_nanos() as f64 + ch.ctrl.bandwidth.time_for(16).as_nanos() as f64,
        )
    };
    let cfg = &sim.world.mpi.config;
    Model {
        dram_nspb,
        pcie_host_nspb,
        peer_nspb,
        p2p_copy_nspb,
        pcie_copy_nspb,
        memcpy_fixed_ns: memcpy_lat_ns + pcie_lat_ns,
        launch_ns,
        pcie_lat_ns,
        desc_bytes,
        prep_call_ns: cfg.engine.prep_call.as_nanos() as f64,
        prep_per_unit_ns: cfg.engine.prep_per_unit.as_nanos() as f64,
        cpu_pack_nspb: nspb(cfg.cpu_pack_bw),
        wire_nspb,
        wire_lat_ns,
        am_ns,
        nic_desc_issue_ns,
        nic_dma_nspb,
        stream_doorbell_ns,
        stream_op_issue_ns,
        unit_size: cfg.engine.unit_size,
        txn_bytes,
        warp_chunk,
    }
}

/// Where the non-typed side of a conversion kernel lives.
#[derive(Clone, Copy, PartialEq, Eq)]
enum KernelFar {
    /// Fragment buffer in the executing GPU's own DRAM.
    LocalDevice,
    /// Zero-copy mapped host fragment (PCIe per payload byte).
    MappedHost,
    /// Peer GPU's ring slot through the IPC mapping.
    PeerDevice,
}

/// Cost stage of one GPU pack/unpack kernel over a fragment, for a
/// non-dense `side` whose typed buffer is local to the executing GPU.
fn kernel_stage(m: &Model, side: &Side, opt: &OptimizerConfig, far: KernelFar) -> Stage {
    let total = side.total().max(1);
    let ty = if opt.canonicalize {
        side.ty.canonical()
    } else {
        side.ty.clone()
    };
    let arithmetic = opt.vector_dispatch
        && (ty.vector_shape().is_some()
            || ty.strided2d_shape().is_some()
            || ty.is_contiguous(side.count));
    let segments = ty.segment_estimate().saturating_mul(side.count).max(1) as f64;
    let units = if arithmetic {
        // The specialized kernels still emit a unit per contiguous run
        // (prep-charged) but stream no descriptors.
        segments
    } else if opt.coalesce {
        segments
    } else {
        segments + total as f64 / m.unit_size as f64
    };
    let units_per_byte = units / total as f64;
    let desc_nspb = if arithmetic {
        0.0
    } else {
        units_per_byte * m.desc_bytes * m.dram_nspb
    };
    // Traffic per payload byte: the simulator charges each local side
    // `access_lines(off, len) * txn` bytes (`gpusim::kernel`), so a
    // misaligned scattered run costs one extra transaction per warp
    // chunk plus a partial line per run, and even the dense fragment
    // side pays at least one whole transaction per unit. Mirror that
    // here so the model and the simulator agree on what a conversion
    // kernel's DRAM traffic costs; the off-GPU side rides PCIe and the
    // hardware overlaps the two (kernel time is their max).
    let run = (total as f64 / units).max(1.0);
    let scattered_factor = 1.0 + m.txn_bytes / m.warp_chunk + m.txn_bytes / run;
    let dense_factor = 1.0 + m.txn_bytes / run;
    let local_traffic = match far {
        KernelFar::LocalDevice => scattered_factor + dense_factor,
        KernelFar::MappedHost | KernelFar::PeerDevice => scattered_factor,
    };
    let dram = local_traffic * m.dram_nspb + desc_nspb;
    let pcie = match far {
        KernelFar::LocalDevice => 0.0,
        KernelFar::MappedHost => m.pcie_host_nspb,
        KernelFar::PeerDevice => m.peer_nspb,
    };
    let fixed_pcie = if far == KernelFar::LocalDevice {
        0.0
    } else {
        m.pcie_lat_ns
    };
    Stage {
        fixed_ns: m.launch_ns + m.prep_call_ns + fixed_pcie,
        ns_per_byte: dram.max(pcie) + m.prep_per_unit_ns * units_per_byte,
    }
}

/// Per-fragment stage list for one transfer down a given path. Dense
/// sides contribute their staging copies only; non-dense sides their
/// conversion engines.
fn path_stages(sim: &mut Sim<MpiWorld>, s: &Side, r: &Side, class: PathClass) -> Vec<Stage> {
    let m = gather(sim, s.rank, r.rank);
    let opt = sim.world.mpi.config.engine.optimizer;
    let mut stages = Vec::new();
    let copy = |nspb: f64| Stage {
        fixed_ns: m.memcpy_fixed_ns,
        ns_per_byte: nspb,
    };
    let am = Stage {
        fixed_ns: m.am_ns,
        ns_per_byte: 0.0,
    };
    match class {
        PathClass::SmIpc => {
            let s_gpu = sim.world.mpi.ranks[s.rank].gpu;
            let r_gpu = sim.world.mpi.ranks[r.rank].gpu;
            let staged = sim.world.mpi.config.recv_local_staging && s_gpu != r_gpu;
            if !s.dense() {
                // Pack into the sender-local ring slot.
                stages.push(kernel_stage(&m, s, &opt, KernelFar::LocalDevice));
            }
            if staged {
                // Receiver GETs the fragment into local staging.
                stages.push(copy(m.p2p_copy_nspb));
            }
            if !r.dense() {
                let far = if staged || s_gpu == r_gpu {
                    KernelFar::LocalDevice
                } else {
                    KernelFar::PeerDevice
                };
                stages.push(kernel_stage(&m, r, &opt, far));
            } else if !s.dense() {
                // receiver-dense: the packed fragment is PUT to its
                // final window at bulk P2P rate.
                stages.push(copy(m.p2p_copy_nspb));
            }
            stages.push(am);
        }
        PathClass::CopyInOut | PathClass::ZeroCopy => {
            let zero = class == PathClass::ZeroCopy;
            // Sender conversion into the host fragment.
            match (s.dense(), s.device()) {
                (false, true) if zero => {
                    stages.push(kernel_stage(&m, s, &opt, KernelFar::MappedHost));
                }
                (false, true) => {
                    stages.push(kernel_stage(&m, s, &opt, KernelFar::LocalDevice));
                    stages.push(copy(m.pcie_copy_nspb));
                }
                (false, false) => stages.push(Stage {
                    fixed_ns: 0.0,
                    ns_per_byte: m.cpu_pack_nspb,
                }),
                (true, true) => stages.push(copy(m.pcie_copy_nspb)),
                (true, false) => {} // registered host data wires directly
            }
            stages.push(Stage {
                fixed_ns: m.wire_lat_ns,
                ns_per_byte: m.wire_nspb,
            });
            // Receiver consumption out of the arrived fragment.
            match (r.dense(), r.device()) {
                (false, true) if zero => {
                    stages.push(kernel_stage(&m, r, &opt, KernelFar::MappedHost));
                }
                (false, true) => {
                    stages.push(copy(m.pcie_copy_nspb));
                    stages.push(kernel_stage(&m, r, &opt, KernelFar::LocalDevice));
                }
                (false, false) => stages.push(Stage {
                    fixed_ns: 0.0,
                    ns_per_byte: m.cpu_pack_nspb,
                }),
                (true, true) => stages.push(copy(m.pcie_copy_nspb)),
                (true, false) => {} // the wire landed in the user buffer
            }
            stages.push(am);
        }
        PathClass::NicOffload => {
            // One stage: the handler front-end serializes descriptor
            // issue while the payload streams at the slower of the wire
            // and the NIC gather/scatter DMA — the legs pipeline per
            // packet, so they max instead of add. No pack kernels, no
            // staging copies, no per-fragment active messages.
            let upb = |side: &Side| {
                let ty = if opt.canonicalize {
                    side.ty.canonical()
                } else {
                    side.ty.clone()
                };
                ty.segment_estimate().saturating_mul(side.count).max(1) as f64
                    / side.total().max(1) as f64
            };
            stages.push(Stage {
                fixed_ns: m.wire_lat_ns,
                ns_per_byte: m.wire_nspb.max(m.nic_dma_nspb)
                    + (upb(s) + upb(r)) * m.nic_desc_issue_ns,
            });
        }
        PathClass::StreamTriggered => {
            // Replay re-arm on the stream front-end (doorbell MMIO plus
            // per-op issue for the five captured nodes), then the
            // graph's own legs: zero-copy pack into the mapped bounce,
            // the wire, zero-copy unpack. Completion is the graph's
            // flag write — no per-fragment active messages, no CPU.
            // Graph-baked kernels skip the driver launch path — the
            // stream front-end pays op issue instead.
            let graph_kernel = |side: &Side| {
                let mut st = kernel_stage(&m, side, &opt, KernelFar::MappedHost);
                st.fixed_ns = st.fixed_ns - m.launch_ns + m.stream_op_issue_ns;
                st
            };
            stages.push(Stage {
                fixed_ns: m.stream_doorbell_ns + 5.0 * m.stream_op_issue_ns,
                ns_per_byte: 0.0,
            });
            stages.push(graph_kernel(s));
            stages.push(Stage {
                fixed_ns: m.wire_lat_ns,
                ns_per_byte: m.wire_nspb,
            });
            stages.push(graph_kernel(r));
        }
    }
    stages
}

/// Fraction of the incumbent's predicted makespan an offload candidate
/// must beat to be selected: the never-worse gate with a 10% hysteresis
/// band, mirroring the 7% tie margin inside `pick_fragment`.
const SELECT_MARGIN: f64 = 0.9;

/// Choose the path class for one cross-node rendezvous. The incumbent
/// GPU-pack pipeline (zero-copy when healthy and both sides live on
/// device, staged copy-in/out otherwise) always competes; an offload
/// class is returned only when its knob is on, its runtime-health flag
/// is up, both sides are device-resident, and the analytic model
/// predicts a win past [`SELECT_MARGIN`]. With both knobs off this
/// returns the incumbent immediately — no model evaluation, no
/// counters, so default runs stay byte-identical.
pub fn select_path(sim: &mut Sim<MpiWorld>, s: &Side, r: &Side, same_node: bool) -> PathClass {
    let (zero_copy, nic_knob, stream_knob, frag0, depth0) = {
        let cfg = &sim.world.mpi.config;
        (
            cfg.zero_copy,
            cfg.nic_offload,
            cfg.stream_trigger,
            cfg.frag_size,
            cfg.pipeline_depth,
        )
    };
    let incumbent = if zero_copy && sim.world.mpi.zero_copy_runtime_ok && s.device() && r.device() {
        PathClass::ZeroCopy
    } else {
        PathClass::CopyInOut
    };
    let nic_ok = nic_knob && sim.world.mpi.nic_offload_runtime_ok;
    let stream_ok = stream_knob && sim.world.mpi.stream_trigger_runtime_ok;
    if (!nic_ok && !stream_ok) || same_node || !s.device() || !r.device() {
        return incumbent;
    }
    let total = s.total().max(1);
    let inc_stages = path_stages(sim, s, r, incumbent);
    let inc_ns = pipeline_makespan_ns(total, frag0.min(total), depth0, &inc_stages);
    let mut best = incumbent;
    // The candidate must beat the incumbent by the margin; between the
    // two offload classes, plain better-than wins.
    let mut best_ns = inc_ns * SELECT_MARGIN;
    if nic_ok {
        let stages = path_stages(sim, s, r, PathClass::NicOffload);
        let ns = pipeline_makespan_ns(total, total, 1, &stages);
        if ns < best_ns {
            best = PathClass::NicOffload;
            best_ns = ns;
        }
    }
    if stream_ok {
        let stages = path_stages(sim, s, r, PathClass::StreamTriggered);
        let ns = pipeline_makespan_ns(total, total, 1, &stages);
        if ns < best_ns {
            best = PathClass::StreamTriggered;
        }
    }
    best
}

/// Pick the pipeline shape for one transfer: the configured
/// `(frag0, depth0)` unless the auto-tuner is enabled *and* the cost
/// model predicts a ≥7% win for a smaller fragment / shallower ring.
/// Decisions are cached per (layouts, size, path) and counted in the
/// trace (`optimizer.frag.tuned` / `.default` / `.cache.hit`).
pub fn tuned_shape(
    sim: &mut Sim<MpiWorld>,
    s: &Side,
    r: &Side,
    class: PathClass,
    frag0: u64,
    depth0: usize,
) -> (u64, usize) {
    let opt = sim.world.mpi.config.engine.optimizer;
    if !opt.autotune {
        return (frag0, depth0);
    }
    let total = s.total();
    let key = TuneKey {
        arch: sim.world.gpus_ref().arch.name,
        s_layout: side_fingerprint(s, &opt),
        r_layout: side_fingerprint(r, &opt),
        total,
        class,
    };
    if let Some(&shape) = sim.world.mpi.tuned_shapes.get(&key) {
        sim.trace.count(
            names::OPTIMIZER_FRAG_CACHE_HIT,
            s.rank as u32,
            r.rank as u32,
            1,
        );
        return shape;
    }
    let stages = path_stages(sim, s, r, class);
    let shape = pick_fragment(total, frag0, depth0, &stages);
    sim.world.mpi.tuned_shapes.insert(key, shape);
    let counter = if shape == (frag0, depth0) {
        names::OPTIMIZER_FRAG_DEFAULT
    } else {
        names::OPTIMIZER_FRAG_TUNED
    };
    sim.trace.count(counter, s.rank as u32, r.rank as u32, 1);
    shape
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use datatype::DataType;
    use devengine::EngineConfig;
    use memsim::MemSpace;

    fn world(opt: OptimizerConfig) -> Sim<MpiWorld> {
        let config = MpiConfig {
            engine: EngineConfig {
                optimizer: opt,
                ..EngineConfig::default()
            },
            ..MpiConfig::default()
        };
        Sim::new(MpiWorld::two_ranks_two_gpus(config))
    }

    fn strided_side(sim: &mut Sim<MpiWorld>, rank: usize) -> Side {
        let ty = DataType::vector(4096, 2, 4, &DataType::double())
            .unwrap()
            .commit();
        let gpu = sim.world.mpi.ranks[rank].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), ty.extent() as u64)
            .unwrap();
        Side {
            rank,
            ty,
            count: 1,
            buf,
        }
    }

    #[test]
    fn disabled_tuner_returns_the_configured_shape() {
        let mut sim = world(OptimizerConfig::disabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        let shape = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert_eq!(shape, (512 << 10, 4));
        assert!(sim.world.mpi.tuned_shapes.is_empty());
    }

    #[test]
    fn tuned_fragment_never_grows_and_decisions_are_cached() {
        let mut sim = world(OptimizerConfig::enabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        let (f, d) = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert!(f <= 512 << 10, "fragments must fit the allocated ring");
        assert!(d <= 4, "depth must fit the allocated ring");
        assert!(f >= devengine::tune::MIN_FRAG);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 1);
        let again = tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        assert_eq!(again, (f, d));
        assert_eq!(sim.trace.counter("optimizer.frag.cache.hit"), 1);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 1);
    }

    fn ib_world(arch: &str, nic: bool, stream: bool) -> Sim<MpiWorld> {
        use crate::world::RankSpec;
        use gpusim::GpuArch;
        use memsim::GpuId;
        let config = MpiConfig {
            nic_offload: nic,
            stream_trigger: stream,
            ..MpiConfig::default()
        };
        let specs = [
            RankSpec {
                gpu: GpuId(0),
                node: 0,
            },
            RankSpec {
                gpu: GpuId(1),
                node: 1,
            },
        ];
        Sim::new(MpiWorld::on_arch(GpuArch::named(arch), &specs, 2, config))
    }

    fn side_on(sim: &mut Sim<MpiWorld>, rank: usize, ty: &DataType, count: u64) -> Side {
        let gpu = sim.world.mpi.ranks[rank].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), ty.extent() as u64 * count)
            .unwrap();
        Side {
            rank,
            ty: ty.clone(),
            count,
            buf,
        }
    }

    /// Coarse-grained strided layout: 32 KiB contiguous blocks, so the
    /// per-descriptor NIC issue cost is negligible against the stream.
    fn coarse_ty() -> DataType {
        DataType::vector(64, 4096, 8192, &DataType::double())
            .unwrap()
            .commit()
    }

    /// Fine-grained strided layout: 16-byte blocks, where descriptor
    /// issue dominates the NIC model and the graph kernels slow down.
    fn fine_ty() -> DataType {
        DataType::vector(65536, 2, 4, &DataType::double())
            .unwrap()
            .commit()
    }

    /// Latency-bound medium layout (128 KiB): two kernel launches plus
    /// the per-fragment active message outweigh one stream re-arm.
    fn medium_ty() -> DataType {
        DataType::vector(512, 32, 64, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn offload_knobs_off_select_the_incumbent() {
        let mut sim = ib_world("a100", false, false);
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let r = side_on(&mut sim, 1, &coarse_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::ZeroCopy);
        assert!(sim.world.mpi.tuned_shapes.is_empty());
    }

    #[test]
    fn offload_requires_cross_node_device_endpoints() {
        // Same node: the offload classes never compete.
        let mut sim = ib_world("a100", true, true);
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let r = side_on(&mut sim, 1, &coarse_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, true), PathClass::ZeroCopy);
        // A host-resident endpoint disqualifies them too (and the
        // incumbent degrades to staged copy-in/out).
        let mut sim = ib_world("a100", true, true);
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let ty = coarse_ty();
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Host, ty.extent() as u64)
            .unwrap();
        let r = Side {
            rank: 1,
            ty,
            count: 1,
            buf,
        };
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::CopyInOut);
    }

    #[test]
    fn nic_offload_wins_only_where_dma_outruns_the_wire() {
        // NVLink-era NICs gather faster than the wire drains: the
        // kernel-free path wins for coarse-grained layouts.
        for arch in ["p100", "v100", "a100"] {
            let mut sim = ib_world(arch, true, false);
            let s = side_on(&mut sim, 0, &coarse_ty(), 1);
            let r = side_on(&mut sim, 1, &coarse_ty(), 1);
            assert_eq!(
                select_path(&mut sim, &s, &r, false),
                PathClass::NicOffload,
                "{arch} coarse"
            );
        }
        // The K40 testbed's NIC DMA (5 GB/s) is slower than the wire:
        // inflating the stream loses to the pipelined pack path.
        let mut sim = ib_world("k40", true, false);
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let r = side_on(&mut sim, 1, &coarse_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::ZeroCopy);
        // Fine-grained layouts pay per-descriptor issue on the handler
        // cores; the model keeps them on the incumbent everywhere.
        let mut sim = ib_world("a100", true, false);
        let s = side_on(&mut sim, 0, &fine_ty(), 1);
        let r = side_on(&mut sim, 1, &fine_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::ZeroCopy);
    }

    #[test]
    fn stream_trigger_wins_latency_bound_medium_messages() {
        let mut sim = ib_world("p100", false, true);
        let s = side_on(&mut sim, 0, &medium_ty(), 1);
        let r = side_on(&mut sim, 1, &medium_ty(), 1);
        assert_eq!(
            select_path(&mut sim, &s, &r, false),
            PathClass::StreamTriggered
        );
        // Large coarse transfers pipeline on the incumbent but replay
        // serially on the stream graph: the model keeps them off.
        let mut sim = ib_world("p100", false, true);
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let r = side_on(&mut sim, 1, &coarse_ty(), 1);
        assert_ne!(
            select_path(&mut sim, &s, &r, false),
            PathClass::StreamTriggered
        );
        // The K40's 3 µs doorbell eats the saved launches.
        let mut sim = ib_world("k40", false, true);
        let s = side_on(&mut sim, 0, &medium_ty(), 1);
        let r = side_on(&mut sim, 1, &medium_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::ZeroCopy);
    }

    #[test]
    fn demoted_runtime_flags_disqualify_offload_classes() {
        let mut sim = ib_world("a100", true, true);
        sim.world.mpi.nic_offload_runtime_ok = false;
        sim.world.mpi.stream_trigger_runtime_ok = false;
        let s = side_on(&mut sim, 0, &coarse_ty(), 1);
        let r = side_on(&mut sim, 1, &coarse_ty(), 1);
        assert_eq!(select_path(&mut sim, &s, &r, false), PathClass::ZeroCopy);
    }

    #[test]
    fn path_classes_tune_independently() {
        let mut sim = world(OptimizerConfig::enabled());
        let s = strided_side(&mut sim, 0);
        let r = strided_side(&mut sim, 1);
        tuned_shape(&mut sim, &s, &r, PathClass::SmIpc, 512 << 10, 4);
        tuned_shape(&mut sim, &s, &r, PathClass::ZeroCopy, 512 << 10, 4);
        tuned_shape(&mut sim, &s, &r, PathClass::CopyInOut, 512 << 10, 4);
        assert_eq!(sim.world.mpi.tuned_shapes.len(), 3);
    }
}
