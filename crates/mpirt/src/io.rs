//! MPI-IO style file access with datatypes.
//!
//! The fourth consumer of committed datatypes the paper lists
//! ("point-to-point, collective, I/O and one-sided"): a file *view*
//! (`MPI_File_set_view`) tiles a `filetype` over the file, exposing
//! only its data bytes; reads and writes then move between a typed
//! memory buffer (packed by the CPU convertor or the GPU engine,
//! depending on where it lives) and the visible file bytes.
//!
//! The "disk" is a simulated host-resident store behind a FIFO
//! bandwidth resource (a K40-era parallel-filesystem client at
//! ~2 GB/s), so I/O time composes with the rest of the virtual
//! timeline.

use crate::request::{MpiError, Request};
use crate::world::MpiWorld;
use datatype::{DataType, TypeError};
use devengine::{pack_async, unpack_async, DevCursor};
use faultsim::{FaultDecision, FaultOp};
use gpusim::{fault, GpuWorld as _};
use memsim::{MemSpace, Ptr};
use simcore::par::CopyOp;
use simcore::{Bandwidth, Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A simulated file: a flat byte store plus the I/O channel feeding it.
pub struct SimFile {
    data: Ptr,
    len: u64,
    channel: Rc<RefCell<simcore::FifoResource>>,
    bandwidth: Bandwidth,
    latency: SimTime,
}

impl SimFile {
    /// Create a zero-filled file of `len` bytes.
    pub fn create(sim: &mut Sim<MpiWorld>, len: u64) -> SimFile {
        let data = sim
            .world
            .mem()
            .alloc(MemSpace::Host, len)
            .expect("file store");
        SimFile {
            data,
            len,
            channel: Rc::new(RefCell::new(simcore::FifoResource::new())),
            bandwidth: Bandwidth::from_gbps(2.0),
            latency: SimTime::from_micros(200),
        }
    }

    pub fn len(&self) -> u64 {
        self.len
    }

    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Raw file contents (test/debug helper).
    pub fn contents(&self, sim: &Sim<MpiWorld>) -> Vec<u8> {
        sim.world
            .mem_ref()
            .read_vec(self.data, self.len)
            .expect("file read")
    }
}

/// An `MPI_File_set_view`: `filetype` tiled from byte `disp`, exposing
/// its data bytes; `etype` is the elementary unit offsets count in.
#[derive(Clone)]
pub struct FileView {
    pub disp: u64,
    pub etype: DataType,
    pub filetype: DataType,
}

impl FileView {
    /// A flat view of the whole file in bytes.
    pub fn flat() -> FileView {
        FileView {
            disp: 0,
            etype: DataType::byte().commit(),
            filetype: DataType::byte().commit(),
        }
    }

    fn validate(&self) -> Result<(), TypeError> {
        if !self.etype.is_committed() || !self.filetype.is_committed() {
            return Err(TypeError::NotCommitted);
        }
        if !self.filetype.size().is_multiple_of(self.etype.size()) {
            return Err(TypeError::InvalidArgument(
                "filetype size must be a multiple of etype size",
            ));
        }
        Ok(())
    }

    /// File-relative CopyOps covering `bytes` visible bytes starting at
    /// element offset `offset_et` (pack orientation: src = file bytes,
    /// dst = visible stream).
    fn visible_ops(&self, offset_et: u64, bytes: u64) -> Vec<CopyOp> {
        let per_tile = self.filetype.size();
        let skip = offset_et * self.etype.size();
        let tiles_needed = (skip + bytes).div_ceil(per_tile);
        let mut cursor =
            DevCursor::new(&self.filetype, tiles_needed, 1 << 30).expect("committed filetype");
        // Discard the skipped prefix of the visible stream.
        let _ = cursor.next_units(skip);
        let mut ops = cursor.next_units(bytes);
        let vis0 = skip as usize;
        for op in &mut ops {
            // Rebase the visible-stream offset to the request start and
            // shift file displacements by the view's disp.
            op.dst_off -= vis0;
            op.src_off += self.disp as usize;
        }
        ops
    }
}

#[allow(clippy::too_many_arguments)]
fn stage_through_host<F: FnOnce(&mut Sim<MpiWorld>, Ptr) + 'static>(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    ty: &DataType,
    count: u64,
    buf: Ptr,
    pack: bool,
    bounce: Ptr,
    then: F,
) {
    let (stream, cache) = {
        let r = &sim.world.mpi.ranks[rank];
        (r.kernel_stream, Rc::clone(&r.dev_cache))
    };
    let cfg = sim.world.mpi.config.engine.clone();
    if buf.space.is_device() {
        if pack {
            pack_async(
                sim,
                rank,
                stream,
                ty,
                count,
                buf,
                bounce,
                cfg,
                Some(&cache),
                move |sim, _| then(sim, bounce),
            );
        } else {
            unpack_async(
                sim,
                rank,
                stream,
                ty,
                count,
                buf,
                bounce,
                cfg,
                Some(&cache),
                move |sim, _| then(sim, bounce),
            );
        }
    } else {
        let bw = sim.world.mpi.config.cpu_pack_bw;
        let dir = if pack {
            crate::cpupack::CpuDir::Pack
        } else {
            crate::cpupack::CpuDir::Unpack
        };
        let mut eng =
            crate::cpupack::CpuEngine::new(ty, count, buf, dir, rank, bw).expect("committed type");
        eng.process_fragment(sim, bounce, u64::MAX, move |sim, _| then(sim, bounce));
    }
}

/// `MPI_File_write_at`: write `count` instances of `mem_ty` from `buf`
/// into the view at element offset `offset_et`.
#[allow(clippy::too_many_arguments)]
pub fn write_at(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    file: &SimFile,
    view: &FileView,
    offset_et: u64,
    mem_ty: &DataType,
    count: u64,
    buf: Ptr,
) -> Request {
    file_op(sim, rank, file, view, offset_et, mem_ty, count, buf, true)
}

/// `MPI_File_read_at`: read into `count` instances of `mem_ty` at `buf`.
#[allow(clippy::too_many_arguments)]
pub fn read_at(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    file: &SimFile,
    view: &FileView,
    offset_et: u64,
    mem_ty: &DataType,
    count: u64,
    buf: Ptr,
) -> Request {
    file_op(sim, rank, file, view, offset_et, mem_ty, count, buf, false)
}

#[allow(clippy::too_many_arguments)]
fn file_op(
    sim: &mut Sim<MpiWorld>,
    rank: usize,
    file: &SimFile,
    view: &FileView,
    offset_et: u64,
    mem_ty: &DataType,
    count: u64,
    buf: Ptr,
    write: bool,
) -> Request {
    let req = Request::new();
    if let Err(e) = view.validate() {
        req.complete(sim, Err(MpiError::Type(e)));
        return req;
    }
    if !mem_ty.is_committed() {
        req.complete(sim, Err(MpiError::Type(TypeError::NotCommitted)));
        return req;
    }
    let bytes = mem_ty.size() * count;
    if !bytes.is_multiple_of(view.etype.size()) {
        req.complete(
            sim,
            Err(MpiError::Type(TypeError::InvalidArgument(
                "access size must be a whole number of etypes",
            ))),
        );
        return req;
    }
    let ops = view.visible_ops(offset_et, bytes);
    if let Some(end) = ops.iter().map(|o| (o.src_off + o.len) as u64).max() {
        assert!(
            end <= file.len,
            "file view access beyond EOF ({end} > {})",
            file.len
        );
    }
    if bytes == 0 {
        req.complete(sim, Ok(0));
        return req;
    }

    let bounce = sim
        .world
        .mem()
        .alloc(MemSpace::Host, bytes)
        .expect("io bounce");
    let file_data = file.data;
    let channel = Rc::clone(&file.channel);
    let io_time = file.bandwidth.time_for(bytes) + file.latency;
    let req2 = req.clone();

    type After = Box<dyn FnOnce(&mut Sim<MpiWorld>)>;
    let disk = move |sim: &mut Sim<MpiWorld>, bounce: Ptr, after: After| {
        // Disk I/O has no alternate path: a faulted pass backs off and
        // re-reads, folded into one reservation on the file channel.
        let mut charged = fault::fault_scaled(sim, FaultOp::FileIo, io_time);
        let mut backoff = fault::default_backoff();
        loop {
            let verdict = fault::fault_roll(sim, FaultOp::FileIo);
            if !verdict.is_fault() {
                break;
            }
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::FileIo, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::FileIo);
            charged = charged + backoff.next_delay() + io_time;
        }
        let now = sim.now();
        let (_s, end) = channel.borrow_mut().reserve(now, charged);
        sim.schedule_at(end, move |sim| {
            if write {
                // bounce (visible stream) -> file positions.
                let flipped: Vec<CopyOp> = ops
                    .iter()
                    .map(|o| CopyOp {
                        src_off: o.dst_off,
                        dst_off: o.src_off,
                        len: o.len,
                    })
                    .collect();
                sim.world
                    .mem()
                    .transfer(bounce, file_data, &flipped)
                    .expect("file write");
            } else {
                sim.world
                    .mem()
                    .transfer(file_data, bounce, &ops)
                    .expect("file read");
            }
            after(sim);
        });
    };

    if write {
        // memory -> bounce (pack) -> disk.
        stage_through_host(
            sim,
            rank,
            mem_ty,
            count,
            buf,
            true,
            bounce,
            move |sim, bounce| {
                disk(
                    sim,
                    bounce,
                    Box::new(move |sim| {
                        req2.complete(sim, Ok(bytes));
                        sim.world.mem().free(bounce).expect("free bounce");
                    }),
                );
            },
        );
    } else {
        // disk -> bounce -> memory (unpack).
        let mem_ty = mem_ty.clone();
        disk(
            sim,
            bounce,
            Box::new(move |sim| {
                stage_through_host(
                    sim,
                    rank,
                    &mem_ty,
                    count,
                    buf,
                    false,
                    bounce,
                    move |sim, bounce| {
                        req2.complete(sim, Ok(bytes));
                        sim.world.mem().free(bounce).expect("free bounce");
                    },
                );
            }),
        );
    }
    req
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use datatype::testutil::{buffer_span, pattern, reference_pack};

    fn sim() -> Sim<MpiWorld> {
        Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()))
    }

    #[test]
    fn flat_write_read_roundtrip_host() {
        let mut sim = sim();
        let file = SimFile::create(&mut sim, 4096);
        let ty = DataType::contiguous(512, &DataType::double())
            .unwrap()
            .commit();
        let buf = sim.world.mem().alloc(MemSpace::Host, ty.size()).unwrap();
        let data = pattern(ty.size() as usize);
        sim.world.mem().write(buf, &data).unwrap();
        let w = write_at(&mut sim, 0, &file, &FileView::flat(), 0, &ty, 1, buf);
        sim.run();
        assert_eq!(w.expect_bytes(), 4096);
        assert_eq!(file.contents(&sim), data);

        let out = sim.world.mem().alloc(MemSpace::Host, ty.size()).unwrap();
        let r = read_at(&mut sim, 1, &file, &FileView::flat(), 0, &ty, 1, out);
        sim.run();
        assert_eq!(r.expect_bytes(), 4096);
        assert_eq!(sim.world.mem().read_vec(out, 4096).unwrap(), data);
    }

    #[test]
    fn strided_view_interleaves_ranks() {
        // Two ranks write alternating 64-byte blocks of a shared file —
        // the canonical file-view use case.
        let mut sim = sim();
        let file = SimFile::create(&mut sim, 1024);
        let blk = DataType::contiguous(8, &DataType::double())
            .unwrap()
            .commit(); // 64 B
                       // filetype: my block then a 64-byte hole (the peer's block).
        let ft = DataType::vector(1, 1, 2, &blk).unwrap();
        let ft = DataType::resized(&ft, 0, 128).unwrap().commit();
        let mem = DataType::contiguous(64, &DataType::double())
            .unwrap()
            .commit(); // 512 B

        let mut bufs = Vec::new();
        for (r, fill) in [(0usize, 0xAAu8), (1, 0xBB)] {
            let b = sim.world.mem().alloc(MemSpace::Host, mem.size()).unwrap();
            sim.world
                .mem()
                .write(b, &vec![fill; mem.size() as usize])
                .unwrap();
            bufs.push(b);
            let view = FileView {
                disp: r as u64 * 64, // rank 1's tiles start one block in
                etype: DataType::byte().commit(),
                filetype: ft.clone(),
            };
            let w = write_at(&mut sim, r, &file, &view, 0, &mem, 1, b);
            sim.run();
            w.expect_bytes();
        }
        let got = file.contents(&sim);
        for (i, chunk) in got.chunks(64).enumerate() {
            let expect = if i % 2 == 0 { 0xAA } else { 0xBB };
            assert!(chunk.iter().all(|&b| b == expect), "block {i}");
        }
    }

    #[test]
    fn gpu_triangular_to_file_and_back() {
        let mut sim = sim();
        let n = 64u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit();
        let (base, len) = buffer_span(&t, 1);
        let gpu = sim.world.mpi.ranks[0].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), len as u64)
            .unwrap();
        let data = pattern(len);
        sim.world.mem().write(buf, &data).unwrap();

        let file = SimFile::create(&mut sim, t.size());
        let w = write_at(
            &mut sim,
            0,
            &file,
            &FileView::flat(),
            0,
            &t,
            1,
            buf.add(base as u64),
        );
        sim.run();
        assert_eq!(w.expect_bytes(), t.size());
        // The file holds the packed stream.
        assert_eq!(file.contents(&sim), reference_pack(&t, 1, &data, base));

        // Read back into the other rank's GPU with the same layout.
        let gpu1 = sim.world.mpi.ranks[1].gpu;
        let out = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu1), len as u64)
            .unwrap();
        let r = read_at(
            &mut sim,
            1,
            &file,
            &FileView::flat(),
            0,
            &t,
            1,
            out.add(base as u64),
        );
        sim.run();
        r.expect_bytes();
        let got = sim.world.mem().read_vec(out, len as u64).unwrap();
        assert_eq!(
            reference_pack(&t, 1, &got, base),
            reference_pack(&t, 1, &data, base)
        );
    }

    #[test]
    fn offset_in_etypes() {
        let mut sim = sim();
        let file = SimFile::create(&mut sim, 256);
        let d = DataType::double().commit();
        let four = DataType::contiguous(4, &d).unwrap().commit();
        let buf = sim.world.mem().alloc(MemSpace::Host, 32).unwrap();
        sim.world.mem().write(buf, &[7u8; 32]).unwrap();
        let view = FileView {
            disp: 0,
            etype: d.clone(),
            filetype: d.clone(),
        };
        // Write 4 doubles at element offset 10 => bytes 80..112.
        let w = write_at(&mut sim, 0, &file, &view, 10, &four, 1, buf);
        sim.run();
        w.expect_bytes();
        let got = file.contents(&sim);
        assert!(got[80..112].iter().all(|&b| b == 7));
        assert!(got[..80].iter().all(|&b| b == 0));
        assert!(got[112..].iter().all(|&b| b == 0));
    }

    #[test]
    fn io_charges_disk_time() {
        let mut sim = sim();
        let file = SimFile::create(&mut sim, 20 << 20);
        let ty = DataType::contiguous(2 << 20, &DataType::byte())
            .unwrap()
            .commit();
        let buf = sim.world.mem().alloc(MemSpace::Host, ty.size()).unwrap();
        let t0 = sim.now();
        let w = write_at(&mut sim, 0, &file, &FileView::flat(), 0, &ty, 1, buf);
        sim.run();
        w.expect_bytes();
        // 2 MB at 2 GB/s is ~1 ms.
        assert!((sim.now() - t0) >= SimTime::from_micros(1000));
    }

    #[test]
    fn transient_file_fault_retries_and_inflates_time() {
        use faultsim::{FaultKind, FaultOp, FaultPlan};
        let run = |faulted: bool| {
            let cfg = if faulted {
                let mut plan = FaultPlan::empty().with_seed(9).with_rule(
                    Some(FaultOp::FileIo),
                    FaultKind::Transient,
                    1.0,
                );
                plan.rules[0].max_injections = Some(2);
                MpiConfig {
                    fault_plan: plan,
                    ..Default::default()
                }
            } else {
                MpiConfig::default()
            };
            let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(cfg));
            let file = SimFile::create(&mut sim, 4096);
            let ty = DataType::contiguous(512, &DataType::double())
                .unwrap()
                .commit();
            let buf = sim.world.mem().alloc(MemSpace::Host, ty.size()).unwrap();
            let data = pattern(ty.size() as usize);
            sim.world.mem().write(buf, &data).unwrap();
            let w = write_at(&mut sim, 0, &file, &FileView::flat(), 0, &ty, 1, buf);
            let end = sim.run();
            assert_eq!(w.expect_bytes(), 4096);
            (end, file.contents(&sim), data)
        };
        let (clean_end, clean_file, data) = run(false);
        let (fault_end, fault_file, _) = run(true);
        // The disk retry fold re-reads the pass and charges backoff, so
        // the faulted write lands strictly later — and byte-identical.
        assert!(fault_end > clean_end, "{fault_end:?} vs {clean_end:?}");
        assert_eq!(fault_file, data);
        assert_eq!(clean_file, data);
    }

    #[test]
    fn misaligned_access_rejected() {
        let mut sim = sim();
        let file = SimFile::create(&mut sim, 256);
        let view = FileView {
            disp: 0,
            etype: DataType::double().commit(),
            filetype: DataType::double().commit(),
        };
        // 4 bytes is not a whole number of 8-byte etypes.
        let ty = DataType::contiguous(4, &DataType::byte()).unwrap().commit();
        let buf = sim.world.mem().alloc(MemSpace::Host, 4).unwrap();
        let w = write_at(&mut sim, 0, &file, &view, 0, &ty, 1, buf);
        assert!(matches!(w.result(), Some(Err(MpiError::Type(_)))));
    }
}
