//! Runtime tuning parameters (the analogue of Open MPI MCA parameters).

use devengine::EngineConfig;
use faultsim::FaultPlan;
use simcore::Bandwidth;

/// Point-to-point protocol configuration.
#[derive(Clone, Debug)]
pub struct MpiConfig {
    /// Messages at or below this size use the eager protocol.
    pub eager_limit: u64,
    /// Pipeline fragment size for the rendezvous protocols.
    pub frag_size: u64,
    /// Number of fragments in each ring (pipeline depth).
    pub pipeline_depth: usize,
    /// Use CUDA IPC + GPUDirect RDMA for same-node GPU transfers. When
    /// false (hardware/security restrictions, §4.2), shared-memory GPU
    /// transfers fall back to copy-in/copy-out through host memory.
    pub use_ipc: bool,
    /// Receiver copies each packed fragment from the sender's GPU into
    /// a local staging buffer before unpacking (measured 10–15% faster
    /// than unpacking straight out of remote memory, §5.2.1).
    pub recv_local_staging: bool,
    /// Map host fragment buffers into the GPU (CUDA zero copy) so pack
    /// and unpack kernels move data across PCIe themselves, overlapping
    /// the device↔host hop with the kernel (§4.2).
    pub zero_copy: bool,
    /// Effective bandwidth of the host CPU pack/unpack path (single
    /// threaded memcpy-bound traversal).
    pub cpu_pack_bw: Bandwidth,
    /// Offer the NIC DEV-executor path (sPIN-style: the NIC packet
    /// processor runs the datatype program, no GPU pack kernel) to the
    /// tuner for cross-node GPU transfers. Off by default; the env knob
    /// `GPU_DDT_NIC_OFFLOAD` enables it, and the tuner still only picks
    /// it where the cost model predicts a win.
    pub nic_offload: bool,
    /// Offer the stream-triggered path (HPE-style: the transfer is
    /// captured once into a GPU stream-op graph and replayed with zero
    /// CPU events) to the tuner for cross-node GPU transfers. Off by
    /// default; enabled by `GPU_DDT_STREAM_TRIGGER`.
    pub stream_trigger: bool,
    /// GPU datatype engine settings.
    pub engine: EngineConfig,
    /// Deterministic fault-injection plan consulted at every charge
    /// point. The default reads `GPU_DDT_FAULT_SEED` /
    /// `GPU_DDT_FAULT_PLAN`; an empty plan keeps the fault engine
    /// entirely out of the hot path.
    pub fault_plan: FaultPlan,
}

impl Default for MpiConfig {
    fn default() -> Self {
        MpiConfig {
            eager_limit: 64 << 10,
            frag_size: 512 << 10,
            pipeline_depth: 4,
            use_ipc: true,
            recv_local_staging: true,
            zero_copy: true,
            cpu_pack_bw: Bandwidth::from_gbps(5.0),
            nic_offload: env_flag("GPU_DDT_NIC_OFFLOAD"),
            stream_trigger: env_flag("GPU_DDT_STREAM_TRIGGER"),
            engine: EngineConfig::default(),
            fault_plan: FaultPlan::from_env(),
        }
    }
}

/// `1`/`true`/`on` (case-insensitive) enable a boolean env knob;
/// everything else — including unset — leaves it off.
fn env_flag(name: &str) -> bool {
    std::env::var(name)
        .map(|v| matches!(v.trim().to_ascii_lowercase().as_str(), "1" | "true" | "on"))
        .unwrap_or(false)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_coherent() {
        let c = MpiConfig::default();
        assert!(c.frag_size > c.eager_limit);
        assert!(c.pipeline_depth >= 2, "pipelining needs at least two slots");
        assert!(c.engine.unit_size % 256 == 0);
    }
}
