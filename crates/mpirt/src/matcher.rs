//! MPI message matching (the PML's posted-receive and unexpected-message
//! queues).
//!
//! An arriving message carries a *starter*: the continuation that runs
//! the actual data-movement protocol once the match is made. For an
//! eager message the starter delivers already-buffered bytes; for a
//! rendezvous it kicks off the pipelined transfer. This mirrors how the
//! PML separates matching from the BTL-level protocol.

use crate::request::Request;
use crate::world::MpiWorld;
use datatype::{DataType, Signature};
use memsim::Ptr;
use simcore::Sim;

/// A posted receive waiting for a message.
pub struct RecvPosting {
    pub rank: usize,
    /// `None` = MPI_ANY_SOURCE.
    pub src: Option<usize>,
    /// `None` = MPI_ANY_TAG.
    pub tag: Option<u64>,
    pub ty: DataType,
    pub count: u64,
    pub buf: Ptr,
    pub request: Request,
}

impl RecvPosting {
    pub fn signature(&self) -> Signature {
        Signature::of(&self.ty, self.count)
    }
}

type Starter = Box<dyn FnOnce(&mut Sim<MpiWorld>, RecvPosting)>;

/// An arrived message envelope waiting for a matching receive.
pub struct Envelope {
    pub src: usize,
    pub dst: usize,
    pub tag: u64,
    pub bytes: u64,
    pub starter: Starter,
}

/// Per-destination-rank matching state.
struct RankQueues {
    posted: Vec<RecvPosting>,
    unexpected: Vec<Envelope>,
}

/// The job-wide matcher.
pub struct Matcher {
    queues: Vec<RankQueues>,
}

impl Matcher {
    pub fn new(ranks: usize) -> Matcher {
        Matcher {
            queues: (0..ranks)
                .map(|_| RankQueues {
                    posted: Vec::new(),
                    unexpected: Vec::new(),
                })
                .collect(),
        }
    }

    fn matches(post: &RecvPosting, env: &Envelope) -> bool {
        post.src.is_none_or(|s| s == env.src) && post.tag.is_none_or(|t| t == env.tag)
    }

    /// A message arrived at `env.dst`: returns the matched posting (to
    /// hand to the starter) or queues the envelope as unexpected.
    pub fn arrive(&mut self, env: Envelope) -> Option<(RecvPosting, Starter)> {
        let q = &mut self.queues[env.dst];
        if let Some(i) = q.posted.iter().position(|p| Self::matches(p, &env)) {
            let post = q.posted.remove(i);
            Some((post, env.starter))
        } else {
            q.unexpected.push(env);
            None
        }
    }

    /// A receive was posted: returns the matched unexpected envelope, or
    /// queues the posting. MPI ordering: the *earliest* matching
    /// unexpected message wins.
    pub fn post(&mut self, posting: RecvPosting) -> Option<(RecvPosting, Starter)> {
        let q = &mut self.queues[posting.rank];
        if let Some(i) = q.unexpected.iter().position(|e| Self::matches(&posting, e)) {
            let env = q.unexpected.remove(i);
            Some((posting, env.starter))
        } else {
            q.posted.push(posting);
            None
        }
    }

    /// Outstanding postings + unexpected messages (for leak checks).
    pub fn pending(&self) -> usize {
        self.queues
            .iter()
            .map(|q| q.posted.len() + q.unexpected.len())
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use memsim::{AllocId, MemSpace};

    fn posting(rank: usize, src: Option<usize>, tag: Option<u64>) -> RecvPosting {
        RecvPosting {
            rank,
            src,
            tag,
            ty: DataType::double().commit(),
            count: 1,
            buf: Ptr {
                space: MemSpace::Host,
                alloc: AllocId(0),
                offset: 0,
            },
            request: Request::new(),
        }
    }

    fn envelope(src: usize, dst: usize, tag: u64) -> Envelope {
        Envelope {
            src,
            dst,
            tag,
            bytes: 8,
            starter: Box::new(|_, _| {}),
        }
    }

    #[test]
    fn post_then_arrive_matches() {
        let mut m = Matcher::new(2);
        assert!(m.post(posting(1, Some(0), Some(7))).is_none());
        let hit = m.arrive(envelope(0, 1, 7));
        assert!(hit.is_some());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn arrive_then_post_matches() {
        let mut m = Matcher::new(2);
        assert!(m.arrive(envelope(0, 1, 7)).is_none());
        assert_eq!(m.pending(), 1);
        assert!(m.post(posting(1, Some(0), Some(7))).is_some());
        assert_eq!(m.pending(), 0);
    }

    #[test]
    fn tag_and_source_must_match() {
        let mut m = Matcher::new(2);
        m.post(posting(1, Some(0), Some(7)));
        assert!(m.arrive(envelope(0, 1, 8)).is_none(), "wrong tag");
        assert!(m.arrive(envelope(1, 1, 7)).is_none(), "wrong source");
        assert_eq!(m.pending(), 3);
    }

    #[test]
    fn wildcards() {
        let mut m = Matcher::new(2);
        m.post(posting(1, None, None));
        assert!(m.arrive(envelope(0, 1, 42)).is_some());
        m.post(posting(1, Some(0), None));
        assert!(m.arrive(envelope(0, 1, 99)).is_some());
        m.post(posting(1, None, Some(3)));
        assert!(m.arrive(envelope(1, 1, 3)).is_some());
    }

    #[test]
    fn unexpected_order_is_fifo() {
        let mut m = Matcher::new(2);
        let mut e1 = envelope(0, 1, 7);
        e1.bytes = 1;
        let mut e2 = envelope(0, 1, 7);
        e2.bytes = 2;
        m.arrive(e1);
        m.arrive(e2);
        // First posting gets the earliest message (MPI ordering).
        let (_p, _starter) = m.post(posting(1, Some(0), Some(7))).unwrap();
        // We cannot inspect the starter, but the remaining envelope must
        // be the later one.
        assert_eq!(m.queues[1].unexpected.len(), 1);
        assert_eq!(m.queues[1].unexpected[0].bytes, 2);
    }

    #[test]
    fn posted_receives_match_in_post_order() {
        let mut m = Matcher::new(2);
        m.post(posting(1, None, Some(5)));
        m.post(posting(1, Some(0), Some(5)));
        let (p, _) = m.arrive(envelope(0, 1, 5)).unwrap();
        assert!(
            p.src.is_none(),
            "earlier posting wins even if less specific"
        );
    }
}
