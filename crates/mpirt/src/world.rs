//! The simulation world for MPI jobs: hardware (`ClusterWorld`) plus
//! runtime state (matching queues, connection caches, per-rank GPU
//! bindings).

use crate::config::MpiConfig;
use crate::connection::{IbConn, SmConn};
use crate::matcher::Matcher;
use devengine::DevCache;
use faultsim::FaultSim;
use gpusim::{GpuArch, GpuSystem, GpuWorld, StreamId};
use memsim::{GpuId, Memory};
use netsim::{ChannelKind, ClusterWorld, NetSystem, NetWorld};
use simcore::hash::DetHashMap;
use simcore::FifoResource;
use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

/// Placement of one MPI rank.
#[derive(Clone, Copy, Debug)]
pub struct RankSpec {
    /// GPU the rank is bound to (`CUDA_VISIBLE_DEVICES` style binding).
    pub gpu: GpuId,
    /// Node the rank runs on; ranks on the same node talk over shared
    /// memory, others over InfiniBand.
    pub node: usize,
}

/// Mutable per-rank runtime state.
pub struct RankState {
    pub rank: usize,
    pub gpu: GpuId,
    pub node: usize,
    /// Stream for pack/unpack kernels.
    pub kernel_stream: StreamId,
    /// Stream for DMA copies (overlaps with kernels, as the hardware's
    /// separate copy engines do).
    pub copy_stream: StreamId,
    /// This rank's CUDA-DEV cache.
    pub dev_cache: Rc<RefCell<DevCache>>,
}

/// Runtime-global state.
pub struct MpiState {
    pub config: MpiConfig,
    pub ranks: Vec<RankState>,
    pub matcher: Matcher,
    pub sm_conns: BTreeMap<(usize, usize), Rc<RefCell<SmConn>>>,
    pub ib_conns: BTreeMap<(usize, usize), Rc<RefCell<IbConn>>>,
    /// Fragment/ring-depth decisions from the protocol auto-tuner,
    /// cached per (canonical layouts, message size, path class).
    pub tuned_shapes: DetHashMap<crate::tuner::TuneKey, (u64, usize)>,
    /// Runtime health of the CUDA IPC path. Flipped off when fault
    /// injection reports a permanent loss of the IPC capability, which
    /// steers every later same-node GPU transfer to copy-in/copy-out.
    pub ipc_runtime_ok: bool,
    /// Runtime health of the zero-copy (mapped pinned host) path;
    /// flipped off on permanent pinned-registration loss, which demotes
    /// the copy-in/out protocol to its explicitly staged variant.
    pub zero_copy_runtime_ok: bool,
    /// Runtime health of the NIC DEV-executor path; flipped off on
    /// permanent NIC-handler loss, which demotes every later NicOffload
    /// transfer to the GPU-pack (copy-in/out) pipeline — sticky, like
    /// the IPC flag above.
    pub nic_offload_runtime_ok: bool,
    /// Runtime health of the stream-triggered path; flipped off on
    /// permanent doorbell loss, demoting StreamTriggered transfers to
    /// the CPU-driven pipeline.
    pub stream_trigger_runtime_ok: bool,
    /// NIC handler installs already performed, per directed rank pair
    /// (the sPIN handler-registration is once per connection, like the
    /// pinned-host registration in [`IbConn`]).
    pub nic_handlers: BTreeMap<(usize, usize), ()>,
    /// Compiled NIC DEV programs, keyed like tuner decisions (canonical
    /// layouts + size); programs are rank-independent descriptor lists.
    pub nic_programs: DetHashMap<crate::tuner::TuneKey, Rc<netsim::NicProgram>>,
    /// Captured stream-op graphs plus their baked unit lists and bounce
    /// buffer, per directed rank pair and transfer shape (persistent /
    /// partitioned requests capture once, replay per iteration).
    pub stream_captures: BTreeMap<
        (usize, usize),
        DetHashMap<crate::tuner::TuneKey, Rc<crate::protocol::offload::CapturedXfer>>,
    >,
}

/// The complete world: hardware + runtime.
pub struct MpiWorld {
    pub cluster: ClusterWorld,
    pub mpi: MpiState,
}

impl MpiWorld {
    /// Build a job from rank placements on the default (K40)
    /// architecture. Channels are created for every rank pair: shared
    /// memory within a node, InfiniBand across nodes.
    pub fn new(specs: &[RankSpec], gpu_count: u32, config: MpiConfig) -> MpiWorld {
        MpiWorld::on_arch(GpuArch::default_arch(), specs, gpu_count, config)
    }

    /// Build a job whose GPUs and node interconnect come from one
    /// registered architecture. The arch is job-level: every rank's GPU
    /// is the same part (mixed-arch jobs are a later extension), and
    /// everything above — protocol costs, tuner decisions, metrics —
    /// reads it back from `cluster.gpu_system.arch`.
    pub fn on_arch(
        arch: &'static GpuArch,
        specs: &[RankSpec],
        gpu_count: u32,
        config: MpiConfig,
    ) -> MpiWorld {
        let mut cluster = ClusterWorld::for_arch(arch, gpu_count);
        cluster.faults = FaultSim::from_plan(config.fault_plan.clone());
        let mut ranks = Vec::with_capacity(specs.len());
        for (i, s) in specs.iter().enumerate() {
            assert!(
                s.gpu.index() < gpu_count as usize,
                "rank {i} bound to missing {0}",
                s.gpu
            );
            let kernel_stream = cluster.gpu_system.create_stream(s.gpu);
            let copy_stream = cluster.gpu_system.create_stream(s.gpu);
            ranks.push(RankState {
                rank: i,
                gpu: s.gpu,
                node: s.node,
                kernel_stream,
                copy_stream,
                dev_cache: Rc::new(RefCell::new(DevCache::default())),
            });
        }
        for a in 0..specs.len() {
            for b in a + 1..specs.len() {
                let kind = if specs[a].node == specs[b].node {
                    ChannelKind::SharedMemory
                } else {
                    ChannelKind::InfiniBand
                };
                cluster.net_system.connect(a, b, kind);
            }
        }
        MpiWorld {
            cluster,
            mpi: MpiState {
                config,
                ranks,
                matcher: Matcher::new(specs.len()),
                sm_conns: BTreeMap::new(),
                ib_conns: BTreeMap::new(),
                tuned_shapes: DetHashMap::default(),
                ipc_runtime_ok: true,
                zero_copy_runtime_ok: true,
                nic_offload_runtime_ok: true,
                stream_trigger_runtime_ok: true,
                nic_handlers: BTreeMap::new(),
                nic_programs: DetHashMap::default(),
                stream_captures: BTreeMap::new(),
            },
        }
    }

    /// An `n`-rank job laid out by a [`netsim::Topology`]: rank `r`
    /// gets its own GPU and lives on node `topo.node_of(r)`, so ranks
    /// sharing a node talk over shared memory and everything else goes
    /// through InfiniBand — the paper's two-node testbeds generalized
    /// to ring / fat-tree / dragonfly fabrics.
    pub fn n_ranks(n: usize, topo: netsim::Topology, config: MpiConfig) -> MpiWorld {
        assert!(n > 0, "need at least one rank");
        let specs: Vec<RankSpec> = (0..n)
            .map(|r| RankSpec {
                gpu: GpuId(r as u32),
                node: topo.node_of(r as u32) as usize,
            })
            .collect();
        MpiWorld::new(&specs, n as u32, config)
    }

    /// Two ranks on one node sharing a single GPU (the paper's "1GPU"
    /// shared-memory configuration).
    pub fn two_ranks_one_gpu(config: MpiConfig) -> MpiWorld {
        MpiWorld::new(
            &[
                RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                },
                RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                },
            ],
            1,
            config,
        )
    }

    /// Two ranks on one node, each with its own GPU ("2GPU").
    pub fn two_ranks_two_gpus(config: MpiConfig) -> MpiWorld {
        MpiWorld::new(
            &[
                RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                },
                RankSpec {
                    gpu: GpuId(1),
                    node: 0,
                },
            ],
            2,
            config,
        )
    }

    /// Two ranks on different nodes connected by InfiniBand ("IB").
    pub fn two_ranks_ib(config: MpiConfig) -> MpiWorld {
        MpiWorld::new(
            &[
                RankSpec {
                    gpu: GpuId(0),
                    node: 0,
                },
                RankSpec {
                    gpu: GpuId(1),
                    node: 1,
                },
            ],
            2,
            config,
        )
    }

    pub fn rank(&self, r: usize) -> &RankState {
        &self.mpi.ranks[r]
    }

    /// Are two ranks on the same node?
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.mpi.ranks[a].node == self.mpi.ranks[b].node
    }
}

impl GpuWorld for MpiWorld {
    fn mem(&mut self) -> &mut Memory {
        &mut self.cluster.memory
    }
    fn mem_ref(&self) -> &Memory {
        &self.cluster.memory
    }
    fn gpus(&mut self) -> &mut GpuSystem {
        &mut self.cluster.gpu_system
    }
    fn gpus_ref(&self) -> &GpuSystem {
        &self.cluster.gpu_system
    }
    fn cpu(&mut self, rank: usize) -> &mut FifoResource {
        self.cluster.cpu(rank)
    }
    fn faults(&mut self) -> &mut FaultSim {
        &mut self.cluster.faults
    }
}

impl NetWorld for MpiWorld {
    fn net(&mut self) -> &mut NetSystem {
        &mut self.cluster.net_system
    }
    fn net_ref(&self) -> &NetSystem {
        &self.cluster.net_system
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topologies() {
        let w = MpiWorld::two_ranks_one_gpu(MpiConfig::default());
        assert!(w.same_node(0, 1));
        assert_eq!(w.rank(0).gpu, w.rank(1).gpu);
        assert_eq!(w.cluster.net_system.kind(0, 1), ChannelKind::SharedMemory);

        let w = MpiWorld::two_ranks_ib(MpiConfig::default());
        assert!(!w.same_node(0, 1));
        assert_eq!(w.cluster.net_system.kind(0, 1), ChannelKind::InfiniBand);
        assert_ne!(w.rank(0).gpu, w.rank(1).gpu);
    }

    #[test]
    fn ranks_get_distinct_streams() {
        let w = MpiWorld::two_ranks_one_gpu(MpiConfig::default());
        let r0 = w.rank(0);
        let r1 = w.rank(1);
        assert_ne!(r0.kernel_stream, r0.copy_stream);
        assert_ne!(r0.kernel_stream, r1.kernel_stream);
    }

    #[test]
    #[should_panic(expected = "bound to missing")]
    fn binding_to_missing_gpu_fails() {
        MpiWorld::new(
            &[RankSpec {
                gpu: GpuId(3),
                node: 0,
            }],
            1,
            MpiConfig::default(),
        );
    }
}
