//! The user-facing point-to-point API (the PML surface).

use crate::matcher::{Envelope, RecvPosting};
use crate::protocol::{self, eager, Side};
use crate::request::{MpiError, Request};
use crate::world::MpiWorld;
use datatype::DataType;
use memsim::Ptr;
use netsim::send_am;
use simcore::{Sim, SimTime};

/// Arguments of a nonblocking send.
#[derive(Clone)]
pub struct SendArgs {
    pub from: usize,
    pub to: usize,
    pub tag: u64,
    pub ty: DataType,
    pub count: u64,
    pub buf: Ptr,
}

impl SendArgs {
    /// A send of `count` elements of `ty` at `buf`, from rank `from` to
    /// rank `to`, with tag 0. Chain [`SendArgs::tag`] to override.
    pub fn new(from: usize, to: usize, buf: Ptr, ty: &DataType, count: u64) -> SendArgs {
        SendArgs {
            from,
            to,
            tag: 0,
            ty: ty.clone(),
            count,
            buf,
        }
    }

    pub fn tag(mut self, tag: u64) -> SendArgs {
        self.tag = tag;
        self
    }
}

/// Arguments of a nonblocking receive.
#[derive(Clone)]
pub struct RecvArgs {
    pub rank: usize,
    /// `None` = MPI_ANY_SOURCE.
    pub src: Option<usize>,
    /// `None` = MPI_ANY_TAG.
    pub tag: Option<u64>,
    pub ty: DataType,
    pub count: u64,
    pub buf: Ptr,
}

impl RecvArgs {
    /// A receive on `rank` of `count` elements of `ty` into `buf` from
    /// rank `src`, matching any tag. Chain [`RecvArgs::tag`] to match a
    /// specific tag.
    pub fn new(rank: usize, src: usize, buf: Ptr, ty: &DataType, count: u64) -> RecvArgs {
        RecvArgs {
            rank,
            src: Some(src),
            tag: None,
            ty: ty.clone(),
            count,
            buf,
        }
    }

    /// A receive matching `MPI_ANY_SOURCE`.
    pub fn any_source(rank: usize, buf: Ptr, ty: &DataType, count: u64) -> RecvArgs {
        RecvArgs {
            rank,
            src: None,
            tag: None,
            ty: ty.clone(),
            count,
            buf,
        }
    }

    pub fn tag(mut self, tag: u64) -> RecvArgs {
        self.tag = Some(tag);
        self
    }
}

/// Nonblocking send (`MPI_Isend`). The transfer progresses as the
/// simulation runs; the returned request completes when the send buffer
/// is reusable.
pub fn isend(sim: &mut Sim<MpiWorld>, args: SendArgs) -> Request {
    let req = Request::new();
    if !args.ty.is_committed() {
        req.complete(sim, Err(MpiError::Type(datatype::TypeError::NotCommitted)));
        return req;
    }
    assert!(args.from != args.to, "self-sends are not modeled");
    let side = Side {
        rank: args.from,
        ty: args.ty.clone(),
        count: args.count,
        buf: args.buf,
    };
    let bytes = side.total();
    if bytes <= sim.world.mpi.config.eager_limit {
        eager::send(sim, side, args.to, args.tag, req.clone());
        return req;
    }

    // Rendezvous: ship the match header; the matched receiver starts
    // the data protocol.
    let send_req = req.clone();
    let (from, to, tag) = (args.from, args.to, args.tag);
    let shipped = send_am(sim, from, to, 0, move |sim| {
        let env = Envelope {
            src: from,
            dst: to,
            tag,
            bytes,
            starter: Box::new(move |sim, posting| {
                protocol::start_rendezvous(sim, side, send_req, posting);
            }),
        };
        if let Some((posting, starter)) = sim.world.mpi.matcher.arrive(env) {
            starter(sim, posting);
        }
    });
    if let Err(e) = shipped {
        req.complete(sim, Err(MpiError::Net(e)));
    }
    req
}

/// Nonblocking receive (`MPI_Irecv`).
pub fn irecv(sim: &mut Sim<MpiWorld>, args: RecvArgs) -> Request {
    let req = Request::new();
    if !args.ty.is_committed() {
        req.complete(sim, Err(MpiError::Type(datatype::TypeError::NotCommitted)));
        return req;
    }
    let posting = RecvPosting {
        rank: args.rank,
        src: args.src,
        tag: args.tag,
        ty: args.ty,
        count: args.count,
        buf: args.buf,
        request: req.clone(),
    };
    if let Some((posting, starter)) = sim.world.mpi.matcher.post(posting) {
        starter(sim, posting);
    }
    req
}

/// Drive a ping-pong between ranks 0 and 1 for `iters` round trips and
/// return the virtual time per round trip (excluding a warm-up round
/// that pays connection setup and populates the CUDA-DEV caches).
///
/// Rank 0 sends with `(ty0, count0, buf0)`; rank 1 receives into
/// `(ty1, count1, buf1)` and sends back from it — the classic
/// osu-latency-style loop generalized to asymmetric datatypes (the
/// paper's vector↔contiguous and transpose benchmarks).
#[allow(clippy::too_many_arguments)]
pub struct PingPongSpec {
    pub ty0: DataType,
    pub count0: u64,
    pub buf0: Ptr,
    pub ty1: DataType,
    pub count1: u64,
    pub buf1: Ptr,
    pub iters: u32,
}

pub fn ping_pong(sim: &mut Sim<MpiWorld>, spec: PingPongSpec) -> SimTime {
    // Warm-up round (connection establishment, IPC mapping, DEV cache).
    run_round(sim, &spec);
    let start = sim.now();
    for _ in 0..spec.iters {
        run_round(sim, &spec);
    }
    let total = sim.now() - start;
    SimTime::from_nanos(total.as_nanos() / spec.iters as u64)
}

/// One synchronous round trip: 0 → 1 then 1 → 0, run to completion.
fn run_round(sim: &mut Sim<MpiWorld>, spec: &PingPongSpec) {
    let tag = 99;
    let s1 = isend(
        sim,
        SendArgs {
            from: 0,
            to: 1,
            tag,
            ty: spec.ty0.clone(),
            count: spec.count0,
            buf: spec.buf0,
        },
    );
    let r1 = irecv(
        sim,
        RecvArgs {
            rank: 1,
            src: Some(0),
            tag: Some(tag),
            ty: spec.ty1.clone(),
            count: spec.count1,
            buf: spec.buf1,
        },
    );
    wait_all(sim, &[s1, r1]).expect("ping-pong round failed");
    let s2 = isend(
        sim,
        SendArgs {
            from: 1,
            to: 0,
            tag,
            ty: spec.ty1.clone(),
            count: spec.count1,
            buf: spec.buf1,
        },
    );
    let r2 = irecv(
        sim,
        RecvArgs {
            rank: 0,
            src: Some(1),
            tag: Some(tag),
            ty: spec.ty0.clone(),
            count: spec.count0,
            buf: spec.buf0,
        },
    );
    wait_all(sim, &[s2, r2]).expect("ping-pong round failed");
}

/// Run the simulation until the given requests complete (`MPI_Waitall`).
///
/// Returns [`MpiError::Stalled`] when the event queue drains with
/// requests still incomplete (an unmatched rendezvous or a protocol
/// deadlock), and otherwise the first request error, if any — no panics
/// on the failure paths, so callers can react to injected faults.
pub fn wait_all(sim: &mut Sim<MpiWorld>, reqs: &[Request]) -> Result<(), MpiError> {
    loop {
        if reqs.iter().all(|r| r.is_complete()) {
            break;
        }
        if !sim.step() {
            return Err(MpiError::Stalled);
        }
    }
    for r in reqs {
        if let Some(Err(e)) = r.result() {
            return Err(e);
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use gpusim::GpuWorld as _;
    use memsim::MemSpace;

    fn dbl() -> DataType {
        DataType::double()
    }

    /// Allocate + fill a typed buffer for `rank`'s GPU (or host).
    fn alloc_typed(
        sim: &mut Sim<MpiWorld>,
        rank: usize,
        ty: &DataType,
        count: u64,
        device: bool,
        fill: bool,
    ) -> (Ptr, Vec<u8>, i64, u64) {
        let (base, len) = buffer_span(ty, count);
        let space = if device {
            MemSpace::Device(sim.world.mpi.ranks[rank].gpu)
        } else {
            MemSpace::Host
        };
        let buf = sim.world.mem().alloc(space, len.max(1) as u64).unwrap();
        let bytes = if fill { pattern(len) } else { vec![0u8; len] };
        sim.world.mem().write(buf, &bytes).unwrap();
        (buf.add(base as u64), bytes, base, len as u64)
    }

    /// End-to-end correctness check for one world/type/count combo.
    fn check_transfer(
        mut sim: Sim<MpiWorld>,
        ty_s: &DataType,
        count_s: u64,
        ty_r: &DataType,
        count_r: u64,
        s_dev: bool,
        r_dev: bool,
    ) {
        let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, ty_s, count_s, s_dev, true);
        let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, ty_r, count_r, r_dev, false);
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 7,
                ty: ty_s.clone(),
                count: count_s,
                buf: sbuf,
            },
        );
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(7),
                ty: ty_r.clone(),
                count: count_r,
                buf: rbuf,
            },
        );
        wait_all(&mut sim, &[s.clone(), r.clone()]).expect("transfer failed");
        assert_eq!(s.expect_bytes(), ty_s.size() * count_s);
        assert_eq!(r.expect_bytes(), ty_s.size() * count_s);

        // The packed stream of the received data must equal the packed
        // stream of the sent data.
        let expect = reference_pack(ty_s, count_s, &sbytes, sbase);
        let got_buf = sim
            .world
            .mem()
            .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
            .unwrap();
        let got = reference_pack(ty_r, count_r, &got_buf, rbase);
        assert_eq!(got[..expect.len()], expect[..], "payload mismatch");
    }

    fn vec_ty(n: u64) -> DataType {
        DataType::vector(n, 4, 8, &dbl()).unwrap().commit()
    }

    fn tri_ty(n: u64) -> DataType {
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        DataType::indexed(&lens, &disps, &dbl()).unwrap().commit()
    }

    #[test]
    fn eager_host_to_host() {
        let sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = vec_ty(16); // 512 B
        check_transfer(sim, &t, 1, &t, 1, false, false);
    }

    #[test]
    fn eager_device_to_device_sm() {
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let t = vec_ty(16);
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_sm_both_noncontig() {
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let t = tri_ty(192); // ~148 KB > eager limit
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_sm_same_gpu() {
        let sim = Sim::new(MpiWorld::two_ranks_one_gpu(MpiConfig::default()));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_sm_sender_contiguous() {
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let c = DataType::contiguous(40_000, &dbl()).unwrap().commit();
        let v = DataType::vector(2_000, 20, 40, &dbl()).unwrap().commit();
        check_transfer(sim, &c, 1, &v, 1, true, true);
    }

    #[test]
    fn rendezvous_sm_receiver_contiguous() {
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let c = DataType::contiguous(40_000, &dbl()).unwrap().commit();
        let v = DataType::vector(2_000, 20, 40, &dbl()).unwrap().commit();
        check_transfer(sim, &v, 1, &c, 1, true, true);
    }

    #[test]
    fn rendezvous_ib_device_both_noncontig() {
        let sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_ib_no_zero_copy() {
        let cfg = MpiConfig {
            zero_copy: false,
            ..Default::default()
        };
        let sim = Sim::new(MpiWorld::two_ranks_ib(cfg));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_sm_ipc_disabled_falls_back() {
        let cfg = MpiConfig {
            use_ipc: false,
            ..Default::default()
        };
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(cfg));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, true, true);
    }

    #[test]
    fn rendezvous_host_to_host_large() {
        let sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = vec_ty(8_000); // 256 KB
        check_transfer(sim, &t, 1, &t, 1, false, false);
    }

    #[test]
    fn rendezvous_device_to_host_mixed() {
        let sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, true, false);
    }

    #[test]
    fn rendezvous_host_to_device_mixed() {
        let sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = tri_ty(192);
        check_transfer(sim, &t, 1, &t, 1, false, true);
    }

    #[test]
    fn different_layouts_same_signature() {
        // Vector → contiguous reshape (the FFT case, Figure 11).
        let sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let v = DataType::vector(4_000, 10, 20, &dbl()).unwrap().commit();
        let c = DataType::contiguous(40_000, &dbl()).unwrap().commit();
        check_transfer(sim, &v, 1, &c, 1, true, true);
    }

    #[test]
    fn signature_mismatch_fails_both_requests() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let send_ty = DataType::contiguous(40_000, &dbl()).unwrap().commit();
        let recv_ty = DataType::contiguous(40_000, &DataType::int())
            .unwrap()
            .commit();
        let (sbuf, _, _, _) = alloc_typed(&mut sim, 0, &send_ty, 1, false, true);
        let (rbuf, _, _, _) = alloc_typed(&mut sim, 1, &recv_ty, 1, false, false);
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 1,
                ty: send_ty,
                count: 1,
                buf: sbuf,
            },
        );
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(1),
                ty: recv_ty,
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        assert!(matches!(s.result(), Some(Err(MpiError::Type(_)))));
        assert!(matches!(r.result(), Some(Err(MpiError::Type(_)))));
    }

    #[test]
    fn truncation_detected() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let big = DataType::contiguous(40_000, &dbl()).unwrap().commit();
        let small = DataType::contiguous(20_000, &dbl()).unwrap().commit();
        let (sbuf, _, _, _) = alloc_typed(&mut sim, 0, &big, 1, false, true);
        let (rbuf, _, _, _) = alloc_typed(&mut sim, 1, &small, 1, false, false);
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 1,
                ty: big,
                count: 1,
                buf: sbuf,
            },
        );
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(1),
                ty: small,
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        assert!(matches!(s.result(), Some(Err(_))));
        assert!(matches!(r.result(), Some(Err(_))));
    }

    #[test]
    fn uncommitted_type_fails_fast() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = DataType::vector(4, 1, 2, &dbl()).unwrap(); // no commit
        let buf = sim.world.mem().alloc(MemSpace::Host, 1024).unwrap();
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 0,
                ty: t,
                count: 1,
                buf,
            },
        );
        assert!(matches!(s.result(), Some(Err(MpiError::Type(_)))));
    }

    #[test]
    fn ping_pong_runs_and_reports_time() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let t = tri_ty(128);
        let (b0, _, _, _) = alloc_typed(&mut sim, 0, &t, 1, true, true);
        let (b1, _, _, _) = alloc_typed(&mut sim, 1, &t, 1, true, false);
        let per_iter = ping_pong(
            &mut sim,
            PingPongSpec {
                ty0: t.clone(),
                count0: 1,
                buf0: b0,
                ty1: t,
                count1: 1,
                buf1: b1,
                iters: 3,
            },
        );
        assert!(per_iter > SimTime::ZERO);
        assert!(per_iter < SimTime::from_millis(10));
    }

    #[test]
    fn unexpected_message_handled() {
        // Send arrives before the receive is posted.
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = vec_ty(16);
        let (sbuf, sbytes, sbase, _) = alloc_typed(&mut sim, 0, &t, 1, false, true);
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 5,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
        );
        sim.run(); // message fully arrives, sits in unexpected queue
        assert!(s.is_complete());
        assert_eq!(sim.world.mpi.matcher.pending(), 1);

        let (rbuf, _, rbase, rlen) = alloc_typed(&mut sim, 1, &t, 1, false, false);
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: Some(0),
                tag: Some(5),
                ty: t.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        assert!(r.is_complete());
        let got_buf = sim
            .world
            .mem()
            .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
            .unwrap();
        let got = reference_pack(&t, 1, &got_buf, rbase);
        assert_eq!(got, reference_pack(&t, 1, &sbytes, sbase));
    }

    #[test]
    fn wildcard_receive() {
        let mut sim = Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()));
        let t = vec_ty(16);
        let (sbuf, _, _, _) = alloc_typed(&mut sim, 0, &t, 1, false, true);
        let (rbuf, _, _, _) = alloc_typed(&mut sim, 1, &t, 1, false, false);
        let r = irecv(
            &mut sim,
            RecvArgs {
                rank: 1,
                src: None,
                tag: None,
                ty: t.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        let s = isend(
            &mut sim,
            SendArgs {
                from: 0,
                to: 1,
                tag: 1234,
                ty: t,
                count: 1,
                buf: sbuf,
            },
        );
        wait_all(&mut sim, &[s, r]).unwrap();
    }
}
