//! Request handles and error type.

use crate::world::MpiWorld;
use simcore::Sim;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// Errors surfaced through request completion.
#[derive(Clone, Debug, PartialEq)]
pub enum MpiError {
    /// Send/recv datatype signatures are incompatible.
    Type(datatype::TypeError),
    /// Memory subsystem failure (bad buffer, OOM).
    Mem(String),
    /// Transport failure below the protocol layer (no channel between
    /// the ranks, link torn down).
    Net(netsim::NetError),
    /// An injected fault permanently took out a capability and no
    /// fallback path remained, or the retry/timeout budget ran out.
    Faulted(String),
    /// The simulation drained with requests still incomplete — an
    /// unmatched rendezvous or a protocol deadlock.
    Stalled,
}

impl fmt::Display for MpiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MpiError::Type(e) => write!(f, "datatype error: {e}"),
            MpiError::Mem(e) => write!(f, "memory error: {e}"),
            MpiError::Net(e) => write!(f, "network error: {e}"),
            MpiError::Faulted(e) => write!(f, "fault: {e}"),
            MpiError::Stalled => {
                write!(f, "simulation drained with incomplete requests (deadlock?)")
            }
        }
    }
}

impl std::error::Error for MpiError {}

impl From<datatype::TypeError> for MpiError {
    fn from(e: datatype::TypeError) -> Self {
        MpiError::Type(e)
    }
}

impl From<netsim::NetError> for MpiError {
    fn from(e: netsim::NetError) -> Self {
        MpiError::Net(e)
    }
}

type Waker = Box<dyn FnOnce(&mut Sim<MpiWorld>, &Result<u64, MpiError>)>;

struct RequestState {
    result: Option<Result<u64, MpiError>>,
    completed_at: Option<simcore::SimTime>,
    wakers: Vec<Waker>,
}

/// Completion handle for a nonblocking operation. Cheap to clone; test
/// code typically runs the simulation then inspects the handle, while
/// layered code (collectives) chains continuations with
/// [`Request::on_complete`].
#[derive(Clone)]
pub struct Request {
    state: Rc<RefCell<RequestState>>,
}

impl Request {
    /// Create an unresolved request (public for alternative protocol
    /// implementations such as the baseline comparator).
    #[allow(clippy::new_without_default)]
    pub fn new() -> Request {
        Request {
            state: Rc::new(RefCell::new(RequestState {
                result: None,
                completed_at: None,
                wakers: Vec::new(),
            })),
        }
    }

    /// Resolve the request at the current virtual time and fire any
    /// registered continuations (deferred to the next event so callers
    /// never re-enter protocol state they still hold borrowed).
    pub fn complete(&self, sim: &mut Sim<MpiWorld>, result: Result<u64, MpiError>) {
        let wakers = {
            let mut s = self.state.borrow_mut();
            assert!(s.result.is_none(), "request completed twice");
            s.result = Some(result);
            s.completed_at = Some(sim.now());
            std::mem::take(&mut s.wakers)
        };
        for w in wakers {
            let me = self.clone();
            sim.schedule_now(move |sim| {
                let res = me.state.borrow().result.clone().expect("completed");
                w(sim, &res);
            });
        }
    }

    /// Resolve the request unless it already resolved. Error paths use
    /// this: an abort may race with a completion that beat it by one
    /// event, and the first resolution must stand.
    pub fn complete_if_pending(&self, sim: &mut Sim<MpiWorld>, result: Result<u64, MpiError>) {
        if self.state.borrow().result.is_some() {
            return;
        }
        self.complete(sim, result);
    }

    /// Run `f` when the request completes (immediately — at the next
    /// event — if it already has).
    pub fn on_complete(
        &self,
        sim: &mut Sim<MpiWorld>,
        f: impl FnOnce(&mut Sim<MpiWorld>, &Result<u64, MpiError>) + 'static,
    ) {
        let already = self.state.borrow().result.is_some();
        if already {
            let me = self.clone();
            sim.schedule_now(move |sim| {
                let res = me.state.borrow().result.clone().expect("completed");
                f(sim, &res);
            });
        } else {
            self.state.borrow_mut().wakers.push(Box::new(f));
        }
    }

    pub fn is_complete(&self) -> bool {
        self.state.borrow().result.is_some()
    }

    /// Bytes transferred, if complete and successful.
    pub fn result(&self) -> Option<Result<u64, MpiError>> {
        self.state.borrow().result.clone()
    }

    /// Virtual time at which the request completed.
    pub fn completed_at(&self) -> Option<simcore::SimTime> {
        self.state.borrow().completed_at
    }

    /// Unwrap a successful completion (panics otherwise) — test helper.
    pub fn expect_bytes(&self) -> u64 {
        self.result()
            .expect("request not complete")
            .expect("request failed")
    }
}

/// A request that completes when all of `reqs` complete (with the first
/// error, if any). The joint byte count is the sum.
pub fn join(sim: &mut Sim<MpiWorld>, reqs: &[Request]) -> Request {
    let out = Request::new();
    if reqs.is_empty() {
        out.complete(sim, Ok(0));
        return out;
    }
    let remaining = Rc::new(RefCell::new((reqs.len(), 0u64, None::<MpiError>)));
    for r in reqs {
        let rem = Rc::clone(&remaining);
        let out2 = out.clone();
        r.on_complete(sim, move |sim, res| {
            let finished = {
                let mut st = rem.borrow_mut();
                match res {
                    Ok(n) => st.1 += n,
                    Err(e) => {
                        if st.2.is_none() {
                            st.2 = Some(e.clone());
                        }
                    }
                }
                st.0 -= 1;
                st.0 == 0
            };
            if finished {
                let st = rem.borrow();
                match &st.2 {
                    Some(e) => out2.complete(sim, Err(e.clone())),
                    None => out2.complete(sim, Ok(st.1)),
                }
            }
        });
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use simcore::SimTime;

    fn sim() -> Sim<MpiWorld> {
        Sim::new(MpiWorld::two_ranks_ib(MpiConfig::default()))
    }

    #[test]
    fn lifecycle() {
        let mut s = sim();
        let r = Request::new();
        assert!(!r.is_complete());
        assert!(r.result().is_none());
        s.schedule_at(SimTime::from_micros(5), {
            let r = r.clone();
            move |sim| r.complete(sim, Ok(1024))
        });
        s.run();
        assert!(r.is_complete());
        assert_eq!(r.expect_bytes(), 1024);
        assert_eq!(r.completed_at(), Some(SimTime::from_micros(5)));
    }

    #[test]
    #[should_panic(expected = "completed twice")]
    fn double_completion_is_a_bug() {
        let mut s = sim();
        let r = Request::new();
        r.complete(&mut s, Ok(0));
        r.complete(&mut s, Ok(0));
    }

    #[test]
    fn error_propagation() {
        let mut s = sim();
        let r = Request::new();
        r.complete(
            &mut s,
            Err(MpiError::Type(datatype::TypeError::SignatureMismatch)),
        );
        assert!(matches!(r.result(), Some(Err(MpiError::Type(_)))));
    }

    #[test]
    fn wakers_fire_on_completion() {
        let mut s = sim();
        let r = Request::new();
        let hits = Rc::new(RefCell::new(0));
        for _ in 0..3 {
            let h = Rc::clone(&hits);
            r.on_complete(&mut s, move |_, res| {
                assert!(matches!(res, Ok(7)));
                *h.borrow_mut() += 1;
            });
        }
        r.complete(&mut s, Ok(7));
        s.run();
        assert_eq!(*hits.borrow(), 3);
    }

    #[test]
    fn waker_after_completion_fires_too() {
        let mut s = sim();
        let r = Request::new();
        r.complete(&mut s, Ok(1));
        let hit = Rc::new(RefCell::new(false));
        let h = Rc::clone(&hit);
        r.on_complete(&mut s, move |_, _| *h.borrow_mut() = true);
        s.run();
        assert!(*hit.borrow());
    }

    #[test]
    fn join_waits_for_all_and_sums() {
        let mut s = sim();
        let a = Request::new();
        let b = Request::new();
        let j = join(&mut s, &[a.clone(), b.clone()]);
        a.complete(&mut s, Ok(10));
        assert!(!j.is_complete());
        s.run();
        assert!(!j.is_complete());
        b.complete(&mut s, Ok(5));
        s.run();
        assert_eq!(j.expect_bytes(), 15);
    }

    #[test]
    fn join_propagates_errors() {
        let mut s = sim();
        let a = Request::new();
        let b = Request::new();
        let j = join(&mut s, &[a.clone(), b.clone()]);
        a.complete(&mut s, Err(MpiError::Mem("boom".into())));
        b.complete(&mut s, Ok(5));
        s.run();
        assert!(matches!(j.result(), Some(Err(MpiError::Mem(_)))));
    }

    #[test]
    fn join_of_nothing_completes_immediately() {
        let mut s = sim();
        let j = join(&mut s, &[]);
        assert!(j.is_complete());
    }
}
