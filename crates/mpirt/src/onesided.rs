//! One-sided communication (RMA windows, `MPI_Put` / `MPI_Get`).
//!
//! The paper points out that a committed datatype serves "any
//! point-to-point, collective, I/O and one-sided" operation. This
//! module exposes the GPU datatype engine through an RMA-style API:
//! each rank contributes a buffer to a [`Win`]; `put` and `get` move
//! typed data against a *target-side datatype the origin specifies*,
//! with no receive posted at the target.
//!
//! Data movement reuses the exact protocol machinery of the two-sided
//! path (pipelined IPC RDMA or copy-in/out, with the contiguous fast
//! paths): on real hardware the HCA/IPC mapping makes those transfers
//! genuinely one-sided; in the model the "target-side" pack/unpack
//! kernels run on the target GPU either way, which matches where the
//! paper executes them.

use crate::protocol::{run_transfer, Side};
use crate::request::{MpiError, Request};
use crate::world::MpiWorld;
use datatype::{DataType, Signature};
use memsim::Ptr;
use simcore::Sim;

/// An RMA window: one exposed buffer per rank.
#[derive(Clone)]
pub struct Win {
    bufs: Vec<Ptr>,
    sizes: Vec<u64>,
}

impl Win {
    /// Expose `bufs[r]` (of `sizes[r]` bytes) from each rank `r`
    /// (`MPI_Win_create`).
    pub fn create(sim: &Sim<MpiWorld>, bufs: Vec<Ptr>, sizes: Vec<u64>) -> Win {
        assert_eq!(bufs.len(), sizes.len());
        assert_eq!(bufs.len(), sim.world.mpi.ranks.len(), "one buffer per rank");
        Win { bufs, sizes }
    }

    pub fn buffer(&self, rank: usize) -> Ptr {
        self.bufs[rank]
    }

    fn check_target(&self, rank: usize, disp: u64, ty: &DataType, count: u64) {
        let span = disp as i64 + count as i64 * ty.extent();
        assert!(
            span as u64 <= self.sizes[rank],
            "RMA access [{disp}, {span}) exceeds rank {rank}'s {}-byte window",
            self.sizes[rank]
        );
    }
}

/// Typed access description for one side of an RMA operation.
#[derive(Clone)]
pub struct RmaArgs {
    pub ty: DataType,
    pub count: u64,
}

fn check_sigs(
    sim: &mut Sim<MpiWorld>,
    a: (&DataType, u64),
    b: (&DataType, u64),
    req: &Request,
) -> bool {
    let sa = Signature::of(a.0, a.1);
    let sb = Signature::of(b.0, b.1);
    if !sa.matches(&sb) {
        req.complete(
            sim,
            Err(MpiError::Type(datatype::TypeError::SignatureMismatch)),
        );
        return false;
    }
    true
}

/// `MPI_Put`: move typed data from the origin's buffer into the target's
/// window. Completes when the data has landed at the target.
#[allow(clippy::too_many_arguments)]
pub fn put(
    sim: &mut Sim<MpiWorld>,
    win: &Win,
    origin_rank: usize,
    origin: RmaArgs,
    origin_buf: Ptr,
    target_rank: usize,
    target_disp: u64,
    target: RmaArgs,
) -> Request {
    let req = Request::new();
    if !origin.ty.is_committed() || !target.ty.is_committed() {
        req.complete(sim, Err(MpiError::Type(datatype::TypeError::NotCommitted)));
        return req;
    }
    if !check_sigs(
        sim,
        (&origin.ty, origin.count),
        (&target.ty, target.count),
        &req,
    ) {
        return req;
    }
    win.check_target(target_rank, target_disp, &target.ty, target.count);
    let send = Side {
        rank: origin_rank,
        ty: origin.ty,
        count: origin.count,
        buf: origin_buf,
    };
    let recv = Side {
        rank: target_rank,
        ty: target.ty,
        count: target.count,
        buf: win.buffer(target_rank).add(target_disp),
    };
    // The origin's request tracks target-side completion (strictest
    // interpretation — data visible at the target); the internal send
    // handle is dropped.
    let send_req = Request::new();
    run_transfer(sim, send, recv, send_req, req.clone());
    req
}

/// `MPI_Get`: move typed data from the target's window into the
/// origin's buffer. Completes when the data is in the origin buffer.
#[allow(clippy::too_many_arguments)]
pub fn get(
    sim: &mut Sim<MpiWorld>,
    win: &Win,
    origin_rank: usize,
    origin: RmaArgs,
    origin_buf: Ptr,
    target_rank: usize,
    target_disp: u64,
    target: RmaArgs,
) -> Request {
    let req = Request::new();
    if !origin.ty.is_committed() || !target.ty.is_committed() {
        req.complete(sim, Err(MpiError::Type(datatype::TypeError::NotCommitted)));
        return req;
    }
    if !check_sigs(
        sim,
        (&origin.ty, origin.count),
        (&target.ty, target.count),
        &req,
    ) {
        return req;
    }
    win.check_target(target_rank, target_disp, &target.ty, target.count);
    let send = Side {
        rank: target_rank,
        ty: target.ty,
        count: target.count,
        buf: win.buffer(target_rank).add(target_disp),
    };
    let recv = Side {
        rank: origin_rank,
        ty: origin.ty,
        count: origin.count,
        buf: origin_buf,
    };
    let send_req = Request::new();
    run_transfer(sim, send, recv, send_req, req.clone());
    req
}

/// `MPI_Win_fence`: synchronize all ranks (a barrier in this
/// active-target model).
pub fn fence(sim: &mut Sim<MpiWorld>, epoch: u64) -> Request {
    crate::coll::barrier(sim, 1_000_000 + epoch)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MpiConfig;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use gpusim::GpuWorld as _;
    use memsim::MemSpace;

    fn tri(n: u64) -> DataType {
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit()
    }

    fn world_and_win(ty: &DataType) -> (Sim<MpiWorld>, Win, i64, usize) {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let (base, len) = buffer_span(ty, 1);
        let mut bufs = Vec::new();
        for r in 0..2 {
            let gpu = sim.world.mpi.ranks[r].gpu;
            let b = sim
                .world
                .mem()
                .alloc(MemSpace::Device(gpu), (base as usize + len) as u64)
                .unwrap();
            bufs.push(b);
        }
        let sizes = vec![(base as usize + len) as u64; 2];
        let win = Win::create(&sim, bufs, sizes);
        (sim, win, base, len)
    }

    #[test]
    fn put_moves_typed_data() {
        let t = tri(128);
        let (mut sim, win, base, len) = world_and_win(&t);
        let data = pattern(len);
        let origin = win.buffer(0).add(base as u64);
        sim.world
            .mem()
            .write(win.buffer(0), &vec![0; base as usize])
            .unwrap();
        sim.world.mem().write(origin, &data).unwrap();
        let req = put(
            &mut sim,
            &win,
            0,
            RmaArgs {
                ty: t.clone(),
                count: 1,
            },
            origin,
            1,
            base as u64,
            RmaArgs {
                ty: t.clone(),
                count: 1,
            },
        );
        sim.run();
        assert_eq!(req.expect_bytes(), t.size());
        let got = sim
            .world
            .mem()
            .read_vec(win.buffer(1).add(base as u64), len as u64)
            .unwrap();
        assert_eq!(
            reference_pack(&t, 1, &got, 0),
            reference_pack(&t, 1, &data, 0)
        );
    }

    #[test]
    fn get_pulls_typed_data() {
        let t = tri(128);
        let (mut sim, win, base, len) = world_and_win(&t);
        let data = pattern(len);
        let target = win.buffer(1).add(base as u64);
        sim.world.mem().write(target, &data).unwrap();
        let origin = win.buffer(0).add(base as u64);
        let req = get(
            &mut sim,
            &win,
            0,
            RmaArgs {
                ty: t.clone(),
                count: 1,
            },
            origin,
            1,
            base as u64,
            RmaArgs {
                ty: t.clone(),
                count: 1,
            },
        );
        sim.run();
        assert_eq!(req.expect_bytes(), t.size());
        let got = sim.world.mem().read_vec(origin, len as u64).unwrap();
        assert_eq!(
            reference_pack(&t, 1, &got, 0),
            reference_pack(&t, 1, &data, 0)
        );
    }

    #[test]
    fn put_with_layout_reshape() {
        // Origin vector, target contiguous: the RMA analogue of the
        // FFT reshape.
        let v = DataType::vector(64, 4, 8, &DataType::double())
            .unwrap()
            .commit();
        let c = DataType::contiguous(256, &DataType::double())
            .unwrap()
            .commit();
        let (mut sim, win, base, len) = world_and_win(&v);
        let data = pattern(len);
        let origin = win.buffer(0).add(base as u64);
        sim.world.mem().write(origin, &data).unwrap();
        let req = put(
            &mut sim,
            &win,
            0,
            RmaArgs {
                ty: v.clone(),
                count: 1,
            },
            origin,
            1,
            0,
            RmaArgs { ty: c, count: 1 },
        );
        sim.run();
        assert_eq!(req.expect_bytes(), v.size());
        let got = sim.world.mem().read_vec(win.buffer(1), v.size()).unwrap();
        assert_eq!(got, reference_pack(&v, 1, &data, 0));
    }

    #[test]
    fn signature_mismatch_rejected() {
        let t = tri(64);
        let (mut sim, win, base, _) = world_and_win(&t);
        let wrong = DataType::contiguous(10, &DataType::int()).unwrap().commit();
        let req = put(
            &mut sim,
            &win,
            0,
            RmaArgs { ty: t, count: 1 },
            win.buffer(0).add(base as u64),
            1,
            base as u64,
            RmaArgs {
                ty: wrong,
                count: 1,
            },
        );
        assert!(matches!(req.result(), Some(Err(MpiError::Type(_)))));
    }

    #[test]
    #[should_panic(expected = "exceeds rank")]
    fn out_of_window_access_rejected() {
        let t = tri(64);
        let (mut sim, win, base, _) = world_and_win(&t);
        let _ = put(
            &mut sim,
            &win,
            0,
            RmaArgs {
                ty: t.clone(),
                count: 1,
            },
            win.buffer(0).add(base as u64),
            1,
            u64::MAX / 4,
            RmaArgs { ty: t, count: 1 },
        );
    }

    #[test]
    fn fence_synchronizes() {
        let t = tri(64);
        let (mut sim, _win, _, _) = world_and_win(&t);
        let f = fence(&mut sim, 0);
        sim.run();
        assert!(f.is_complete());
    }
}
