//! Message-level scale model: the paper's collectives at 256–4096 ranks.
//!
//! The full runtime ([`crate::api`], [`crate::protocol`]) models every
//! fragment, kernel and DMA of a transfer; its world is `Rc`/`RefCell`
//! state that can only ever run single-threaded. This module trades
//! that fidelity for scale: each rank is a small state machine over
//! *whole messages*, costed by [`netsim::Topology`] latency/bandwidth
//! plus a per-rank NIC serialization point — exactly the granularity
//! the sharded engine ([`simcore::shard`]) can partition across
//! worker threads under conservative lookahead.
//!
//! Determinism is the design center, not an afterthought:
//!
//! * all randomness comes from per-rank streams
//!   ([`SimRng::for_stream`]), so draw order cannot depend on shard
//!   count or worker interleaving;
//! * fault injection uses a per-rank [`FaultSim`]
//!   ([`FaultSim::for_rank`]) rolled at send time, charged as launch
//!   delay and retransmit penalties;
//! * every rank consumes messages in the engine's
//!   `(time, src, seq)` total order; messages that arrive before the
//!   rank reaches their program step are buffered in a `BTreeMap` and
//!   replayed in key order.
//!
//! The result: an N-shard run is *bit-identical* — timestamps,
//! counters, trace — to the 1-shard run (property-tested in
//! `tests/shard_equivalence.rs`), so parallelism is purely a
//! wall-clock optimization.
//!
//! Collective algorithms mirror the classic Open MPI/MPICH defaults at
//! message granularity: binomial-tree broadcast, ring allgather,
//! pairwise-rotation alltoall, dissemination barrier, and ring RMA
//! put/get epochs (data + ack, request + data).

use faultsim::{FaultDecision, FaultOp, FaultPlan, FaultSim};
use netsim::Topology;
use simcore::rng::SimRng;
use simcore::shard::{Envelope, Partition, ShardCtx, ShardModel, ShardedSim};
use simcore::time::SimTime;
use simcore::trace::names;
use simcore::{Tracer, Track};
use std::collections::BTreeMap;
use std::ops::Range;

/// Per-send CPU/doorbell overhead, ns. Strictly positive so every send
/// lands in the future (the sharded engine's ordering requirement).
const SEND_OVERHEAD_NS: u64 = 50;
/// Wire size of control messages (acks, get requests).
const CTRL_BYTES: u64 = 16;
/// First retransmit penalty after a transient send fault; doubles per
/// attempt.
const RETRY_BASE_NS: u64 = 1_000;
/// Give up retrying after this many transient hits on one send; the
/// message still goes out (the runtime's last resort path).
const MAX_RETRIES: u32 = 6;
/// Cost of failing over after a permanent capability loss: the message
/// rides a (much slower) fallback path once, then sends are normal-cost
/// but degraded by the lost capability's absence for the rest of the
/// run via `FaultSim::slowdown`.
const LOST_PENALTY_NS: u64 = 20_000;

// ---------------------------------------------------------------------
// Programs
// ---------------------------------------------------------------------

/// One collective (or RMA epoch) in a scale program. Every rank runs
/// the same program; an op completes per-rank when that rank has sent
/// and received everything its role requires.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ScaleOp {
    /// Binomial-tree broadcast of `bytes` from `root`.
    Bcast { root: u32, bytes: u64 },
    /// Ring allgather; each rank contributes `bytes`.
    Allgather { bytes: u64 },
    /// Pairwise-rotation alltoall; `bytes` per rank pair.
    Alltoall { bytes: u64 },
    /// Dissemination barrier (⌈log₂ n⌉ rounds of control messages).
    Barrier,
    /// RMA epoch: every rank puts `bytes` to its right neighbor and
    /// waits for the ack plus the incoming put from its left neighbor.
    PutRing { bytes: u64 },
    /// RMA epoch: every rank gets `bytes` from its right neighbor
    /// (request + data) and serves its left neighbor's request.
    GetRing { bytes: u64 },
}

impl ScaleOp {
    /// Rounds the op needs for a job of `n` ranks.
    fn rounds(self, n: u32) -> u32 {
        match self {
            ScaleOp::Bcast { .. } => 1,
            ScaleOp::Allgather { .. } | ScaleOp::Alltoall { .. } => n - 1,
            ScaleOp::Barrier => ceil_log2(n),
            ScaleOp::PutRing { .. } | ScaleOp::GetRing { .. } => {
                if n > 1 {
                    1
                } else {
                    0
                }
            }
        }
    }
}

fn ceil_log2(n: u32) -> u32 {
    if n <= 1 {
        0
    } else {
        32 - (n - 1).leading_zeros()
    }
}

/// A seeded random mix of all op kinds — the workload generator the
/// equivalence property and the soak bench share. The program is a
/// *global* input (every rank runs the same list), so it draws from its
/// own dedicated stream, not any rank's.
pub fn random_program(seed: u64, ranks: u32, len: usize) -> Vec<ScaleOp> {
    let mut rng = SimRng::for_stream(seed, 0x5CA1E);
    (0..len)
        .map(|_| {
            let bytes = 64u64 << rng.range_u64(0, 9); // 64 B .. 16 KiB
            match rng.range_u64(0, 6) {
                0 => ScaleOp::Bcast {
                    root: rng.range_u64(0, ranks as u64) as u32,
                    bytes,
                },
                1 => ScaleOp::Allgather { bytes },
                2 => ScaleOp::Alltoall { bytes },
                3 => ScaleOp::Barrier,
                4 => ScaleOp::PutRing { bytes },
                _ => ScaleOp::GetRing { bytes },
            }
        })
        .collect()
}

/// Everything needed to run a scale job.
#[derive(Clone, Debug)]
pub struct ScaleConfig {
    pub ranks: u32,
    pub topo: Topology,
    pub program: Vec<ScaleOp>,
    /// Fault plan, injected per rank from `(plan.seed, rank)` streams.
    pub fault_plan: FaultPlan,
    /// Seed for per-rank send jitter streams.
    pub seed: u64,
}

impl ScaleConfig {
    pub fn new(ranks: u32, program: Vec<ScaleOp>) -> ScaleConfig {
        ScaleConfig {
            ranks,
            topo: Topology::default_for(ranks),
            program,
            fault_plan: FaultPlan::empty(),
            seed: 0,
        }
    }
}

// ---------------------------------------------------------------------
// Messages
// ---------------------------------------------------------------------

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MsgKind {
    /// Self-delivered starting gun (injected before the run).
    Kick,
    /// Payload-bearing message.
    Data,
    /// Zero-payload completion/arrival notification.
    Ack,
    /// RMA get request.
    Req,
}

/// The one message type on the wire. `step`/`round` identify the
/// program position the sender was in, so a receiver that is behind
/// can buffer and replay deterministically.
#[derive(Clone, Copy, Debug)]
pub struct ScaleMsg {
    pub step: u32,
    pub round: u32,
    pub kind: MsgKind,
    pub bytes: u64,
}

const KICK: ScaleMsg = ScaleMsg {
    step: 0,
    round: 0,
    kind: MsgKind::Kick,
    bytes: 0,
};

// ---------------------------------------------------------------------
// Per-rank state machine
// ---------------------------------------------------------------------

struct RankSt {
    rank: u32,
    /// Current program index; `== program.len()` means done.
    step: u32,
    round: u32,
    /// Messages still required to finish the current round.
    pending: u32,
    /// Early arrivals, keyed `(step, round, src, seq)` — replayed in
    /// key order when the rank reaches that program position.
    buffered: BTreeMap<(u32, u32, u32, u32), (MsgKind, u64)>,
    /// The NIC is busy serializing until this time; sends queue behind.
    nic_free: SimTime,
    rng: SimRng,
    faults: FaultSim,
    /// Virtual completion time of each finished step (digest input).
    completions: Vec<u64>,
}

/// Immutable job shape shared by every rank of a shard.
struct Shape {
    ranks: u32,
    topo: Topology,
    program: Vec<ScaleOp>,
}

/// One shard's block of rank state machines.
pub struct ScaleModel {
    shape: Shape,
    base: u32,
    states: Vec<RankSt>,
}

impl ScaleModel {
    fn new(cfg: &ScaleConfig, block: Range<u32>) -> ScaleModel {
        ScaleModel {
            shape: Shape {
                ranks: cfg.ranks,
                topo: cfg.topo,
                program: cfg.program.clone(),
            },
            base: block.start,
            states: block
                .map(|r| RankSt {
                    rank: r,
                    step: 0,
                    round: 0,
                    pending: 0,
                    buffered: BTreeMap::new(),
                    nic_free: SimTime::ZERO,
                    rng: SimRng::for_stream(cfg.seed, r as u64),
                    faults: FaultSim::for_rank(&cfg.fault_plan, r),
                    completions: Vec::new(),
                })
                .collect(),
        }
    }
}

/// Send one message: jittered CPU overhead, fault rolls at launch time
/// (retransmit penalties for transients, a one-shot failover penalty on
/// permanent loss), degrade-scaled wire serialization on the rank's NIC,
/// then topology latency to arrival.
fn send_msg(
    shape: &Shape,
    st: &mut RankSt,
    ctx: &mut ShardCtx<'_, ScaleMsg>,
    dst: u32,
    kind: MsgKind,
    bytes: u64,
) {
    let jitter = st.rng.range_u64(0, 16);
    let mut launch = ctx.now() + SimTime::from_nanos(SEND_OVERHEAD_NS + jitter);
    if st.nic_free > launch {
        launch = st.nic_free;
    }
    let op = if kind == MsgKind::Data {
        FaultOp::WireCopy
    } else {
        FaultOp::AmDeliver
    };
    let mut slowdown = 1.0;
    if st.faults.active() {
        let mut attempts = 0;
        loop {
            match st.faults.roll(op, launch) {
                FaultDecision::Ok => break,
                FaultDecision::Transient => {
                    ctx.trace.count(names::RETRY_ATTEMPTS, st.rank, 0, 1);
                    ctx.trace
                        .count(names::FAULT_INJECTED, st.rank, op.index() as u32, 1);
                    attempts += 1;
                    launch += SimTime::from_nanos(RETRY_BASE_NS << attempts.min(6));
                    if attempts >= MAX_RETRIES {
                        break;
                    }
                }
                FaultDecision::Lost => {
                    ctx.trace
                        .count(names::FAULT_INJECTED, st.rank, op.index() as u32, 1);
                    ctx.trace.count(names::FALLBACK_EVENTS, st.rank, 0, 1);
                    launch += SimTime::from_nanos(LOST_PENALTY_NS);
                    break;
                }
            }
        }
        slowdown = st.faults.slowdown(op, launch);
    }
    let wire = shape.topo.bandwidth(st.rank, dst).time_for(bytes);
    let wire = SimTime::from_nanos((wire.as_nanos() as f64 * slowdown).ceil() as u64);
    st.nic_free = launch + wire;
    let at = st.nic_free + shape.topo.latency(shape.ranks, st.rank, dst);
    ctx.send(
        dst,
        at,
        ScaleMsg {
            step: st.step,
            round: st.round,
            kind,
            bytes,
        },
    );
}

/// Binomial-tree children of `rank` for a bcast rooted at `root`:
/// descending sub-tree masks, MPICH order.
fn bcast_children(shape: &Shape, st: &mut RankSt, ctx: &mut ShardCtx<'_, ScaleMsg>) {
    let (root, bytes) = match shape.program[st.step as usize] {
        ScaleOp::Bcast { root, bytes } => (root, bytes),
        other => unreachable!("bcast_children in {other:?}"),
    };
    let n = shape.ranks;
    let v = (st.rank + n - root % n) % n; // relative rank
    let mut mask = if v == 0 {
        // Root: start at the largest power of two below n.
        let mut m = 1u32;
        while m < n {
            m <<= 1;
        }
        m >> 1
    } else {
        (v & v.wrapping_neg()) >> 1 // below our lowest set bit
    };
    while mask > 0 {
        if v + mask < n {
            let dst = (v + mask + root) % n;
            send_msg(shape, st, ctx, dst, MsgKind::Data, bytes);
        }
        mask >>= 1;
    }
}

/// Entering round `st.round` of the current op: emit its sends and set
/// how many receives finish it.
fn start_round(shape: &Shape, st: &mut RankSt, ctx: &mut ShardCtx<'_, ScaleMsg>) {
    let n = shape.ranks;
    let r = st.rank;
    match shape.program[st.step as usize] {
        ScaleOp::Bcast { root, .. } => {
            let v = (r + n - root % n) % n;
            if v == 0 {
                st.pending = 0;
                bcast_children(shape, st, ctx);
            } else {
                st.pending = 1;
            }
        }
        ScaleOp::Allgather { bytes } => {
            st.pending = 1;
            send_msg(shape, st, ctx, (r + 1) % n, MsgKind::Data, bytes);
        }
        ScaleOp::Alltoall { bytes } => {
            st.pending = 1;
            let peer = (r + st.round + 1) % n;
            send_msg(shape, st, ctx, peer, MsgKind::Data, bytes);
        }
        ScaleOp::Barrier => {
            st.pending = 1;
            let peer = (r + (1 << st.round)) % n;
            send_msg(shape, st, ctx, peer, MsgKind::Ack, CTRL_BYTES);
        }
        ScaleOp::PutRing { bytes } => {
            // Await the ack of our put and the put from our left.
            st.pending = 2;
            send_msg(shape, st, ctx, (r + 1) % n, MsgKind::Data, bytes);
        }
        ScaleOp::GetRing { .. } => {
            // Await our get's data and our left neighbor's request.
            st.pending = 2;
            send_msg(shape, st, ctx, (r + 1) % n, MsgKind::Req, CTRL_BYTES);
        }
    }
}

/// Consume one message belonging to the current `(step, round)`.
fn on_msg(
    shape: &Shape,
    st: &mut RankSt,
    ctx: &mut ShardCtx<'_, ScaleMsg>,
    src: u32,
    kind: MsgKind,
) {
    debug_assert!(st.pending > 0, "unexpected message in a settled round");
    st.pending -= 1;
    match shape.program[st.step as usize] {
        ScaleOp::Bcast { .. } => bcast_children(shape, st, ctx),
        ScaleOp::PutRing { .. } => {
            if kind == MsgKind::Data {
                // The put landed; ack the origin.
                send_msg(shape, st, ctx, src, MsgKind::Ack, CTRL_BYTES);
            }
        }
        ScaleOp::GetRing { bytes } => {
            if kind == MsgKind::Req {
                // Serve the neighbor's get.
                send_msg(shape, st, ctx, src, MsgKind::Data, bytes);
            }
        }
        ScaleOp::Allgather { .. } | ScaleOp::Alltoall { .. } | ScaleOp::Barrier => {}
    }
}

/// Drive the rank forward: replay buffered arrivals for the current
/// round, close finished rounds, start the next, complete steps — until
/// it blocks on the network or finishes the program.
fn advance(shape: &Shape, st: &mut RankSt, ctx: &mut ShardCtx<'_, ScaleMsg>) {
    loop {
        if st.step as usize == shape.program.len() {
            debug_assert!(st.buffered.is_empty(), "done rank holds buffered messages");
            return;
        }
        while st.pending > 0 {
            let lo = (st.step, st.round, 0, 0);
            let hi = (st.step, st.round, u32::MAX, u32::MAX);
            match st.buffered.range(lo..=hi).next().map(|(k, v)| (*k, *v)) {
                Some((key, (kind, _bytes))) => {
                    st.buffered.remove(&key);
                    on_msg(shape, st, ctx, key.2, kind);
                }
                None => return, // blocked on the network
            }
        }
        // Round settled.
        let op = shape.program[st.step as usize];
        st.round += 1;
        if st.round < op.rounds(shape.ranks) {
            start_round(shape, st, ctx);
        } else {
            st.completions.push(ctx.now().as_nanos());
            ctx.trace.instant(
                ctx.now(),
                names::CAT_SCALE,
                names::SPAN_SCALE_OP,
                Track::Cpu { rank: st.rank },
            );
            st.step += 1;
            st.round = 0;
            if (st.step as usize) < shape.program.len()
                && shape.program[st.step as usize].rounds(shape.ranks) > 0
            {
                start_round(shape, st, ctx);
            }
        }
    }
}

impl ShardModel for ScaleModel {
    type Msg = ScaleMsg;

    fn deliver(&mut self, ctx: &mut ShardCtx<'_, ScaleMsg>, env: Envelope<ScaleMsg>) {
        let shape = &self.shape;
        let st = &mut self.states[(env.dst - self.base) as usize];
        match env.msg.kind {
            MsgKind::Kick => {
                debug_assert!(st.step == 0 && st.round == 0 && st.pending == 0);
                if !shape.program.is_empty() && shape.program[0].rounds(shape.ranks) > 0 {
                    start_round(shape, st, ctx);
                }
            }
            kind => {
                ctx.trace.count(names::SCALE_MSGS, st.rank, 0, 1);
                ctx.trace
                    .count(names::SCALE_DELIVERED_BYTES, st.rank, 0, env.msg.bytes);
                if (env.msg.step, env.msg.round) == (st.step, st.round) {
                    on_msg(shape, st, ctx, env.src, kind);
                } else {
                    debug_assert!(
                        (env.msg.step, env.msg.round) > (st.step, st.round),
                        "message for a settled round: rank {} at {:?} got {:?} from {}",
                        st.rank,
                        (st.step, st.round),
                        (env.msg.step, env.msg.round),
                        env.src
                    );
                    st.buffered.insert(
                        (env.msg.step, env.msg.round, env.src, env.seq),
                        (kind, env.msg.bytes),
                    );
                    return; // not ours yet; nothing can have unblocked
                }
            }
        }
        advance(shape, st, ctx);
    }
}

// ---------------------------------------------------------------------
// Running a job
// ---------------------------------------------------------------------

/// Everything a completed scale run reports. All fields are pure
/// functions of the config — independent of shard count and thread
/// interleaving.
pub struct ScaleReport {
    pub ranks: u32,
    pub shards: u32,
    /// Total model deliveries (kicks included).
    pub executed: u64,
    /// Latest virtual delivery time.
    pub end_time: SimTime,
    /// Non-kick messages delivered (`scale.msgs`).
    pub msgs: u64,
    /// Payload + control bytes delivered (`scale.delivered.bytes`).
    pub bytes: u64,
    /// FNV-1a over every rank's per-step completion times: the
    /// bit-identity fingerprint.
    pub digest: u64,
    /// Deterministically merged trace (counters always; spans/instants
    /// when recording was on).
    pub trace: Tracer,
}

/// Build the sharded engine for `cfg` without running it (the soak
/// bench wants to time `run` alone).
pub fn build(cfg: &ScaleConfig, shards: u32) -> ShardedSim<ScaleModel> {
    let part = Partition::new(cfg.ranks, shards);
    let models = (0..shards)
        .map(|s| ScaleModel::new(cfg, part.range(s)))
        .collect();
    let topo = cfg.topo;
    let ranks = cfg.ranks;
    let mut sim = ShardedSim::new(part, models, move |a, b| topo.latency(ranks, a, b));
    for r in 0..cfg.ranks {
        sim.inject(r, r, SimTime::from_nanos(1), KICK);
    }
    sim
}

/// Run `cfg` on `shards` shards.
pub fn run(cfg: &ScaleConfig, shards: u32, record: bool) -> ScaleReport {
    let mut sim = build(cfg, shards);
    sim.set_recording(record);
    finish(cfg, shards, sim.run())
}

/// Fold a finished engine run into a [`ScaleReport`].
pub fn finish(
    cfg: &ScaleConfig,
    shards: u32,
    run: simcore::shard::ShardRun<ScaleModel>,
) -> ScaleReport {
    let mut digest: u64 = 0xcbf29ce484222325;
    let mut fnv = |x: u64| {
        digest ^= x;
        digest = digest.wrapping_mul(0x100000001b3);
    };
    for model in &run.models {
        for st in &model.states {
            debug_assert_eq!(
                st.completions.len(),
                cfg.program.len(),
                "rank {} finished {} of {} steps",
                st.rank,
                st.completions.len(),
                cfg.program.len()
            );
            fnv(st.rank as u64);
            for &c in &st.completions {
                fnv(c);
            }
        }
    }
    ScaleReport {
        ranks: cfg.ranks,
        shards,
        executed: run.executed,
        end_time: run.end_time,
        msgs: run.trace.counter(names::SCALE_MSGS),
        bytes: run.trace.counter(names::SCALE_DELIVERED_BYTES),
        digest,
        trace: run.trace,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use faultsim::FaultKind;

    fn report_key(r: &ScaleReport) -> (u64, u64, u64, u64, u64) {
        (r.executed, r.end_time.as_nanos(), r.msgs, r.bytes, r.digest)
    }

    #[test]
    fn bcast_sends_one_data_message_per_non_root() {
        let cfg = ScaleConfig::new(
            8,
            vec![ScaleOp::Bcast {
                root: 3,
                bytes: 4096,
            }],
        );
        let r = run(&cfg, 1, false);
        assert_eq!(r.msgs, 7);
        assert_eq!(r.bytes, 7 * 4096);
        assert_eq!(r.executed, 8 + 7, "kicks + data");
    }

    #[test]
    fn alltoall_is_pairwise_rotation() {
        let n = 6u64;
        let cfg = ScaleConfig::new(n as u32, vec![ScaleOp::Alltoall { bytes: 256 }]);
        let r = run(&cfg, 1, false);
        assert_eq!(r.msgs, n * (n - 1));
        assert_eq!(r.bytes, n * (n - 1) * 256);
    }

    #[test]
    fn barrier_and_rma_round_trip() {
        let cfg = ScaleConfig::new(
            5,
            vec![
                ScaleOp::Barrier,
                ScaleOp::PutRing { bytes: 1024 },
                ScaleOp::GetRing { bytes: 1024 },
            ],
        );
        let r = run(&cfg, 1, false);
        // Barrier: 5·⌈log₂5⌉ ctrl msgs; put: 5 data + 5 acks; get: 5
        // reqs + 5 data.
        assert_eq!(r.msgs, 5 * 3 + 10 + 10);
        assert_eq!(
            r.bytes,
            15 * CTRL_BYTES + 5 * 1024 + 5 * CTRL_BYTES + 5 * CTRL_BYTES + 5 * 1024
        );
    }

    #[test]
    fn single_rank_job_degenerates_cleanly() {
        let cfg = ScaleConfig::new(
            1,
            vec![ScaleOp::Bcast { root: 0, bytes: 64 }, ScaleOp::Barrier],
        );
        let r = run(&cfg, 1, false);
        assert_eq!(r.msgs, 0);
        assert_eq!(r.executed, 1, "just the kick");
    }

    #[test]
    fn sharded_run_matches_single_shard_with_faults_on() {
        let mut cfg = ScaleConfig::new(8, random_program(11, 8, 5));
        cfg.fault_plan = FaultPlan::default()
            .with_seed(99)
            .with_rule(None, FaultKind::Transient, 0.05)
            .with_rule(
                Some(FaultOp::WireCopy),
                FaultKind::Degrade { factor: 2.0 },
                1.0,
            );
        cfg.seed = 4;
        let reference = run(&cfg, 1, true);
        for shards in [2, 4, 8] {
            let r = run(&cfg, shards, true);
            assert_eq!(
                report_key(&r),
                report_key(&reference),
                "{shards}-shard run diverged"
            );
            assert_eq!(
                r.trace.chrome_json("scale"),
                reference.trace.chrome_json("scale"),
                "{shards}-shard trace diverged"
            );
        }
    }

    #[test]
    fn transient_faults_delay_but_do_not_change_message_count() {
        let clean = ScaleConfig::new(6, vec![ScaleOp::Allgather { bytes: 2048 }]);
        let mut faulty = clean.clone();
        faulty.fault_plan = FaultPlan::default().with_seed(7).with_rule(
            Some(FaultOp::WireCopy),
            FaultKind::Transient,
            0.5,
        );
        let a = run(&clean, 1, false);
        let b = run(&faulty, 1, false);
        assert_eq!(
            a.msgs, b.msgs,
            "retransmits are charged as delay, not copies"
        );
        assert!(
            b.end_time > a.end_time,
            "retries must cost virtual time: {:?} vs {:?}",
            b.end_time,
            a.end_time
        );
        assert!(b.trace.counter(names::RETRY_ATTEMPTS) > 0);
    }

    #[test]
    fn random_program_is_seed_stable() {
        assert_eq!(random_program(3, 16, 8), random_program(3, 16, 8));
        assert_ne!(random_program(3, 16, 8), random_program(4, 16, 8));
    }
}
