//! Simulated memory spaces.
//!
//! The paper moves bytes between **host memory** and one or more **GPU
//! device memories**, across process boundaries via CUDA IPC / GPUDirect.
//! In this reproduction every space is backed by real host memory behind a
//! slab allocator, and a [`Ptr`] carries *which* space it points into —
//! so the runtime can implement the paper's "is this buffer on a GPU?"
//! detection (`cuPointerGetAttribute` in real CUDA) exactly, and the
//! simulated DMA engines can really move the bytes while the cost models
//! charge virtual time.
//!
//! The crate is purely functional (no virtual time); timing lives in
//! `gpusim` and `netsim`.

pub mod error;
pub mod pool;
pub mod ptr;
pub mod registry;
pub mod space;

pub use error::MemError;
pub use pool::{MemPool, Memory};
pub use ptr::{AllocId, Ptr};
pub use registry::{IpcHandle, Registration, RegistrationTable};
pub use space::{GpuId, MemSpace};
