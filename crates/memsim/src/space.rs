//! Address-space identifiers.

use std::fmt;

/// Index of a simulated GPU in the node topology.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct GpuId(pub u32);

impl GpuId {
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for GpuId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "gpu{}", self.0)
    }
}

/// Which physical memory a [`crate::Ptr`] points into.
///
/// This is the simulation's equivalent of CUDA's unified virtual
/// addressing: given any pointer, the runtime can ask where the memory
/// lives and pick the right movement strategy — exactly the mechanism the
/// paper's GPU-aware Open MPI uses to detect device buffers passed to
/// `MPI_Send`.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum MemSpace {
    /// Ordinary (pageable or pinned) host memory.
    Host,
    /// Memory resident on a specific GPU.
    Device(GpuId),
}

impl MemSpace {
    pub fn is_device(self) -> bool {
        matches!(self, MemSpace::Device(_))
    }

    pub fn is_host(self) -> bool {
        matches!(self, MemSpace::Host)
    }

    /// The GPU this space belongs to, if any.
    pub fn gpu(self) -> Option<GpuId> {
        match self {
            MemSpace::Device(g) => Some(g),
            MemSpace::Host => None,
        }
    }
}

impl fmt::Display for MemSpace {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemSpace::Host => write!(f, "host"),
            MemSpace::Device(g) => write!(f, "{g}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_queries() {
        assert!(MemSpace::Host.is_host());
        assert!(!MemSpace::Host.is_device());
        assert_eq!(MemSpace::Host.gpu(), None);
        let d = MemSpace::Device(GpuId(2));
        assert!(d.is_device());
        assert_eq!(d.gpu(), Some(GpuId(2)));
        assert_eq!(d.to_string(), "gpu2");
    }
}
