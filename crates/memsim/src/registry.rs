//! Memory registration: CUDA IPC export/open, pinned host memory, and
//! UMA zero-copy mappings.
//!
//! Real GPUDirect/IPC requires memory to be *registered* before a peer
//! process or the NIC may touch it, and registration is expensive — the
//! paper's pipelined RDMA protocol exists largely to pay that cost **once**
//! per connection instead of once per fragment. The table below tracks
//! what has been registered so the protocol layers can (a) enforce the
//! precondition and (b) know when they may skip the cost.

use crate::error::MemError;
use crate::ptr::{AllocId, Ptr};
use crate::space::{GpuId, MemSpace};
use simcore::hash::DetHashMap;

/// Kinds of registration a buffer can hold.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Registration {
    /// Exported through CUDA IPC (peer process may map it).
    IpcExport,
    /// Page-locked host memory (required for async DMA and RDMA).
    PinnedHost,
    /// Host memory mapped into a GPU's address space (CUDA zero-copy):
    /// kernels on that GPU may read/write it directly over PCIe.
    ZeroCopy(GpuId),
    /// Registered with the NIC for RDMA.
    Rdma,
}

/// An opaque token a process passes to a peer so the peer can map the
/// exporter's device memory (the simulated `cudaIpcMemHandle_t`).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct IpcHandle {
    pub gpu: GpuId,
    pub alloc: AllocId,
    pub len: u64,
}

/// Tracks registrations per allocation.
#[derive(Default)]
pub struct RegistrationTable {
    regs: DetHashMap<(MemSpace, AllocId), Vec<Registration>>,
}

impl RegistrationTable {
    pub fn new() -> Self {
        Self::default()
    }

    /// Add a registration kind to the allocation behind `ptr`.
    pub fn register(&mut self, ptr: Ptr, kind: Registration) {
        let kinds = self.regs.entry((ptr.space, ptr.alloc)).or_default();
        if !kinds.contains(&kind) {
            kinds.push(kind);
        }
    }

    /// Remove one registration kind.
    pub fn unregister(&mut self, ptr: Ptr, kind: Registration) {
        if let Some(kinds) = self.regs.get_mut(&(ptr.space, ptr.alloc)) {
            kinds.retain(|k| *k != kind);
        }
    }

    /// Drop every registration on an allocation (called on free).
    pub fn drop_all(&mut self, space: MemSpace, alloc: AllocId) {
        self.regs.remove(&(space, alloc));
    }

    pub fn is_registered(&self, ptr: Ptr, kind: Registration) -> bool {
        self.regs
            .get(&(ptr.space, ptr.alloc))
            .is_some_and(|k| k.contains(&kind))
    }

    /// Require a registration, with the error a real stack would raise.
    pub fn require(&self, ptr: Ptr, kind: Registration) -> Result<(), MemError> {
        if self.is_registered(ptr, kind) {
            Ok(())
        } else {
            Err(MemError::NotRegistered(ptr))
        }
    }

    /// Export a device allocation over IPC, yielding the handle the peer
    /// will open. `len` is carried in the handle for peer-side bounds
    /// checks.
    pub fn export_ipc(&mut self, ptr: Ptr, len: u64) -> Result<IpcHandle, MemError> {
        let MemSpace::Device(gpu) = ptr.space else {
            return Err(MemError::WrongSpace {
                ptr,
                expected: MemSpace::Device(GpuId(0)),
            });
        };
        self.register(ptr, Registration::IpcExport);
        Ok(IpcHandle {
            gpu,
            alloc: ptr.alloc,
            len,
        })
    }

    /// Open a peer's IPC handle, producing a pointer into the exporter's
    /// memory. Fails if the exporter never registered (or has freed) the
    /// allocation.
    pub fn open_ipc(&self, handle: IpcHandle) -> Result<Ptr, MemError> {
        let ptr = Ptr {
            space: MemSpace::Device(handle.gpu),
            alloc: handle.alloc,
            offset: 0,
        };
        self.require(ptr, Registration::IpcExport)?;
        Ok(ptr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dptr() -> Ptr {
        Ptr {
            space: MemSpace::Device(GpuId(0)),
            alloc: AllocId(7),
            offset: 0,
        }
    }

    #[test]
    fn register_query_unregister() {
        let mut t = RegistrationTable::new();
        let p = dptr();
        assert!(!t.is_registered(p, Registration::Rdma));
        t.register(p, Registration::Rdma);
        assert!(t.is_registered(p, Registration::Rdma));
        assert!(t.require(p, Registration::Rdma).is_ok());
        t.unregister(p, Registration::Rdma);
        assert!(matches!(
            t.require(p, Registration::Rdma),
            Err(MemError::NotRegistered(_))
        ));
    }

    #[test]
    fn ipc_roundtrip() {
        let mut t = RegistrationTable::new();
        let p = dptr();
        let h = t.export_ipc(p, 4096).unwrap();
        assert_eq!(h.len, 4096);
        let mapped = t.open_ipc(h).unwrap();
        assert_eq!(mapped.alloc, p.alloc);
        assert_eq!(mapped.space, p.space);
    }

    #[test]
    fn ipc_rejects_host_memory() {
        let mut t = RegistrationTable::new();
        let host = Ptr {
            space: MemSpace::Host,
            alloc: AllocId(1),
            offset: 0,
        };
        assert!(t.export_ipc(host, 16).is_err());
    }

    #[test]
    fn open_unexported_handle_fails() {
        let t = RegistrationTable::new();
        let h = IpcHandle {
            gpu: GpuId(0),
            alloc: AllocId(3),
            len: 16,
        };
        assert!(t.open_ipc(h).is_err());
    }

    #[test]
    fn drop_all_clears() {
        let mut t = RegistrationTable::new();
        let p = dptr();
        t.register(p, Registration::Rdma);
        t.register(p, Registration::IpcExport);
        t.drop_all(p.space, p.alloc);
        assert!(!t.is_registered(p, Registration::Rdma));
        assert!(!t.is_registered(p, Registration::IpcExport));
    }

    #[test]
    fn registrations_are_deduplicated() {
        let mut t = RegistrationTable::new();
        let p = dptr();
        t.register(p, Registration::PinnedHost);
        t.register(p, Registration::PinnedHost);
        t.unregister(p, Registration::PinnedHost);
        assert!(!t.is_registered(p, Registration::PinnedHost));
    }
}
