//! Fat pointers into simulated memory.

use crate::space::MemSpace;
use std::fmt;

/// Identifier of one allocation within a pool.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct AllocId(pub u64);

/// A pointer into a simulated memory space: which space, which
/// allocation, and a byte offset within it.
///
/// Unlike a raw address this survives simulation determinism (no ASLR)
/// and lets every access be bounds-checked against its allocation — the
/// simulated analogue of running the whole stack under compute-sanitizer.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct Ptr {
    pub space: MemSpace,
    pub alloc: AllocId,
    pub offset: u64,
}

impl Ptr {
    /// Pointer displaced `bytes` forward.
    #[must_use]
    #[allow(clippy::should_implement_trait)] // deliberate pointer-arithmetic name, like `ptr::add`
    pub fn add(self, bytes: u64) -> Ptr {
        Ptr {
            offset: self.offset + bytes,
            ..self
        }
    }

    /// Pointer displaced by a possibly negative byte count (MPI datatype
    /// lower bounds can be negative relative to the buffer argument).
    #[must_use]
    pub fn offset_by(self, bytes: i64) -> Ptr {
        let off = self.offset as i64 + bytes;
        debug_assert!(off >= 0, "pointer underflow: {self} by {bytes}");
        Ptr {
            offset: off.max(0) as u64,
            ..self
        }
    }

    /// Byte distance to another pointer in the same allocation.
    pub fn distance_to(self, other: Ptr) -> Option<i64> {
        if self.space == other.space && self.alloc == other.alloc {
            Some(other.offset as i64 - self.offset as i64)
        } else {
            None
        }
    }

    /// Does this pointer refer to device memory?
    pub fn is_device(self) -> bool {
        self.space.is_device()
    }

    /// Alignment of the pointed-to address, assuming allocation bases are
    /// maximally aligned (they are: the pools align bases to 512 bytes in
    /// the model, matching `cudaMalloc` guarantees).
    pub fn alignment(self) -> u64 {
        if self.offset == 0 {
            512
        } else {
            1 << self.offset.trailing_zeros().min(9)
        }
    }
}

impl fmt::Display for Ptr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:a{}+{}", self.space, self.alloc.0, self.offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::space::GpuId;

    fn p(off: u64) -> Ptr {
        Ptr {
            space: MemSpace::Device(GpuId(0)),
            alloc: AllocId(3),
            offset: off,
        }
    }

    #[test]
    fn displacement() {
        assert_eq!(p(8).add(8).offset, 16);
        assert_eq!(p(16).offset_by(-8).offset, 8);
        assert_eq!(p(0).distance_to(p(48)), Some(48));
        assert_eq!(p(48).distance_to(p(0)), Some(-48));
    }

    #[test]
    fn distance_across_allocs_is_none() {
        let a = p(0);
        let mut b = p(0);
        b.alloc = AllocId(4);
        assert_eq!(a.distance_to(b), None);
    }

    #[test]
    fn alignment_model() {
        assert_eq!(p(0).alignment(), 512);
        assert_eq!(p(8).alignment(), 8);
        assert_eq!(p(12).alignment(), 4);
        assert_eq!(p(1).alignment(), 1);
        assert_eq!(p(1024).alignment(), 512);
    }
}
