//! Memory-subsystem errors.

use crate::ptr::Ptr;
use crate::space::MemSpace;
use std::fmt;

/// Errors surfaced by the simulated memory system. These mirror the
/// failure modes a real CUDA/verbs stack reports (invalid device pointer,
/// out-of-bounds access, use of unregistered memory for RDMA/IPC).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MemError {
    /// The allocation behind a pointer no longer exists (freed or bogus).
    InvalidPointer(Ptr),
    /// An access `[offset, offset+len)` fell outside the allocation.
    OutOfBounds { ptr: Ptr, len: u64, alloc_len: u64 },
    /// The pool for this space cannot satisfy the allocation.
    OutOfMemory { space: MemSpace, requested: u64 },
    /// Operation required memory registered for IPC/RDMA and it wasn't.
    NotRegistered(Ptr),
    /// A pointer was used in a space it does not belong to.
    WrongSpace { ptr: Ptr, expected: MemSpace },
    /// An injected fault (faultsim plan) failed the operation. Transient
    /// failures may be retried; non-transient ones mean the capability
    /// (e.g. CUDA IPC) is gone for the rest of the run.
    Faulted { transient: bool },
}

impl fmt::Display for MemError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MemError::InvalidPointer(p) => write!(f, "invalid pointer {p}"),
            MemError::OutOfBounds {
                ptr,
                len,
                alloc_len,
            } => write!(
                f,
                "out-of-bounds access at {ptr} len {len} (allocation is {alloc_len} bytes)"
            ),
            MemError::OutOfMemory { space, requested } => {
                write!(f, "out of memory in {space}: requested {requested} bytes")
            }
            MemError::NotRegistered(p) => write!(f, "memory at {p} is not registered"),
            MemError::WrongSpace { ptr, expected } => {
                write!(f, "pointer {ptr} used where {expected} memory was expected")
            }
            MemError::Faulted { transient: true } => write!(f, "injected fault (retriable)"),
            MemError::Faulted { transient: false } => {
                write!(f, "injected fault (capability lost)")
            }
        }
    }
}

impl std::error::Error for MemError {}
