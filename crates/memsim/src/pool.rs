//! Slab allocators backing the simulated memory spaces, and the
//! cross-space byte mover.

use crate::error::MemError;
use crate::ptr::{AllocId, Ptr};
use crate::registry::RegistrationTable;
use crate::space::{GpuId, MemSpace};
use simcore::hash::DetHashMap;
use simcore::par::{par_copy, par_transfer, CopyOp};

/// All allocations living in one memory space.
pub struct MemPool {
    space: MemSpace,
    capacity: u64,
    used: u64,
    peak: u64,
    next_id: u64,
    allocs: DetHashMap<AllocId, Box<[u8]>>,
}

impl MemPool {
    /// Create a pool with a capacity limit (a K40 has 12 GB; the host is
    /// effectively unlimited but still bounded to catch leaks in tests).
    pub fn new(space: MemSpace, capacity: u64) -> Self {
        MemPool {
            space,
            capacity,
            used: 0,
            peak: 0,
            next_id: 0,
            allocs: DetHashMap::default(),
        }
    }

    pub fn space(&self) -> MemSpace {
        self.space
    }

    /// Allocate `len` zero-initialized bytes.
    pub fn alloc(&mut self, len: u64) -> Result<Ptr, MemError> {
        if self.used + len > self.capacity {
            return Err(MemError::OutOfMemory {
                space: self.space,
                requested: len,
            });
        }
        let id = AllocId(self.next_id);
        self.next_id += 1;
        self.allocs
            .insert(id, vec![0u8; len as usize].into_boxed_slice());
        self.used += len;
        self.peak = self.peak.max(self.used);
        Ok(Ptr {
            space: self.space,
            alloc: id,
            offset: 0,
        })
    }

    /// Release an allocation; `ptr` must point at its base (offset 0),
    /// matching `cudaFree` semantics. Returns the freed size.
    pub fn free(&mut self, ptr: Ptr) -> Result<u64, MemError> {
        self.check_space(ptr)?;
        if ptr.offset != 0 {
            return Err(MemError::InvalidPointer(ptr));
        }
        match self.allocs.remove(&ptr.alloc) {
            Some(data) => {
                self.used -= data.len() as u64;
                Ok(data.len() as u64)
            }
            None => Err(MemError::InvalidPointer(ptr)),
        }
    }

    /// Size of the allocation behind `ptr`.
    pub fn alloc_len(&self, ptr: Ptr) -> Result<u64, MemError> {
        self.check_space(ptr)?;
        self.allocs
            .get(&ptr.alloc)
            .map(|d| d.len() as u64)
            .ok_or(MemError::InvalidPointer(ptr))
    }

    /// Bytes currently allocated.
    pub fn used(&self) -> u64 {
        self.used
    }

    /// High-water mark of allocated bytes (the paper argues its approach
    /// needs only a small pipeline buffer instead of a full-size staging
    /// copy; tests assert that through this counter).
    pub fn peak(&self) -> u64 {
        self.peak
    }

    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    fn check_space(&self, ptr: Ptr) -> Result<(), MemError> {
        if ptr.space != self.space {
            return Err(MemError::WrongSpace {
                ptr,
                expected: self.space,
            });
        }
        Ok(())
    }

    fn check_range(&self, ptr: Ptr, len: u64) -> Result<(), MemError> {
        let alloc_len = self.alloc_len(ptr)?;
        if ptr.offset + len > alloc_len {
            return Err(MemError::OutOfBounds {
                ptr,
                len,
                alloc_len,
            });
        }
        Ok(())
    }

    /// Borrow `len` bytes starting at `ptr`.
    pub fn slice(&self, ptr: Ptr, len: u64) -> Result<&[u8], MemError> {
        self.check_range(ptr, len)?;
        let data = &self.allocs[&ptr.alloc];
        Ok(&data[ptr.offset as usize..(ptr.offset + len) as usize])
    }

    /// Borrow `len` bytes mutably starting at `ptr`.
    pub fn slice_mut(&mut self, ptr: Ptr, len: u64) -> Result<&mut [u8], MemError> {
        self.check_range(ptr, len)?;
        let data = self.allocs.get_mut(&ptr.alloc).expect("checked above");
        Ok(&mut data[ptr.offset as usize..(ptr.offset + len) as usize])
    }

    /// Copy from a user slice into the pool.
    pub fn write(&mut self, ptr: Ptr, bytes: &[u8]) -> Result<(), MemError> {
        self.slice_mut(ptr, bytes.len() as u64)?
            .copy_from_slice(bytes);
        Ok(())
    }

    /// Copy out of the pool into a fresh `Vec`.
    pub fn read_vec(&self, ptr: Ptr, len: u64) -> Result<Vec<u8>, MemError> {
        Ok(self.slice(ptr, len)?.to_vec())
    }

    /// Disjoint mutable + shared borrows of two ranges for same-pool
    /// copies. Falls back to a buffered copy when both live in the same
    /// allocation (potential overlap).
    fn copy_internal(&mut self, src: Ptr, dst: Ptr, len: u64) -> Result<(), MemError> {
        self.check_range(src, len)?;
        self.check_range(dst, len)?;
        if src.alloc == dst.alloc {
            let data = self.allocs.get_mut(&src.alloc).expect("checked");
            data.copy_within(
                src.offset as usize..(src.offset + len) as usize,
                dst.offset as usize,
            );
        } else {
            // Two distinct boxed slices: split the borrow through raw
            // pointers. SAFETY: distinct `AllocId`s map to distinct heap
            // allocations, so the ranges cannot alias.
            let src_ptr = self.allocs[&src.alloc][src.offset as usize..].as_ptr();
            let dst_slice = self.allocs.get_mut(&dst.alloc).expect("checked");
            unsafe {
                std::ptr::copy_nonoverlapping(
                    src_ptr,
                    dst_slice[dst.offset as usize..].as_mut_ptr(),
                    len as usize,
                );
            }
        }
        Ok(())
    }
}

/// The full memory system of a simulated node: host memory plus one pool
/// per GPU, and the registration table used by IPC/RDMA/zero-copy.
pub struct Memory {
    host: MemPool,
    devices: Vec<MemPool>,
    pub registry: RegistrationTable,
}

impl Memory {
    /// `gpu_count` GPUs with `device_capacity` bytes each; host capacity
    /// is fixed at 256 GB (generous but finite so leaks fail tests).
    pub fn new(gpu_count: u32, device_capacity: u64) -> Self {
        Memory {
            host: MemPool::new(MemSpace::Host, 256 << 30),
            devices: (0..gpu_count)
                .map(|i| MemPool::new(MemSpace::Device(GpuId(i)), device_capacity))
                .collect(),
            registry: RegistrationTable::new(),
        }
    }

    pub fn gpu_count(&self) -> u32 {
        self.devices.len() as u32
    }

    pub fn pool(&self, space: MemSpace) -> &MemPool {
        match space {
            MemSpace::Host => &self.host,
            MemSpace::Device(g) => &self.devices[g.index()],
        }
    }

    pub fn pool_mut(&mut self, space: MemSpace) -> &mut MemPool {
        match space {
            MemSpace::Host => &mut self.host,
            MemSpace::Device(g) => &mut self.devices[g.index()],
        }
    }

    /// Allocate in a given space.
    pub fn alloc(&mut self, space: MemSpace, len: u64) -> Result<Ptr, MemError> {
        self.pool_mut(space).alloc(len)
    }

    /// Free an allocation (also drops any registrations on it).
    pub fn free(&mut self, ptr: Ptr) -> Result<u64, MemError> {
        self.registry.drop_all(ptr.space, ptr.alloc);
        self.pool_mut(ptr.space).free(ptr)
    }

    pub fn write(&mut self, ptr: Ptr, bytes: &[u8]) -> Result<(), MemError> {
        self.pool_mut(ptr.space).write(ptr, bytes)
    }

    pub fn read_vec(&self, ptr: Ptr, len: u64) -> Result<Vec<u8>, MemError> {
        self.pool(ptr.space).read_vec(ptr, len)
    }

    pub fn slice(&self, ptr: Ptr, len: u64) -> Result<&[u8], MemError> {
        self.pool(ptr.space).slice(ptr, len)
    }

    pub fn slice_mut(&mut self, ptr: Ptr, len: u64) -> Result<&mut [u8], MemError> {
        self.pool_mut(ptr.space).slice_mut(ptr, len)
    }

    /// Contiguous copy between any two locations, across spaces. This is
    /// the functional half of every simulated DMA (`cudaMemcpy` in all
    /// its direction variants); the timing half lives in `gpusim`.
    pub fn copy(&mut self, src: Ptr, dst: Ptr, len: u64) -> Result<(), MemError> {
        if len == 0 {
            return Ok(());
        }
        if src.space == dst.space {
            return self.pool_mut(src.space).copy_internal(src, dst, len);
        }
        // Cross-space: distinct pools, distinct heap allocations.
        self.pool(src.space).check_range(src, len)?;
        self.pool(dst.space).check_range(dst, len)?;
        let src_raw = self.pool(src.space).allocs[&src.alloc][src.offset as usize..].as_ptr();
        let dst_pool = self.pool_mut(dst.space);
        let dst_slice = dst_pool.allocs.get_mut(&dst.alloc).expect("checked");
        let dst_range = &mut dst_slice[dst.offset as usize..(dst.offset + len) as usize];
        // SAFETY: source and destination are different heap allocations.
        let src_range = unsafe { std::slice::from_raw_parts(src_raw, len as usize) };
        par_copy(dst_range, src_range);
        Ok(())
    }

    /// Batch of segment moves between a source and destination base
    /// pointer (the functional half of a pack/unpack kernel). Offsets in
    /// `ops` are relative to `src`/`dst`. Destination segments must be
    /// disjoint; `src` and `dst` must be different allocations (kernels
    /// always pack into a dedicated buffer).
    pub fn transfer(&mut self, src: Ptr, dst: Ptr, ops: &[CopyOp]) -> Result<(), MemError> {
        if ops.is_empty() {
            return Ok(());
        }
        assert!(
            src.space != dst.space || src.alloc != dst.alloc,
            "transfer within one allocation is not supported (pack buffers are dedicated)"
        );
        let src_need = ops
            .iter()
            .map(|o| (o.src_off + o.len) as u64)
            .max()
            .unwrap_or(0);
        let dst_need = ops
            .iter()
            .map(|o| (o.dst_off + o.len) as u64)
            .max()
            .unwrap_or(0);
        self.pool(src.space).check_range(src, src_need)?;
        self.pool(dst.space).check_range(dst, dst_need)?;
        let src_raw = self.pool(src.space).allocs[&src.alloc][src.offset as usize..].as_ptr();
        let dst_pool = self.pool_mut(dst.space);
        let dst_slice = dst_pool.allocs.get_mut(&dst.alloc).expect("checked");
        let dst_range = &mut dst_slice[dst.offset as usize..(dst.offset + dst_need) as usize];
        // SAFETY: different allocations (asserted above).
        let src_range = unsafe { std::slice::from_raw_parts(src_raw, src_need as usize) };
        par_transfer(dst_range, src_range, ops);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mem() -> Memory {
        Memory::new(2, 64 << 20)
    }

    #[test]
    fn alloc_free_accounting() {
        let mut m = mem();
        let d = MemSpace::Device(GpuId(0));
        let p = m.alloc(d, 1024).unwrap();
        assert_eq!(m.pool(d).used(), 1024);
        assert_eq!(m.pool(d).alloc_len(p).unwrap(), 1024);
        assert_eq!(m.free(p).unwrap(), 1024);
        assert_eq!(m.pool(d).used(), 0);
        assert_eq!(m.pool(d).peak(), 1024);
    }

    #[test]
    fn oom_is_reported() {
        let mut m = Memory::new(1, 1000);
        let d = MemSpace::Device(GpuId(0));
        assert!(m.alloc(d, 800).is_ok());
        let err = m.alloc(d, 400).unwrap_err();
        assert!(matches!(err, MemError::OutOfMemory { .. }));
    }

    #[test]
    fn double_free_fails() {
        let mut m = mem();
        let p = m.alloc(MemSpace::Host, 64).unwrap();
        m.free(p).unwrap();
        assert!(matches!(m.free(p), Err(MemError::InvalidPointer(_))));
    }

    #[test]
    fn free_requires_base_pointer() {
        let mut m = mem();
        let p = m.alloc(MemSpace::Host, 64).unwrap();
        assert!(m.free(p.add(8)).is_err());
        m.free(p).unwrap();
    }

    #[test]
    fn bounds_checking() {
        let mut m = mem();
        let p = m.alloc(MemSpace::Host, 16).unwrap();
        assert!(m.write(p, &[0u8; 16]).is_ok());
        let err = m.write(p.add(8), &[0u8; 16]).unwrap_err();
        assert!(matches!(err, MemError::OutOfBounds { .. }));
    }

    #[test]
    fn wrong_space_rejected() {
        let m = mem();
        let bogus = Ptr {
            space: MemSpace::Device(GpuId(1)),
            alloc: AllocId(0),
            offset: 0,
        };
        assert!(matches!(
            m.pool(MemSpace::Host).slice(bogus, 1),
            Err(MemError::WrongSpace { .. })
        ));
    }

    #[test]
    fn cross_space_copy_moves_bytes() {
        let mut m = mem();
        let h = m.alloc(MemSpace::Host, 256).unwrap();
        let d = m.alloc(MemSpace::Device(GpuId(0)), 256).unwrap();
        let pattern: Vec<u8> = (0..=255).collect();
        m.write(h, &pattern).unwrap();
        m.copy(h, d, 256).unwrap(); // H2D
        let back = m.read_vec(d, 256).unwrap();
        assert_eq!(back, pattern);
        // D2D to second GPU.
        let d2 = m.alloc(MemSpace::Device(GpuId(1)), 256).unwrap();
        m.copy(d, d2, 256).unwrap();
        assert_eq!(m.read_vec(d2, 256).unwrap(), pattern);
    }

    #[test]
    fn same_alloc_overlapping_copy() {
        let mut m = mem();
        let p = m.alloc(MemSpace::Host, 16).unwrap();
        m.write(p, &[1, 2, 3, 4, 5, 6, 7, 8, 0, 0, 0, 0, 0, 0, 0, 0])
            .unwrap();
        m.copy(p, p.add(4), 8).unwrap(); // overlapping forward copy
        assert_eq!(m.read_vec(p, 16).unwrap()[4..12], [1, 2, 3, 4, 5, 6, 7, 8]);
    }

    #[test]
    fn transfer_scatters_into_device() {
        let mut m = mem();
        let src = m.alloc(MemSpace::Host, 64).unwrap();
        let dst = m.alloc(MemSpace::Device(GpuId(0)), 64).unwrap();
        let bytes: Vec<u8> = (0..64).collect();
        m.write(src, &bytes).unwrap();
        let ops = [
            CopyOp {
                src_off: 0,
                dst_off: 32,
                len: 16,
            },
            CopyOp {
                src_off: 16,
                dst_off: 0,
                len: 16,
            },
        ];
        m.transfer(src, dst, &ops).unwrap();
        let out = m.read_vec(dst, 64).unwrap();
        assert_eq!(&out[32..48], &bytes[0..16]);
        assert_eq!(&out[0..16], &bytes[16..32]);
    }

    #[test]
    fn distinct_allocs_get_distinct_ids() {
        let mut m = mem();
        let a = m.alloc(MemSpace::Host, 8).unwrap();
        let b = m.alloc(MemSpace::Host, 8).unwrap();
        assert_ne!(a.alloc, b.alloc);
    }
}
