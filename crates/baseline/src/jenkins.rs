//! A second comparator: the Jenkins et al. (MPICH) style of GPU
//! datatype support — §2.2 of the paper.
//!
//! Like our engine it packs/unpacks with GPU kernels (one kernel per
//! whole datatype, driven from a flattened representation), but it
//! provides **no overlap**: pack, device→host staging, wire transfer,
//! host→device staging and unpack run strictly one after another, and
//! the packed data always transits host memory. The gap between this
//! and our pipelined engine isolates the contribution of the paper's
//! pipelining/zero-copy design from the kernel-vs-memcpy2D question
//! (which the Wang-style comparator in [`crate::proto`] covers).

use crate::proto::BaselineSide;
use devengine::{pack_async, unpack_async, EngineConfig};
use gpusim::{memcpy, GpuWorld as _};
use memsim::MemSpace;
use mpirt::{MpiWorld, Request};
use netsim::NetWorld as _;
use simcore::{Sim, SimTime};

/// One Jenkins-style message `s → r`.
pub fn jenkins_transfer(sim: &mut Sim<MpiWorld>, s: BaselineSide, r: BaselineSide) -> Request {
    assert!(s.buf.space.is_device() && r.buf.space.is_device());
    let req = Request::new();
    let total = s.ty.size() * s.count;
    if total == 0 {
        req.complete(sim, Ok(0));
        return req;
    }

    let s_gpu = sim.world.mpi.ranks[s.rank].gpu;
    let r_gpu = sim.world.mpi.ranks[r.rank].gpu;
    let s_dev = sim
        .world
        .mem()
        .alloc(MemSpace::Device(s_gpu), total)
        .unwrap();
    let r_dev = sim
        .world
        .mem()
        .alloc(MemSpace::Device(r_gpu), total)
        .unwrap();
    let s_host = sim.world.mem().alloc(MemSpace::Host, total).unwrap();
    let r_host = sim.world.mem().alloc(MemSpace::Host, total).unwrap();

    // Whole-datatype kernel, no CPU/GPU pipelining, no caching (MPICH
    // regenerated the flattened representation per operation).
    let cfg = EngineConfig {
        pipeline: false,
        ..Default::default()
    };
    let s_stream = sim.world.mpi.ranks[s.rank].kernel_stream;
    let s_copy = sim.world.mpi.ranks[s.rank].copy_stream;
    let r_stream = sim.world.mpi.ranks[r.rank].kernel_stream;
    let r_copy = sim.world.mpi.ranks[r.rank].copy_stream;
    let (s_rank, r_rank) = (s.rank, r.rank);
    let req2 = req.clone();
    let r_ty = r.ty.clone();
    let r_count = r.count;
    let r_buf = r.buf;
    let cfg2 = cfg.clone();

    let cleanup = move |sim: &mut Sim<MpiWorld>| {
        for p in [s_dev, r_dev, s_host, r_host] {
            sim.world.mem().free(p).expect("free staging");
        }
    };

    pack_async(
        sim,
        s.rank,
        s_stream,
        &s.ty,
        s.count,
        s.buf,
        s_dev,
        cfg,
        None,
        move |sim, _| {
            memcpy(sim, s_copy, s_dev, s_host, total, move |sim, _| {
                let now = sim.now();
                let arrive = {
                    let ch = sim.world.net().channel_mut(s_rank, r_rank);
                    ch.data.reserve(now, total)
                };
                sim.schedule_at(arrive, move |sim| {
                    sim.world.mem().copy(s_host, r_host, total).expect("wire");
                    memcpy(sim, r_copy, r_host, r_dev, total, move |sim, _| {
                        unpack_async(
                            sim,
                            r_rank,
                            r_stream,
                            &r_ty,
                            r_count,
                            r_buf,
                            r_dev,
                            cfg2,
                            None,
                            move |sim, _| {
                                req2.complete(sim, Ok(total));
                                cleanup(sim);
                            },
                        );
                    });
                });
            });
        },
    );
    req
}

/// Jenkins-style ping-pong (warm-up + mean over `iters`).
pub fn jenkins_ping_pong(
    sim: &mut Sim<MpiWorld>,
    a: BaselineSide,
    b: BaselineSide,
    iters: u32,
) -> SimTime {
    let round = |sim: &mut Sim<MpiWorld>| {
        let r1 = jenkins_transfer(sim, a.clone(), b.clone());
        while !r1.is_complete() {
            assert!(sim.step(), "jenkins transfer stalled");
        }
        let r2 = jenkins_transfer(sim, b.clone(), a.clone());
        while !r2.is_complete() {
            assert!(sim.step(), "jenkins transfer stalled");
        }
    };
    round(sim);
    let start = sim.now();
    for _ in 0..iters {
        round(sim);
    }
    SimTime::from_nanos((sim.now() - start).as_nanos() / iters as u64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use datatype::DataType;
    use memsim::Ptr;
    use mpirt::MpiConfig;

    fn tri(n: u64) -> DataType {
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit()
    }

    fn setup(
        sim: &mut Sim<MpiWorld>,
        rank: usize,
        ty: &DataType,
        fill: bool,
    ) -> (Ptr, Vec<u8>, i64, u64) {
        let (base, len) = buffer_span(ty, 1);
        let gpu = sim.world.mpi.ranks[rank].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), len as u64)
            .unwrap();
        let bytes = if fill { pattern(len) } else { vec![0u8; len] };
        sim.world.mem().write(buf, &bytes).unwrap();
        (buf.add(base as u64), bytes, base, len as u64)
    }

    #[test]
    fn jenkins_moves_correct_bytes() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let t = tri(64);
        let (sbuf, sbytes, sbase, _) = setup(&mut sim, 0, &t, true);
        let (rbuf, _, rbase, rlen) = setup(&mut sim, 1, &t, false);
        let req = jenkins_transfer(
            &mut sim,
            BaselineSide {
                rank: 0,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
            BaselineSide {
                rank: 1,
                ty: t.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        assert_eq!(req.expect_bytes(), t.size());
        let got = sim
            .world
            .mem()
            .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
            .unwrap();
        assert_eq!(
            reference_pack(&t, 1, &got, rbase),
            reference_pack(&t, 1, &sbytes, sbase)
        );
    }

    #[test]
    fn ordering_ours_beats_jenkins_beats_wang() {
        // The paper's implicit ordering: pipelined GPU kernels >
        // unpipelined GPU kernels > per-vector cudaMemcpy2D.
        let t = tri(512);
        let mk = || {
            let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
            let (b0, _, _, _) = setup(&mut sim, 0, &t, true);
            let (b1, _, _, _) = setup(&mut sim, 1, &t, false);
            (sim, b0, b1)
        };
        let ours = {
            let (mut sim, b0, b1) = mk();
            mpirt::ping_pong(
                &mut sim,
                mpirt::api::PingPongSpec {
                    ty0: t.clone(),
                    count0: 1,
                    buf0: b0,
                    ty1: t.clone(),
                    count1: 1,
                    buf1: b1,
                    iters: 2,
                },
            )
        };
        let jenkins = {
            let (mut sim, b0, b1) = mk();
            jenkins_ping_pong(
                &mut sim,
                BaselineSide {
                    rank: 0,
                    ty: t.clone(),
                    count: 1,
                    buf: b0,
                },
                BaselineSide {
                    rank: 1,
                    ty: t.clone(),
                    count: 1,
                    buf: b1,
                },
                2,
            )
        };
        let wang = {
            let (mut sim, b0, b1) = mk();
            crate::proto::baseline_ping_pong(
                &mut sim,
                BaselineSide {
                    rank: 0,
                    ty: t.clone(),
                    count: 1,
                    buf: b0,
                },
                BaselineSide {
                    rank: 1,
                    ty: t.clone(),
                    count: 1,
                    buf: b1,
                },
                2,
            )
        };
        assert!(ours < jenkins, "ours {ours} should beat jenkins {jenkins}");
        assert!(jenkins < wang, "jenkins {jenkins} should beat wang {wang}");
    }
}
