//! The baseline transfer path: per-vector `cudaMemcpy2D` through host
//! memory, strictly phase-by-phase (pack ▸ wire ▸ unpack).

use crate::vectorize::{vectorize, VectorRun};
use datatype::DataType;
use gpusim::{memcpy, memcpy_2d, GpuWorld as _};
use memsim::{MemSpace, Ptr};
use mpirt::{MpiWorld, Request};
use netsim::NetWorld as _;
use simcore::{Sim, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// One endpoint of a baseline transfer (device-resident only — the
/// baseline is a GPU-datatype comparator).
#[derive(Clone)]
pub struct BaselineSide {
    pub rank: usize,
    pub ty: DataType,
    pub count: u64,
    pub buf: Ptr,
}

/// Run one baseline message `s → r`. Completes the returned request
/// when the receiver has fully unpacked.
pub fn baseline_transfer(sim: &mut Sim<MpiWorld>, s: BaselineSide, r: BaselineSide) -> Request {
    assert!(
        s.buf.space.is_device() && r.buf.space.is_device(),
        "baseline models GPU data"
    );
    let req = Request::new();
    let total = s.ty.size() * s.count;
    if total == 0 {
        req.complete(sim, Ok(0));
        return req;
    }
    let s_runs = vectorize(&s.ty, s.count);
    let r_runs = vectorize(&r.ty, r.count);

    // Transient host staging buffers on both sides (the baseline always
    // transits host memory).
    let s_host = sim
        .world
        .mem()
        .alloc(MemSpace::Host, total)
        .expect("staging");
    let r_host = sim
        .world
        .mem()
        .alloc(MemSpace::Host, total)
        .expect("staging");

    let st = Rc::new(RefCell::new(State {
        s: s.clone(),
        r,
        req: req.clone(),
        s_host,
        r_host,
        total,
        remaining: 0,
        r_runs,
    }));

    // Phase 1: pack — one cudaMemcpy2D (D2H) per vector run, all
    // issued on the sender's copy stream; phase 2 starts only when the
    // last one finishes (no pipelining).
    let n_runs = s_runs.len();
    st.borrow_mut().remaining = n_runs;
    let s_base = s.buf.offset_by(s.ty.true_lb().min(0));
    let shift = s.ty.true_lb().min(0);
    let copy_stream = sim.world.mpi.ranks[s.rank].copy_stream;
    let mut host_pos = 0u64;
    for run in s_runs {
        let src = s_base.add((run.first_disp - shift) as u64);
        let dst = st.borrow().s_host.add(host_pos);
        host_pos += run.bytes();
        let stw = Rc::clone(&st);
        run_2d(sim, copy_stream, src, dst, run, true, move |sim| {
            let go = {
                let mut x = stw.borrow_mut();
                x.remaining -= 1;
                x.remaining == 0
            };
            if go {
                wire_phase(sim, stw);
            }
        });
    }
    req
}

struct State {
    s: BaselineSide,
    r: BaselineSide,
    req: Request,
    s_host: Ptr,
    r_host: Ptr,
    total: u64,
    remaining: usize,
    r_runs: Vec<VectorRun>,
}

/// Issue one cudaMemcpy2D for a run. `d2h` packs device→host; otherwise
/// host→device.
fn run_2d(
    sim: &mut Sim<MpiWorld>,
    stream: gpusim::StreamId,
    typed: Ptr,
    host: Ptr,
    run: VectorRun,
    d2h: bool,
    done: impl FnOnce(&mut Sim<MpiWorld>) + 'static,
) {
    if run.height == 1 {
        // Plain cudaMemcpy for single-row runs.
        let (src, dst) = if d2h { (typed, host) } else { (host, typed) };
        memcpy(sim, stream, src, dst, run.width, move |sim, _| done(sim));
        return;
    }
    let stride = run.stride as u64;
    if d2h {
        memcpy_2d(
            sim,
            stream,
            typed,
            stride,
            host,
            run.width,
            run.width,
            run.height,
            move |sim, _| done(sim),
        );
    } else {
        memcpy_2d(
            sim,
            stream,
            host,
            run.width,
            typed,
            stride,
            run.width,
            run.height,
            move |sim, _| done(sim),
        );
    }
}

/// Phase 2: ship the whole packed buffer over the channel in one go.
fn wire_phase(sim: &mut Sim<MpiWorld>, st: Rc<RefCell<State>>) {
    let (s_rank, r_rank, src, dst, total) = {
        let x = st.borrow();
        (x.s.rank, x.r.rank, x.s_host, x.r_host, x.total)
    };
    let now = sim.now();
    let arrive = {
        let ch = sim.world.net().channel_mut(s_rank, r_rank);
        ch.data.reserve(now, total)
    };
    sim.schedule_at(arrive, move |sim| {
        sim.world
            .mem()
            .copy(src, dst, total)
            .expect("baseline wire");
        unpack_phase(sim, st);
    });
}

/// Phase 3: one cudaMemcpy2D (H2D) per receiver-side vector run.
fn unpack_phase(sim: &mut Sim<MpiWorld>, st: Rc<RefCell<State>>) {
    let (runs, r_host, r_buf, shift, stream) = {
        let x = st.borrow();
        let shift = x.r.ty.true_lb().min(0);
        (
            x.r_runs.clone(),
            x.r_host,
            x.r.buf.offset_by(shift),
            shift,
            sim.world.mpi.ranks[x.r.rank].copy_stream,
        )
    };
    let n = runs.len();
    st.borrow_mut().remaining = n;
    let mut host_pos = 0u64;
    for run in runs {
        let typed = r_buf.add((run.first_disp - shift) as u64);
        let host = r_host.add(host_pos);
        host_pos += run.bytes();
        let stw = Rc::clone(&st);
        run_2d(sim, stream, typed, host, run, false, move |sim| {
            let finished = {
                let mut x = stw.borrow_mut();
                x.remaining -= 1;
                x.remaining == 0
            };
            if finished {
                let x = stw.borrow();
                x.req.complete(sim, Ok(x.total));
                let (sh, rh) = (x.s_host, x.r_host);
                drop(x);
                sim.world.mem().free(sh).expect("free staging");
                sim.world.mem().free(rh).expect("free staging");
            }
        });
    }
}

/// Baseline ping-pong analogous to `mpirt::ping_pong`: one warm-up
/// round, then the mean round-trip time over `iters` rounds.
pub fn baseline_ping_pong(
    sim: &mut Sim<MpiWorld>,
    a: BaselineSide,
    b: BaselineSide,
    iters: u32,
) -> SimTime {
    let round = |sim: &mut Sim<MpiWorld>| {
        let r1 = baseline_transfer(sim, a.clone(), b.clone());
        run_until_complete(sim, &r1);
        let r2 = baseline_transfer(sim, b.clone(), a.clone());
        run_until_complete(sim, &r2);
    };
    round(sim); // warm-up
    let start = sim.now();
    for _ in 0..iters {
        round(sim);
    }
    SimTime::from_nanos((sim.now() - start).as_nanos() / iters as u64)
}

fn run_until_complete(sim: &mut Sim<MpiWorld>, req: &Request) {
    while !req.is_complete() {
        assert!(sim.step(), "baseline transfer stalled");
    }
    req.result().unwrap().expect("baseline transfer failed");
}

#[cfg(test)]
mod tests {
    use super::*;
    use datatype::testutil::{buffer_span, pattern, reference_pack};
    use mpirt::MpiConfig;

    fn setup(
        sim: &mut Sim<MpiWorld>,
        rank: usize,
        ty: &DataType,
        fill: bool,
    ) -> (Ptr, Vec<u8>, i64, u64) {
        let (base, len) = buffer_span(ty, 1);
        let gpu = sim.world.mpi.ranks[rank].gpu;
        let buf = sim
            .world
            .mem()
            .alloc(MemSpace::Device(gpu), len as u64)
            .unwrap();
        let bytes = if fill { pattern(len) } else { vec![0u8; len] };
        sim.world.mem().write(buf, &bytes).unwrap();
        (buf.add(base as u64), bytes, base, len as u64)
    }

    fn tri(n: u64) -> DataType {
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        DataType::indexed(&lens, &disps, &DataType::double())
            .unwrap()
            .commit()
    }

    #[test]
    fn baseline_moves_correct_bytes() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let t = tri(64);
        let (sbuf, sbytes, sbase, _) = setup(&mut sim, 0, &t, true);
        let (rbuf, _, rbase, rlen) = setup(&mut sim, 1, &t, false);
        let req = baseline_transfer(
            &mut sim,
            BaselineSide {
                rank: 0,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
            BaselineSide {
                rank: 1,
                ty: t.clone(),
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        assert_eq!(req.expect_bytes(), t.size());
        let got_buf = sim
            .world
            .mem()
            .read_vec(Ptr { offset: 0, ..rbuf }, rlen)
            .unwrap();
        let got = reference_pack(&t, 1, &got_buf, rbase);
        assert_eq!(got, reference_pack(&t, 1, &sbytes, sbase));
    }

    #[test]
    fn baseline_indexed_pays_per_column_latency() {
        // The per-call memcpy latency must show: N columns cost at
        // least N * latency even for tiny data.
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let n = 64u64;
        let t = tri(n);
        let (sbuf, _, _, _) = setup(&mut sim, 0, &t, true);
        let (rbuf, _, _, _) = setup(&mut sim, 1, &t, false);
        let req = baseline_transfer(
            &mut sim,
            BaselineSide {
                rank: 0,
                ty: t.clone(),
                count: 1,
                buf: sbuf,
            },
            BaselineSide {
                rank: 1,
                ty: t,
                count: 1,
                buf: rbuf,
            },
        );
        sim.run();
        req.expect_bytes();
        let lat = gpusim::GpuSpec::k40().memcpy_latency;
        assert!(
            sim.now().as_nanos() >= n * lat.as_nanos(),
            "expected >= {} per-call latencies, took {}",
            n,
            sim.now()
        );
    }

    #[test]
    fn baseline_ping_pong_runs() {
        let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
        let v = DataType::vector(64, 8, 16, &DataType::double())
            .unwrap()
            .commit();
        let (b0, _, _, _) = setup(&mut sim, 0, &v, true);
        let (b1, _, _, _) = setup(&mut sim, 1, &v, false);
        let per_iter = baseline_ping_pong(
            &mut sim,
            BaselineSide {
                rank: 0,
                ty: v.clone(),
                count: 1,
                buf: b0,
            },
            BaselineSide {
                rank: 1,
                ty: v,
                count: 1,
                buf: b1,
            },
            3,
        );
        assert!(per_iter > SimTime::ZERO);
    }

    #[test]
    fn our_engine_beats_baseline_on_indexed() {
        // The paper's headline: for indexed datatypes the pipelined GPU
        // engine wins by a large factor.
        let t = tri(256); // ~263 KB
        let ours = {
            let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
            let (b0, _, _, _) = setup(&mut sim, 0, &t, true);
            let (b1, _, _, _) = setup(&mut sim, 1, &t, false);
            mpirt::ping_pong(
                &mut sim,
                mpirt::api::PingPongSpec {
                    ty0: t.clone(),
                    count0: 1,
                    buf0: b0,
                    ty1: t.clone(),
                    count1: 1,
                    buf1: b1,
                    iters: 3,
                },
            )
        };
        let theirs = {
            let mut sim = Sim::new(MpiWorld::two_ranks_two_gpus(MpiConfig::default()));
            let (b0, _, _, _) = setup(&mut sim, 0, &t, true);
            let (b1, _, _, _) = setup(&mut sim, 1, &t, false);
            baseline_ping_pong(
                &mut sim,
                BaselineSide {
                    rank: 0,
                    ty: t.clone(),
                    count: 1,
                    buf: b0,
                },
                BaselineSide {
                    rank: 1,
                    ty: t.clone(),
                    count: 1,
                    buf: b1,
                },
                3,
            )
        };
        assert!(
            ours.as_nanos() * 2 < theirs.as_nanos(),
            "ours {ours} should be >2x faster than baseline {theirs}"
        );
    }
}
