//! Datatype vectorization (Wang et al.'s algorithm).

use datatype::DataType;

/// A uniform strided run: `height` rows of `width` bytes, `stride`
/// bytes apart, starting at `first_disp` — exactly what one
/// `cudaMemcpy2D` call can move.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct VectorRun {
    pub first_disp: i64,
    pub width: u64,
    pub stride: i64,
    pub height: u64,
}

impl VectorRun {
    pub fn bytes(&self) -> u64 {
        self.width * self.height
    }
}

/// Convert `count` instances of a datatype into a minimal set of vector
/// runs. Consecutive equal-length, equally-spaced segments fold into one
/// run; everything else degenerates to single-row runs — the behaviour
/// the paper criticizes for indexed types, where "each contiguous block
/// ... is considered as a single vector type and packed/unpacked
/// separately".
pub fn vectorize(ty: &DataType, count: u64) -> Vec<VectorRun> {
    let segs = ty.segments(count);
    let mut runs: Vec<VectorRun> = Vec::new();
    for s in segs {
        if let Some(last) = runs.last_mut() {
            let expected_next = last.first_disp + last.stride * last.height as i64;
            if last.width == s.len
                && ((last.height == 1 && s.disp > last.first_disp) || expected_next == s.disp)
            {
                let stride = s.disp - (last.first_disp + last.stride * (last.height as i64 - 1));
                if last.height == 1 {
                    // Second segment fixes the stride.
                    if stride >= s.len as i64 {
                        last.stride = stride;
                        last.height = 2;
                        continue;
                    }
                } else if expected_next == s.disp {
                    last.height += 1;
                    continue;
                }
            }
        }
        runs.push(VectorRun {
            first_disp: s.disp,
            width: s.len,
            stride: s.len as i64,
            height: 1,
        });
    }
    runs
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl() -> DataType {
        DataType::double()
    }

    #[test]
    fn vector_type_folds_to_one_run() {
        let v = DataType::vector(10, 3, 7, &dbl()).unwrap();
        let runs = vectorize(&v, 1);
        assert_eq!(runs.len(), 1);
        assert_eq!(
            runs[0],
            VectorRun {
                first_disp: 0,
                width: 24,
                stride: 56,
                height: 10
            }
        );
        assert_eq!(runs[0].bytes(), v.size());
    }

    #[test]
    fn contiguous_is_one_row() {
        let c = DataType::contiguous(100, &dbl()).unwrap();
        let runs = vectorize(&c, 2);
        assert_eq!(runs.len(), 1);
        assert_eq!(runs[0].height, 1);
        assert_eq!(runs[0].width, 1600);
    }

    #[test]
    fn triangular_shatters_into_per_column_runs() {
        let n = 16u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap();
        let runs = vectorize(&t, 1);
        // Unequal column lengths cannot fold: one run per column.
        assert_eq!(runs.len(), n as usize);
        let total: u64 = runs.iter().map(|r| r.bytes()).sum();
        assert_eq!(total, t.size());
    }

    #[test]
    fn runs_conserve_bytes_on_random_mixture() {
        let s = DataType::structure(
            &[2, 3, 1],
            &[0, 64, 256],
            &[DataType::int(), dbl(), DataType::float()],
        )
        .unwrap();
        let runs = vectorize(&s, 3);
        let total: u64 = runs.iter().map(|r| r.bytes()).sum();
        assert_eq!(total, s.size() * 3);
    }

    #[test]
    fn multi_count_vector_keeps_folding_when_uniform() {
        // stride pattern continues across instances when extent==stride*count.
        let v = DataType::vector(4, 1, 2, &dbl()).unwrap();
        let r = DataType::resized(&v, 0, 64).unwrap();
        let runs = vectorize(&r, 3);
        assert_eq!(
            runs.len(),
            1,
            "uniform pattern across instances folds: {runs:?}"
        );
        assert_eq!(runs[0].height, 12);
    }
}
