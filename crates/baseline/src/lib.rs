//! The MVAPICH2-GDR-style comparator.
//!
//! Reimplements the published approach of Wang et al. (the paper's §2.2
//! related work and its Figure 10–12 comparison target) on the same
//! simulated hardware, so the comparison isolates *algorithmic*
//! differences:
//!
//! 1. **Vectorization** — any datatype is converted into a set of
//!    vector datatypes; each contiguous block that does not fit a
//!    uniform vector becomes its own single-row "vector".
//! 2. Each vector is packed/unpacked by its **own `cudaMemcpy2D` call**
//!    (one per vector — for an indexed type like a triangular matrix
//!    that means one call *per column*, each paying the per-call
//!    latency and, for odd column widths, the 64-byte-alignment cliff).
//! 3. All packed data **stages through host memory**, and there is **no
//!    pipelining** between packing, the wire transfer and unpacking —
//!    the three phases run strictly one after another.

pub mod jenkins;
pub mod proto;
pub mod vectorize;

pub use jenkins::{jenkins_ping_pong, jenkins_transfer};
pub use proto::{baseline_ping_pong, baseline_transfer, BaselineSide};
pub use vectorize::{vectorize, VectorRun};
