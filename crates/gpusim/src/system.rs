//! Runtime state of the simulated GPUs: streams, occupancy throttles,
//! and the world-access trait the async operations are generic over.

use crate::arch::GpuArch;
use crate::spec::{GpuSpec, NodeTopology};
use faultsim::{FaultDecision, FaultOp, FaultSim};
use memsim::{GpuId, IpcHandle, MemError, Memory, Ptr};
use simcore::trace::names;
use simcore::{Bandwidth, FifoResource, Sim, SimTime, Track};

/// Identifies one stream on one GPU.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct StreamId {
    pub gpu: GpuId,
    pub index: usize,
}

/// Mutable per-GPU runtime state.
pub struct GpuState {
    pub spec: GpuSpec,
    streams: Vec<FifoResource>,
    /// Cap on the number of thread blocks kernels may use (None = all
    /// SMs). The paper's third experiment throttles this to find the
    /// minimal GPU share that still saturates communication.
    pub block_limit: Option<u32>,
    /// Fraction of DRAM bandwidth available to our kernels, `(0, 1]`.
    /// Below 1.0 models a co-running GPU-intensive application (the
    /// paper's fourth experiment).
    pub bandwidth_share: f64,
}

impl GpuState {
    fn new(spec: GpuSpec) -> Self {
        GpuState {
            spec,
            // Stream 0 is the default stream, as in CUDA.
            streams: vec![FifoResource::new()],
            block_limit: None,
            bandwidth_share: 1.0,
        }
    }

    /// DRAM traffic bandwidth kernels can actually use, after occupancy
    /// throttling and external contention.
    pub fn effective_traffic_bw(&self) -> Bandwidth {
        let occupancy = match self.block_limit {
            Some(blocks) => (blocks as f64 / self.spec.sm_count as f64).min(1.0),
            None => 1.0,
        };
        let share = self.bandwidth_share.clamp(f64::MIN_POSITIVE, 1.0);
        self.spec
            .dram_traffic_bw
            .derated((occupancy * share).clamp(f64::MIN_POSITIVE, 1.0))
    }
}

/// All GPUs in a node plus the interconnect constants.
pub struct GpuSystem {
    gpus: Vec<GpuState>,
    pub topo: NodeTopology,
    /// The registry entry this system was built from. Raw
    /// [`GpuSystem::new`] callers with hand-rolled specs keep the
    /// registry default as their label; arch-aware construction goes
    /// through [`GpuSystem::for_arch`].
    pub arch: &'static GpuArch,
}

impl GpuSystem {
    pub fn new(gpu_count: u32, spec: GpuSpec, topo: NodeTopology) -> Self {
        GpuSystem::with_arch_label(GpuArch::default_arch(), gpu_count, spec, topo)
    }

    /// A node of `gpu_count` GPUs of one registered architecture.
    pub fn for_arch(arch: &'static GpuArch, gpu_count: u32) -> Self {
        GpuSystem::with_arch_label(arch, gpu_count, arch.spec(), arch.topology())
    }

    fn with_arch_label(
        arch: &'static GpuArch,
        gpu_count: u32,
        spec: GpuSpec,
        topo: NodeTopology,
    ) -> Self {
        GpuSystem {
            gpus: (0..gpu_count)
                .map(|_| GpuState::new(spec.clone()))
                .collect(),
            topo,
            arch,
        }
    }

    /// A node of default-architecture (K40) GPUs — the paper's PSG node
    /// had 6; callers choose the count.
    pub fn k40_node(gpu_count: u32) -> Self {
        GpuSystem::for_arch(GpuArch::default_arch(), gpu_count)
    }

    pub fn gpu_count(&self) -> u32 {
        self.gpus.len() as u32
    }

    pub fn gpu(&self, id: GpuId) -> &GpuState {
        &self.gpus[id.index()]
    }

    pub fn gpu_mut(&mut self, id: GpuId) -> &mut GpuState {
        &mut self.gpus[id.index()]
    }

    /// Create a new stream on `gpu` (like `cudaStreamCreate`).
    pub fn create_stream(&mut self, gpu: GpuId) -> StreamId {
        let st = self.gpu_mut(gpu);
        st.streams.push(FifoResource::new());
        StreamId {
            gpu,
            index: st.streams.len() - 1,
        }
    }

    /// The default stream of a GPU.
    pub fn default_stream(&self, gpu: GpuId) -> StreamId {
        StreamId { gpu, index: 0 }
    }

    pub fn stream(&self, id: StreamId) -> &FifoResource {
        &self.gpus[id.gpu.index()].streams[id.index]
    }

    pub fn stream_mut(&mut self, id: StreamId) -> &mut FifoResource {
        &mut self.gpus[id.gpu.index()].streams[id.index]
    }
}

/// World-access trait: any simulation world that contains a memory system
/// and GPUs can run the async operations in this crate. Higher layers
/// (`netsim`, `mpirt`) extend the world with NICs and protocol state.
pub trait GpuWorld: 'static {
    fn mem(&mut self) -> &mut Memory;
    fn mem_ref(&self) -> &Memory;
    fn gpus(&mut self) -> &mut GpuSystem;
    fn gpus_ref(&self) -> &GpuSystem;
    /// The host CPU timeline of MPI process `rank` (each rank is a
    /// single-threaded process, so its CPU-side work — datatype
    /// traversal, DEV preparation, protocol handling — serializes on
    /// one FIFO resource).
    fn cpu(&mut self, rank: usize) -> &mut FifoResource;
    /// The world's fault-injection engine (disabled by default). Every
    /// charge point in this crate and the layers above consults it.
    fn faults(&mut self) -> &mut FaultSim;
}

/// Minimal world for unit tests and single-process experiments.
pub struct NodeWorld {
    pub memory: Memory,
    pub gpu_system: GpuSystem,
    pub cpus: Vec<FifoResource>,
    pub faults: FaultSim,
}

impl NodeWorld {
    pub fn new(gpu_count: u32) -> Self {
        NodeWorld::for_arch(GpuArch::default_arch(), gpu_count)
    }

    /// A single-node world of one registered architecture.
    pub fn for_arch(arch: &'static GpuArch, gpu_count: u32) -> Self {
        let mem_bytes = arch.spec().memory_bytes;
        NodeWorld {
            memory: Memory::new(gpu_count, mem_bytes),
            gpu_system: GpuSystem::for_arch(arch, gpu_count),
            cpus: Vec::new(),
            faults: FaultSim::disabled(),
        }
    }
}

impl GpuWorld for NodeWorld {
    fn mem(&mut self) -> &mut Memory {
        &mut self.memory
    }
    fn mem_ref(&self) -> &Memory {
        &self.memory
    }
    fn gpus(&mut self) -> &mut GpuSystem {
        &mut self.gpu_system
    }
    fn gpus_ref(&self) -> &GpuSystem {
        &self.gpu_system
    }
    fn cpu(&mut self, rank: usize) -> &mut FifoResource {
        if self.cpus.len() <= rank {
            self.cpus.resize_with(rank + 1, FifoResource::new);
        }
        &mut self.cpus[rank]
    }
    fn faults(&mut self) -> &mut FaultSim {
        &mut self.faults
    }
}

/// Export a device buffer over CUDA IPC (free of charge — the handle is
/// just bytes; the *open* on the peer side costs time).
pub fn ipc_export<W: GpuWorld>(
    sim: &mut Sim<W>,
    ptr: Ptr,
    len: u64,
) -> Result<IpcHandle, MemError> {
    sim.world.mem().registry.export_ipc(ptr, len)
}

/// Open a peer's IPC handle. Charges the one-time mapping cost and hands
/// the mapped pointer to `done`. The paper's protocol opens a handle
/// exactly once per connection and caches the mapping.
///
/// This is a fault charge point: a `Transient` injection fails the open
/// with `MemError::Faulted { transient: true }` (the caller may retry);
/// a permanent loss means CUDA IPC is gone for the rest of the run and
/// surfaces as `transient: false` — `mpirt` reacts by renegotiating the
/// transfer path to copy-in/copy-out.
pub fn ipc_open<W: GpuWorld>(
    sim: &mut Sim<W>,
    handle: IpcHandle,
    done: impl FnOnce(&mut Sim<W>, Result<Ptr, MemError>) + 'static,
) {
    let cost = sim.world.gpus_ref().topo.ipc_open_cost;
    let now = sim.now();
    sim.trace.span_at(
        now,
        now + cost,
        names::CAT_GPUSIM,
        names::SPAN_IPC_OPEN,
        Track::Session,
    );
    sim.trace.count(names::GPUSIM_IPC_OPEN_COUNT, 0, 0, 1);
    let verdict = crate::fault::fault_roll(sim, FaultOp::IpcOpen);
    sim.schedule_in(cost, move |sim| {
        let res = match verdict {
            FaultDecision::Ok => sim.world.mem().registry.open_ipc(handle),
            FaultDecision::Transient => Err(MemError::Faulted { transient: true }),
            FaultDecision::Lost => Err(MemError::Faulted { transient: false }),
        };
        done(sim, res);
    });
}

/// Busy-wait-free "synchronize": run `f` when everything currently queued
/// on `stream` has completed (like `cudaStreamSynchronize` continuation).
pub fn stream_sync<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    f: impl FnOnce(&mut Sim<W>) + 'static,
) {
    let free_at: SimTime = sim.world.gpus_ref().stream(stream).free_at();
    let at = free_at.max(sim.now());
    sim.trace.instant(
        at,
        names::CAT_GPUSIM,
        names::SPAN_STREAM_SYNC,
        Track::Stream {
            gpu: stream.gpu.0,
            index: stream.index as u32,
        },
    );
    sim.schedule_at(at, f);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn streams_are_per_gpu() {
        let mut sys = GpuSystem::k40_node(2);
        let s1 = sys.create_stream(GpuId(0));
        let s2 = sys.create_stream(GpuId(1));
        assert_eq!(s1.index, 1);
        assert_eq!(s2.index, 1);
        assert_ne!(s1, s2);
        assert_eq!(sys.default_stream(GpuId(0)).index, 0);
    }

    #[test]
    fn effective_bw_throttles() {
        let mut sys = GpuSystem::k40_node(1);
        let full = sys.gpu(GpuId(0)).effective_traffic_bw().as_gbps();
        sys.gpu_mut(GpuId(0)).block_limit = Some(3);
        let limited = sys.gpu(GpuId(0)).effective_traffic_bw().as_gbps();
        assert!((limited - full * 3.0 / 15.0).abs() < 1e-6);
        sys.gpu_mut(GpuId(0)).block_limit = None;
        sys.gpu_mut(GpuId(0)).bandwidth_share = 0.5;
        let contended = sys.gpu(GpuId(0)).effective_traffic_bw().as_gbps();
        assert!((contended - full * 0.5).abs() < 1e-6);
    }

    #[test]
    fn block_limit_above_sm_count_is_full_speed() {
        let mut sys = GpuSystem::k40_node(1);
        sys.gpu_mut(GpuId(0)).block_limit = Some(100);
        assert!(
            (sys.gpu(GpuId(0)).effective_traffic_bw().as_gbps()
                - GpuSpec::k40().dram_traffic_bw.as_gbps())
            .abs()
                < 1e-6
        );
    }

    #[test]
    fn stream_sync_fires_after_queued_work() {
        use crate::copy::memcpy;
        let mut sim = Sim::new(NodeWorld::new(1));
        let gpu = GpuId(0);
        let a = sim
            .world
            .memory
            .alloc(memsim::MemSpace::Device(gpu), 1 << 20)
            .unwrap();
        let b = sim
            .world
            .memory
            .alloc(memsim::MemSpace::Device(gpu), 1 << 20)
            .unwrap();
        let st = sim.world.gpu_system.default_stream(gpu);
        memcpy(&mut sim, st, a, b, 1 << 20, |_, _| {});
        let busy_until = sim.world.gpu_system.stream(st).free_at();
        stream_sync(&mut sim, st, move |sim| {
            assert_eq!(sim.now(), busy_until, "sync fires exactly at drain");
        });
        sim.run();
        assert!(sim.executed_events() >= 2);
    }

    #[test]
    fn stream_sync_on_idle_stream_fires_now() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        stream_sync(&mut sim, st, |sim| assert_eq!(sim.now(), SimTime::ZERO));
        sim.run();
    }

    #[test]
    fn cpu_resources_grow_per_rank() {
        let mut w = NodeWorld::new(1);
        let _ = w.cpu(5);
        assert_eq!(w.cpus.len(), 6);
        // Reservations are independent per rank.
        let (_, e0) = w.cpu(0).reserve(SimTime::ZERO, SimTime::from_micros(10));
        let (s1, _) = w.cpu(1).reserve(SimTime::ZERO, SimTime::from_micros(10));
        assert_eq!(e0.as_nanos(), 10_000);
        assert_eq!(s1, SimTime::ZERO, "rank 1's CPU is not blocked by rank 0");
    }

    #[test]
    fn ipc_roundtrip_charges_open_cost() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let dev = sim
            .world
            .memory
            .alloc(memsim::MemSpace::Device(GpuId(0)), 1024)
            .unwrap();
        let handle = ipc_export(&mut sim, dev, 1024).unwrap();
        ipc_open(&mut sim, handle, move |sim, res| {
            let mapped = res.unwrap();
            assert_eq!(mapped.alloc, dev.alloc);
            assert_eq!(sim.now(), SimTime::from_micros(120));
        });
        sim.run();
        assert_eq!(sim.executed_events(), 1);
    }
}
