//! A CUDA-like simulated GPU runtime.
//!
//! Functionally, every operation (kernel, memcpy, zero-copy access)
//! really moves bytes between the host-backed buffers in [`memsim`].
//! Temporally, every operation is charged virtual time on a FIFO *stream*
//! from a cost model built on the same first-order mechanics that shaped
//! the paper's Figure 6–8 results:
//!
//! * global-memory access happens in 128-byte transactions issued per
//!   32-thread warp, 8 bytes per thread (one 256-byte warp chunk per
//!   iteration — exactly the access pattern of the paper's kernels);
//! * misaligned chunks touch an extra cache line, so packing a lower
//!   triangular matrix (whose columns start at arbitrary phases) costs
//!   ~1.5× the DRAM traffic of an aligned sub-matrix — that *is* the
//!   paper's 94%-vs-80% bandwidth gap, emerging mechanically;
//! * kernels additionally stream their CUDA-DEV descriptor array from
//!   global memory (32 bytes per work unit), which is what makes
//!   1-element-block datatypes (matrix transpose, Figure 12) expensive;
//! * `cudaMemcpy2D` falls off a bandwidth cliff when the row width is not
//!   a multiple of 64 bytes (Figure 8's published behaviour);
//! * PCIe transfers, kernel launches and memcpy calls pay fixed
//!   latencies, and SM occupancy can be throttled (the paper's "minimal
//!   GPU resources" experiment) or derated by a co-running application.

pub mod arch;
pub mod copy;
pub mod fault;
pub mod kernel;
pub mod spec;
pub mod stream_trigger;
pub mod system;

pub use arch::{CostParams, GpuArch};
pub use copy::{memcpy, memcpy_2d, CopyDirection};
pub use fault::{count_retry, fault_roll, fault_scaled};
pub use kernel::{launch_transfer_kernel, transfer_kernel_time, KernelConfig};
pub use spec::{GpuSpec, Interconnect, NodeTopology};
pub use stream_trigger::{graph_kernel, replay_issue, GraphCapture, StreamGraph};
pub use system::{
    ipc_export, ipc_open, stream_sync, GpuState, GpuSystem, GpuWorld, NodeWorld, StreamId,
};
