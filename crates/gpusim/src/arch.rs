//! The multi-architecture GPU backend registry.
//!
//! One [`GpuArch`] entry per supported part ties together the raw
//! calibration constants from [`crate::spec`] (the "memory manager"
//! layer: what the hardware is), a node topology (how GPUs in a node
//! peer), and a lazily-cached [`CostParams`] table of derived kernel
//! cost parameters (the "kernel manager" layer: what the analytic
//! tuners and harnesses actually consume). Execution — streams, kernels
//! and copies in [`crate::system`]/[`crate::kernel`] — reads whichever
//! spec the world was built with, so selecting an architecture at
//! session-build time re-parameterizes every layer above.
//!
//! Lookup is by short slug (`"k40"`, `"a100"`) or alias, case
//! insensitive. The registry default is the paper's K40 testbed: with
//! every knob at its default, all figure harnesses reproduce the
//! committed `results/` CSVs byte-identically.

use crate::spec::{GpuSpec, NodeTopology};
use std::sync::OnceLock;

/// Derived per-architecture cost parameters, computed once per process
/// from the spec/topology constructors and cached. These are the
/// numbers the analytic models and harness headers want pre-folded —
/// deriving them at every decision point would re-do the same float
/// arithmetic thousands of times per sweep.
#[derive(Clone, Copy, Debug)]
pub struct CostParams {
    /// Kernel launch overhead, ns.
    pub launch_ns: f64,
    /// Fixed `cudaMemcpy` cost (driver + one PCIe transaction), ns.
    pub memcpy_fixed_ns: f64,
    /// DRAM traffic cost of a full-occupancy pack kernel, ns per
    /// traffic byte (efficiency derate included).
    pub pack_nspb: f64,
    /// Practical peak in-device copy rate, GB/s (the Figure 6 ceiling).
    pub peak_copy_gbps: f64,
    /// Peer-to-peer (GPU↔GPU) bandwidth, GB/s.
    pub p2p_gbps: f64,
    /// Host↔device bandwidth, GB/s.
    pub h2d_gbps: f64,
    /// Bytes one warp moves per iteration.
    pub warp_chunk: u64,
    /// Whether the `cudaMemcpy2D` misaligned-row cliff exists.
    pub memcpy2d_cliff: bool,
}

/// One registered GPU architecture: named constructors for its spec and
/// node topology plus the cached derived cost table.
pub struct GpuArch {
    /// Short slug used on the command line and in CSV arch columns.
    pub name: &'static str,
    /// Alternate lookup names (matched case-insensitively).
    pub aliases: &'static [&'static str],
    /// One-line description for help text and docs.
    pub summary: &'static str,
    spec: fn() -> GpuSpec,
    topo: fn() -> NodeTopology,
    cost: OnceLock<CostParams>,
}

static REGISTRY: [GpuArch; 4] = [
    GpuArch {
        name: "k40",
        aliases: &["tesla-k40", "kepler"],
        summary: "Kepler GK110B, PCIe gen3 PSG node (the paper's testbed; default)",
        spec: GpuSpec::k40,
        topo: NodeTopology::psg_node,
        cost: OnceLock::new(),
    },
    GpuArch {
        name: "p100",
        aliases: &["tesla-p100", "pascal"],
        summary: "Pascal GP100 SXM2, NVLink 1.0 DGX-1 node",
        spec: GpuSpec::p100,
        topo: NodeTopology::dgx1_p100_node,
        cost: OnceLock::new(),
    },
    GpuArch {
        name: "v100",
        aliases: &["tesla-v100", "volta"],
        summary: "Volta GV100 SXM2, NVLink 2.0 DGX-1V node",
        spec: GpuSpec::v100,
        topo: NodeTopology::dgx1v_node,
        cost: OnceLock::new(),
    },
    GpuArch {
        name: "a100",
        aliases: &["ampere", "dgx-a100"],
        summary: "Ampere GA100 SXM4-40GB, NVLink 3.0 DGX A100 node",
        spec: GpuSpec::a100,
        topo: NodeTopology::dgxa100_node,
        cost: OnceLock::new(),
    },
];

impl GpuArch {
    /// Every registered architecture, default first.
    pub fn registry() -> &'static [GpuArch] {
        &REGISTRY
    }

    /// The registry default: the paper's K40 testbed. Every harness and
    /// world constructor that does not name an architecture resolves to
    /// this entry, which reproduces the committed results byte-for-byte.
    pub fn default_arch() -> &'static GpuArch {
        &REGISTRY[0]
    }

    /// Case-insensitive lookup by slug or alias.
    pub fn lookup(name: &str) -> Option<&'static GpuArch> {
        let want = name.trim().to_ascii_lowercase();
        REGISTRY
            .iter()
            .find(|a| a.name == want || a.aliases.iter().any(|al| *al == want))
    }

    /// Infallible lookup for CLI/builder boundaries: resolves like
    /// [`GpuArch::lookup`] and aborts with the list of known
    /// architectures on an unknown name (a user-input error — there is
    /// no meaningful way to continue with an unknown cost model).
    pub fn named(name: &str) -> &'static GpuArch {
        match GpuArch::lookup(name) {
            Some(a) => a,
            None => panic!(
                "unknown GPU architecture {name:?}; known: {}",
                GpuArch::names().join(", ")
            ),
        }
    }

    /// The registered slugs, registry order.
    pub fn names() -> Vec<&'static str> {
        REGISTRY.iter().map(|a| a.name).collect()
    }

    /// A fresh copy of this architecture's GPU constants.
    pub fn spec(&self) -> GpuSpec {
        (self.spec)()
    }

    /// A fresh copy of this architecture's node interconnect constants.
    pub fn topology(&self) -> NodeTopology {
        (self.topo)()
    }

    /// The derived cost table, computed on first use and cached for the
    /// life of the process.
    pub fn cost(&self) -> &CostParams {
        self.cost.get_or_init(|| {
            let s = self.spec();
            let t = self.topology();
            let pack_bw = s
                .dram_traffic_bw
                .derated(s.pack_kernel_efficiency)
                .bytes_per_sec();
            CostParams {
                launch_ns: s.launch_overhead.as_nanos() as f64,
                memcpy_fixed_ns: (s.memcpy_latency.as_nanos() + t.pcie_latency.as_nanos()) as f64,
                pack_nspb: 1e9 / pack_bw,
                peak_copy_gbps: s.peak_copy_rate().as_gbps(),
                p2p_gbps: t.pcie_p2p.as_gbps(),
                h2d_gbps: t.pcie_h2d.as_gbps(),
                warp_chunk: s.warp_chunk(),
                memcpy2d_cliff: t.memcpy2d_cliff(),
            }
        })
    }
}

impl std::fmt::Debug for GpuArch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GpuArch")
            .field("name", &self.name)
            .field("summary", &self.summary)
            .finish()
    }
}

impl PartialEq for GpuArch {
    fn eq(&self, other: &GpuArch) -> bool {
        // Registry entries are static singletons; identity is the name.
        self.name == other.name
    }
}
impl Eq for GpuArch {}

/// `impl Into<&'static GpuArch>` conversions so builder APIs accept
/// either a registry reference or a name:
/// `Session::builder().arch("v100")`.
impl From<&str> for &'static GpuArch {
    fn from(name: &str) -> &'static GpuArch {
        GpuArch::named(name)
    }
}

impl From<&String> for &'static GpuArch {
    fn from(name: &String) -> &'static GpuArch {
        GpuArch::named(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Interconnect;

    #[test]
    fn lookup_by_slug_alias_and_case() {
        assert_eq!(GpuArch::lookup("k40").unwrap().name, "k40");
        assert_eq!(GpuArch::lookup("Volta").unwrap().name, "v100");
        assert_eq!(GpuArch::lookup(" AMPERE ").unwrap().name, "a100");
        assert!(GpuArch::lookup("h100").is_none());
        assert_eq!(GpuArch::names(), vec!["k40", "p100", "v100", "a100"]);
    }

    #[test]
    fn default_arch_is_the_papers_k40() {
        let d = GpuArch::default_arch();
        assert_eq!(d.name, "k40");
        // Byte-identical to the hand-written constants: the registry is
        // a view over spec.rs, not a re-derivation.
        assert_eq!(format!("{:?}", d.spec()), format!("{:?}", GpuSpec::k40()));
        assert_eq!(
            format!("{:?}", d.topology()),
            format!("{:?}", NodeTopology::psg_node())
        );
    }

    #[test]
    #[should_panic(expected = "unknown GPU architecture")]
    fn named_aborts_on_unknown() {
        let _ = GpuArch::named("h100");
    }

    #[test]
    fn cost_params_cache_and_derive() {
        let k40 = GpuArch::default_arch();
        let c = k40.cost();
        assert!((c.peak_copy_gbps - 180.0).abs() < 1e-9);
        assert_eq!(c.warp_chunk, 256);
        assert!(c.memcpy2d_cliff);
        // Cached: the same reference comes back.
        assert!(std::ptr::eq(c, k40.cost()));
        // NVLink parts flatten the cliff.
        assert!(!GpuArch::named("a100").cost().memcpy2d_cliff);
    }

    #[test]
    fn newer_archs_invert_the_pcie_era_tradeoffs() {
        let k40 = GpuArch::named("k40");
        let a100 = GpuArch::named("a100");
        // Launch overheads shrank generation over generation.
        assert!(a100.spec().launch_overhead < k40.spec().launch_overhead);
        // NVLink p2p beats the PCIe-era host link by an order.
        for arch in ["p100", "v100", "a100"] {
            let t = GpuArch::named(arch).topology();
            assert_eq!(t.interconnect, Interconnect::NvLink, "{arch}");
            assert!(
                t.pcie_p2p.as_gbps() > k40.topology().pcie_p2p.as_gbps(),
                "{arch} NVLink p2p must beat PCIe p2p"
            );
        }
    }

    #[test]
    fn from_str_resolves() {
        let a: &'static GpuArch = "v100".into();
        assert_eq!(a.name, "v100");
        assert_eq!(a, GpuArch::named("tesla-v100"));
    }
}
