//! Hardware calibration constants.
//!
//! Defaults model the paper's testbed: NVIDIA K40 (Kepler GK110B,
//! 15 SMs), PCIe gen3 x16, CUDA 7.0-era driver overheads. All figure
//! harnesses use these defaults; tests may build cheaper specs.
//!
//! This module is the *only* place raw per-architecture constants are
//! written down (the `cargo xtask lint` arch rule enforces it). The
//! [`crate::arch::GpuArch`] registry layers lookup-by-name, aliases and
//! cached derived cost parameters on top of these constructors; newer
//! parts (P100/V100/A100) exist so the figure harnesses can ask whether
//! the paper's pipeline still wins on NVLink-era hardware. Sources for
//! each number are cited on the constructor.

use simcore::Bandwidth;
use simcore::SimTime;

/// Static description of one GPU.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every CUDA architecture).
    pub warp_size: u32,
    /// Size of a global-memory transaction (cache line), bytes.
    pub transaction_bytes: u64,
    /// Bytes each thread moves per iteration (the paper's kernels use
    /// 8-byte accesses to minimize transactions).
    pub bytes_per_thread: u64,
    /// Raw DRAM traffic bandwidth (read + write traffic combined). A
    /// perfectly coalesced device-to-device copy moves 2 bytes of traffic
    /// per payload byte, so `360 GB/s` of traffic is the `~180 GB/s`
    /// practical `cudaMemcpy` copy rate observed on K40.
    pub dram_traffic_bw: Bandwidth,
    /// Fixed kernel launch overhead.
    pub launch_overhead: SimTime,
    /// Fixed per-call overhead of a `cudaMemcpy*` (driver + DMA setup).
    pub memcpy_latency: SimTime,
    /// Bytes of descriptor traffic per CUDA-DEV work unit (the kernel
    /// streams its `cuda_dev_dist` array from global memory).
    pub descriptor_bytes: u64,
    /// Efficiency of pack/unpack kernels relative to `cudaMemcpy`'s
    /// hand-tuned copy loop (address generation, bounds logic and
    /// dual-stream access patterns cost a few percent — the paper
    /// measured its vector kernel at 94% of the `cudaMemcpy` peak).
    pub pack_kernel_efficiency: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA Tesla K40 (the paper's GPU).
    pub fn k40() -> Self {
        GpuSpec {
            name: "Tesla K40",
            sm_count: 15,
            warp_size: 32,
            transaction_bytes: 128,
            bytes_per_thread: 8,
            dram_traffic_bw: Bandwidth::from_gbps(360.0),
            launch_overhead: SimTime::from_micros(6),
            memcpy_latency: SimTime::from_micros(4),
            descriptor_bytes: 32,
            pack_kernel_efficiency: 0.94,
            memory_bytes: 12 << 30,
        }
    }

    /// NVIDIA Tesla P100 (Pascal GP100, SXM2). DGX-1 era: 56 SMs,
    /// HBM2 at 732 GB/s peak (~480 GB/s practical `cudaMemcpy` D2D, so
    /// 960 GB/s of read+write traffic), 32-byte L2 sectors instead of
    /// Kepler's monolithic 128-byte lines, CUDA 8-era launch overheads.
    pub fn p100() -> Self {
        GpuSpec {
            name: "Tesla P100-SXM2",
            sm_count: 56,
            warp_size: 32,
            transaction_bytes: 32,
            bytes_per_thread: 8,
            dram_traffic_bw: Bandwidth::from_gbps(960.0),
            launch_overhead: SimTime::from_micros(5),
            memcpy_latency: SimTime::from_micros(3),
            descriptor_bytes: 32,
            pack_kernel_efficiency: 0.93,
            memory_bytes: 16 << 30,
        }
    }

    /// NVIDIA Tesla V100 (Volta GV100, SXM2). DGX-1V era: 80 SMs,
    /// HBM2 at 900 GB/s peak (~780 GB/s D2D copy measured by the
    /// bandwidthTest sample, 1560 GB/s traffic), 32-byte sectors,
    /// CUDA 9-era overheads.
    pub fn v100() -> Self {
        GpuSpec {
            name: "Tesla V100-SXM2",
            sm_count: 80,
            warp_size: 32,
            transaction_bytes: 32,
            bytes_per_thread: 8,
            dram_traffic_bw: Bandwidth::from_gbps(1560.0),
            launch_overhead: SimTime::from_micros(4),
            memcpy_latency: SimTime::from_nanos(2500),
            descriptor_bytes: 32,
            pack_kernel_efficiency: 0.95,
            memory_bytes: 16 << 30,
        }
    }

    /// NVIDIA A100 (Ampere GA100, SXM4, 40 GB). DGX A100 era: 108 SMs,
    /// HBM2e at 1555 GB/s peak (~1360 GB/s D2D copy, 2720 GB/s
    /// traffic), 32-byte sectors, CUDA 11-era overheads.
    pub fn a100() -> Self {
        GpuSpec {
            name: "A100-SXM4-40GB",
            sm_count: 108,
            warp_size: 32,
            transaction_bytes: 32,
            bytes_per_thread: 8,
            dram_traffic_bw: Bandwidth::from_gbps(2720.0),
            launch_overhead: SimTime::from_micros(3),
            memcpy_latency: SimTime::from_micros(2),
            descriptor_bytes: 32,
            pack_kernel_efficiency: 0.95,
            memory_bytes: 40 << 30,
        }
    }

    /// Bytes one warp moves per iteration (256 with the defaults).
    pub fn warp_chunk(&self) -> u64 {
        self.warp_size as u64 * self.bytes_per_thread
    }

    /// Practical peak *copy* rate (payload bytes per second) of a
    /// perfectly coalesced in-device copy — the `cudaMemcpy` rate the
    /// paper treats as the achievable ceiling in Figure 6.
    pub fn peak_copy_rate(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.dram_traffic_bw.bytes_per_sec() / 2.0)
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        crate::arch::GpuArch::default_arch().spec()
    }
}

/// The GPU↔GPU interconnect family of a node. NVLink-era parts invert
/// several PCIe-era trade-offs (peer traffic stops being the bottleneck
/// and fine-grained remote access keeps the link far busier), so the
/// tag is carried explicitly for tests and self-describing traces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Interconnect {
    /// GPUs peer over the PCIe switch (the paper's PSG node).
    Pcie,
    /// GPUs peer over dedicated NVLink bricks (DGX-class nodes).
    NvLink,
}

/// Node-level interconnect constants shared by all GPUs in a node.
#[derive(Clone, Debug)]
pub struct NodeTopology {
    /// Which fabric the peer-to-peer path rides on.
    pub interconnect: Interconnect,
    /// Host→device effective PCIe bandwidth.
    pub pcie_h2d: Bandwidth,
    /// Device→host effective PCIe bandwidth.
    pub pcie_d2h: Bandwidth,
    /// Peer-to-peer (GPU↔GPU over the PCIe switch) bandwidth. The paper
    /// cites GPU–GPU PCIe bandwidth exceeding CPU–GPU bandwidth.
    pub pcie_p2p: Bandwidth,
    /// PCIe transaction latency.
    pub pcie_latency: SimTime,
    /// Host-side `memcpy` bandwidth (for host↔host staging copies).
    pub host_memcpy_bw: Bandwidth,
    /// One-time cost of opening a CUDA IPC handle.
    pub ipc_open_cost: SimTime,
    /// Efficiency of a kernel gathering/scattering *peer* GPU memory
    /// through an IPC mapping, relative to a bulk P2P copy. The paper
    /// measured direct remote unpacking 10–15% slower than staging into
    /// a local buffer first (§5.2.1); small strided PCIe reads cannot
    /// keep the link as full as bulk DMA.
    pub peer_kernel_efficiency: f64,
    /// `cudaMemcpy2D` effective-bandwidth factor when the row width is
    /// *not* a multiple of 64 bytes (the Figure 8 cliff).
    pub memcpy2d_misaligned_factor: f64,
    /// Per-row descriptor overhead of `cudaMemcpy2D` through the DMA
    /// engine (large row counts amortize poorly in the real driver).
    pub memcpy2d_row_overhead: SimTime,
    /// One-time cost of installing a DEV-program handler on the NIC
    /// packet processor (sPIN's handler-registration path: compile the
    /// descriptor program into HPU handler state and pin it). Paid once
    /// per connection, like `ipc_open_cost`.
    pub nic_handler_setup: SimTime,
    /// Per-descriptor issue cost on the NIC handler cores: each DEV
    /// work unit costs one gather/scatter descriptor dispatch. sPIN
    /// budgets a handler at a few ns per packet op on dedicated HPU
    /// cores; commodity HCA firmware engines are slower.
    pub nic_desc_issue: SimTime,
    /// NIC gather/scatter DMA bandwidth when the packet processor
    /// drives strided reads from GPU memory over the host bus (PCIe
    /// peer-to-peer into the HCA; bounded by the host link, and below
    /// bulk-DMA rates because strided descriptors keep the bus less
    /// full).
    pub nic_dma_bw: Bandwidth,
    /// Latency of a GPU-stream doorbell ring reaching the NIC/proxy
    /// (the stream-triggered MMIO write of HPE's stream-aware MP; a
    /// store over the host bus plus trigger dispatch).
    pub stream_doorbell_lat: SimTime,
    /// Per-op issue cost when a captured stream-op graph is replayed
    /// (trigger/doorbell/completion entries re-armed by the stream
    /// front-end, no CPU involvement).
    pub stream_op_issue: SimTime,
}

impl NodeTopology {
    /// PCIe gen3 x16 era constants matching the NVIDIA PSG cluster.
    pub fn psg_node() -> Self {
        NodeTopology {
            interconnect: Interconnect::Pcie,
            pcie_h2d: Bandwidth::from_gbps(10.0),
            pcie_d2h: Bandwidth::from_gbps(10.0),
            pcie_p2p: Bandwidth::from_gbps(11.0),
            pcie_latency: SimTime::from_micros(2),
            host_memcpy_bw: Bandwidth::from_gbps(8.0),
            ipc_open_cost: SimTime::from_micros(120),
            peer_kernel_efficiency: 0.85,
            memcpy2d_misaligned_factor: 0.15,
            memcpy2d_row_overhead: SimTime::from_nanos(30),
            // FDR-era ConnectX-3 firmware engine: handler install is a
            // verbs QP reconfig (~command-interface round trip), per
            // descriptor dispatch is firmware-driven, gather DMA is
            // bounded by the gen3 host link with strided-read derating.
            nic_handler_setup: SimTime::from_micros(40),
            nic_desc_issue: SimTime::from_nanos(120),
            nic_dma_bw: Bandwidth::from_gbps(5.0),
            // Kepler has no stream memory ops; a CPU proxy thread polls
            // the doorbell flag, so the ring is host-visible only after
            // a PCIe write + poll interval.
            stream_doorbell_lat: SimTime::from_micros(3),
            stream_op_issue: SimTime::from_nanos(400),
        }
    }

    /// DGX-1 (P100) node: NVLink 1.0 peering (two bonded links per
    /// neighbour pair, ~35 GB/s measured by p2pBandwidthLatencyTest),
    /// host link still PCIe gen3. NVLink's native load/store peering
    /// keeps fine-grained kernels close to bulk-DMA rates, and the
    /// post-Kepler DMA engines largely flatten the `cudaMemcpy2D`
    /// misaligned-row cliff of Figure 8.
    pub fn dgx1_p100_node() -> Self {
        NodeTopology {
            interconnect: Interconnect::NvLink,
            pcie_h2d: Bandwidth::from_gbps(11.0),
            pcie_d2h: Bandwidth::from_gbps(11.0),
            pcie_p2p: Bandwidth::from_gbps(35.0),
            pcie_latency: SimTime::from_nanos(1900),
            host_memcpy_bw: Bandwidth::from_gbps(10.0),
            ipc_open_cost: SimTime::from_micros(100),
            peer_kernel_efficiency: 0.90,
            memcpy2d_misaligned_factor: 0.60,
            memcpy2d_row_overhead: SimTime::from_nanos(15),
            // EDR-era ConnectX-4: faster command interface, offload
            // engines closer to sPIN's measured handler rates; Pascal
            // adds cuStreamWriteValue so the doorbell is a real MMIO
            // store, no proxy poll.
            nic_handler_setup: SimTime::from_micros(25),
            nic_desc_issue: SimTime::from_nanos(80),
            nic_dma_bw: Bandwidth::from_gbps(9.0),
            stream_doorbell_lat: SimTime::from_nanos(1200),
            stream_op_issue: SimTime::from_nanos(250),
        }
    }

    /// DGX-1V (V100) node: NVLink 2.0 (~45 GB/s per neighbour pair),
    /// PCIe gen3 host link with Volta's improved copy engines.
    pub fn dgx1v_node() -> Self {
        NodeTopology {
            interconnect: Interconnect::NvLink,
            pcie_h2d: Bandwidth::from_gbps(12.0),
            pcie_d2h: Bandwidth::from_gbps(12.0),
            pcie_p2p: Bandwidth::from_gbps(45.0),
            pcie_latency: SimTime::from_nanos(1700),
            host_memcpy_bw: Bandwidth::from_gbps(12.0),
            ipc_open_cost: SimTime::from_micros(90),
            peer_kernel_efficiency: 0.92,
            memcpy2d_misaligned_factor: 0.80,
            memcpy2d_row_overhead: SimTime::from_nanos(8),
            // EDR ConnectX-5 with full DC offload pipeline.
            nic_handler_setup: SimTime::from_micros(18),
            nic_desc_issue: SimTime::from_nanos(60),
            nic_dma_bw: Bandwidth::from_gbps(10.5),
            stream_doorbell_lat: SimTime::from_nanos(900),
            stream_op_issue: SimTime::from_nanos(180),
        }
    }

    /// DGX A100 node: NVLink 3.0 through NVSwitch (~235 GB/s
    /// unidirectional per GPU pair), PCIe gen4 x16 host link.
    pub fn dgxa100_node() -> Self {
        NodeTopology {
            interconnect: Interconnect::NvLink,
            pcie_h2d: Bandwidth::from_gbps(22.0),
            pcie_d2h: Bandwidth::from_gbps(22.0),
            pcie_p2p: Bandwidth::from_gbps(235.0),
            pcie_latency: SimTime::from_nanos(1500),
            host_memcpy_bw: Bandwidth::from_gbps(18.0),
            ipc_open_cost: SimTime::from_micros(80),
            peer_kernel_efficiency: 0.93,
            memcpy2d_misaligned_factor: 0.85,
            memcpy2d_row_overhead: SimTime::from_nanos(5),
            // HDR ConnectX-6 era: wide command interface, BlueField-
            // class packet processors, gen4 host link; doorbell rates
            // from HPE's stream-triggered measurements on Slingshot-
            // class NICs (sub-µs trigger visibility).
            nic_handler_setup: SimTime::from_micros(12),
            nic_desc_issue: SimTime::from_nanos(40),
            nic_dma_bw: Bandwidth::from_gbps(20.0),
            stream_doorbell_lat: SimTime::from_nanos(600),
            stream_op_issue: SimTime::from_nanos(120),
        }
    }

    /// Does this node model the Figure 8 `cudaMemcpy2D` misaligned-row
    /// bandwidth cliff? Kepler-era DMA engines fall to ~15% of peak on
    /// rows that are not 64-byte multiples; later engines mostly don't.
    pub fn memcpy2d_cliff(&self) -> bool {
        self.memcpy2d_misaligned_factor < 0.5
    }
}

impl Default for NodeTopology {
    fn default() -> Self {
        crate::arch::GpuArch::default_arch().topology()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_constants() {
        let s = GpuSpec::k40();
        assert_eq!(s.warp_chunk(), 256);
        assert!((s.peak_copy_rate().as_gbps() - 180.0).abs() < 1e-9);
        assert_eq!(s.sm_count, 15);
    }

    #[test]
    fn topology_defaults() {
        let t = NodeTopology::default();
        assert!(t.pcie_p2p.as_gbps() > t.pcie_h2d.as_gbps());
        assert!(t.memcpy2d_misaligned_factor < 1.0);
    }
}
