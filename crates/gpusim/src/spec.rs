//! Hardware calibration constants.
//!
//! Defaults model the paper's testbed: NVIDIA K40 (Kepler GK110B,
//! 15 SMs), PCIe gen3 x16, CUDA 7.0-era driver overheads. All figure
//! harnesses use these defaults; tests may build cheaper specs.

use simcore::Bandwidth;
use simcore::SimTime;

/// Static description of one GPU.
#[derive(Clone, Debug)]
pub struct GpuSpec {
    pub name: &'static str,
    /// Number of streaming multiprocessors.
    pub sm_count: u32,
    /// Threads per warp (32 on every CUDA architecture).
    pub warp_size: u32,
    /// Size of a global-memory transaction (cache line), bytes.
    pub transaction_bytes: u64,
    /// Bytes each thread moves per iteration (the paper's kernels use
    /// 8-byte accesses to minimize transactions).
    pub bytes_per_thread: u64,
    /// Raw DRAM traffic bandwidth (read + write traffic combined). A
    /// perfectly coalesced device-to-device copy moves 2 bytes of traffic
    /// per payload byte, so `360 GB/s` of traffic is the `~180 GB/s`
    /// practical `cudaMemcpy` copy rate observed on K40.
    pub dram_traffic_bw: Bandwidth,
    /// Fixed kernel launch overhead.
    pub launch_overhead: SimTime,
    /// Fixed per-call overhead of a `cudaMemcpy*` (driver + DMA setup).
    pub memcpy_latency: SimTime,
    /// Bytes of descriptor traffic per CUDA-DEV work unit (the kernel
    /// streams its `cuda_dev_dist` array from global memory).
    pub descriptor_bytes: u64,
    /// Efficiency of pack/unpack kernels relative to `cudaMemcpy`'s
    /// hand-tuned copy loop (address generation, bounds logic and
    /// dual-stream access patterns cost a few percent — the paper
    /// measured its vector kernel at 94% of the `cudaMemcpy` peak).
    pub pack_kernel_efficiency: f64,
    /// Device memory capacity in bytes.
    pub memory_bytes: u64,
}

impl GpuSpec {
    /// NVIDIA Tesla K40 (the paper's GPU).
    pub fn k40() -> Self {
        GpuSpec {
            name: "Tesla K40",
            sm_count: 15,
            warp_size: 32,
            transaction_bytes: 128,
            bytes_per_thread: 8,
            dram_traffic_bw: Bandwidth::from_gbps(360.0),
            launch_overhead: SimTime::from_micros(6),
            memcpy_latency: SimTime::from_micros(4),
            descriptor_bytes: 32,
            pack_kernel_efficiency: 0.94,
            memory_bytes: 12 << 30,
        }
    }

    /// Bytes one warp moves per iteration (256 with the defaults).
    pub fn warp_chunk(&self) -> u64 {
        self.warp_size as u64 * self.bytes_per_thread
    }

    /// Practical peak *copy* rate (payload bytes per second) of a
    /// perfectly coalesced in-device copy — the `cudaMemcpy` rate the
    /// paper treats as the achievable ceiling in Figure 6.
    pub fn peak_copy_rate(&self) -> Bandwidth {
        Bandwidth::from_bytes_per_sec(self.dram_traffic_bw.bytes_per_sec() / 2.0)
    }
}

impl Default for GpuSpec {
    fn default() -> Self {
        GpuSpec::k40()
    }
}

/// Node-level interconnect constants shared by all GPUs in a node.
#[derive(Clone, Debug)]
pub struct NodeTopology {
    /// Host→device effective PCIe bandwidth.
    pub pcie_h2d: Bandwidth,
    /// Device→host effective PCIe bandwidth.
    pub pcie_d2h: Bandwidth,
    /// Peer-to-peer (GPU↔GPU over the PCIe switch) bandwidth. The paper
    /// cites GPU–GPU PCIe bandwidth exceeding CPU–GPU bandwidth.
    pub pcie_p2p: Bandwidth,
    /// PCIe transaction latency.
    pub pcie_latency: SimTime,
    /// Host-side `memcpy` bandwidth (for host↔host staging copies).
    pub host_memcpy_bw: Bandwidth,
    /// One-time cost of opening a CUDA IPC handle.
    pub ipc_open_cost: SimTime,
    /// Efficiency of a kernel gathering/scattering *peer* GPU memory
    /// through an IPC mapping, relative to a bulk P2P copy. The paper
    /// measured direct remote unpacking 10–15% slower than staging into
    /// a local buffer first (§5.2.1); small strided PCIe reads cannot
    /// keep the link as full as bulk DMA.
    pub peer_kernel_efficiency: f64,
    /// `cudaMemcpy2D` effective-bandwidth factor when the row width is
    /// *not* a multiple of 64 bytes (the Figure 8 cliff).
    pub memcpy2d_misaligned_factor: f64,
    /// Per-row descriptor overhead of `cudaMemcpy2D` through the DMA
    /// engine (large row counts amortize poorly in the real driver).
    pub memcpy2d_row_overhead: SimTime,
}

impl NodeTopology {
    /// PCIe gen3 x16 era constants matching the NVIDIA PSG cluster.
    pub fn psg_node() -> Self {
        NodeTopology {
            pcie_h2d: Bandwidth::from_gbps(10.0),
            pcie_d2h: Bandwidth::from_gbps(10.0),
            pcie_p2p: Bandwidth::from_gbps(11.0),
            pcie_latency: SimTime::from_micros(2),
            host_memcpy_bw: Bandwidth::from_gbps(8.0),
            ipc_open_cost: SimTime::from_micros(120),
            peer_kernel_efficiency: 0.85,
            memcpy2d_misaligned_factor: 0.15,
            memcpy2d_row_overhead: SimTime::from_nanos(30),
        }
    }
}

impl Default for NodeTopology {
    fn default() -> Self {
        NodeTopology::psg_node()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn k40_constants() {
        let s = GpuSpec::k40();
        assert_eq!(s.warp_chunk(), 256);
        assert!((s.peak_copy_rate().as_gbps() - 180.0).abs() < 1e-9);
        assert_eq!(s.sm_count, 15);
    }

    #[test]
    fn topology_defaults() {
        let t = NodeTopology::default();
        assert!(t.pcie_p2p.as_gbps() > t.pcie_h2d.as_gbps());
        assert!(t.memcpy2d_misaligned_factor < 1.0);
    }
}
