//! The transfer (pack/unpack) kernel: functional execution plus the
//! coalescing cost model.
//!
//! A work unit is a `(src_off, dst_off, len)` segment move — the
//! `cuda_dev_dist` struct of the paper. The kernel walks units with a
//! grid-stride loop; each warp moves one 256-byte chunk per iteration
//! (32 threads × 8 bytes). The cost model counts the 128-byte cache
//! lines each chunk touches on each side:
//!
//! * an aligned chunk touches 2 lines (256 B of traffic) per side;
//! * a misaligned chunk straddles 3 lines (384 B) per side — a 1.5×
//!   traffic penalty, which is exactly where the triangular matrix loses
//!   its ~20% of bandwidth in Figure 6;
//! * every unit also streams its 32-byte descriptor from global memory,
//!   which penalizes datatypes shattered into tiny blocks (Figure 12's
//!   transpose with 8-byte units).
//!
//! Sides that live off-GPU (zero-copy mapped host memory, or a peer
//! GPU's memory accessed through IPC) are charged PCIe time instead of
//! DRAM traffic; kernel time is the max of the two, since the hardware
//! overlaps them.

use crate::fault;
use crate::spec::GpuSpec;
use crate::system::{GpuWorld, StreamId};
use faultsim::{Backoff, FaultDecision, FaultOp};
use memsim::{MemSpace, Ptr};
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::{Bandwidth, Sim, SimTime, Track};

/// Launch configuration for a transfer kernel.
#[derive(Clone, Copy, Debug)]
pub struct KernelConfig {
    /// Thread-block count override; `None` launches enough blocks to
    /// fill every SM.
    pub blocks: Option<u32>,
    /// Whether the kernel streams a CUDA-DEV descriptor array from
    /// global memory. The specialized *vector* kernel computes its
    /// offsets arithmetically from `(blocklength, stride, count)` and
    /// sets this false; the general DEV kernel sets it true.
    pub descriptor_stream: bool,
}

impl Default for KernelConfig {
    fn default() -> Self {
        KernelConfig {
            blocks: None,
            descriptor_stream: true,
        }
    }
}

/// 128-byte lines touched by one warp-chunked access of `len` bytes at
/// byte address `disp`. Full 256-byte chunks share the same phase
/// (256 ≡ 0 mod 128), so this is O(1).
fn access_lines(disp: u64, len: u64, spec: &GpuSpec) -> u64 {
    if len == 0 {
        return 0;
    }
    let txn = spec.transaction_bytes;
    let chunk = spec.warp_chunk();
    let full_chunks = len / chunk;
    let phase = disp % txn;
    let lines_per_full = if phase == 0 {
        chunk / txn
    } else {
        chunk / txn + 1
    };
    let mut lines = full_chunks * lines_per_full;
    let residue = len % chunk;
    if residue > 0 {
        let start = disp + full_chunks * chunk;
        lines += (start + residue - 1) / txn - start / txn + 1;
    }
    lines
}

/// DRAM traffic (bytes) one side of the kernel generates for a unit list,
/// given the base byte offset of that side's buffer.
pub fn side_traffic_bytes(units: &[CopyOp], base_off: u64, side_src: bool, spec: &GpuSpec) -> u64 {
    units
        .iter()
        .map(|u| {
            let off = base_off + if side_src { u.src_off } else { u.dst_off } as u64;
            access_lines(off, u.len as u64, spec) * spec.transaction_bytes
        })
        .sum()
}

/// Where one side of the transfer lives, relative to the executing GPU.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
enum Side {
    /// In the executing GPU's own DRAM.
    LocalDevice,
    /// Zero-copy mapped host memory, reached over PCIe.
    MappedHost,
    /// A peer GPU's memory reached over PCIe P2P (IPC mapping).
    PeerDevice,
}

fn classify(ptr: Ptr, exec_gpu: memsim::GpuId) -> Side {
    match ptr.space {
        MemSpace::Host => Side::MappedHost,
        MemSpace::Device(g) if g == exec_gpu => Side::LocalDevice,
        MemSpace::Device(_) => Side::PeerDevice,
    }
}

/// Pure timing of a transfer kernel (no event scheduling): used both by
/// the launch path and by analytical tests.
#[allow(clippy::too_many_arguments)]
pub fn transfer_kernel_time(
    spec: &GpuSpec,
    eff_traffic_bw: Bandwidth,
    pcie_bw: Bandwidth,
    pcie_latency: SimTime,
    src: Ptr,
    dst: Ptr,
    exec_gpu: memsim::GpuId,
    units: &[CopyOp],
    descriptor_stream: bool,
) -> SimTime {
    let payload: u64 = units.iter().map(|u| u.len as u64).sum();
    let src_side = classify(src, exec_gpu);
    let dst_side = classify(dst, exec_gpu);
    assert!(
        src_side == Side::LocalDevice || dst_side == Side::LocalDevice,
        "transfer kernel must touch the executing GPU's memory on at least one side"
    );

    // The general DEV kernel streams its descriptors from local DRAM.
    let mut dram_traffic = if descriptor_stream {
        units.len() as u64 * spec.descriptor_bytes
    } else {
        0
    };
    let mut pcie_bytes = 0u64;
    for (side, is_src, base) in [(src_side, true, src.offset), (dst_side, false, dst.offset)] {
        match side {
            Side::LocalDevice => {
                dram_traffic += side_traffic_bytes(units, base, is_src, spec);
            }
            Side::MappedHost | Side::PeerDevice => pcie_bytes += payload,
        }
    }

    let dram_time = eff_traffic_bw.time_for(dram_traffic);
    let pcie_time = if pcie_bytes > 0 {
        pcie_bw.time_for(pcie_bytes) + pcie_latency
    } else {
        SimTime::ZERO
    };
    spec.launch_overhead + dram_time.max(pcie_time)
}

/// Launch a pack/unpack kernel on `stream`: reserves the stream for the
/// modeled duration, moves the bytes when it completes, then calls
/// `done` with the completion time.
///
/// Fault charge point (`FaultOp::KernelLaunch`): transient injections
/// re-launch with the same unit list after a capped backoff; degrade
/// windows stretch the charge.
pub fn launch_transfer_kernel<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    dst: Ptr,
    units: Vec<CopyOp>,
    cfg: KernelConfig,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    launch_attempt(
        sim,
        stream,
        src,
        dst,
        units,
        cfg,
        fault::default_backoff(),
        done,
    );
}

#[allow(clippy::too_many_arguments)]
fn launch_attempt<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    dst: Ptr,
    units: Vec<CopyOp>,
    cfg: KernelConfig,
    mut backoff: Backoff,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let gpu = stream.gpu;
    let (eff_bw, spec, pcie_bw, pcie_lat) = {
        let sys = sim.world.gpus_ref();
        let g = sys.gpu(gpu);
        let mut bw = g
            .effective_traffic_bw()
            .derated(g.spec.pack_kernel_efficiency);
        if let Some(blocks) = cfg.blocks {
            let occ = (blocks as f64 / g.spec.sm_count as f64).min(1.0);
            bw = bw.derated(occ.max(f64::MIN_POSITIVE));
        }
        // Zero-copy / peer traffic rides PCIe; pick the worst-case
        // direction (h2d vs d2h rates are symmetric in the default
        // topology; p2p differs only slightly).
        let pcie = if src.space.is_host() || dst.space.is_host() {
            sys.topo.pcie_h2d
        } else {
            sys.topo.pcie_p2p.derated(sys.topo.peer_kernel_efficiency)
        };
        (bw, g.spec.clone(), pcie, sys.topo.pcie_latency)
    };

    let duration = transfer_kernel_time(
        &spec,
        eff_bw,
        pcie_bw,
        pcie_lat,
        src,
        dst,
        gpu,
        &units,
        cfg.descriptor_stream,
    );
    let duration = fault::fault_scaled(sim, FaultOp::KernelLaunch, duration);
    let now = sim.now();
    let (start, end) = sim.world.gpus().stream_mut(stream).reserve(now, duration);
    sim.trace.span_at(
        start,
        end,
        names::CAT_GPUSIM,
        names::SPAN_KERNEL,
        Track::Stream {
            gpu: stream.gpu.0,
            index: stream.index as u32,
        },
    );
    let verdict = fault::fault_roll(sim, FaultOp::KernelLaunch);
    sim.schedule_at(end, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::KernelLaunch, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::KernelLaunch);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                launch_attempt(sim, stream, src, dst, units, cfg, backoff, done);
            });
            return;
        }
        let payload: u64 = units.iter().map(|u| u.len as u64).sum();
        sim.world
            .mem()
            .transfer(src, dst, &units)
            .expect("kernel transfer failed");
        sim.trace
            .count(names::GPUSIM_KERNEL_BYTES, stream.gpu.0, 0, payload);
        // Units per launch make the optimizer's coalescing visible in
        // metrics: fewer, larger units at the same byte count.
        sim.trace.count(
            names::GPUSIM_KERNEL_UNITS,
            stream.gpu.0,
            0,
            units.len() as u64,
        );
        sim.trace
            .count(names::GPUSIM_KERNEL_LAUNCHES, stream.gpu.0, 0, 1);
        // Unit buffers cycle back to the scratch shelf so the fragment
        // pipeline reuses a handful of allocations at steady state.
        simcore::scratch::recycle_units_buf(units);
        done(sim, sim.now());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::NodeWorld;
    use memsim::GpuId;

    fn spec() -> GpuSpec {
        GpuSpec::k40()
    }

    #[test]
    fn aligned_chunk_touches_two_lines() {
        let s = spec();
        assert_eq!(access_lines(0, 256, &s), 2);
        assert_eq!(access_lines(128, 256, &s), 2);
        assert_eq!(access_lines(0, 1024, &s), 8);
    }

    #[test]
    fn misaligned_chunk_touches_three_lines() {
        let s = spec();
        assert_eq!(access_lines(8, 256, &s), 3);
        assert_eq!(access_lines(120, 256, &s), 3);
        // 1 KB misaligned: 4 chunks × 3 lines.
        assert_eq!(access_lines(8, 1024, &s), 12);
    }

    #[test]
    fn residue_lines() {
        let s = spec();
        // 8 bytes at offset 0: one line.
        assert_eq!(access_lines(0, 8, &s), 1);
        // 8 bytes straddling a line boundary: two lines.
        assert_eq!(access_lines(124, 8, &s), 2);
        // 300 bytes aligned: one full chunk (2 lines) + 44-byte residue (1 line).
        assert_eq!(access_lines(0, 300, &s), 3);
        assert_eq!(access_lines(0, 0, &s), 0);
    }

    #[test]
    fn aligned_copy_reaches_peak_rate() {
        // A large aligned D2D unit list should approach the practical
        // peak copy rate (traffic = 2 bytes per payload byte).
        let s = spec();
        let units: Vec<CopyOp> = (0..16384)
            .map(|i| CopyOp {
                src_off: i * 4096,
                dst_off: i * 4096,
                len: 4096,
            })
            .collect();
        let payload: u64 = units.iter().map(|u| u.len as u64).sum();
        let gpu = GpuId(0);
        let d = Ptr {
            space: MemSpace::Device(gpu),
            alloc: memsim::AllocId(0),
            offset: 0,
        };
        let d2 = Ptr {
            space: MemSpace::Device(gpu),
            alloc: memsim::AllocId(1),
            offset: 0,
        };
        let t = transfer_kernel_time(
            &s,
            s.dram_traffic_bw,
            Bandwidth::from_gbps(10.0),
            SimTime::from_micros(2),
            d,
            d2,
            gpu,
            &units,
            true,
        );
        let rate = payload as f64 / t.as_secs_f64() / 1e9;
        let peak = s.peak_copy_rate().as_gbps();
        assert!(rate > 0.9 * peak, "rate {rate} vs peak {peak}");
        assert!(rate <= peak);
    }

    #[test]
    fn misaligned_units_lose_about_a_third() {
        let s = spec();
        let gpu = GpuId(0);
        let mk = |phase: usize| -> Vec<CopyOp> {
            (0..16384)
                .map(|i| CopyOp {
                    src_off: i * 4096 + phase,
                    dst_off: i * 4096 + phase,
                    len: 4096,
                })
                .collect()
        };
        let d = Ptr {
            space: MemSpace::Device(gpu),
            alloc: memsim::AllocId(0),
            offset: 0,
        };
        let d2 = Ptr {
            space: MemSpace::Device(gpu),
            alloc: memsim::AllocId(1),
            offset: 0,
        };
        let t_aligned = transfer_kernel_time(
            &s,
            s.dram_traffic_bw,
            Bandwidth::from_gbps(10.0),
            SimTime::ZERO,
            d,
            d2,
            gpu,
            &mk(0),
            true,
        );
        let t_misaligned = transfer_kernel_time(
            &s,
            s.dram_traffic_bw,
            Bandwidth::from_gbps(10.0),
            SimTime::ZERO,
            d,
            d2,
            gpu,
            &mk(8),
            true,
        );
        let ratio = t_misaligned.as_secs_f64() / t_aligned.as_secs_f64();
        assert!(
            (1.4..1.6).contains(&ratio),
            "misalignment should cost ~1.5x traffic, got {ratio}"
        );
    }

    #[test]
    fn launch_moves_bytes_and_charges_stream() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let gpu = GpuId(0);
        let src = sim.world.memory.alloc(MemSpace::Device(gpu), 4096).unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Device(gpu), 2048).unwrap();
        let bytes: Vec<u8> = (0..4096).map(|i| (i % 251) as u8).collect();
        sim.world.memory.write(src, &bytes).unwrap();
        // Gather the even 256-byte chunks.
        let units: Vec<CopyOp> = (0..8)
            .map(|i| CopyOp {
                src_off: i * 512,
                dst_off: i * 256,
                len: 256,
            })
            .collect();
        let stream = sim.world.gpu_system.default_stream(gpu);
        launch_transfer_kernel(
            &mut sim,
            stream,
            src,
            dst,
            units,
            KernelConfig::default(),
            move |sim, at| {
                assert!(at > SimTime::ZERO);
                let out = sim.world.memory.read_vec(dst, 2048).unwrap();
                for i in 0..8usize {
                    assert_eq!(
                        &out[i * 256..(i + 1) * 256],
                        &(0..256)
                            .map(|j| ((i * 512 + j) % 251) as u8)
                            .collect::<Vec<_>>()[..],
                        "chunk {i}"
                    );
                }
            },
        );
        sim.run();
        assert!(sim.now() >= GpuSpec::k40().launch_overhead);
        assert_eq!(sim.world.gpu_system.stream(stream).op_count(), 1);
    }

    #[test]
    fn block_limit_slows_kernel_proportionally() {
        let mk_units = || {
            (0..256)
                .map(|i| CopyOp {
                    src_off: i * 8192,
                    dst_off: i * 8192,
                    len: 8192,
                })
                .collect::<Vec<_>>()
        };
        let run = |blocks: Option<u32>| -> SimTime {
            let mut sim = Sim::new(NodeWorld::new(1));
            let gpu = GpuId(0);
            let src = sim
                .world
                .memory
                .alloc(MemSpace::Device(gpu), 256 * 8192)
                .unwrap();
            let dst = sim
                .world
                .memory
                .alloc(MemSpace::Device(gpu), 256 * 8192)
                .unwrap();
            let stream = sim.world.gpu_system.default_stream(gpu);
            launch_transfer_kernel(
                &mut sim,
                stream,
                src,
                dst,
                mk_units(),
                KernelConfig {
                    blocks,
                    ..KernelConfig::default()
                },
                |_, _| {},
            );
            sim.run()
        };
        let full = run(None);
        let third = run(Some(5));
        let launch = GpuSpec::k40().launch_overhead;
        let work_full = (full - launch).as_secs_f64();
        let work_third = (third - launch).as_secs_f64();
        assert!(
            (work_third / work_full - 3.0).abs() < 0.05,
            "5/15 blocks should be ~3x slower: {work_third} vs {work_full}"
        );
    }

    #[test]
    fn zero_copy_is_pcie_bound() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let gpu = GpuId(0);
        let len: usize = 1 << 20;
        let host = sim.world.memory.alloc(MemSpace::Host, len as u64).unwrap();
        let dev = sim
            .world
            .memory
            .alloc(MemSpace::Device(gpu), len as u64)
            .unwrap();
        let stream = sim.world.gpu_system.default_stream(gpu);
        let units = vec![CopyOp {
            src_off: 0,
            dst_off: 0,
            len,
        }];
        launch_transfer_kernel(
            &mut sim,
            stream,
            dev,
            host,
            units,
            KernelConfig::default(),
            |_, _| {},
        );
        let end = sim.run();
        // 1 MB over 10 GB/s PCIe is ~105 us; DRAM side alone would be ~6 us.
        let pcie_expect = 1.048576e6 / 10e9;
        assert!(
            (end.as_secs_f64() - pcie_expect).abs() / pcie_expect < 0.2,
            "zero-copy kernel should run at PCIe speed, took {end}"
        );
    }
}
