//! Stream-triggered communication: capture once, replay from the GPU
//! stream with zero CPU events on the critical path.
//!
//! HPE's "Exploring Fully Offloaded GPU Stream-Aware Message Passing"
//! moves the send/recv *control* path onto the GPU stream: the host
//! captures the communication once into a graph of stream ops —
//! trigger (wait for the producer kernel), doorbell (the MMIO store
//! that releases the NIC command), completion (the flag write the
//! consumer polls) — and every later iteration merely re-arms the
//! graph on the stream front-end. The CPU never appears between the
//! compute kernel and the wire.
//!
//! This module owns the op vocabulary and the only way to build a
//! graph: the [`GraphCapture`] builder, mirroring `cudaStreamBegin/
//! EndCapture`. The `xtask lint` offload rule bans naming [`StreamOp`]
//! anywhere else, so graphs cannot be hand-assembled behind the
//! capture API's back. Replay charges the owning stream for the
//! doorbell latency plus per-op issue — both per-arch constants from
//! the node topology tables — which makes this file a charge wrapper
//! in the fault-coverage sense (it is listed in the lint's
//! `CHARGE_WRAPPERS`).

use crate::kernel::transfer_kernel_time;
use crate::system::{GpuWorld, StreamId};
use faultsim::FaultOp;
use memsim::Ptr;
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::{Sim, SimTime, Track};

/// One node of a captured stream-op graph.
///
/// Construction is confined to this module (lint-enforced): protocol
/// code describes intent through [`GraphCapture`] and replays through
/// [`replay_issue`], never by assembling op lists.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamOp {
    /// Wait for the producing stream work (kernel/event) to land.
    Trigger,
    /// Ring the NIC command doorbell for a `bytes`-sized send.
    Doorbell { bytes: u64 },
    /// A pack/unpack kernel node embedded in the graph (the kernel
    /// itself is charged by `kernel::launch_transfer_kernel`; the graph
    /// node only pays re-arm issue cost).
    Kernel,
    /// Write the completion flag the consumer polls on.
    Completion,
}

/// A captured, replayable stream-op graph. Opaque: fields are private
/// and there is no constructor besides [`GraphCapture::finish`].
#[derive(Clone, Debug)]
pub struct StreamGraph {
    stream: StreamId,
    ops: Vec<StreamOp>,
    doorbell_bytes: u64,
}

impl StreamGraph {
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    pub fn op_count(&self) -> usize {
        self.ops.len()
    }

    /// Total bytes rung through doorbell ops.
    pub fn doorbell_bytes(&self) -> u64 {
        self.doorbell_bytes
    }
}

/// Builder for one stream-op graph — the analogue of CUDA stream
/// capture, and the only sanctioned constructor of [`StreamGraph`].
pub struct GraphCapture {
    stream: StreamId,
    ops: Vec<StreamOp>,
}

impl GraphCapture {
    /// Begin capturing on `stream` (like `cudaStreamBeginCapture`).
    pub fn begin(stream: StreamId) -> GraphCapture {
        GraphCapture {
            stream,
            ops: Vec::new(),
        }
    }

    /// Record a producer-side trigger (wait) node.
    pub fn trigger(mut self) -> Self {
        self.ops.push(StreamOp::Trigger);
        self
    }

    /// Record a doorbell node releasing a `bytes`-sized NIC command.
    pub fn doorbell(mut self, bytes: u64) -> Self {
        self.ops.push(StreamOp::Doorbell { bytes });
        self
    }

    /// Record an embedded pack/unpack kernel node.
    pub fn kernel(mut self) -> Self {
        self.ops.push(StreamOp::Kernel);
        self
    }

    /// Record the completion-flag write node.
    pub fn completion(mut self) -> Self {
        self.ops.push(StreamOp::Completion);
        self
    }

    /// End capture: charge the one-time capture cost on the stream (the
    /// driver walks the graph once to bake command buffers — one op
    /// issue per node) and return the replayable graph.
    pub fn finish<W: GpuWorld>(self, sim: &mut Sim<W>) -> StreamGraph {
        let issue = sim.world.gpus_ref().topo.stream_op_issue;
        let cost = SimTime::from_nanos(issue.as_nanos().saturating_mul(self.ops.len() as u64));
        let now = sim.now();
        let (start, end) = sim.world.gpus().stream_mut(self.stream).reserve(now, cost);
        sim.trace.span_at(
            start,
            end,
            names::CAT_GPUSIM,
            names::SPAN_STREAM_CAPTURE,
            Track::Stream {
                gpu: self.stream.gpu.0,
                index: self.stream.index as u32,
            },
        );
        sim.trace.count(names::OFFLOAD_STREAM_CAPTURES, 0, 0, 1);
        let doorbell_bytes = self
            .ops
            .iter()
            .map(|op| match op {
                StreamOp::Doorbell { bytes } => *bytes,
                _ => 0,
            })
            .sum();
        StreamGraph {
            stream: self.stream,
            ops: self.ops,
            doorbell_bytes,
        }
    }
}

/// Re-arm a captured graph for one iteration: the stream front-end
/// pays the doorbell latency once plus per-op issue for every node,
/// then `armed` runs — at which point the graph's kernels and wire
/// legs proceed with no CPU event in between.
///
/// Degradation windows on [`FaultOp::StreamDoorbell`] stretch the
/// charge; transient/permanent doorbell faults are rolled by the
/// protocol layer *before* replay (a lost doorbell demotes the path,
/// it does not corrupt an issued one).
pub fn replay_issue<W: GpuWorld>(
    sim: &mut Sim<W>,
    graph: &StreamGraph,
    armed: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let topo = &sim.world.gpus_ref().topo;
    let issue = topo.stream_op_issue;
    let cost = topo.stream_doorbell_lat
        + SimTime::from_nanos(issue.as_nanos().saturating_mul(graph.op_count() as u64));
    let cost = crate::fault::fault_scaled(sim, FaultOp::StreamDoorbell, cost);
    let now = sim.now();
    let stream = graph.stream;
    let (start, end) = sim.world.gpus().stream_mut(stream).reserve(now, cost);
    sim.trace.span_at(
        start,
        end,
        names::CAT_GPUSIM,
        names::SPAN_STREAM_REPLAY,
        Track::Stream {
            gpu: stream.gpu.0,
            index: stream.index as u32,
        },
    );
    sim.trace.count(names::OFFLOAD_STREAM_REPLAYS, 0, 0, 1);
    sim.schedule_at(end, move |sim| armed(sim, end));
}

/// Run one kernel node of a captured graph: the same coalescing cost
/// model as [`crate::kernel::launch_transfer_kernel`], minus the driver
/// launch overhead — the graph pre-baked the launch and the stream
/// front-end already paid per-op issue at replay. Degradation windows
/// on [`FaultOp::KernelLaunch`] still stretch the charge; loss faults
/// are the doorbell's to absorb (the whole replay demotes), so no
/// retry loop lives here.
pub fn graph_kernel<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    dst: Ptr,
    units: Vec<CopyOp>,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let gpu = stream.gpu;
    let duration = {
        let sys = sim.world.gpus_ref();
        let g = sys.gpu(gpu);
        let bw = g
            .effective_traffic_bw()
            .derated(g.spec.pack_kernel_efficiency);
        let pcie = if src.space.is_host() || dst.space.is_host() {
            sys.topo.pcie_h2d
        } else {
            sys.topo.pcie_p2p.derated(sys.topo.peer_kernel_efficiency)
        };
        transfer_kernel_time(
            &g.spec,
            bw,
            pcie,
            sys.topo.pcie_latency,
            src,
            dst,
            gpu,
            &units,
            true,
        ) - g.spec.launch_overhead
    };
    let duration = crate::fault::fault_scaled(sim, FaultOp::KernelLaunch, duration);
    let now = sim.now();
    let (start, end) = sim.world.gpus().stream_mut(stream).reserve(now, duration);
    sim.trace.span_at(
        start,
        end,
        names::CAT_GPUSIM,
        names::SPAN_KERNEL,
        Track::Stream {
            gpu: stream.gpu.0,
            index: stream.index as u32,
        },
    );
    sim.schedule_at(end, move |sim| {
        let payload: u64 = units.iter().map(|u| u.len as u64).sum();
        sim.world
            .mem()
            .transfer(src, dst, &units)
            .expect("graph kernel transfer failed");
        sim.trace
            .count(names::GPUSIM_KERNEL_BYTES, stream.gpu.0, 0, payload);
        sim.trace.count(
            names::GPUSIM_KERNEL_UNITS,
            stream.gpu.0,
            0,
            units.len() as u64,
        );
        simcore::scratch::recycle_units_buf(units);
        done(sim, sim.now());
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::NodeWorld;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn graph(sim: &mut Sim<NodeWorld>) -> StreamGraph {
        let stream = sim.world.gpu_system.default_stream(memsim::GpuId(0));
        GraphCapture::begin(stream)
            .trigger()
            .kernel()
            .doorbell(1 << 20)
            .kernel()
            .completion()
            .finish(sim)
    }

    #[test]
    fn capture_records_ops_and_charges_once() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let g = graph(&mut sim);
        assert_eq!(g.op_count(), 5);
        assert_eq!(g.doorbell_bytes(), 1 << 20);
        let busy_until = sim.world.gpu_system.stream(g.stream()).free_at();
        assert!(busy_until > SimTime::ZERO, "capture charged stream time");
    }

    #[test]
    fn replay_charges_doorbell_plus_issue() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let g = graph(&mut sim);
        let capture_end = sim.world.gpu_system.stream(g.stream()).free_at();
        let topo_cost = {
            let topo = &sim.world.gpu_system.topo;
            topo.stream_doorbell_lat
                + SimTime::from_nanos(topo.stream_op_issue.as_nanos() * g.op_count() as u64)
        };
        let armed_at = Rc::new(RefCell::new(SimTime::ZERO));
        let a = Rc::clone(&armed_at);
        replay_issue(&mut sim, &g, move |_, at| *a.borrow_mut() = at);
        sim.run();
        assert_eq!(*armed_at.borrow(), capture_end + topo_cost);
    }

    #[test]
    fn replays_serialize_on_the_stream() {
        let mut sim = Sim::new(NodeWorld::new(1));
        let g = graph(&mut sim);
        sim.run();
        let times = Rc::new(RefCell::new(Vec::new()));
        for _ in 0..3 {
            let t = Rc::clone(&times);
            replay_issue(&mut sim, &g, move |_, at| t.borrow_mut().push(at));
        }
        sim.run();
        let ts = times.borrow();
        assert_eq!(ts.len(), 3);
        assert!(ts[0] < ts[1] && ts[1] < ts[2], "FIFO stream order: {ts:?}");
    }
}
