//! Charge-point glue between the simulators and `faultsim`.
//!
//! Every layer that models a fallible operation calls [`fault_roll`]
//! right where it reserves the resource; injections are metered on the
//! shared `fault.injected` counter (dimension `a` = [`FaultOp::index`]),
//! retries on `retry.attempts`. With no fault plan loaded all of these
//! helpers are constant-time no-ops — no RNG draws, no counters — so
//! fault-free runs stay byte-identical to builds without the subsystem.

use crate::system::GpuWorld;
use faultsim::{counters, Backoff, FaultDecision, FaultOp};
use simcore::{Sim, SimTime};

/// Give up after this many consecutive transient failures of one
/// operation. At the fault rates `chaos_soak` sweeps (≤ 50%) the odds of
/// hitting this are astronomically small; reaching it means the plan
/// made the op fail deterministically and no retry loop can terminate.
pub const RETRY_MAX: u32 = 64;

/// Default backoff schedule for simulator-internal retries: 2 µs
/// doubling up to 500 µs.
pub fn default_backoff() -> Backoff {
    Backoff::new(SimTime::from_micros(2), SimTime::from_micros(500))
}

/// Roll the world's fault plan for one attempt of `op`, metering any
/// injection.
pub fn fault_roll<W: GpuWorld>(sim: &mut Sim<W>, op: FaultOp) -> FaultDecision {
    let now = sim.now();
    let verdict = sim.world.faults().roll(op, now);
    if verdict.is_fault() {
        sim.trace
            .count(counters::FAULT_INJECTED, op.index() as u32, 0, 1);
    }
    verdict
}

/// Meter one retry provoked by a transient fault on `op`.
pub fn count_retry<W: GpuWorld>(sim: &mut Sim<W>, op: FaultOp) {
    sim.trace
        .count(counters::RETRY_ATTEMPTS, op.index() as u32, 0, 1);
}

/// Scale a charge duration by the open degradation windows for `op`.
pub fn fault_scaled<W: GpuWorld>(sim: &mut Sim<W>, op: FaultOp, duration: SimTime) -> SimTime {
    let now = sim.now();
    let factor = sim.world.faults().slowdown(op, now);
    if factor == 1.0 {
        duration
    } else {
        SimTime::from_secs_f64(duration.as_secs_f64() * factor)
    }
}

/// Panic for retry loops that cannot make progress. The simulators use
/// this for ops with no fallback path (copies, kernels, wire transfers);
/// ops with a fallback (IPC open, pinned registration) surface a typed
/// error instead.
pub fn retries_exhausted(op: FaultOp, attempts: u32) -> ! {
    panic!(
        "{} failed {attempts} consecutive attempts (injected faults); \
         the fault plan makes this op fail deterministically and it has \
         no fallback path",
        op.name()
    )
}
