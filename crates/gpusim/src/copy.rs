//! `cudaMemcpy` / `cudaMemcpy2D` equivalents.

use crate::fault;
use crate::system::{GpuWorld, StreamId};
use faultsim::{Backoff, FaultDecision, FaultOp};
use memsim::{MemSpace, Ptr};
use simcore::par::CopyOp;
use simcore::trace::names;
use simcore::{Sim, SimTime, Track};

/// Direction of a contiguous copy, derived from the pointer spaces.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum CopyDirection {
    HostToHost,
    HostToDevice,
    DeviceToHost,
    DeviceToDevice,
    /// Between two different GPUs (peer-to-peer over PCIe).
    PeerToPeer,
}

impl CopyDirection {
    pub fn of(src: Ptr, dst: Ptr) -> CopyDirection {
        match (src.space, dst.space) {
            (MemSpace::Host, MemSpace::Host) => CopyDirection::HostToHost,
            (MemSpace::Host, MemSpace::Device(_)) => CopyDirection::HostToDevice,
            (MemSpace::Device(_), MemSpace::Host) => CopyDirection::DeviceToHost,
            (MemSpace::Device(a), MemSpace::Device(b)) if a == b => CopyDirection::DeviceToDevice,
            (MemSpace::Device(_), MemSpace::Device(_)) => CopyDirection::PeerToPeer,
        }
    }

    /// Byte-counter name for this direction (same identity every run,
    /// so tests can sum per-direction traffic).
    pub fn counter(self) -> &'static str {
        match self {
            CopyDirection::HostToHost => names::GPUSIM_MEMCPY_H2H_BYTES,
            CopyDirection::HostToDevice => names::GPUSIM_MEMCPY_H2D_BYTES,
            CopyDirection::DeviceToHost => names::GPUSIM_MEMCPY_D2H_BYTES,
            CopyDirection::DeviceToDevice => names::GPUSIM_MEMCPY_D2D_BYTES,
            CopyDirection::PeerToPeer => names::GPUSIM_MEMCPY_P2P_BYTES,
        }
    }
}

fn contiguous_copy_time<W: GpuWorld>(
    sim: &Sim<W>,
    stream: StreamId,
    dir: CopyDirection,
    bytes: u64,
) -> SimTime {
    let sys = sim.world.gpus_ref();
    let topo = &sys.topo;
    let g = sys.gpu(stream.gpu);
    let lat = g.spec.memcpy_latency;
    match dir {
        CopyDirection::HostToHost => topo.host_memcpy_bw.time_for(bytes) + lat,
        CopyDirection::HostToDevice => topo.pcie_h2d.time_for(bytes) + topo.pcie_latency + lat,
        CopyDirection::DeviceToHost => topo.pcie_d2h.time_for(bytes) + topo.pcie_latency + lat,
        CopyDirection::PeerToPeer => topo.pcie_p2p.time_for(bytes) + topo.pcie_latency + lat,
        CopyDirection::DeviceToDevice => {
            // In-device copy: 2 bytes of DRAM traffic per payload byte.
            g.effective_traffic_bw().time_for(bytes * 2) + lat
        }
    }
}

/// Asynchronous contiguous copy on `stream` (like `cudaMemcpyAsync`).
/// Moves the bytes at completion time and then invokes `done`.
///
/// Fault charge point (`FaultOp::Memcpy`): transient injections re-issue
/// the copy after a capped exponential backoff (the engine charges the
/// stream again per attempt); degradation windows stretch the charge.
pub fn memcpy<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    dst: Ptr,
    bytes: u64,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    memcpy_attempt(sim, stream, src, dst, bytes, fault::default_backoff(), done);
}

fn memcpy_attempt<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    dst: Ptr,
    bytes: u64,
    mut backoff: Backoff,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let dir = CopyDirection::of(src, dst);
    let duration = contiguous_copy_time(sim, stream, dir, bytes);
    let duration = fault::fault_scaled(sim, FaultOp::Memcpy, duration);
    let now = sim.now();
    let (start, end) = sim.world.gpus().stream_mut(stream).reserve(now, duration);
    let track = Track::Stream {
        gpu: stream.gpu.0,
        index: stream.index as u32,
    };
    sim.trace
        .span_at(start, end, names::CAT_GPUSIM, names::SPAN_MEMCPY, track);
    let verdict = fault::fault_roll(sim, FaultOp::Memcpy);
    sim.schedule_at(end, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::Memcpy, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::Memcpy);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                memcpy_attempt(sim, stream, src, dst, bytes, backoff, done);
            });
            return;
        }
        sim.world
            .mem()
            .copy(src, dst, bytes)
            .expect("memcpy failed");
        sim.trace.count(dir.counter(), stream.gpu.0, 0, bytes);
        done(sim, sim.now());
    });
}

/// Asynchronous strided 2-D copy (like `cudaMemcpy2DAsync`): `height`
/// rows of `width` bytes, rows `src_pitch`/`dst_pitch` bytes apart.
///
/// Timing reproduces the behaviour the paper leans on in Figure 8:
/// through the DMA engine (any H2D/D2H direction) the effective
/// bandwidth collapses when `width` is not a multiple of 64 bytes, and
/// every row pays a descriptor overhead. Device-internal 2-D copies run
/// as a kernel and behave like our own pack kernels.
#[allow(clippy::too_many_arguments)]
pub fn memcpy_2d<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    src_pitch: u64,
    dst: Ptr,
    dst_pitch: u64,
    width: u64,
    height: u64,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    assert!(
        src_pitch >= width && dst_pitch >= width,
        "pitch smaller than width"
    );
    memcpy_2d_attempt(
        sim,
        stream,
        src,
        src_pitch,
        dst,
        dst_pitch,
        width,
        height,
        fault::default_backoff(),
        done,
    );
}

#[allow(clippy::too_many_arguments)]
fn memcpy_2d_attempt<W: GpuWorld>(
    sim: &mut Sim<W>,
    stream: StreamId,
    src: Ptr,
    src_pitch: u64,
    dst: Ptr,
    dst_pitch: u64,
    width: u64,
    height: u64,
    mut backoff: Backoff,
    done: impl FnOnce(&mut Sim<W>, SimTime) + 'static,
) {
    let dir = CopyDirection::of(src, dst);
    let bytes = width * height;
    let duration = {
        let sys = sim.world.gpus_ref();
        let topo = &sys.topo;
        let g = sys.gpu(stream.gpu);
        let row_overhead = SimTime::from_nanos(topo.memcpy2d_row_overhead.as_nanos() * height);
        match dir {
            CopyDirection::DeviceToDevice => {
                // Kernel-backed: charge coalesced traffic per row.
                let spec = &g.spec;
                let mut traffic = 0u64;
                for r in 0..height {
                    let s_off = src.offset + r * src_pitch;
                    let d_off = dst.offset + r * dst_pitch;
                    traffic += row_traffic(s_off, width, spec) + row_traffic(d_off, width, spec);
                }
                g.effective_traffic_bw().time_for(traffic) + spec.launch_overhead
            }
            _ => {
                let base_bw = match dir {
                    CopyDirection::HostToDevice => topo.pcie_h2d,
                    CopyDirection::DeviceToHost => topo.pcie_d2h,
                    CopyDirection::PeerToPeer => topo.pcie_p2p,
                    CopyDirection::HostToHost => topo.host_memcpy_bw,
                    CopyDirection::DeviceToDevice => unreachable!(),
                };
                let eff = if width.is_multiple_of(64) {
                    base_bw
                } else {
                    base_bw.derated(topo.memcpy2d_misaligned_factor)
                };
                eff.time_for(bytes) + topo.pcie_latency + g.spec.memcpy_latency + row_overhead
            }
        }
    };

    let duration = fault::fault_scaled(sim, FaultOp::Memcpy, duration);
    let now = sim.now();
    let (start, end) = sim.world.gpus().stream_mut(stream).reserve(now, duration);
    let track = Track::Stream {
        gpu: stream.gpu.0,
        index: stream.index as u32,
    };
    sim.trace
        .span_at(start, end, names::CAT_GPUSIM, names::SPAN_MEMCPY2D, track);
    let verdict = fault::fault_roll(sim, FaultOp::Memcpy);
    sim.schedule_at(end, move |sim| {
        if verdict.is_fault() {
            if verdict == FaultDecision::Lost || backoff.attempts() >= fault::RETRY_MAX {
                fault::retries_exhausted(FaultOp::Memcpy, backoff.attempts());
            }
            fault::count_retry(sim, FaultOp::Memcpy);
            let delay = backoff.next_delay();
            sim.schedule_in(delay, move |sim| {
                memcpy_2d_attempt(
                    sim, stream, src, src_pitch, dst, dst_pitch, width, height, backoff, done,
                );
            });
            return;
        }
        let ops: Vec<CopyOp> = (0..height)
            .map(|r| CopyOp {
                src_off: (r * src_pitch) as usize,
                dst_off: (r * dst_pitch) as usize,
                len: width as usize,
            })
            .collect();
        sim.world
            .mem()
            .transfer(src, dst, &ops)
            .expect("memcpy2d failed");
        sim.trace.count(dir.counter(), stream.gpu.0, 0, bytes);
        done(sim, sim.now());
    });
}

fn row_traffic(off: u64, width: u64, spec: &crate::spec::GpuSpec) -> u64 {
    // Same access-lines arithmetic as the kernel model, inlined for a
    // single row treated as one unit.
    crate::kernel::side_traffic_bytes(
        &[CopyOp {
            src_off: 0,
            dst_off: 0,
            len: width as usize,
        }],
        off,
        true,
        spec,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::GpuSpec;
    use crate::system::NodeWorld;
    use memsim::GpuId;

    fn setup(gpus: u32) -> Sim<NodeWorld> {
        Sim::new(NodeWorld::new(gpus))
    }

    #[test]
    fn direction_classification() {
        let h = Ptr {
            space: MemSpace::Host,
            alloc: memsim::AllocId(0),
            offset: 0,
        };
        let d0 = Ptr {
            space: MemSpace::Device(GpuId(0)),
            alloc: memsim::AllocId(1),
            offset: 0,
        };
        let d1 = Ptr {
            space: MemSpace::Device(GpuId(1)),
            alloc: memsim::AllocId(2),
            offset: 0,
        };
        assert_eq!(CopyDirection::of(h, d0), CopyDirection::HostToDevice);
        assert_eq!(CopyDirection::of(d0, h), CopyDirection::DeviceToHost);
        assert_eq!(CopyDirection::of(d0, d0), CopyDirection::DeviceToDevice);
        assert_eq!(CopyDirection::of(d0, d1), CopyDirection::PeerToPeer);
        assert_eq!(CopyDirection::of(h, h), CopyDirection::HostToHost);
    }

    #[test]
    fn h2d_moves_bytes_at_pcie_rate() {
        let mut sim = setup(1);
        let len = 10u64 << 20; // 10 MiB
        let h = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let d = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let data: Vec<u8> = (0..len).map(|i| (i % 255) as u8).collect();
        sim.world.memory.write(h, &data).unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        memcpy(&mut sim, st, h, d, len, |_, _| {});
        let end = sim.run();
        assert_eq!(sim.world.memory.read_vec(d, len).unwrap(), data);
        let secs = end.as_secs_f64();
        let rate = len as f64 / secs / 1e9;
        assert!((9.0..=10.0).contains(&rate), "PCIe rate was {rate} GB/s");
    }

    #[test]
    fn d2d_is_much_faster_than_pcie() {
        let mut sim = setup(1);
        let len = 10u64 << 20;
        let a = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let b = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        memcpy(&mut sim, st, a, b, len, |_, _| {});
        let t_d2d = sim.run();

        let mut sim2 = setup(1);
        let h = sim2.world.memory.alloc(MemSpace::Host, len).unwrap();
        let d = sim2
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let st2 = sim2.world.gpu_system.default_stream(GpuId(0));
        memcpy(&mut sim2, st2, h, d, len, |_, _| {});
        let t_h2d = sim2.run();
        assert!(t_d2d.as_nanos() * 10 < t_h2d.as_nanos());
    }

    #[test]
    fn stream_serializes_copies() {
        let mut sim = setup(1);
        let len = 1u64 << 20;
        let h = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
        let d = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        memcpy(&mut sim, st, h, d, len, |_, _| {});
        memcpy(&mut sim, st, h, d, len, |_, _| {});
        let serial_end = sim.run();

        // Same two copies on two different streams overlap.
        let mut sim2 = setup(1);
        let h2 = sim2.world.memory.alloc(MemSpace::Host, len).unwrap();
        let d2 = sim2
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len)
            .unwrap();
        let st_a = sim2.world.gpu_system.default_stream(GpuId(0));
        let st_b = sim2.world.gpu_system.create_stream(GpuId(0));
        memcpy(&mut sim2, st_a, h2, d2, len, |_, _| {});
        memcpy(&mut sim2, st_b, h2, d2, len, |_, _| {});
        let parallel_end = sim2.run();
        assert!(parallel_end < serial_end);
    }

    #[test]
    fn memcpy2d_aligned_vs_misaligned_cliff() {
        let run = |width: u64| -> SimTime {
            let mut sim = setup(1);
            let rows = 1024u64;
            let pitch = 2048u64;
            let d = sim
                .world
                .memory
                .alloc(MemSpace::Device(GpuId(0)), pitch * rows)
                .unwrap();
            let h = sim
                .world
                .memory
                .alloc(MemSpace::Host, pitch * rows)
                .unwrap();
            let st = sim.world.gpu_system.default_stream(GpuId(0));
            memcpy_2d(&mut sim, st, d, pitch, h, width, width, rows, |_, _| {});
            sim.run()
        };
        let aligned = run(1024); // multiple of 64
        let misaligned = run(1000); // not a multiple of 64
                                    // Less data but much slower.
        assert!(
            misaligned.as_nanos() > aligned.as_nanos() * 3,
            "expected the 64-byte cliff: {misaligned} vs {aligned}"
        );
    }

    #[test]
    fn memcpy2d_moves_the_right_rows() {
        let mut sim = setup(1);
        let src = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), 64)
            .unwrap();
        let dst = sim.world.memory.alloc(MemSpace::Host, 16).unwrap();
        let data: Vec<u8> = (0..64).collect();
        sim.world.memory.write(src, &data).unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        // 4 rows of 4 bytes from a pitch-16 matrix.
        memcpy_2d(&mut sim, st, src, 16, dst, 4, 4, 4, |_, _| {});
        sim.run();
        let out = sim.world.memory.read_vec(dst, 16).unwrap();
        assert_eq!(
            out,
            vec![0, 1, 2, 3, 16, 17, 18, 19, 32, 33, 34, 35, 48, 49, 50, 51]
        );
    }

    #[test]
    fn contention_slows_d2d_but_not_pcie() {
        let len = 8u64 << 20;
        let run = |share: f64| -> (SimTime, SimTime) {
            let mut sim = setup(1);
            sim.world.gpu_system.gpu_mut(GpuId(0)).bandwidth_share = share;
            let a = sim
                .world
                .memory
                .alloc(MemSpace::Device(GpuId(0)), len)
                .unwrap();
            let b = sim
                .world
                .memory
                .alloc(MemSpace::Device(GpuId(0)), len)
                .unwrap();
            let h = sim.world.memory.alloc(MemSpace::Host, len).unwrap();
            let st = sim.world.gpu_system.default_stream(GpuId(0));
            memcpy(&mut sim, st, a, b, len, |_, _| {});
            let t_d2d = sim.run();
            let st2 = sim.world.gpu_system.create_stream(GpuId(0));
            let start = sim.now();
            memcpy(&mut sim, st2, h, a, len, |_, _| {});
            (t_d2d, sim.run() - start)
        };
        let (d2d_full, h2d_full) = run(1.0);
        let (d2d_half, h2d_half) = run(0.5);
        assert!(
            d2d_half.as_nanos() > d2d_full.as_nanos() * 18 / 10,
            "DRAM-bound copy slows"
        );
        assert_eq!(
            h2d_full, h2d_half,
            "PCIe copy unaffected by DRAM contention"
        );
    }

    #[test]
    #[should_panic(expected = "pitch smaller than width")]
    fn memcpy2d_rejects_bad_pitch() {
        let mut sim = setup(1);
        let d = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), 1024)
            .unwrap();
        let h = sim.world.memory.alloc(MemSpace::Host, 1024).unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        memcpy_2d(&mut sim, st, d, 32, h, 64, 64, 4, |_, _| {});
    }

    #[test]
    fn per_call_latency_penalizes_many_small_copies() {
        // The baseline's weakness: issuing N tiny copies costs N×latency.
        let mut sim = setup(1);
        let len = 1u64 << 10;
        let h = sim.world.memory.alloc(MemSpace::Host, len * 64).unwrap();
        let d = sim
            .world
            .memory
            .alloc(MemSpace::Device(GpuId(0)), len * 64)
            .unwrap();
        let st = sim.world.gpu_system.default_stream(GpuId(0));
        for i in 0..64 {
            memcpy(&mut sim, st, h.add(i * len), d.add(i * len), len, |_, _| {});
        }
        let many = sim.run();
        let lat = GpuSpec::k40().memcpy_latency;
        assert!(many.as_nanos() >= 64 * lat.as_nanos());
    }
}
