//! The stack-based convertor: Open MPI's pack/unpack machine.
//!
//! A [`Convertor`] walks `count` instances of a committed datatype as a
//! stream of contiguous segments using an explicit frame stack (the
//! in-Rust equivalent of `opal_convertor_t` and its `dt_stack_t`), and
//! copies bytes to (pack) or from (unpack) a contiguous buffer. The walk
//! can stop at **any byte position** and resume later — this is what
//! lets the PML fragment a message and lets the GPU pipeline convert the
//! datatype chunk by chunk while kernels run.

use crate::error::TypeError;
use crate::segment::Segment;
use crate::typ::{DataType, Kind};

/// Direction of a conversion.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum PackKind {
    /// Typed (possibly non-contiguous) memory → contiguous buffer.
    Pack,
    /// Contiguous buffer → typed memory.
    Unpack,
}

/// One frame of the datatype walk.
struct Frame {
    ty: DataType,
    base: i64,
    i: u64,
    j: u64,
}

/// Resumable stream of contiguous segments for `count` instances of a
/// datatype, with adjacent-segment merging.
pub(crate) struct SegStream {
    stack: Vec<Frame>,
    pending: Option<Segment>,
    done: bool,
}

impl SegStream {
    pub(crate) fn new(ty: &DataType, count: u64) -> SegStream {
        let mut stack = Vec::with_capacity(ty.depth() as usize + 2);
        if count > 0 && ty.size() > 0 {
            // Wrap in a synthetic contiguous(count) so instance
            // iteration reuses the normal frame machinery.
            let whole = if count == 1 {
                ty.clone()
            } else {
                DataType::contiguous(count, ty).expect("count > 0")
            };
            stack.push(Frame {
                ty: whole,
                base: 0,
                i: 0,
                j: 0,
            });
        }
        SegStream {
            stack,
            pending: None,
            done: false,
        }
    }

    fn next_raw(&mut self) -> Option<Segment> {
        loop {
            let top = self.stack.last_mut()?;
            let node = top.ty.clone();
            let base = top.base;

            // Fast path: a gapless subtree is one segment.
            if node.is_gapless() && node.size() > 0 {
                self.stack.pop();
                return Some(Segment::new(base + node.true_lb(), node.size()));
            }
            if node.size() == 0 {
                self.stack.pop();
                continue;
            }

            match node.kind() {
                Kind::Primitive(p) => {
                    let s = Segment::new(base, p.size());
                    self.stack.pop();
                    return Some(s);
                }
                Kind::Contiguous { count, child } => {
                    if top.i == *count {
                        self.stack.pop();
                        continue;
                    }
                    let b = base + top.i as i64 * child.extent();
                    top.i += 1;
                    if child.dense() || child.is_gapless() {
                        if child.size() > 0 {
                            return Some(Segment::new(b + child.true_lb(), child.size()));
                        }
                    } else {
                        let child = child.clone();
                        self.stack.push(Frame {
                            ty: child,
                            base: b,
                            i: 0,
                            j: 0,
                        });
                    }
                }
                Kind::Vector {
                    count,
                    blocklen,
                    stride_bytes,
                    child,
                } => {
                    if top.i == *count {
                        self.stack.pop();
                        continue;
                    }
                    let block_base = base + top.i as i64 * stride_bytes;
                    if child.dense() {
                        // Whole block in one segment.
                        let len = blocklen * child.size();
                        top.i += 1;
                        return Some(Segment::new(block_base + child.true_lb(), len));
                    }
                    let b = block_base + top.j as i64 * child.extent();
                    top.j += 1;
                    if top.j == *blocklen {
                        top.j = 0;
                        top.i += 1;
                    }
                    if child.is_gapless() {
                        if child.size() > 0 {
                            return Some(Segment::new(b + child.true_lb(), child.size()));
                        }
                    } else {
                        let child = child.clone();
                        self.stack.push(Frame {
                            ty: child,
                            base: b,
                            i: 0,
                            j: 0,
                        });
                    }
                }
                Kind::Indexed { blocks, child } => {
                    // Skip empty blocks.
                    while (top.i as usize) < blocks.len() && blocks[top.i as usize].0 == 0 {
                        top.i += 1;
                    }
                    if top.i as usize == blocks.len() {
                        self.stack.pop();
                        continue;
                    }
                    let (l, d) = blocks[top.i as usize];
                    let block_base = base + d;
                    if child.dense() {
                        top.i += 1;
                        return Some(Segment::new(block_base + child.true_lb(), l * child.size()));
                    }
                    let b = block_base + top.j as i64 * child.extent();
                    top.j += 1;
                    if top.j == l {
                        top.j = 0;
                        top.i += 1;
                    }
                    if child.is_gapless() {
                        if child.size() > 0 {
                            return Some(Segment::new(b + child.true_lb(), child.size()));
                        }
                    } else {
                        let child = child.clone();
                        self.stack.push(Frame {
                            ty: child,
                            base: b,
                            i: 0,
                            j: 0,
                        });
                    }
                }
                Kind::Struct { fields } => {
                    // Skip empty fields.
                    while (top.i as usize) < fields.len()
                        && (fields[top.i as usize].0 == 0 || fields[top.i as usize].2.size() == 0)
                    {
                        top.i += 1;
                    }
                    if top.i as usize == fields.len() {
                        self.stack.pop();
                        continue;
                    }
                    let (l, d, t) = &fields[top.i as usize];
                    let b = base + d + top.j as i64 * t.extent();
                    let t = t.clone();
                    top.j += 1;
                    if top.j == *l {
                        top.j = 0;
                        top.i += 1;
                    }
                    if t.is_gapless() {
                        if t.size() > 0 {
                            return Some(Segment::new(b + t.true_lb(), t.size()));
                        }
                    } else {
                        self.stack.push(Frame {
                            ty: t,
                            base: b,
                            i: 0,
                            j: 0,
                        });
                    }
                }
                Kind::Resized { child, .. } => {
                    if top.i == 1 {
                        self.stack.pop();
                        continue;
                    }
                    top.i = 1;
                    let child = child.clone();
                    self.stack.push(Frame {
                        ty: child,
                        base,
                        i: 0,
                        j: 0,
                    });
                }
            }
        }
    }
}

impl Iterator for SegStream {
    type Item = Segment;

    fn next(&mut self) -> Option<Segment> {
        if self.done {
            return None;
        }
        loop {
            match self.next_raw() {
                Some(s) => match &mut self.pending {
                    Some(p) if p.end() == s.disp => p.len += s.len,
                    Some(p) => {
                        let out = *p;
                        *p = s;
                        return Some(out);
                    }
                    None => self.pending = Some(s),
                },
                None => {
                    self.done = true;
                    return self.pending.take();
                }
            }
        }
    }
}

/// A resumable pack/unpack machine over `count` instances of a datatype.
pub struct Convertor {
    stream: SegStream,
    kind: PackKind,
    total: u64,
    position: u64,
    cur: Option<Segment>,
    cur_off: u64,
}

impl Convertor {
    /// Create a convertor. The datatype must be committed.
    pub fn new(ty: &DataType, count: u64, kind: PackKind) -> Result<Convertor, TypeError> {
        if !ty.is_committed() {
            return Err(TypeError::NotCommitted);
        }
        Ok(Convertor {
            stream: SegStream::new(ty, count),
            kind,
            total: ty.size() * count,
            position: 0,
            cur: None,
            cur_off: 0,
        })
    }

    /// Total bytes this convertor will move.
    pub fn total_bytes(&self) -> u64 {
        self.total
    }

    /// Bytes moved so far (the "position" in packed-stream space).
    pub fn position(&self) -> u64 {
        self.position
    }

    pub fn finished(&self) -> bool {
        self.position >= self.total
    }

    pub fn kind(&self) -> PackKind {
        self.kind
    }

    fn next_segment(&mut self) -> Option<(Segment, u64)> {
        if let Some(s) = self.cur {
            return Some((s, self.cur_off));
        }
        let s = self.stream.next()?;
        self.cur = Some(s);
        self.cur_off = 0;
        Some((s, 0))
    }

    fn consume(&mut self, n: u64) {
        let s = self.cur.expect("consume without segment");
        self.cur_off += n;
        self.position += n;
        debug_assert!(self.cur_off <= s.len);
        if self.cur_off == s.len {
            self.cur = None;
            self.cur_off = 0;
        }
    }

    /// Pack up to `out.len()` bytes into `out`. `typed` is the memory
    /// the datatype describes; `base` is the byte index in `typed` that
    /// corresponds to displacement 0 (so negative lower bounds work).
    /// Returns the number of bytes produced.
    pub fn pack_into(&mut self, typed: &[u8], base: i64, out: &mut [u8]) -> usize {
        assert_eq!(
            self.kind,
            PackKind::Pack,
            "pack_into on an unpack convertor"
        );
        let mut produced = 0usize;
        while produced < out.len() {
            let Some((seg, off)) = self.next_segment() else {
                break;
            };
            let want = ((seg.len - off) as usize).min(out.len() - produced);
            let src_idx = (base + seg.disp) as usize + off as usize;
            out[produced..produced + want].copy_from_slice(&typed[src_idx..src_idx + want]);
            produced += want;
            self.consume(want as u64);
        }
        produced
    }

    /// Unpack up to `inp.len()` bytes from `inp` into the typed memory.
    /// Returns the number of bytes consumed.
    pub fn unpack_from(&mut self, typed: &mut [u8], base: i64, inp: &[u8]) -> usize {
        assert_eq!(
            self.kind,
            PackKind::Unpack,
            "unpack_from on a pack convertor"
        );
        let mut consumed = 0usize;
        while consumed < inp.len() {
            let Some((seg, off)) = self.next_segment() else {
                break;
            };
            let want = ((seg.len - off) as usize).min(inp.len() - consumed);
            let dst_idx = (base + seg.disp) as usize + off as usize;
            typed[dst_idx..dst_idx + want].copy_from_slice(&inp[consumed..consumed + want]);
            consumed += want;
            self.consume(want as u64);
        }
        consumed
    }

    /// Produce the next batch of raw segments covering at most
    /// `max_bytes` of packed-stream space, *without* moving data. This
    /// is the DEV-generation entry point: the GPU engine calls it
    /// repeatedly to convert the datatype part by part (the paper's
    /// CPU-side pipeline stage). Segments are relative to displacement 0
    /// and already clipped to the requested byte window.
    pub fn next_segments(&mut self, max_bytes: u64) -> Vec<(Segment, u64)> {
        let mut out = Vec::new();
        self.next_segments_into(max_bytes, &mut out);
        out
    }

    /// Allocation-free variant of [`Self::next_segments`]: clears `out`
    /// and fills it, so a caller streaming many batches can reuse one
    /// buffer for the whole conversion.
    pub fn next_segments_into(&mut self, max_bytes: u64, out: &mut Vec<(Segment, u64)>) {
        out.clear();
        let mut taken = 0u64;
        while taken < max_bytes {
            let Some((seg, off)) = self.next_segment() else {
                break;
            };
            let want = (seg.len - off).min(max_bytes - taken);
            // (clipped segment, its offset in packed-stream space)
            out.push((Segment::new(seg.disp + off as i64, want), self.position));
            taken += want;
            self.consume(want);
        }
    }
}

/// One-shot helper: pack everything.
pub fn pack_all(ty: &DataType, count: u64, typed: &[u8], base: i64) -> Vec<u8> {
    let mut cv = Convertor::new(ty, count, PackKind::Pack).expect("committed");
    let mut out = vec![0u8; cv.total_bytes() as usize];
    let n = cv.pack_into(typed, base, &mut out);
    assert_eq!(n as u64, cv.total_bytes(), "short pack");
    out
}

/// One-shot helper: unpack everything.
pub fn unpack_all(ty: &DataType, count: u64, typed: &mut [u8], base: i64, inp: &[u8]) {
    let mut cv = Convertor::new(ty, count, PackKind::Unpack).expect("committed");
    let n = cv.unpack_from(typed, base, inp);
    assert_eq!(n, inp.len(), "short unpack");
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl() -> DataType {
        DataType::double()
    }

    /// Reference pack via the simple materializing path.
    fn reference_pack(ty: &DataType, count: u64, typed: &[u8], base: i64) -> Vec<u8> {
        let mut out = Vec::with_capacity((ty.size() * count) as usize);
        for s in ty.segments(count) {
            let idx = (base + s.disp) as usize;
            out.extend_from_slice(&typed[idx..idx + s.len as usize]);
        }
        out
    }

    fn pattern(n: usize) -> Vec<u8> {
        (0..n).map(|i| ((i * 131 + 17) % 255 + 1) as u8).collect()
    }

    #[test]
    fn stream_matches_segments() {
        let v = DataType::vector(5, 3, 7, &dbl()).unwrap();
        let via_stream: Vec<Segment> = SegStream::new(&v, 3).collect();
        assert_eq!(via_stream, v.segments(3));
    }

    #[test]
    fn stream_of_nested_types() {
        let inner = DataType::vector(2, 1, 2, &dbl()).unwrap();
        let outer = DataType::hvector(3, 2, 64, &inner).unwrap();
        let via_stream: Vec<Segment> = SegStream::new(&outer, 2).collect();
        assert_eq!(via_stream, outer.segments(2));
    }

    #[test]
    fn stream_of_struct_with_resized() {
        let v = DataType::vector(2, 1, 2, &dbl()).unwrap();
        let r = DataType::resized(&v, 0, 32).unwrap();
        let s = DataType::structure(&[2, 1], &[0, 80], &[r, DataType::int()]).unwrap();
        let via_stream: Vec<Segment> = SegStream::new(&s, 2).collect();
        assert_eq!(via_stream, s.segments(2));
    }

    #[test]
    fn pack_vector_matches_reference() {
        let v = DataType::vector(4, 2, 5, &dbl()).unwrap().commit();
        let typed = pattern(v.extent() as usize * 2);
        let packed = pack_all(&v, 2, &typed, 0);
        assert_eq!(packed, reference_pack(&v, 2, &typed, 0));
        assert_eq!(packed.len() as u64, v.size() * 2);
    }

    #[test]
    fn pack_unpack_roundtrip_indexed() {
        let n = 8u64;
        let lens: Vec<u64> = (0..n).map(|c| n - c).collect();
        let disps: Vec<i64> = (0..n as i64).map(|c| c * n as i64 + c).collect();
        let t = DataType::indexed(&lens, &disps, &dbl()).unwrap().commit();
        let typed = pattern((n * n * 8) as usize);
        let packed = pack_all(&t, 1, &typed, 0);

        let mut out = vec![0u8; typed.len()];
        unpack_all(&t, 1, &mut out, 0, &packed);
        // Every byte covered by the type must match; others stay zero.
        for s in t.segments(1) {
            let r = s.disp as usize..(s.disp + s.len as i64) as usize;
            assert_eq!(&out[r.clone()], &typed[r]);
        }
    }

    #[test]
    fn fragmented_pack_equals_oneshot() {
        let v = DataType::vector(16, 3, 5, &dbl()).unwrap().commit();
        let count = 4;
        let typed = pattern(v.extent() as usize * count as usize);
        let oneshot = pack_all(&v, count, &typed, 0);

        // Pack in awkward fragment sizes.
        let mut cv = Convertor::new(&v, count, PackKind::Pack).unwrap();
        let mut got = Vec::new();
        for frag in [1usize, 7, 64, 13, 100, 1000, 9999] {
            let mut buf = vec![0u8; frag];
            let n = cv.pack_into(&typed, 0, &mut buf);
            got.extend_from_slice(&buf[..n]);
            if cv.finished() {
                break;
            }
        }
        // Drain the rest.
        while !cv.finished() {
            let mut buf = vec![0u8; 128];
            let n = cv.pack_into(&typed, 0, &mut buf);
            got.extend_from_slice(&buf[..n]);
        }
        assert_eq!(got, oneshot);
    }

    #[test]
    fn fragmented_unpack_equals_oneshot() {
        let t = DataType::indexed(&[3, 1, 4], &[0, 5, 8], &dbl())
            .unwrap()
            .commit();
        let count = 3;
        let typed = pattern(t.extent() as usize * count as usize);
        let packed = pack_all(&t, count, &typed, 0);

        let mut out = vec![0u8; typed.len()];
        let mut cv = Convertor::new(&t, count, PackKind::Unpack).unwrap();
        let mut fed = 0usize;
        for frag in [3usize, 17, 41, 5, 1000] {
            let end = (fed + frag).min(packed.len());
            let n = cv.unpack_from(&mut out, 0, &packed[fed..end]);
            assert_eq!(n, end - fed);
            fed = end;
        }
        assert_eq!(fed, packed.len());
        for s in t.segments(count) {
            let r = s.disp as usize..(s.disp + s.len as i64) as usize;
            assert_eq!(&out[r.clone()], &typed[r]);
        }
    }

    #[test]
    fn negative_displacement_with_base() {
        let r = DataType::resized(&dbl(), -8, 16).unwrap();
        let t = DataType::hindexed(&[1, 1], &[-16, 0], &r).unwrap().commit();
        assert_eq!(t.true_lb(), -16);
        let typed = pattern(64);
        // Base 32: data segments at typed[16] and typed[32].
        let packed = pack_all(&t, 1, &typed, 32);
        assert_eq!(&packed[0..8], &typed[16..24]);
        assert_eq!(&packed[8..16], &typed[32..40]);
    }

    #[test]
    fn next_segments_clips_to_window() {
        let v = DataType::vector(4, 2, 4, &dbl()).unwrap().commit();
        let mut cv = Convertor::new(&v, 1, PackKind::Pack).unwrap();
        // Blocks of 16 bytes; ask for 24: one full + half of next.
        let segs = cv.next_segments(24);
        assert_eq!(segs.len(), 2);
        assert_eq!(segs[0].0, Segment::new(0, 16));
        assert_eq!(segs[1].0, Segment::new(32, 8));
        assert_eq!(cv.position(), 24);
        // Resume mid-segment.
        let segs2 = cv.next_segments(1000);
        assert_eq!(segs2[0].0, Segment::new(40, 8));
        assert_eq!(cv.position(), 64);
        assert!(cv.finished());
    }

    #[test]
    fn uncommitted_type_rejected() {
        let v = DataType::vector(2, 1, 2, &dbl()).unwrap();
        assert!(matches!(
            Convertor::new(&v, 1, PackKind::Pack),
            Err(TypeError::NotCommitted)
        ));
    }

    #[test]
    fn zero_count_is_empty() {
        let v = DataType::vector(2, 1, 2, &dbl()).unwrap().commit();
        let mut cv = Convertor::new(&v, 0, PackKind::Pack).unwrap();
        assert_eq!(cv.total_bytes(), 0);
        assert!(cv.finished());
        let mut buf = vec![0u8; 16];
        assert_eq!(cv.pack_into(&[0u8; 64], 0, &mut buf), 0);
    }

    #[test]
    fn contiguous_fast_path_merges_instances() {
        let c = DataType::contiguous(4, &dbl()).unwrap();
        let segs: Vec<Segment> = SegStream::new(&c, 8).collect();
        assert_eq!(segs, vec![Segment::new(0, 256)]);
    }
}
