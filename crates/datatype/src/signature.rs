//! Type signatures and send/recv matching.
//!
//! MPI requires the *signature* (the ordered sequence of primitive
//! types) of the send and receive datatypes to match, while the layouts
//! may differ arbitrarily — this is exactly what the paper's
//! vector↔contiguous FFT benchmark (Figure 11) and transpose benchmark
//! (Figure 12) exploit. The signature is stored as run-length-encoded
//! `(primitive, count)` runs per instance plus an instance count;
//! homogeneous types (the overwhelmingly common case) compare in O(1),
//! heterogeneous ones stream lazily without materializing repetitions.

use crate::error::TypeError;
use crate::primitive::Primitive;
use crate::typ::DataType;

/// Run-length-encoded type signature of `count` instances of a type.
#[derive(Clone, Debug)]
pub struct Signature {
    /// Merged runs of one instance.
    runs: Vec<(Primitive, u64)>,
    /// Number of instances.
    count: u64,
}

/// Lazily yields the fully merged run stream of a signature: the
/// per-instance runs repeated `count` times, with adjacent equal
/// primitives merged (including across instance boundaries).
struct MergedRuns<'a> {
    runs: &'a [(Primitive, u64)],
    reps_left: u64,
    idx: usize,
    carry: Option<(Primitive, u64)>,
}

impl<'a> MergedRuns<'a> {
    fn new(sig: &'a Signature) -> Self {
        let empty = sig.runs.is_empty() || sig.count == 0;
        MergedRuns {
            runs: if empty { &[] } else { &sig.runs },
            // Instances remaining *after* the one idx currently walks.
            reps_left: if empty { 0 } else { sig.count - 1 },
            idx: 0,
            carry: None,
        }
    }
}

impl Iterator for MergedRuns<'_> {
    type Item = (Primitive, u64);

    fn next(&mut self) -> Option<(Primitive, u64)> {
        loop {
            if self.idx == self.runs.len() {
                if self.reps_left == 0 {
                    return self.carry.take();
                }
                self.reps_left -= 1;
                self.idx = 0;
                // Homogeneous fast path: a single-run instance merges
                // wholly into the carry, so fold all remaining
                // repetitions at once.
                if self.runs.len() == 1 {
                    let (p, n) = self.runs[0];
                    let folded = n * (self.reps_left + 1);
                    self.reps_left = 0;
                    self.idx = 1;
                    match self.carry {
                        Some((cp, cn)) if cp == p => self.carry = Some((p, cn + folded)),
                        Some(out) => {
                            self.carry = Some((p, folded));
                            return Some(out);
                        }
                        None => self.carry = Some((p, folded)),
                    }
                    continue;
                }
                continue;
            }
            let (p, n) = self.runs[self.idx];
            self.idx += 1;
            match self.carry {
                Some((cp, cn)) if cp == p => self.carry = Some((p, cn + n)),
                Some(out) => {
                    self.carry = Some((p, n));
                    return Some(out);
                }
                None => self.carry = Some((p, n)),
            }
        }
    }
}

impl Signature {
    pub fn of(ty: &DataType, count: u64) -> Signature {
        let mut runs: Vec<(Primitive, u64)> = Vec::new();
        ty.for_each_primitive(|p, n| {
            if n == 0 {
                return;
            }
            match runs.last_mut() {
                Some((lp, ln)) if *lp == p => *ln += n,
                _ => runs.push((p, n)),
            }
        });
        Signature { runs, count }
    }

    /// Total number of primitive elements described.
    pub fn element_count(&self) -> u64 {
        self.runs.iter().map(|(_, n)| n).sum::<u64>() * self.count
    }

    /// Total bytes described.
    pub fn byte_count(&self) -> u64 {
        self.runs.iter().map(|(p, n)| p.size() * n).sum::<u64>() * self.count
    }

    /// How many whole primitive elements fit in a `bytes`-long prefix of
    /// this signature — the semantics of `MPI_Get_elements` for a
    /// partially filled receive. Returns `None` if `bytes` splits a
    /// primitive (a malformed message).
    pub fn elements_in_bytes(&self, bytes: u64) -> Option<u64> {
        let mut left = bytes;
        let mut elems = 0u64;
        for (p, n) in MergedRuns::new(self) {
            let run_bytes = p.size() * n;
            if left >= run_bytes {
                left -= run_bytes;
                elems += n;
                continue;
            }
            if !left.is_multiple_of(p.size()) {
                return None;
            }
            return Some(elems + left / p.size());
        }
        if left == 0 {
            Some(elems)
        } else {
            None // message longer than the signature
        }
    }

    /// Do two signatures describe the same primitive sequence?
    pub fn matches(&self, other: &Signature) -> bool {
        if self.byte_count() != other.byte_count() || self.element_count() != other.element_count()
        {
            return false;
        }
        let mut a = MergedRuns::new(self);
        let mut b = MergedRuns::new(other);
        loop {
            match (a.next(), b.next()) {
                (None, None) => return true,
                (Some(x), Some(y)) if x == y => continue,
                _ => return false,
            }
        }
    }

    /// MPI receive semantics: the receiver may post a *larger* type than
    /// the incoming message, but the message must be a signature prefix
    /// of the receive type; a longer message is `MPI_ERR_TRUNCATE`.
    pub fn check_recv(&self, incoming: &Signature) -> Result<(), TypeError> {
        let inc_bytes = incoming.byte_count();
        let cap = self.byte_count();
        if inc_bytes > cap {
            return Err(TypeError::Truncated {
                incoming: inc_bytes,
                capacity: cap,
            });
        }
        let mut mine = MergedRuns::new(self);
        let mut have: Option<(Primitive, u64)> = None;
        for (p, mut need) in MergedRuns::new(incoming) {
            while need > 0 {
                let (mp, mn) = match have.take() {
                    Some(h) => h,
                    None => match mine.next() {
                        Some(h) => h,
                        None => return Err(TypeError::SignatureMismatch),
                    },
                };
                if mp != p {
                    return Err(TypeError::SignatureMismatch);
                }
                if mn > need {
                    have = Some((mp, mn - need));
                    need = 0;
                } else {
                    need -= mn;
                }
            }
        }
        Ok(())
    }
}

impl PartialEq for Signature {
    fn eq(&self, other: &Self) -> bool {
        self.matches(other)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dbl() -> DataType {
        DataType::double()
    }

    #[test]
    fn homogeneous_signatures_match_across_layouts() {
        // A 64-double vector layout vs a 64-double contiguous layout:
        // same signature (the FFT reshape case).
        let v = DataType::vector(8, 8, 16, &dbl()).unwrap();
        let c = DataType::contiguous(64, &dbl()).unwrap();
        let sv = Signature::of(&v, 1);
        let sc = Signature::of(&c, 1);
        assert!(sv.matches(&sc));
        assert_eq!(sv.byte_count(), 512);
        assert_eq!(sv.element_count(), 64);
    }

    #[test]
    fn counts_multiply() {
        let c4 = Signature::of(&DataType::contiguous(4, &dbl()).unwrap(), 2);
        let c8 = Signature::of(&DataType::contiguous(8, &dbl()).unwrap(), 1);
        assert!(c4.matches(&c8));
    }

    #[test]
    fn different_primitives_do_not_match() {
        let a = Signature::of(&DataType::int(), 2);
        let b = Signature::of(&DataType::long(), 1);
        // Same byte count (8) but different signature.
        assert_eq!(a.byte_count(), b.byte_count());
        assert!(!a.matches(&b));
    }

    #[test]
    fn struct_signature_order_matters() {
        let id = DataType::structure(&[1, 1], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        let di = DataType::structure(&[1, 1], &[0, 8], &[dbl(), DataType::int()]).unwrap();
        let a = Signature::of(&id, 1);
        let b = Signature::of(&di, 1);
        assert!(!a.matches(&b));
        assert!(a.matches(&Signature::of(&id, 1)));
    }

    #[test]
    fn regrouped_heterogeneous_runs_match() {
        // [int, double] x2 vs [int, double, int, double] x1.
        let one = DataType::structure(&[1, 1], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        let two = DataType::structure(
            &[1, 1, 1, 1],
            &[0, 8, 16, 24],
            &[DataType::int(), dbl(), DataType::int(), dbl()],
        )
        .unwrap();
        assert!(Signature::of(&one, 2).matches(&Signature::of(&two, 1)));
    }

    #[test]
    fn boundary_merge_across_instances() {
        // [double, int] repeated twice = d,i,d,i — the i|d boundary must
        // NOT merge; compare against d,i,d,i expressed flat.
        let di = DataType::structure(&[1, 1], &[0, 8], &[dbl(), DataType::int()]).unwrap();
        let flat = DataType::structure(
            &[1, 1, 1, 1],
            &[0, 8, 16, 24],
            &[dbl(), DataType::int(), dbl(), DataType::int()],
        )
        .unwrap();
        assert!(Signature::of(&di, 2).matches(&Signature::of(&flat, 1)));
        // [int, int] x2 merges into one run of 4.
        let ii = DataType::contiguous(2, &DataType::int()).unwrap();
        let i4 = DataType::contiguous(4, &DataType::int()).unwrap();
        assert!(Signature::of(&ii, 2).matches(&Signature::of(&i4, 1)));
    }

    #[test]
    fn recv_allows_shorter_message() {
        let recv = Signature::of(&DataType::contiguous(10, &dbl()).unwrap(), 1);
        let msg = Signature::of(&DataType::contiguous(6, &dbl()).unwrap(), 1);
        assert!(recv.check_recv(&msg).is_ok());
    }

    #[test]
    fn recv_rejects_truncation() {
        let recv = Signature::of(&DataType::contiguous(4, &dbl()).unwrap(), 1);
        let msg = Signature::of(&DataType::contiguous(6, &dbl()).unwrap(), 1);
        assert!(matches!(
            recv.check_recv(&msg),
            Err(TypeError::Truncated { .. })
        ));
    }

    #[test]
    fn recv_rejects_wrong_primitive_prefix() {
        let recv = Signature::of(&DataType::contiguous(8, &DataType::int()).unwrap(), 1);
        let msg = Signature::of(&DataType::contiguous(2, &dbl()).unwrap(), 1);
        assert!(matches!(
            recv.check_recv(&msg),
            Err(TypeError::SignatureMismatch)
        ));
    }

    #[test]
    fn recv_prefix_must_align_with_runs() {
        // recv = [int x4], msg = [int x2, double x1]: mismatch.
        let recv = Signature::of(&DataType::contiguous(4, &DataType::int()).unwrap(), 1);
        let s = DataType::structure(&[2, 1], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        let msg = Signature::of(&s, 1);
        assert!(recv.check_recv(&msg).is_err());
    }

    #[test]
    fn heterogeneous_repetition() {
        let s = DataType::structure(&[1, 1], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        let a = Signature::of(&s, 3);
        let b = Signature::of(&s, 3);
        assert!(a.matches(&b));
        assert_eq!(a.element_count(), 6);
        let c = Signature::of(&s, 2);
        assert!(!a.matches(&c));
    }

    #[test]
    fn get_elements_semantics() {
        let s = DataType::structure(&[2, 1], &[0, 8], &[DataType::int(), dbl()]).unwrap();
        let sig = Signature::of(&s, 2); // [i32 x2, f64] x2
        assert_eq!(sig.elements_in_bytes(0), Some(0));
        assert_eq!(sig.elements_in_bytes(8), Some(2)); // the two ints
        assert_eq!(sig.elements_in_bytes(16), Some(3)); // + the double
        assert_eq!(sig.elements_in_bytes(24), Some(5));
        assert_eq!(sig.elements_in_bytes(32), Some(6));
        assert_eq!(sig.elements_in_bytes(4), Some(1));
        assert_eq!(sig.elements_in_bytes(10), None, "splits a double");
        assert_eq!(sig.elements_in_bytes(33), None, "longer than the type");
    }

    #[test]
    fn empty_and_zero_count() {
        let z = Signature::of(&dbl(), 0);
        assert_eq!(z.byte_count(), 0);
        assert!(z.matches(&Signature::of(&DataType::int(), 0)));
        assert!(Signature::of(&dbl(), 1).check_recv(&z).is_ok());
    }
}
